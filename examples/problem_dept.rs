//! The full §1.1/§3.6 walkthrough: the ProblemDept view, its expression
//! DAG, the candidate view sets with their costs, the chosen strategy, and
//! estimated-vs-measured page I/Os.
//!
//! ```text
//! cargo run --release --example problem_dept
//! ```

use spacetime::cost::{CostCtx, PageIoCostModel};
use spacetime::ivm::database::SqlOutcome;
use spacetime::ivm::{Database, ViewSelection};
use spacetime::memo::dot::render_text;
use spacetime::optimizer::candidates::render_view_set;
use spacetime::optimizer::{optimal_view_set, EvalConfig};
use spacetime::storage::{tuple, IoMeter};
use spacetime_bench::scenarios::{paper_names, problem_dept};

fn main() {
    // ----- Optimizer side (analytic, like the paper's tables) -----
    let s = problem_dept();
    println!("expression DAG for ProblemDept (Figure 2):\n");
    println!("{}", render_text(&s.memo, s.root));

    let names = paper_names(&s.memo, s.root);
    let name_of = |g: spacetime::memo::GroupId| {
        names
            .iter()
            .find(|&&(gg, _)| gg == s.memo.find(g))
            .map(|&(_, n)| n.to_string())
            .unwrap_or_else(|| format!("n{}", g.0))
    };

    let model = PageIoCostModel::default();
    let config = EvalConfig::default();
    let outcome = optimal_view_set(&s.memo, &s.catalog, &model, s.root, &s.txns, &config);
    println!(
        "view sets by weighted maintenance cost (best 8 of {}):",
        outcome.sets_considered
    );
    for e in outcome.evaluated.iter().take(8) {
        let per: Vec<String> = e
            .per_txn
            .iter()
            .map(|t| format!("{}={}", t.txn_name, t.total))
            .collect();
        println!(
            "  {:<16} weighted {:<6} ({})",
            render_view_set(&e.view_set, s.root, name_of),
            e.weighted,
            per.join(", ")
        );
    }
    println!(
        "\nchosen: {} — the paper's SumOfSals strategy.\n",
        render_view_set(outcome.best_set(), s.root, name_of)
    );

    // The delta-size estimates behind the numbers.
    let mut cc = CostCtx::new(&s.memo, &s.catalog, &model);
    for (g, n) in &names {
        if *n == "N3" || *n == "N4" {
            for txn in &s.txns {
                let d = cc.delta_for(*g, &txn.updates[0]);
                println!("estimated |Δ{n}| under {}: {}", txn.name, d.size);
            }
        }
    }

    // ----- Runtime side (measured against loaded data) -----
    println!("\nmeasured against 1000 departments × 10 employees:");
    for (label, selection) in [
        ("no additional views", ViewSelection::RootOnly),
        ("optimizer's choice ", ViewSelection::Exhaustive),
    ] {
        let mut db = Database::new();
        db.set_view_selection(selection);
        db.execute_sql(
            "CREATE TABLE Emp (EName VARCHAR PRIMARY KEY, DName VARCHAR, Salary INTEGER);
             CREATE TABLE Dept (DName VARCHAR PRIMARY KEY, MName VARCHAR, Budget INTEGER);
             CREATE INDEX ON Emp (DName);",
        )
        .unwrap();
        let mut io = IoMeter::new();
        for d in 0..1000 {
            let dname = format!("dept{d:04}");
            db.catalog
                .table_mut("Dept")
                .unwrap()
                .relation
                .insert(tuple![dname.clone(), format!("m{d}"), 2000_i64], 1, &mut io)
                .unwrap();
            for e in 0..10 {
                db.catalog
                    .table_mut("Emp")
                    .unwrap()
                    .relation
                    .insert(
                        tuple![format!("e{d:04}_{e}"), dname.clone(), 100_i64],
                        1,
                        &mut io,
                    )
                    .unwrap();
            }
        }
        db.catalog.table_mut("Emp").unwrap().analyze();
        db.catalog.table_mut("Dept").unwrap().analyze();
        db.declare_workload(s.txns.clone());
        db.execute_sql(
            "CREATE MATERIALIZED VIEW ProblemDept (DName) AS \
             SELECT Dept.DName FROM Emp, Dept WHERE Dept.DName = Emp.DName \
             GROUP BY Dept.DName, Budget HAVING SUM(Salary) > Budget",
        )
        .unwrap();
        let emp_cost = match db
            .execute_sql("UPDATE Emp SET Salary = 130 WHERE EName = 'e0042_3'")
            .unwrap()
        {
            SqlOutcome::Updated { report, .. } => report.paper_cost(),
            _ => unreachable!(),
        };
        let dept_cost = match db
            .execute_sql("UPDATE Dept SET Budget = 2500 WHERE DName = 'dept0007'")
            .unwrap()
        {
            SqlOutcome::Updated { report, .. } => report.paper_cost(),
            _ => unreachable!(),
        };
        println!(
            "  {label}: >Emp = {emp_cost} page I/Os, >Dept = {dept_cost} page I/Os, avg = {}",
            (emp_cost + dept_cost) as f64 / 2.0
        );
    }
    println!("\npaper: 13/11 (avg 12) without, 5/2 (avg 3.5) with SumOfSals — \"about 30% of the cost\".");
}

//! §6: maintaining a *set* of views. Two views over the same base
//! relations are registered; each gets its own DAG and auxiliary-view
//! choice, and one base update maintains both (the paper notes the same
//! machinery applies — "the expression DAG will have to include multiple
//! view definitions, and may therefore have multiple roots").
//!
//! ```text
//! cargo run --release --example multi_view
//! ```

use spacetime::cost::TransactionType;
use spacetime::ivm::database::SqlOutcome;
use spacetime::ivm::{verify_all_views, Database, ViewSelection};
use spacetime::storage::{tuple, IoMeter};

fn main() {
    let mut db = Database::new();
    db.set_view_selection(ViewSelection::Exhaustive);
    db.execute_sql(
        "CREATE TABLE Emp (EName VARCHAR PRIMARY KEY, DName VARCHAR, Salary INTEGER);
         CREATE TABLE Dept (DName VARCHAR PRIMARY KEY, MName VARCHAR, Budget INTEGER);
         CREATE INDEX ON Emp (DName);",
    )
    .expect("DDL");

    let mut io = IoMeter::new();
    for d in 0..100 {
        let dname = format!("dept{d:03}");
        db.catalog
            .table_mut("Dept")
            .unwrap()
            .relation
            .insert(tuple![dname.clone(), format!("m{d}"), 2000_i64], 1, &mut io)
            .unwrap();
        for e in 0..10 {
            db.catalog
                .table_mut("Emp")
                .unwrap()
                .relation
                .insert(
                    tuple![format!("e{d:03}_{e}"), dname.clone(), 100 + (e as i64) * 10],
                    1,
                    &mut io,
                )
                .unwrap();
        }
    }
    db.catalog.table_mut("Emp").unwrap().analyze();
    db.catalog.table_mut("Dept").unwrap().analyze();
    db.declare_workload(vec![
        TransactionType::modify(">Emp", "Emp", 1.0),
        TransactionType::modify(">Dept", "Dept", 1.0),
    ]);

    // View 1: over-budget departments (grouping + HAVING).
    db.execute_sql(
        "CREATE MATERIALIZED VIEW ProblemDept (DName) AS \
         SELECT Dept.DName FROM Emp, Dept WHERE Dept.DName = Emp.DName \
         GROUP BY Dept.DName, Budget HAVING SUM(Salary) > Budget",
    )
    .expect("view 1");

    // View 2: per-department headcount and top salary.
    db.execute_sql(
        "CREATE MATERIALIZED VIEW DeptProfile AS \
         SELECT DName, COUNT(*) AS Heads, MAX(Salary) AS TopSal \
         FROM Emp GROUP BY DName",
    )
    .expect("view 2");

    // View 3: well-paid employees of specific managers (SPJ, no grouping).
    db.execute_sql(
        "CREATE MATERIALIZED VIEW WellPaid AS \
         SELECT EName, Emp.DName, MName FROM Emp, Dept \
         WHERE Emp.DName = Dept.DName AND Salary > 150",
    )
    .expect("view 3");

    println!("registered {} maintained views:", db.engines().len());
    for e in db.engines() {
        println!(
            "  {} (materializes {} node(s): {})",
            e.name,
            e.materialized.len(),
            e.materialized
                .values()
                .cloned()
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    // One base update maintains all three views.
    let outcome = db
        .execute_sql("UPDATE Emp SET Salary = 500 WHERE EName = 'e007_0'")
        .expect("update");
    if let SqlOutcome::Updated { report, .. } = outcome {
        println!(
            "\none salary change maintained every view with {} page I/Os total \
             (queries {}, aux {}, roots {})",
            report.total() - report.base_io.total(),
            report.query_io.total(),
            report.aux_io.total(),
            report.root_io.total()
        );
    }

    for view in ["DeptProfile", "WellPaid"] {
        if let SqlOutcome::Rows(rows) = db
            .execute_sql(&format!("SELECT * FROM {view} WHERE DName = 'dept007'"))
            .expect("query")
        {
            println!("\n{view} for dept007: {rows}");
        }
    }

    assert!(verify_all_views(&db).expect("verify").is_empty());
    println!("\nall three views verified against recomputation ✓");

    // ----- §6 proper: one DAG, multiple roots, shared auxiliaries -----
    use spacetime::algebra::{AggExpr, AggFunc, CmpOp, ExprNode, ScalarExpr};
    let emp = ExprNode::scan(&db.catalog, "Emp").unwrap();
    let dept = ExprNode::scan(&db.catalog, "Dept").unwrap();
    let join = ExprNode::join_on(emp.clone(), dept, &[("Emp.DName", "Dept.DName")]).unwrap();
    let agg = ExprNode::aggregate(
        join,
        vec![3, 5],
        vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum")],
    )
    .unwrap();
    let over_budget = ExprNode::select(
        agg,
        ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(2), ScalarExpr::col(1)),
    )
    .unwrap();
    let agg2 = ExprNode::aggregate(
        emp,
        vec![1],
        vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum")],
    )
    .unwrap();
    let big_payroll = ExprNode::select(
        agg2,
        ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(1), ScalarExpr::lit(1200)),
    )
    .unwrap();
    let engine = db
        .create_view_group(vec![
            ("OverBudget".to_string(), over_budget),
            ("BigPayroll".to_string(), big_payroll),
        ])
        .expect("view group");
    println!(
        "\n§6 view group: {} roots share {} auxiliary materialization(s)",
        engine.roots.len(),
        engine.materialized.len() - engine.roots.len()
    );
    db.execute_sql("UPDATE Emp SET Salary = 800 WHERE EName = 'e003_2'")
        .expect("update");
    assert!(verify_all_views(&db).expect("verify").is_empty());
    println!("grouped views maintained and verified after an update ✓");
}

//! Example 3.1 / Figure 3: the optimal *query* plan and the optimal
//! *maintenance* materialization differ.
//!
//! `ADeptsStatus` joins Emp, Dept and the small `ADepts` relation; updates
//! hit only `ADepts`. The optimizer should materialize the V1 subview
//! (Dept joined with per-department salary sums) so an ADepts update is a
//! single lookup — "since there are no updates to the relations Dept and
//! Emp, view V1 does not need to be updated."
//!
//! ```text
//! cargo run --release --example adepts_status
//! ```

use spacetime::optimizer::candidates::render_view_set;
use spacetime::optimizer::exhaustive::optimal_view_set_over;
use spacetime::optimizer::{candidate_groups, EvalConfig, PageIoCostModel};
use spacetime_bench::scenarios::adepts_status;

fn main() {
    let s = adepts_status();
    println!("ADeptsStatus as written (query-optimization shape):\n");
    println!("{}", s.tree.render());

    let model = PageIoCostModel::default();
    let config = EvalConfig {
        max_tracks: 128,
        ..EvalConfig::default()
    };
    // ≤2 additional views: exhaustive over the relevant space without the
    // 2^20 blowup (§5's point).
    let candidates = candidate_groups(&s.memo, s.root);
    let outcome = optimal_view_set_over(
        &s.memo,
        &s.catalog,
        &model,
        s.root,
        &candidates,
        &s.txns,
        &config,
        Some(2),
    );

    println!(
        "workload: {} (updates only ADepts)\n",
        s.txns
            .iter()
            .map(|t| t.name.clone())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "view sets by maintenance cost (best 6 of {}):",
        outcome.sets_considered
    );
    for e in outcome.evaluated.iter().take(6) {
        println!(
            "  {:<28} weighted {}",
            render_view_set(&e.view_set, s.root, |g| format!("n{}", g.0)),
            e.weighted
        );
    }

    let extras = outcome.additional_views(&s.memo, s.root);
    println!("\nchosen additional views:");
    for g in &extras {
        let tree = s.memo.extract_one(*g);
        let adepts_free = !tree.leaf_tables().contains(&"ADepts");
        println!(
            "  [{}]{}:\n{}",
            s.memo.schema(*g),
            if adepts_free {
                "  (ADepts-free — never needs updating under this workload)"
            } else {
                ""
            },
            tree.render()
        );
    }

    // `outcome.evaluated` is truncated to the top-K cheapest sets, which
    // need not include the no-extra-views baseline — evaluate it directly.
    let baseline: spacetime::optimizer::ViewSet = [s.root].into_iter().collect();
    let empty = spacetime::optimizer::evaluate::evaluate_view_set_fresh(
        &s.memo, &s.catalog, &model, s.root, &baseline, &s.txns, &config,
    );
    println!(
        "maintaining nothing extra: {} page I/Os per txn; with V1: {} — \
         \"{{V1}} is likely to be the optimal set of additional views to maintain.\"",
        empty.weighted, outcome.best.weighted
    );
    assert!(outcome.best.weighted < empty.weighted);
}

//! SQL-92 assertion checking (§1, §6): the `DeptConstraint` assertion —
//! "a department's expense should not exceed its budget" — modeled as a
//! view required to be empty, maintained incrementally, and enforced by
//! rejecting violating transactions before they commit.
//!
//! ```text
//! cargo run --release --example assertion_checking
//! ```

use spacetime::cost::TransactionType;
use spacetime::ivm::{Database, ViewSelection};
use spacetime::storage::{tuple, IoMeter};

fn main() {
    let mut db = Database::new();
    db.set_view_selection(ViewSelection::Exhaustive);
    db.execute_sql(
        "CREATE TABLE Emp (EName VARCHAR PRIMARY KEY, DName VARCHAR, Salary INTEGER);
         CREATE TABLE Dept (DName VARCHAR PRIMARY KEY, MName VARCHAR, Budget INTEGER);
         CREATE INDEX ON Emp (DName);",
    )
    .expect("DDL");

    let mut io = IoMeter::new();
    for d in 0..50 {
        let dname = format!("dept{d:02}");
        db.catalog
            .table_mut("Dept")
            .unwrap()
            .relation
            .insert(tuple![dname.clone(), format!("m{d}"), 1500_i64], 1, &mut io)
            .unwrap();
        for e in 0..10 {
            db.catalog
                .table_mut("Emp")
                .unwrap()
                .relation
                .insert(
                    tuple![format!("e{d:02}_{e}"), dname.clone(), 100_i64],
                    1,
                    &mut io,
                )
                .unwrap();
        }
    }
    db.catalog.table_mut("Emp").unwrap().analyze();
    db.catalog.table_mut("Dept").unwrap().analyze();
    db.declare_workload(vec![
        TransactionType::modify(">Emp", "Emp", 3.0), // salary changes dominate
        TransactionType::modify(">Dept", "Dept", 1.0),
    ]);

    // The paper's assertion, verbatim shape: the ProblemDept query wrapped
    // in NOT EXISTS.
    db.execute_sql(
        "CREATE ASSERTION DeptConstraint CHECK (NOT EXISTS ( \
            SELECT Dept.DName FROM Emp, Dept \
            WHERE Dept.DName = Emp.DName \
            GROUP BY Dept.DName, Budget \
            HAVING SUM(Salary) > Budget))",
    )
    .expect("assertion");
    println!(
        "assertion DeptConstraint installed; currently satisfied: {}",
        db.check_assertions().unwrap().is_empty()
    );

    // A harmless raise goes through (and is cheap thanks to the auxiliary
    // views the optimizer picked for the assertion's backing view).
    let ok = db.execute_sql("UPDATE Emp SET Salary = 140 WHERE EName = 'e07_3'");
    println!(
        "raise to 140: {}",
        if ok.is_ok() { "committed" } else { "rejected" }
    );

    // A raise that would push dept07 over budget (10 × 100 + 440 extra
    // > 1500) must be rejected — before anything is applied.
    let err = db
        .execute_sql("UPDATE Emp SET Salary = 700 WHERE EName = 'e07_4'")
        .expect_err("must violate");
    println!("raise to 700: rejected — {err}");

    // Prove nothing was applied.
    if let spacetime::ivm::database::SqlOutcome::Rows(rows) = db
        .execute_sql("SELECT Salary FROM Emp WHERE EName = 'e07_4'")
        .expect("query")
    {
        println!("e07_4's salary is still {}", rows.sorted()[0].0);
    }

    // Budget changes are checked too.
    let err = db
        .execute_sql("UPDATE Dept SET Budget = 900 WHERE DName = 'dept07'")
        .expect_err("must violate (existing salaries exceed 900)");
    println!("budget cut to 900: rejected — {err}");
    let ok = db.execute_sql("UPDATE Dept SET Budget = 1600 WHERE DName = 'dept07'");
    println!(
        "budget raise to 1600: {}",
        if ok.is_ok() { "committed" } else { "rejected" }
    );

    assert!(db.check_assertions().unwrap().is_empty());
    println!("\nassertion still satisfied after the committed updates ✓");
}

//! Serving-plane telemetry end to end: a [`ShardedDatabase`] under a
//! multi-client workload with the `spacetime-obs` HTTP endpoint standing
//! next to it. Drives the scheduler, fetches its own `/statusz` and
//! `/metrics` over real TCP, prints the status document plus a rendered
//! cross-shard transaction span, and dumps the flight recorder's tail.
//!
//! Requires the metrics feature (the default build compiles the whole
//! observability plane to nothing):
//!
//! ```text
//! cargo run --release --example serve_status --features metrics
//! ```

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;

use spacetime::ivm::{PipelinePool, PropagationMode, ShardedDatabase, Txn, TxnScheduler};
use spacetime::obs;
use spacetime_bench::workload::{load_paper_data, mixed_workload, paper_schema_db};
use spacetime_storage::ShardSpec;

fn get(addr: &std::net::SocketAddr, path: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    write!(conn, "GET {path} HTTP/1.0\r\nHost: example\r\n\r\n").expect("request");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("response");
    raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or(raw)
}

fn main() {
    // The paper schema, sharded by department across four partitions.
    let mut template = paper_schema_db();
    template.set_propagation_mode(PropagationMode::Fused);
    load_paper_data(&mut template, 24, 5);
    template
        .execute_sql(
            "CREATE MATERIALIZED VIEW DeptProfile AS \
             SELECT DName, COUNT(*) AS Heads, MAX(Salary) AS TopSal \
             FROM Emp GROUP BY DName",
        )
        .expect("view DDL");
    let spec = ShardSpec::new().with("Emp", vec![1]).with("Dept", vec![0]);
    let mut sharded = ShardedDatabase::partition(&template, spec, 4).expect("partition");
    sharded.set_tracing(true);

    // A mixed workload plus one deliberately cross-shard transaction so
    // the 2PC span below has more than one participant.
    let mut txns: Vec<Txn> = mixed_workload(24, 5, 60, 42)
        .into_iter()
        .map(|(table, delta)| vec![(table, delta)])
        .collect();
    let cross: Txn = {
        let mut all = spacetime_delta::Delta::new();
        for dept in 0..4 {
            // Inserts only: a fresh hire per department has no preimage
            // to go stale under the workload ahead of it.
            all.merge(spacetime_delta::Delta::insert(
                spacetime_storage::tuple![
                    format!("newhire{dept:05}"),
                    format!("dept{dept:05}"),
                    90_i64
                ],
                1,
            ));
        }
        vec![("Emp".to_string(), all)]
    };
    txns.push(cross);

    let scheduler = TxnScheduler::new(&sharded, Arc::new(PipelinePool::new(4)));
    let out = scheduler.run(&txns).expect("scheduler run");
    let ok = out.results.iter().filter(|r| r.is_ok()).count();
    println!("served {ok}/{} transactions over 4 shards\n", txns.len());

    // The endpoint, with the scheduler's books as the serving section.
    let stats = out.stats;
    let status: obs::http::StatusFn = Arc::new(move || {
        format!(
            "{{ \"example\": \"serve_status\", \"committed\": {}, \"waves\": {} }}",
            stats.committed, stats.waves
        )
    });
    let server = obs::http::ObsServer::start_with_status("127.0.0.1:0", status).expect("bind");
    let addr = server.local_addr();
    println!("endpoint listening on http://{addr}\n");

    println!("--- GET /statusz ---");
    println!("{}", get(&addr, "/statusz"));

    println!("--- GET /metrics (scheduler families) ---");
    for line in get(&addr, "/metrics").lines() {
        if line.contains("spacetime_sched_") || line.contains("spacetime_shard_") {
            println!("{line}");
        }
    }

    // The cross-shard transaction's span: a `cross-shard commit` root
    // with one child per participating shard, each wrapping that shard's
    // ordinary per-update propagation trace.
    println!("\n--- cross-shard transaction span ---");
    let trace = out
        .traces
        .last()
        .and_then(|t| t.as_ref())
        .expect("tracing was on and the cross-shard txn committed");
    println!("{}", trace.render_text());

    println!("--- flight recorder tail ---");
    let events = obs::flight::dump();
    for e in events.iter().rev().take(8).rev() {
        println!("#{:<6} {:<16} {}", e.seq, e.kind, e.detail);
    }
}

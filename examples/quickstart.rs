//! Quickstart: define the paper's `ProblemDept` view, let the optimizer
//! pick the auxiliary views, and watch an update being maintained.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spacetime::cost::TransactionType;
use spacetime::ivm::database::SqlOutcome;
use spacetime::ivm::{verify_all_views, Database, ViewSelection};
use spacetime::storage::{tuple, IoMeter};

fn main() {
    let mut db = Database::new();
    db.set_view_selection(ViewSelection::Exhaustive);

    // 1. Schema: the corporate database of the paper's Example 1.1.
    db.execute_sql(
        "CREATE TABLE Emp (EName VARCHAR PRIMARY KEY, DName VARCHAR, Salary INTEGER);
         CREATE TABLE Dept (DName VARCHAR PRIMARY KEY, MName VARCHAR, Budget INTEGER);
         CREATE INDEX ON Emp (DName);",
    )
    .expect("DDL");

    // 2. Data: 100 departments x 10 employees (a small instance of the
    //    paper's 1000 x 10 sample).
    let mut io = IoMeter::new();
    for d in 0..100 {
        let dname = format!("dept{d:03}");
        db.catalog
            .table_mut("Dept")
            .unwrap()
            .relation
            .insert(
                tuple![dname.clone(), format!("mgr{d}"), 2000_i64],
                1,
                &mut io,
            )
            .unwrap();
        for e in 0..10 {
            db.catalog
                .table_mut("Emp")
                .unwrap()
                .relation
                .insert(
                    tuple![format!("e{d:03}_{e}"), dname.clone(), 100_i64],
                    1,
                    &mut io,
                )
                .unwrap();
        }
    }
    db.catalog.table_mut("Emp").unwrap().analyze();
    db.catalog.table_mut("Dept").unwrap().analyze();

    // 3. Workload: the paper's two transaction types, equally weighted.
    db.declare_workload(vec![
        TransactionType::modify(">Emp", "Emp", 1.0),
        TransactionType::modify(">Dept", "Dept", 1.0),
    ]);

    // 4. The view. The optimizer decides what *else* to materialize.
    db.execute_sql(
        "CREATE MATERIALIZED VIEW ProblemDept (DName) AS \
         SELECT Dept.DName FROM Emp, Dept \
         WHERE Dept.DName = Emp.DName \
         GROUP BY Dept.DName, Budget \
         HAVING SUM(Salary) > Budget",
    )
    .expect("view");

    let engine = &db.engines()[0];
    println!("materialized view set (root + auxiliaries):");
    for (g, table) in &engine.materialized {
        let rows = db.catalog.table(table).unwrap().relation.len();
        println!("  {g} -> {table} ({rows} rows)");
    }

    // 5. An update, incrementally maintained.
    let outcome = db
        .execute_sql("UPDATE Emp SET Salary = 150 WHERE EName = 'e042_3'")
        .expect("update");
    if let SqlOutcome::Updated { report, .. } = outcome {
        println!(
            "\nsalary update maintained with {} page I/Os \
             (queries: {}, auxiliary views: {})",
            report.paper_cost(),
            report.query_io.total(),
            report.aux_io.total()
        );
    }

    // 6. Push a department over budget and see it appear in the view.
    db.execute_sql("UPDATE Emp SET Salary = 9999 WHERE EName = 'e007_0'")
        .expect("update");
    if let SqlOutcome::Rows(rows) = db.execute_sql("SELECT * FROM ProblemDept").expect("query") {
        println!("\nProblemDept now holds: {rows}");
    }

    // 7. Prove the incremental state equals recomputation.
    let mismatches = verify_all_views(&db).expect("verify");
    assert!(mismatches.is_empty());
    println!("\nverified: incremental state == recomputed state ✓");
}

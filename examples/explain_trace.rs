//! `EXPLAIN ANALYZE` for delta propagation: enable tracing, push one
//! update through the wide ten-view pipeline scenario, and print the
//! recorded span tree — which track each engine chose, the queries posed
//! at every operator (index vs. scan), per-level delta sizes, and what
//! the commit applied where.
//!
//! ```text
//! cargo run --example explain_trace
//! ```

use spacetime_bench::scenarios::build_wide_pipeline_db;
use spacetime_delta::Delta;
use spacetime_storage::tuple;

fn main() {
    // Ten maintained views over Emp/Dept (join, aggregates, DISTINCT, a
    // two-rooted view group) — the E-PIPE scenario.
    let mut db = build_wide_pipeline_db(50, 6);
    db.set_tracing(true);

    // One salary raise.
    let delta = Delta::modify(
        tuple!["emp00001_0", "dept00001", 100_i64],
        tuple!["emp00001_0", "dept00001", 180_i64],
        1,
    );
    db.apply_delta("Emp", delta).expect("maintained update");

    let trace = db.last_trace().expect("tracing was on");
    println!("{}", trace.render_text());
    println!("({} spans; JSON via TraceNode::render_json)", trace.span_count());

    // The metrics plane is separate: compile-time opt-in, process-wide.
    let snap = db.metrics_snapshot();
    if snap.is_empty() {
        println!("metrics: not compiled in (rebuild with --features metrics)");
    } else {
        println!("\n{}", snap.render_prometheus());
    }
}

//! Expression-DAG (memo) construction and exploration cost — the §2.1
//! step every optimization run starts with.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use spacetime_bench::scenarios::{join_chain, problem_dept};
use spacetime_memo::{explore, Memo};

fn bench_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("memo/explore");
    group.sample_size(20);
    // The motivating example.
    let s = problem_dept();
    group.bench_function("problem_dept", |b| {
        b.iter(|| {
            let mut memo = Memo::new();
            let root = memo.insert_tree(&s.tree);
            memo.set_root(root);
            black_box(explore(&mut memo, &s.catalog).expect("exploration"))
        })
    });
    // Join chains of growing length.
    for n in [3usize, 4, 5] {
        let s = join_chain(n);
        group.bench_with_input(BenchmarkId::new("chain", n), &n, |b, _| {
            b.iter(|| {
                let mut memo = Memo::new();
                let root = memo.insert_tree(&s.tree);
                memo.set_root(root);
                black_box(explore(&mut memo, &s.catalog).expect("exploration"))
            })
        });
    }
    group.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("memo/extract");
    let s = join_chain(4);
    group.bench_function("count_trees_chain4", |b| {
        b.iter(|| black_box(s.memo.count_trees(s.root)))
    });
    group.bench_function("extract_64_chain4", |b| {
        b.iter(|| black_box(s.memo.extract_trees(s.root, 64).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_explore, bench_extraction);
criterion_main!(benches);

//! E-SCALE: optimizer strategies vs view complexity.
//!
//! Measures Algorithm OptimalViewSet (exhaustive), the Shielding-Principle
//! decomposition, greedy hill-climbing and the single-tree restriction on
//! the paper's motivating view and on growing join chains — the paper's
//! point being that "the search space is inherently large" (§5) and the
//! §4/§5 techniques trade optimality guarantees for time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use spacetime_bench::scenarios::{join_chain, problem_dept, scaling_workload, stacked_view};
use spacetime_optimizer::heuristics::single_tree_optimize;
use spacetime_optimizer::{
    candidate_groups, greedy_add, optimal_view_set, optimal_view_set_over, shielding_optimize,
    EvalConfig, PageIoCostModel,
};

fn bench_strategies_on_paper_example(c: &mut Criterion) {
    let s = problem_dept();
    let model = PageIoCostModel::default();
    let config = EvalConfig::default();
    let mut group = c.benchmark_group("optimizer/problem_dept");
    group.sample_size(10);
    group.bench_function("exhaustive", |b| {
        b.iter(|| {
            black_box(optimal_view_set(
                &s.memo, &s.catalog, &model, s.root, &s.txns, &config,
            ))
        })
    });
    group.bench_function("shielding", |b| {
        b.iter(|| {
            black_box(shielding_optimize(
                &s.memo, &s.catalog, &model, s.root, &s.txns, &config,
            ))
        })
    });
    group.bench_function("greedy", |b| {
        b.iter(|| {
            black_box(greedy_add(
                &s.memo, &s.catalog, &model, s.root, &s.txns, &config,
            ))
        })
    });
    group.bench_function("single_tree", |b| {
        b.iter(|| {
            black_box(single_tree_optimize(
                &s.memo, &s.catalog, &model, s.root, &s.tree, &s.txns, &config,
            ))
        })
    });
    group.finish();
}

fn bench_chain_scaling(c: &mut Criterion) {
    let model = PageIoCostModel::default();
    let config = EvalConfig {
        max_tracks: 256,
        ..EvalConfig::default()
    };
    let mut group = c.benchmark_group("optimizer/join_chain");
    group.sample_size(10);
    for n in [2usize, 3] {
        let s = join_chain(n);
        group.bench_with_input(BenchmarkId::new("exhaustive", n), &n, |b, _| {
            b.iter(|| {
                black_box(optimal_view_set(
                    &s.memo, &s.catalog, &model, s.root, &s.txns, &config,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| {
                black_box(greedy_add(
                    &s.memo, &s.catalog, &model, s.root, &s.txns, &config,
                ))
            })
        });
    }
    group.finish();
}

fn bench_shielding_on_stacked(c: &mut Criterion) {
    let model = PageIoCostModel::default();
    // The stacked DAG admits very many (mostly redundant) tracks; cap per
    // evaluation so the bench measures search structure, not track soup.
    let config = EvalConfig {
        max_tracks: 128,
        ..EvalConfig::default()
    };
    let mut group = c.benchmark_group("optimizer/stacked");
    group.sample_size(10);
    for levels in [1usize, 2] {
        let s = stacked_view(levels);
        group.bench_with_input(BenchmarkId::new("exhaustive", levels), &levels, |b, _| {
            b.iter(|| {
                black_box(optimal_view_set(
                    &s.memo, &s.catalog, &model, s.root, &s.txns, &config,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("shielding", levels), &levels, |b, _| {
            b.iter(|| {
                black_box(shielding_optimize(
                    &s.memo, &s.catalog, &model, s.root, &s.txns, &config,
                ))
            })
        });
    }
    group.finish();
}

/// E-PAR: serial vs parallel vs parallel+pruning on the wide scaling
/// workload (28 candidate groups, 4 skewed-weight transaction types,
/// ≤2 extra views per set → 407 view sets). The same numbers are
/// exported to `BENCH_optimizer.json` by the `bench_search` binary.
fn bench_parallel_search(c: &mut Criterion) {
    let s = scaling_workload();
    let model = PageIoCostModel::default();
    let candidates = candidate_groups(&s.memo, s.root);
    let mut group = c.benchmark_group("optimizer/scaling");
    group.sample_size(10);
    for (name, parallelism, prune) in [
        ("serial", 1usize, false),
        ("parallel", 0, false),
        ("parallel_prune", 0, true),
    ] {
        let config = EvalConfig {
            parallelism,
            prune,
            max_tracks: 64,
            ..EvalConfig::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(optimal_view_set_over(
                    &s.memo,
                    &s.catalog,
                    &model,
                    s.root,
                    &candidates,
                    &s.txns,
                    &config,
                    Some(2),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_strategies_on_paper_example,
    bench_chain_scaling,
    bench_shielding_on_stacked,
    bench_parallel_search
);
criterion_main!(benches);

//! E-IVM: measured maintenance throughput with and without the auxiliary
//! views the optimizer picks — the runtime counterpart of the paper's §1
//! claim that "maintaining a suitable set of additional materialized views
//! can lead to a substantial reduction in maintenance cost".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use spacetime_bench::workload::{load_paper_data, paper_schema_db, random_emp_updates};
use spacetime_cost::TransactionType;
use spacetime_ivm::{Database, ViewSelection};

const DEPARTMENTS: usize = 200;
const EMPS_PER_DEPT: usize = 10;

fn build_db(selection: ViewSelection) -> Database {
    let mut db = paper_schema_db();
    db.set_view_selection(selection);
    load_paper_data(&mut db, DEPARTMENTS, EMPS_PER_DEPT);
    db.declare_workload(vec![
        TransactionType::modify(">Emp", "Emp", 1.0),
        TransactionType::modify(">Dept", "Dept", 1.0),
    ]);
    db.execute_sql(
        "CREATE MATERIALIZED VIEW ProblemDept (DName) AS \
         SELECT Dept.DName FROM Emp, Dept WHERE Dept.DName = Emp.DName \
         GROUP BY Dept.DName, Budget HAVING SUM(Salary) > Budget",
    )
    .expect("view");
    db
}

fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintenance/emp_updates");
    group.sample_size(10);
    for (label, selection) in [
        ("no_aux_views", ViewSelection::RootOnly),
        ("optimal_aux_views", ViewSelection::Exhaustive),
    ] {
        group.bench_with_input(
            BenchmarkId::new(label, "batch_of_50"),
            &selection,
            |b, &selection| {
                b.iter_batched(
                    || {
                        (
                            build_db(selection),
                            random_emp_updates(DEPARTMENTS, EMPS_PER_DEPT, 50, 7),
                        )
                    },
                    |(mut db, updates)| {
                        let mut io_total = 0u64;
                        for (table, delta) in updates {
                            let report = db.apply_delta(&table, delta).expect("maintenance");
                            io_total += report.paper_cost();
                        }
                        black_box(io_total)
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_maintenance);
criterion_main!(benches);

//! Integration test for the serving-plane telemetry endpoint: drives a
//! [`ShardedDatabase`] through the [`TxnScheduler`], stands up the
//! `spacetime-obs` HTTP endpoint on an ephemeral port, and asserts that
//! what `/metrics` and `/statusz` serve is *self-consistent* — the
//! exposition's scheduler counters equal the [`SchedStats`] the run
//! returned, the labeled per-shard families balance against the
//! footprint books, and the queue-depth gauges have drained.
//!
//! The whole file is feature-gated: in the default build there is no
//! recorder and no HTTP module, and this binary compiles to nothing.
#![cfg(feature = "metrics")]

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;

use spacetime_bench::workload::{load_paper_data, mixed_workload, paper_schema_db};
use spacetime_ivm::{PipelinePool, PropagationMode, ShardedDatabase, Txn, TxnScheduler};
use spacetime_obs::http::ObsServer;
use spacetime_obs::names as metric;
use spacetime_storage::ShardSpec;

/// One blocking HTTP/1.0 GET against the server; returns (status, body).
fn get(addr: &std::net::SocketAddr, path: &str) -> (String, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    write!(conn, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("request");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

/// The value of an unlabeled series in a Prometheus text exposition.
fn prom_value(text: &str, name: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// The sum of every sample of a labeled family (`name{...} value`).
fn prom_labeled_sum(text: &str, name: &str) -> f64 {
    let prefix = format!("{name}{{");
    text.lines()
        .filter(|l| l.starts_with(&prefix))
        .filter_map(|l| l.split_whitespace().nth(1))
        .filter_map(|v| v.parse::<f64>().ok())
        .sum()
}

/// Pull `"key": <integer>` out of the status document (hand-rolled like
/// the exposition itself; the values asserted here are all unsigned).
fn json_u64(doc: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let at = doc.find(&needle)? + needle.len();
    let rest = &doc[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn endpoint_serves_self_consistent_metrics_and_status() {
    // Drive the serving stack far enough that every family moves.
    let mut template = paper_schema_db();
    template.set_propagation_mode(PropagationMode::Fused);
    load_paper_data(&mut template, 12, 4);
    template
        .execute_sql(
            "CREATE MATERIALIZED VIEW DeptProfile AS \
             SELECT DName, COUNT(*) AS Heads, MAX(Salary) AS TopSal \
             FROM Emp GROUP BY DName",
        )
        .expect("view DDL");
    let spec = ShardSpec::new().with("Emp", vec![1]).with("Dept", vec![0]);
    let sharded = ShardedDatabase::partition(&template, spec, 4).expect("partition");
    let txns: Vec<Txn> = mixed_workload(12, 4, 40, 7)
        .into_iter()
        .map(|(table, delta)| vec![(table, delta)])
        .collect();
    let out = TxnScheduler::new(&sharded, Arc::new(PipelinePool::new(4)))
        .run(&txns)
        .expect("scheduler run");
    assert!(out.results.iter().all(|r| r.is_ok()));

    let status: spacetime_obs::http::StatusFn =
        Arc::new(|| "{ \"probe\": true }".to_string());
    let server = ObsServer::start_with_status("127.0.0.1:0", status).expect("bind");
    let addr = server.local_addr();

    let (status_line, health) = get(&addr, "/healthz");
    assert!(status_line.contains("200"), "healthz: {status_line}");
    assert_eq!(health, "ok\n");

    // /metrics: the exposition's scheduler counters must equal the
    // SchedStats this process accumulated (this test binary is the only
    // scheduler user in the process).
    let (status_line, text) = get(&addr, "/metrics");
    assert!(status_line.contains("200"), "metrics: {status_line}");
    let stats = &out.stats;
    for (name, want) in [
        (metric::SCHED_TXNS, stats.txns),
        (metric::SCHED_WAVES, stats.waves),
        (metric::SCHED_CROSS_SHARD_TXNS, stats.cross_shard_txns),
    ] {
        assert_eq!(
            prom_value(&text, name),
            Some(want as f64),
            "exposition disagrees with SchedStats for {name}"
        );
    }
    assert_eq!(
        prom_labeled_sum(&text, metric::SHARD_TXNS),
        stats.shard_participations as f64,
        "labeled per-shard txn family does not sum to the footprint books"
    );
    assert_eq!(
        prom_labeled_sum(&text, metric::SCHED_TXN_OUTCOMES),
        (stats.committed + stats.aborted) as f64,
        "outcome family does not sum to the dispatched txns"
    );
    assert_eq!(
        prom_labeled_sum(&text, metric::SCHED_WAVE_WIDTHS),
        stats.waves as f64,
        "wave-width family does not sum to the wave count"
    );
    // Every admitted transaction completed: the queue gauges read zero.
    assert_eq!(prom_value(&text, metric::SCHED_QUEUE_DEPTH), Some(0.0));
    assert_eq!(prom_labeled_sum(&text, metric::SCHED_SHARD_QUEUE_DEPTH), 0.0);

    // /statusz: same books through the JSON route, plus liveness fields
    // and the caller-supplied serving section verbatim.
    let (status_line, doc) = get(&addr, "/statusz");
    assert!(status_line.contains("200"), "statusz: {status_line}");
    assert_eq!(json_u64(&doc, "txns"), Some(stats.txns));
    assert_eq!(json_u64(&doc, "waves"), Some(stats.waves));
    assert_eq!(json_u64(&doc, "committed"), Some(stats.committed));
    assert_eq!(json_u64(&doc, "aborted"), Some(stats.aborted));
    assert!(json_u64(&doc, "uptime_ns").is_some_and(|ns| ns > 0));
    assert!(doc.contains("\"probe\": true"), "serving section missing: {doc}");
    assert!(doc.contains("\"drift\""), "drift section missing");
    assert!(doc.contains("\"shards\""), "per-shard section missing");

    // /debug/events: the flight recorder saw the admissions and commits.
    let (status_line, events) = get(&addr, "/debug/events");
    assert!(status_line.contains("200"), "events: {status_line}");
    assert!(events.contains("txn_admitted"), "no admissions recorded: {events}");
    assert!(events.contains("txn_committed"), "no commits recorded: {events}");

    // Unknown routes 404 without killing the server.
    let (status_line, _) = get(&addr, "/nope");
    assert!(status_line.contains("404"), "unknown route: {status_line}");
    let (status_line, _) = get(&addr, "/healthz");
    assert!(status_line.contains("200"), "server died after a 404");
}

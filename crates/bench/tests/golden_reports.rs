//! Representation-change golden test.
//!
//! The data-plane overhaul (inline strings, sharded copy-on-write bags,
//! borrowed-key index probes) must be invisible to the paper's accounting:
//! every per-update `UpdateReport` and the final view contents must match,
//! bit for bit, what the original `Arc<str>` / flat-`HashMap` representation
//! produced. The fixture in `golden/mixed_reports.txt` was generated from
//! that original representation; regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p spacetime-bench --test golden_reports`
//! only when the *workload or schema* changes, never to paper over a
//! representation-induced diff.

use spacetime_bench::workload::{load_paper_data, mixed_workload, paper_schema_db};
use spacetime_ivm::verify_all_views;

const VIEWS: [&str; 4] = [
    "CREATE MATERIALIZED VIEW ProblemDept (DName) AS \
     SELECT Dept.DName FROM Emp, Dept WHERE Dept.DName = Emp.DName \
     GROUP BY Dept.DName, Budget HAVING SUM(Salary) > Budget",
    "CREATE MATERIALIZED VIEW DeptProfile AS \
     SELECT DName, COUNT(*) AS Heads, MAX(Salary) AS TopSal \
     FROM Emp GROUP BY DName",
    "CREATE MATERIALIZED VIEW WellPaid AS \
     SELECT EName, Emp.DName, MName FROM Emp, Dept \
     WHERE Emp.DName = Dept.DName AND Salary > 150",
    "CREATE MATERIALIZED VIEW ActiveDepts AS SELECT DISTINCT DName FROM Emp",
];

const DEPTS: usize = 60;
const EMPS: usize = 6;
const TXNS: usize = 150;
const SEED: u64 = 1234;

fn run() -> String {
    let mut db = paper_schema_db();
    load_paper_data(&mut db, DEPTS, EMPS);
    for view in VIEWS {
        db.execute_sql(view).expect("view DDL");
    }
    let mut out = String::new();
    for (i, (table, delta)) in mixed_workload(DEPTS, EMPS, TXNS, SEED).into_iter().enumerate() {
        let r = db.apply_delta(&table, delta).expect("apply");
        out.push_str(&format!(
            "{i} {table} io={} paper={} posed={} q={} aux={} root={} base={}\n",
            r.total(),
            r.paper_cost(),
            r.queries_posed,
            r.query_io.total(),
            r.aux_io.total(),
            r.root_io.total(),
            r.base_io.total(),
        ));
    }
    assert!(
        verify_all_views(&db).expect("verify").is_empty(),
        "views must match recompute"
    );
    for view in ["ProblemDept", "DeptProfile", "WellPaid", "ActiveDepts"] {
        let data = db.catalog.table(view).expect("view").relation.data().clone();
        out.push_str(&format!("view {view}\n{data}\n"));
    }
    out
}

#[test]
fn mixed_workload_reports_and_views_match_golden() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/mixed_reports.txt");
    let actual = run();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(path)
        .expect("golden fixture missing; run with UPDATE_GOLDEN=1 to create");
    if actual != expected {
        let mismatch = actual
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, e))| a != e);
        match mismatch {
            Some((n, (a, e))) => panic!(
                "golden mismatch at line {}:\n  expected: {e}\n  actual:   {a}",
                n + 1
            ),
            None => panic!(
                "golden length mismatch: expected {} lines, got {}",
                expected.lines().count(),
                actual.lines().count()
            ),
        }
    }
}

//! Property tests for the parallel delta-propagation pipeline: under any
//! random multi-view workload, [`ExecutionMode::Parallel`] must produce
//! **bit-identical** per-transaction reports (charged I/O and posed-query
//! counts included), identical materialized contents (auxiliaries too),
//! and views that verify against recomputation — at any thread count.
//!
//! Tracing runs enabled on both databases throughout, which checks two
//! more properties per transaction: recording a trace never perturbs the
//! maintained state, and the trace's *structural* content (tracks, ops,
//! posed queries, delta sizes, commit targets — everything except
//! wall-clock durations and cache notes) is identical between Sequential
//! and Parallel execution at every pool width.

use std::sync::Arc;

use proptest::prelude::*;

use spacetime_algebra::{AggExpr, AggFunc, CmpOp, ExprNode, ScalarExpr};
use spacetime_bench::workload::{load_paper_data, mixed_workload, paper_schema_db};
use spacetime_ivm::{
    verify_all_views, Database, ExecutionMode, PipelinePool, PropagationMode,
};

const VIEWS: &[&str] = &[
    "CREATE MATERIALIZED VIEW ProblemDept (DName) AS \
     SELECT Dept.DName FROM Emp, Dept WHERE Dept.DName = Emp.DName \
     GROUP BY Dept.DName, Budget HAVING SUM(Salary) > Budget",
    "CREATE MATERIALIZED VIEW DeptProfile AS \
     SELECT DName, COUNT(*) AS Heads, MAX(Salary) AS TopSal \
     FROM Emp GROUP BY DName",
    "CREATE MATERIALIZED VIEW WellPaid AS \
     SELECT EName, Emp.DName, MName FROM Emp, Dept \
     WHERE Emp.DName = Dept.DName AND Salary > 150",
    "CREATE MATERIALIZED VIEW ActiveDepts AS SELECT DISTINCT DName FROM Emp",
];

/// Views plus one multi-rooted engine (two roots above a shared aggregate)
/// so at least one update track has a level of width ≥ 2 — exercising the
/// track-parallel path, not just engine-level fan-out.
fn build_db(departments: usize, emps_per_dept: usize) -> Database {
    let mut db = paper_schema_db();
    db.set_propagation_mode(PropagationMode::Batched);
    load_paper_data(&mut db, departments, emps_per_dept);
    for sql in VIEWS {
        db.execute_sql(sql).unwrap();
    }
    let emp = ExprNode::scan(&db.catalog, "Emp").unwrap();
    let agg = ExprNode::aggregate(
        emp,
        vec![1],
        vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum")],
    )
    .unwrap();
    let payroll = ExprNode::select(
        agg.clone(),
        ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(1), ScalarExpr::lit(0)),
    )
    .unwrap();
    let big_payroll = ExprNode::select(
        agg,
        ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(1), ScalarExpr::lit(500)),
    )
    .unwrap();
    db.create_view_group(vec![
        ("Payroll".to_string(), payroll),
        ("BigPayroll".to_string(), big_payroll),
    ])
    .unwrap();
    db
}

/// Every materialized table (roots and auxiliaries) across all engines.
fn materialized_tables(db: &Database) -> Vec<String> {
    let mut out: Vec<String> = db
        .engines()
        .iter()
        .flat_map(|e| e.materialized.values().cloned())
        .collect();
    out.sort();
    out.dedup();
    out
}

fn assert_pipeline_identical(
    departments: usize,
    emps_per_dept: usize,
    txns: usize,
    seed: u64,
    threads: usize,
) {
    let mut seq = build_db(departments, emps_per_dept);
    let mut par = build_db(departments, emps_per_dept);
    seq.set_tracing(true);
    par.set_tracing(true);
    par.set_execution_mode(ExecutionMode::Parallel);
    par.set_pipeline_pool(Arc::new(PipelinePool::new(threads)));
    for (i, (table, delta)) in mixed_workload(departments, emps_per_dept, txns, seed)
        .into_iter()
        .enumerate()
    {
        let r_seq = seq.apply_delta(&table, delta.clone()).unwrap();
        let r_par = par.apply_delta(&table, delta).unwrap();
        assert_eq!(
            r_seq, r_par,
            "txn {i}: report diverged (I/O or posed queries) at {threads} threads"
        );
        match (seq.last_trace(), par.last_trace()) {
            (Some(a), Some(b)) => assert!(
                a.structural_eq(b),
                "txn {i}: trace structure diverged at {threads} threads\n\
                 --- sequential\n{}\n--- parallel\n{}",
                a.structure_json(),
                b.structure_json()
            ),
            (a, b) => assert_eq!(
                a.is_some(),
                b.is_some(),
                "txn {i}: only one mode recorded a trace at {threads} threads"
            ),
        }
    }
    for name in materialized_tables(&seq) {
        assert_eq!(
            seq.catalog.table(&name).unwrap().relation.data(),
            par.catalog.table(&name).unwrap().relation.data(),
            "materialized table {name} diverged at {threads} threads"
        );
    }
    assert!(verify_all_views(&seq).unwrap().is_empty());
    assert!(verify_all_views(&par).unwrap().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    /// Random workloads, multi-threaded pool: bit-identical to sequential.
    #[test]
    fn parallel_pipeline_matches_sequential(
        departments in 3usize..8,
        emps_per_dept in 2usize..5,
        txns in 10usize..35,
        seed in any::<u64>(),
    ) {
        assert_pipeline_identical(departments, emps_per_dept, txns, seed, 4);
    }

    /// The same property with a one-thread pool: the pipeline degrades to
    /// inline execution (what `RAYON_NUM_THREADS=1` pins CI to) and must
    /// still agree — same code path the driver exercises single-threaded.
    #[test]
    fn parallel_pipeline_matches_sequential_single_thread(
        departments in 3usize..7,
        emps_per_dept in 2usize..5,
        txns in 8usize..25,
        seed in any::<u64>(),
    ) {
        assert_pipeline_identical(departments, emps_per_dept, txns, seed, 1);
    }
}

/// Deterministic smoke version (no proptest shrink noise in CI logs) at a
/// few thread counts, including more threads than engines.
#[test]
fn pipeline_identical_at_fixed_seeds_and_widths() {
    for threads in [2, 8] {
        assert_pipeline_identical(6, 4, 25, 0xC0FFEE, threads);
    }
}

//! Assertion checking under the parallel pipeline.
//!
//! `Assertion::check_planned` gates every transaction on the *planned*
//! root delta, whichever execution mode produced the plan. These tests pin
//! the contract for `ExecutionMode::Parallel` with a multi-engine group
//! sharing the assertion's base relations (Emp/Dept): the violation report
//! — name and witness sample — must be bit-identical to sequential
//! execution at every pool width, the rejected transaction must leave the
//! catalog untouched, and non-violating transactions must produce
//! bit-identical reports.

use std::sync::Arc;

use spacetime_bench::workload::{load_paper_data, mixed_workload, paper_schema_db};
use spacetime_delta::Delta;
use spacetime_ivm::{
    verify_all_views, Database, ExecutionMode, IvmError, PipelinePool, PropagationMode,
};
use spacetime_storage::{tuple, Bag};

const WIDTHS: &[usize] = &[1, 2, 4, 8];

/// The assertion plus several views over the same base relations, so the
/// planning fan-out has engines both with and without assertion backing.
fn build_db() -> Database {
    let mut db = paper_schema_db();
    db.set_propagation_mode(PropagationMode::Batched);
    load_paper_data(&mut db, 6, 4);
    db.execute_sql(
        "CREATE MATERIALIZED VIEW DeptProfile AS \
         SELECT DName, COUNT(*) AS Heads, MAX(Salary) AS TopSal \
         FROM Emp GROUP BY DName",
    )
    .unwrap();
    db.execute_sql(
        "CREATE MATERIALIZED VIEW WellPaid AS \
         SELECT EName, Emp.DName, MName FROM Emp, Dept \
         WHERE Emp.DName = Dept.DName AND Salary > 150",
    )
    .unwrap();
    db.execute_sql(
        "CREATE ASSERTION DeptConstraint CHECK (NOT EXISTS ( \
            SELECT Dept.DName FROM Emp, Dept \
            WHERE Dept.DName = Emp.DName \
            GROUP BY Dept.DName, Budget \
            HAVING SUM(Salary) > Budget))",
    )
    .unwrap();
    db
}

fn parallel_db(threads: usize) -> Database {
    let mut db = build_db();
    db.set_execution_mode(ExecutionMode::Parallel);
    db.set_pipeline_pool(Arc::new(PipelinePool::new(threads)));
    db
}

fn contents(db: &Database) -> Vec<(String, Bag)> {
    db.catalog
        .iter()
        .map(|(n, t)| (n.to_string(), t.relation.data().clone()))
        .collect()
}

/// A salary raise that pushes dept00002 over its budget (4 x 200 = 800).
fn violating_delta() -> Delta {
    Delta::modify(
        tuple!["emp00002_0", "dept00002", 100],
        tuple!["emp00002_0", "dept00002", 9_999],
        1,
    )
}

fn violation_of(db: &mut Database) -> (String, Vec<String>) {
    let before = contents(db);
    let err = db.apply_delta("Emp", violating_delta()).unwrap_err();
    let IvmError::AssertionViolated { name, sample } = err else {
        panic!("expected AssertionViolated, got: {err}");
    };
    assert_eq!(contents(db), before, "rejected txn must not write");
    (name, sample)
}

#[test]
fn violation_report_is_identical_across_modes_and_widths() {
    let mut seq = build_db();
    let expected = violation_of(&mut seq);
    assert_eq!(expected.0, "DeptConstraint");
    assert!(
        !expected.1.is_empty(),
        "the violation must carry witness tuples"
    );
    for &threads in WIDTHS {
        let mut par = parallel_db(threads);
        let got = violation_of(&mut par);
        assert_eq!(
            got, expected,
            "violation name/witnesses diverged at {threads} threads"
        );
    }
}

#[test]
fn transactions_gated_by_assertions_report_identically() {
    // A mixed stream against an assertion-guarded database: most
    // transactions pass the gate, the occasional budget cut trips it. In
    // *either* case every width must agree with sequential execution —
    // same report when accepted, same error when rejected, and a rejected
    // transaction writes nothing in any mode.
    let txns = mixed_workload(6, 4, 12, 0xA55E27);
    for &threads in WIDTHS {
        let mut seq = build_db();
        let mut par = parallel_db(threads);
        for (i, (table, delta)) in txns.iter().enumerate() {
            let before = contents(&par);
            let r_seq = seq.apply_delta(table, delta.clone());
            let r_par = par.apply_delta(table, delta.clone());
            match (r_seq, r_par) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "txn {i} report diverged at {threads} threads")
                }
                (Err(a), Err(b)) => {
                    assert_eq!(
                        a.to_string(),
                        b.to_string(),
                        "txn {i} error diverged at {threads} threads"
                    );
                    assert_eq!(contents(&par), before, "rejected txn wrote at {threads} threads");
                }
                (a, b) => panic!("txn {i} at {threads} threads: outcomes diverged: {a:?} vs {b:?}"),
            }
        }
        assert_eq!(contents(&seq), contents(&par));
        assert!(verify_all_views(&par).unwrap().is_empty());
        assert!(verify_all_views(&seq).unwrap().is_empty());
    }
}

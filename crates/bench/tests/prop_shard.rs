//! Property tests for sharded concurrent serving: under any random
//! workload, any shard count, and any scheduler pool width,
//! [`TxnScheduler::run`] must be **bit-identical** to its serial replay
//! ([`TxnScheduler::run_serial`]) in every per-transaction report and
//! every table of every shard — the determinism invariant — and the
//! shard union of every base and materialized table must equal an
//! unsharded control database fed the same transactions in admission
//! order (the shard-locality contract).
//!
//! At one shard the scheduler degenerates to the unsharded database and
//! must reproduce its reports *exactly*, charged I/O included. At more
//! shards the contents still match but per-shard I/O counts legitimately
//! differ (smaller tables), so only Ok/Err alignment is asserted.

use std::sync::Arc;

use proptest::prelude::*;

use spacetime_bench::workload::{load_paper_data, mixed_workload, paper_schema_db};
use spacetime_ivm::{
    Database, IvmError, PipelinePool, PropagationMode, ShardedDatabase, Txn, TxnScheduler,
};
use spacetime_storage::ShardSpec;

const VIEWS: &[&str] = &[
    "CREATE MATERIALIZED VIEW ProblemDept (DName) AS \
     SELECT Dept.DName FROM Emp, Dept WHERE Dept.DName = Emp.DName \
     GROUP BY Dept.DName, Budget HAVING SUM(Salary) > Budget",
    "CREATE MATERIALIZED VIEW DeptProfile AS \
     SELECT DName, COUNT(*) AS Heads, MAX(Salary) AS TopSal \
     FROM Emp GROUP BY DName",
    "CREATE MATERIALIZED VIEW WellPaid AS \
     SELECT EName, Emp.DName, MName FROM Emp, Dept \
     WHERE Emp.DName = Dept.DName AND Salary > 150",
    "CREATE MATERIALIZED VIEW ActiveDepts AS SELECT DISTINCT DName FROM Emp",
];

/// Emp sharded by DName (column 1), Dept by DName (column 0): every view
/// joins or groups on DName, so partitioned serving is exact.
fn shard_spec() -> ShardSpec {
    ShardSpec::new().with("Emp", vec![1]).with("Dept", vec![0])
}

fn build_db(departments: usize, emps_per_dept: usize) -> Database {
    let mut db = paper_schema_db();
    db.set_propagation_mode(PropagationMode::Batched);
    load_paper_data(&mut db, departments, emps_per_dept);
    for sql in VIEWS {
        db.execute_sql(sql).unwrap();
    }
    db
}

/// Every materialized table (roots and auxiliaries) across all engines.
fn materialized_tables(db: &Database) -> Vec<String> {
    let mut out: Vec<String> = db
        .engines()
        .iter()
        .flat_map(|e| e.materialized.values().cloned())
        .collect();
    out.sort();
    out.dedup();
    out
}

fn assert_serving_identical(
    departments: usize,
    emps_per_dept: usize,
    n_txns: usize,
    seed: u64,
    n_shards: usize,
    width: usize,
) {
    let template = build_db(departments, emps_per_dept);
    let txns: Vec<Txn> = mixed_workload(departments, emps_per_dept, n_txns, seed)
        .into_iter()
        .map(|(table, delta)| vec![(table, delta)])
        .collect();

    // The unsharded control: same transactions, admission order. Tracing
    // is on everywhere in this sweep — every determinism assert below
    // doubles as proof that span collection never perturbs reports or
    // contents.
    let mut control = template.clone();
    control.set_tracing(true);
    let mut ctrl_traces = Vec::with_capacity(txns.len());
    let ctrl_reports: Vec<_> = txns
        .iter()
        .map(|txn| {
            let r = control.apply_transaction(txn.clone());
            ctrl_traces.push(control.take_trace());
            r
        })
        .collect();

    let mut sharded = ShardedDatabase::partition(&template, shard_spec(), n_shards).unwrap();
    sharded.set_tracing(true);
    let out = TxnScheduler::new(&sharded, Arc::new(PipelinePool::new(width)))
        .run(&txns)
        .unwrap();
    let mut replayed = ShardedDatabase::partition(&template, shard_spec(), n_shards).unwrap();
    replayed.set_tracing(true);
    let replay = TxnScheduler::new(&replayed, Arc::new(PipelinePool::new(1)))
        .run_serial(&txns)
        .unwrap();

    let ctx = format!("{n_shards} shard(s), width {width}, seed {seed}");
    // Determinism: slot-by-slot bit-identical reports against the serial
    // replay, and every table of every shard identical.
    for (i, (a, b)) in out.results.iter().zip(replay.results.iter()).enumerate() {
        match (a, b) {
            (Ok(ra), Ok(rb)) => assert_eq!(ra, rb, "txn {i}: report diverged ({ctx})"),
            (Err(_), Err(_)) => {}
            _ => panic!("txn {i}: Ok/Err diverged between concurrent run and replay ({ctx})"),
        }
    }
    for s in 0..n_shards {
        let a = sharded.shard(s);
        let b = replayed.shard(s);
        for (name, table) in a.catalog.iter() {
            assert_eq!(
                table.relation.data(),
                b.catalog.table(name).unwrap().relation.data(),
                "shard {s} table {name} diverged under serial replay ({ctx})"
            );
        }
    }

    // Against the unsharded control: success alignment always, exact
    // reports in the one-shard degenerate case.
    for (i, (r, c)) in out.results.iter().zip(ctrl_reports.iter()).enumerate() {
        assert_eq!(
            r.is_ok(),
            c.is_ok(),
            "txn {i}: sharded and unsharded disagreed on success ({ctx})"
        );
        if n_shards == 1 {
            if let (Ok(r), Ok(c)) = (r, c) {
                assert_eq!(r, c, "txn {i}: one-shard report diverged from control ({ctx})");
            }
        }
    }
    // The shard-locality contract: every base and materialized table's
    // shard union equals the control's contents.
    let mut names: Vec<String> = vec!["Emp".into(), "Dept".into()];
    names.extend(materialized_tables(&control));
    for name in &names {
        assert_eq!(
            &sharded.union_table(name).unwrap(),
            control.catalog.table(name).unwrap().relation.data(),
            "shard union of {name} diverged from the unsharded control ({ctx})"
        );
    }
    assert!(
        sharded.verify_all_shards().unwrap().is_empty(),
        "a shard diverged from recomputation ({ctx})"
    );

    // Span determinism: a committed transaction's span is structurally
    // identical between the concurrent run and the serial replay at any
    // pool width (wall clocks and notes are non-structural), and every
    // committed slot carries a span.
    for (i, (a, b)) in out.traces.iter().zip(replay.traces.iter()).enumerate() {
        assert_eq!(
            a.is_some(),
            out.results[i].is_ok(),
            "txn {i}: committed slots must carry a span, failed slots must not ({ctx})"
        );
        if let (Some(a), Some(b)) = (a, b) {
            assert!(
                a.structural_eq(b),
                "txn {i}: concurrent span diverged from the replay span ({ctx})"
            );
        }
    }
    // At one shard the sharded span *is* the unsharded transaction span:
    // the serving layer may annotate (notes) but not restructure.
    if n_shards == 1 {
        for (i, (t, c)) in out.traces.iter().zip(ctrl_traces.iter()).enumerate() {
            assert_eq!(
                t.is_some(),
                c.is_some(),
                "txn {i}: one-shard span presence diverged from the control ({ctx})"
            );
            if let (Some(t), Some(c)) = (t, c) {
                assert!(
                    t.structural_eq(c),
                    "txn {i}: one-shard span diverged from the unsharded trace ({ctx})\n\
                     sharded: {}\ncontrol: {}",
                    t.structure_json(),
                    c.structure_json(),
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 5,
        ..ProptestConfig::default()
    })]

    /// Random workloads x shard counts x pool widths: concurrent serving
    /// is bit-identical to serial replay and exact against the control.
    #[test]
    fn sharded_serving_matches_serial_replay_and_control(
        departments in 3usize..8,
        emps_per_dept in 2usize..5,
        n_txns in 8usize..25,
        seed in any::<u64>(),
        n_shards in 1usize..5,
        width_exp in 0u32..4,
    ) {
        // Pool widths 1/2/4/8.
        assert_serving_identical(departments, emps_per_dept, n_txns, seed, n_shards, 1 << width_exp);
    }
}

/// Deterministic smoke version (no proptest shrink noise in CI logs)
/// sweeping every pool width at a fixed seed — the cell CI reruns under
/// `RAYON_NUM_THREADS=1` for the scheduler-determinism leg.
#[test]
fn sharded_serving_identical_at_fixed_seeds_and_widths() {
    for (n_shards, width) in [(1, 1), (2, 2), (3, 4), (4, 8)] {
        assert_serving_identical(6, 4, 20, 0xC0FFEE, n_shards, width);
    }
}

/// A transaction that violates an integrity assertion must fail in the
/// same slot under concurrent serving, serial replay, and the unsharded
/// control — and a *cross-shard* violator must leave every shard
/// bit-identical to its pre-transaction state (the commit protocol rolls
/// back the shards that committed before the violating one).
#[test]
fn assertion_violations_align_across_serving_modes() {
    let mut template = build_db(6, 3);
    template
        .execute_sql(
            "CREATE ASSERTION DeptConstraint CHECK (NOT EXISTS ( \
                SELECT Dept.DName FROM Emp, Dept \
                WHERE Dept.DName = Emp.DName \
                GROUP BY Dept.DName, Budget \
                HAVING SUM(Salary) > Budget))",
        )
        .unwrap();

    let raise = |dept: usize, to: i64| {
        let mut d = spacetime_delta::Delta::new();
        d.push_modify(
            spacetime_storage::tuple![
                format!("emp{dept:05}_0"),
                format!("dept{dept:05}"),
                100_i64
            ],
            spacetime_storage::tuple![format!("emp{dept:05}_0"), format!("dept{dept:05}"), to],
            1,
        );
        d
    };
    // Budgets are emps*200 = 600, per-dept salary sum starts at 300: a
    // raise to 180 passes (380), a raise to 1000 violates (1200).
    let benign: Txn = vec![("Emp".to_string(), raise(1, 180))];
    let violator_one_shard: Txn = vec![("Emp".to_string(), raise(0, 1000))];
    // Departments 2..6 are untouched by the other transactions, so the
    // cross-shard violator's `old` tuples are never stale.
    let violator_cross_shard: Txn = {
        let mut d = spacetime_delta::Delta::new();
        for dept in 2..6 {
            d.merge(raise(dept, 1000));
        }
        vec![("Emp".to_string(), d)]
    };
    // Undo the benign raise afterwards (180 back to 100).
    let unraise: Txn = {
        let mut d = spacetime_delta::Delta::new();
        d.push_modify(
            spacetime_storage::tuple!["emp00001_0", "dept00001", 180_i64],
            spacetime_storage::tuple!["emp00001_0", "dept00001", 100_i64],
            1,
        );
        vec![("Emp".to_string(), d)]
    };
    let txns = vec![benign, violator_one_shard, violator_cross_shard, unraise];

    let mut control = template.clone();
    let ctrl_ok: Vec<bool> = txns
        .iter()
        .map(|txn| control.apply_transaction(txn.clone()).is_ok())
        .collect();
    assert_eq!(ctrl_ok, vec![true, false, false, true], "fixture mis-built");

    for (n_shards, width) in [(1, 2), (3, 2), (4, 4)] {
        let sharded = ShardedDatabase::partition(&template, shard_spec(), n_shards).unwrap();
        let out = TxnScheduler::new(&sharded, Arc::new(PipelinePool::new(width)))
            .run(&txns)
            .unwrap();
        let replayed = ShardedDatabase::partition(&template, shard_spec(), n_shards).unwrap();
        let replay = TxnScheduler::new(&replayed, Arc::new(PipelinePool::new(1)))
            .run_serial(&txns)
            .unwrap();
        for (i, ok) in ctrl_ok.iter().enumerate() {
            assert_eq!(
                out.results[i].is_ok(),
                *ok,
                "txn {i}: sharded outcome diverged from control ({n_shards} shards)"
            );
            assert_eq!(
                replay.results[i].is_ok(),
                *ok,
                "txn {i}: replay outcome diverged from control ({n_shards} shards)"
            );
            if !*ok {
                assert!(
                    matches!(&out.results[i], Err(IvmError::AssertionViolated { .. })),
                    "txn {i}: expected AssertionViolated ({n_shards} shards)"
                );
            }
        }
        // The violators rolled back across the whole footprint: the
        // final union matches the control (which also rejected them).
        let mut names: Vec<String> = vec!["Emp".into(), "Dept".into()];
        names.extend(materialized_tables(&control));
        for name in &names {
            assert_eq!(
                &sharded.union_table(name).unwrap(),
                control.catalog.table(name).unwrap().relation.data(),
                "shard union of {name} diverged after violations ({n_shards} shards)"
            );
        }
        assert!(sharded.verify_all_shards().unwrap().is_empty());
    }
}

/// Regression: a dispatch-site panic (`ivm::pool_dispatch`) that kills
/// one transaction mid-wave must leave every other shard's work
/// untouched — the pool survives, the panicked transaction's shards are
/// bit-identical to never having run it, and the final state matches a
/// no-fault serial run of the surviving transactions.
#[cfg(feature = "failpoints")]
#[test]
fn mid_wave_dispatch_panic_leaves_other_shards_untouched() {
    use spacetime_storage::fault::{self, FaultPlan};

    // Silence the injected panic's default hook output.
    {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let msg = info.payload().downcast_ref::<String>().cloned().or_else(|| {
                    info.payload().downcast_ref::<&str>().map(|s| s.to_string())
                });
                if msg.is_some_and(|m| m.contains("injected panic at ")) {
                    return;
                }
                prev(info);
            }));
        });
    }
    let _serial = fault::serial_guard();

    let template = build_db(4, 3);
    let txns: Vec<Txn> = mixed_workload(4, 3, 8, 31)
        .into_iter()
        .map(|(table, delta)| vec![(table, delta)])
        .collect();
    let n_shards = 4;

    let sharded = ShardedDatabase::partition(&template, shard_spec(), n_shards).unwrap();
    let out = {
        let _guard = fault::install(FaultPlan::new().panic_at("ivm::pool_dispatch", 1));
        TxnScheduler::new(&sharded, Arc::new(PipelinePool::new(4)))
            .run(&txns)
            .unwrap()
    };
    let panicked: Vec<usize> = out
        .results
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r, Err(IvmError::TaskPanicked { .. })))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(panicked.len(), 1, "exactly one transaction hit the panic");
    let j = panicked[0];

    // A no-fault serial control fed everything except the killed
    // transaction: the concurrent wave's survivors must have produced
    // exactly this state.
    let surviving: Vec<Txn> = txns
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != j)
        .map(|(_, t)| t.clone())
        .collect();
    let control = ShardedDatabase::partition(&template, shard_spec(), n_shards).unwrap();
    let ctrl = TxnScheduler::new(&control, Arc::new(PipelinePool::new(1)))
        .run_serial(&surviving)
        .unwrap();
    for (slot, i) in (0..txns.len()).filter(|&i| i != j).enumerate() {
        assert_eq!(
            out.results[i].is_ok(),
            ctrl.results[slot].is_ok(),
            "txn {i}: survivor outcome diverged from the no-fault control"
        );
    }
    for s in 0..n_shards {
        let a = sharded.shard(s);
        let b = control.shard(s);
        for (name, table) in a.catalog.iter() {
            assert_eq!(
                table.relation.data(),
                b.catalog.table(name).unwrap().relation.data(),
                "shard {s} table {name} diverged after a mid-wave panic"
            );
        }
    }
    assert!(sharded.verify_all_shards().unwrap().is_empty());
}

//! Real crash-stop recovery: a child process is SIGKILLed mid-commit
//! and the database must come back bit-identical to a committed prefix.
//!
//! Unlike `prop_wal.rs` (which *simulates* crashes by mutilating log
//! bytes), this test spawns `src/bin/crash_child.rs`, drives it over a
//! stdin/stdout `go`/`ACK` protocol, and kills it with SIGKILL right
//! after handing it one more transaction than it has acknowledged. The
//! default `SyncPolicy::Flush` writes every commit into the OS page
//! cache before the ACK, and SIGKILL does not drop the page cache — so
//! recovery must land on exactly `acked` or `acked + 1` transactions
//! (the in-flight one either reached the log or it did not), and the
//! recompute oracle must find every materialized view consistent.

#![cfg(feature = "durability")]

use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::process::{Child, Command, Stdio};

use spacetime_bench::workload::{crash_fixture_db, crash_fixture_txn};
use spacetime_ivm::{verify_all_views, Database};
use spacetime_wal::test_dir;

/// The fixture state after the first `n` crash transactions, built
/// entirely in memory (no WAL) — the recovery ground truth.
fn control(n: usize) -> Database {
    let mut db = crash_fixture_db();
    for i in 0..n {
        db.apply_transaction(crash_fixture_txn(i)).unwrap();
    }
    db
}

fn assert_db_eq(a: &Database, b: &Database, ctx: &str) {
    let names_a: Vec<&str> = a.catalog.iter().map(|(n, _)| n).collect();
    let names_b: Vec<&str> = b.catalog.iter().map(|(n, _)| n).collect();
    assert_eq!(names_a, names_b, "table sets diverged ({ctx})");
    for (name, t) in a.catalog.iter() {
        assert_eq!(
            t.relation.data(),
            b.catalog.table(name).unwrap().relation.data(),
            "table {name} diverged ({ctx})"
        );
    }
}

struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawn the victim, let it ack `acked` transactions, hand it one more,
/// and SIGKILL it without waiting for the ack.
fn run_victim(dir: &Path, acked: usize) {
    let child = Command::new(env!("CARGO_BIN_EXE_crash_child"))
        .arg(dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn crash_child");
    let mut child = ChildGuard(child);
    let mut stdin = child.0.stdin.take().unwrap();
    let mut lines = BufReader::new(child.0.stdout.take().unwrap()).lines();

    let ready = lines.next().expect("child exited early").unwrap();
    assert_eq!(ready, "READY");

    for i in 0..acked {
        writeln!(stdin, "go").unwrap();
        stdin.flush().unwrap();
        let ack = lines.next().expect("child died before ack").unwrap();
        assert_eq!(ack, format!("ACK {i}"));
    }

    // One more transaction in flight: kill without reading its ack.
    writeln!(stdin, "go").unwrap();
    stdin.flush().unwrap();
    child.0.kill().expect("kill -9 child");
    child.0.wait().unwrap();
}

#[test]
fn sigkill_mid_commit_recovers_an_acked_prefix() {
    for acked in [0usize, 3, 7] {
        let dir = test_dir(&format!("crash_kill_{acked}"));
        run_victim(&dir, acked);

        let (dur, stats) = Database::open(&dir).expect("recovery after SIGKILL");
        let recovered = dur.into_db();

        // Every acked transaction is durable; the in-flight one either
        // committed to the log before the kill or it did not.
        assert!(
            stats.replayed_txns as usize <= acked + 1,
            "replayed more transactions than were ever submitted: {stats:?}"
        );
        let full = control(acked + 1);
        let matches_full = recovered
            .catalog
            .table("Emp")
            .unwrap()
            .relation
            .data()
            .len()
            == full.catalog.table("Emp").unwrap().relation.data().len();
        let expect = if matches_full { acked + 1 } else { acked };
        assert_db_eq(&recovered, &control(expect), &format!("acked={acked} expect={expect}"));

        let mismatches = verify_all_views(&recovered).unwrap();
        assert!(
            mismatches.is_empty(),
            "oracle found stale views after SIGKILL recovery: {mismatches:?}"
        );

        // The recovered database stays serviceable: apply the rest of
        // the tail and check against a full-history control.
        let mut recovered = recovered;
        for i in expect..acked + 2 {
            recovered.apply_transaction(crash_fixture_txn(i)).unwrap();
        }
        assert_db_eq(
            &recovered,
            &control(acked + 2),
            &format!("retry after SIGKILL, acked={acked}"),
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
}

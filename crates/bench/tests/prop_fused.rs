//! Property tests pinning the fused streaming kernels against the
//! per-operator propagation rules and the materializing evaluator.
//!
//! Two layers:
//!
//! 1. **Kernel vs stepwise** — random `Select`/`Project` chains over
//!    random deltas (multi-row deletes and modify pairs included) must
//!    produce **bit-identical** output deltas whether pushed through a
//!    compiled [`FusedProgram`] in one pass or folded through
//!    [`propagate`] one operator at a time. Chains pose no queries in
//!    either form, which the test also asserts.
//!
//! 2. **Database vs oracle** — random operator trees (a select→project
//!    chain view, plus a join→aggregate engine with a HAVING-style chain
//!    *above* the aggregate, shared by two roots) maintained under
//!    [`PropagationMode::PerKey`], `Batched`, and `Fused` must agree on
//!    every per-transaction [`UpdateReport`] (charged I/O and posed
//!    queries included) and on final materialized contents, and all
//!    three must verify against full recomputation — the materializing
//!    evaluator is the oracle the fused path can never drift from.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spacetime_algebra::{
    AggExpr, AggFunc, BinOp, CmpOp, ExprNode, FusedProgram, OpKind, ScalarExpr,
};
use spacetime_bench::workload::{load_paper_data, mixed_workload, paper_schema_db};
use spacetime_delta::{propagate, propagate_chain, BagAccess, Delta};
use spacetime_ivm::{verify_all_views, Database, PropagationMode};
use spacetime_storage::{tuple, Column, DataType, Schema, Tuple, Value};

// ---------------------------------------------------------------------
// Layer 1: compiled chain kernels vs folding `propagate` per operator
// ---------------------------------------------------------------------

/// A random access-free chain: 1..=5 `Select`/`Project` ops, each valid
/// over the schema the previous op produced (projections change arity).
fn random_chain(rng: &mut StdRng, mut arity: usize) -> Vec<OpKind> {
    let n = rng.gen_range(1..6);
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        if rng.gen_range(0..2) == 0 {
            let cmp = [CmpOp::Gt, CmpOp::Lt, CmpOp::Eq, CmpOp::Ne][rng.gen_range(0..4)];
            ops.push(OpKind::Select {
                predicate: ScalarExpr::cmp(
                    cmp,
                    ScalarExpr::col(rng.gen_range(0..arity)),
                    ScalarExpr::lit(rng.gen_range(-3..10_i64)),
                ),
            });
        } else {
            let width = rng.gen_range(1..4);
            let exprs = (0..width)
                .map(|i| {
                    let col = ScalarExpr::col(rng.gen_range(0..arity));
                    let e = if rng.gen_range(0..2) == 0 {
                        col
                    } else {
                        let op = if rng.gen_range(0..2) == 0 { BinOp::Add } else { BinOp::Mul };
                        ScalarExpr::bin(op, col, ScalarExpr::lit(rng.gen_range(0..4_i64)))
                    };
                    (e, format!("c{i}"))
                })
                .collect();
            ops.push(OpKind::Project { exprs });
            arity = width;
        }
    }
    ops
}

/// A random delta over `arity` integer columns: several inserts, several
/// deletes (multi-row, with multiplicities), and a few modify pairs drawn
/// from a small value domain so filters genuinely split pairs.
fn random_delta(rng: &mut StdRng, arity: usize) -> Delta {
    fn row(rng: &mut StdRng, arity: usize) -> Tuple {
        (0..arity)
            .map(|_| Value::from(rng.gen_range(-3..10_i64)))
            .collect()
    }
    let mut d = Delta::new();
    for _ in 0..rng.gen_range(1..5) {
        d.inserts.insert(row(rng, arity), rng.gen_range(1..4));
    }
    for _ in 0..rng.gen_range(1..5) {
        d.deletes.insert(row(rng, arity), rng.gen_range(1..4));
    }
    for _ in 0..rng.gen_range(0..4) {
        d.push_modify(row(rng, arity), row(rng, arity), rng.gen_range(1..4));
    }
    d
}

fn int_schema(arity: usize) -> Schema {
    Schema::new(
        (0..arity)
            .map(|i| Column::bare(format!("i{i}"), DataType::Int))
            .collect(),
    )
}

fn chain_case(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let arity = rng.gen_range(1..5);
    let ops = random_chain(&mut rng, arity);
    let delta = random_delta(&mut rng, arity);

    // Stepwise reference: fold `propagate` over each chain operator,
    // materializing an intermediate delta per stage. Chains never probe
    // their inputs, so an empty access suffices — and must stay unposed.
    let mut node = Arc::new(ExprNode {
        op: OpKind::Scan { table: "T".into() },
        children: vec![],
        schema: int_schema(arity),
    });
    let mut stepwise = delta.clone();
    for op in &ops {
        node = ExprNode::build(op.clone(), vec![node]).expect("chain op over valid schema");
        let mut access = BagAccess::default();
        stepwise = propagate(&node, 0, &stepwise, &mut access).unwrap();
        assert_eq!(access.queries_posed, 0, "a chain op posed a query");
    }

    // Fused: the whole chain in one streaming pass off the base delta.
    let prog = FusedProgram::compile(&ops).expect("select/project chains always compile");
    let fused = propagate_chain(&prog, &delta).unwrap();

    assert_eq!(
        fused, stepwise,
        "fused kernel diverged from stepwise propagation\nchain: {ops:?}\ninput: {delta:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        ..ProptestConfig::default()
    })]

    /// Random chains x random deltas: fused == stepwise, bit for bit.
    #[test]
    fn fused_chain_matches_stepwise_propagate(seed in any::<u64>()) {
        chain_case(seed);
    }
}

// ---------------------------------------------------------------------
// Layer 2: whole databases over random operator trees
// ---------------------------------------------------------------------

/// Paper schema + data, with two engines built from raw operator trees:
///
/// * `ChainView` — σ(Salary > thr) then a computed projection: a pure
///   access-free chain, fully fused under [`PropagationMode::Fused`];
/// * a two-rooted group over Emp ⋈ Dept → aggregate, where one root adds
///   a HAVING-style select *plus* a projection above the aggregate — a
///   chain in the middle of the DAG whose interior delta the fused path
///   skips when nothing else consumes it.
fn build_tree_db(
    mode: PropagationMode,
    thr: i64,
    agg_pick: u8,
    having: i64,
) -> Database {
    let mut db = paper_schema_db();
    db.set_propagation_mode(mode);
    load_paper_data(&mut db, 4, 3);

    let emp = ExprNode::scan(&db.catalog, "Emp").unwrap();
    let sel = ExprNode::select(
        emp.clone(),
        ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(2), ScalarExpr::lit(thr)),
    )
    .unwrap();
    let proj = ExprNode::project(
        sel,
        vec![
            (ScalarExpr::col(0), "EName".into()),
            (
                ScalarExpr::bin(BinOp::Mul, ScalarExpr::col(2), ScalarExpr::lit(2)),
                "Double".into(),
            ),
        ],
    )
    .unwrap();
    db.create_materialized_view("ChainView", proj).unwrap();

    let emp = ExprNode::scan(&db.catalog, "Emp").unwrap();
    let dept = ExprNode::scan(&db.catalog, "Dept").unwrap();
    let joined = ExprNode::join_on(emp, dept, &[("DName", "DName")]).unwrap();
    let agg = match agg_pick % 3 {
        0 => AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "V"),
        1 => AggExpr::count_star("V"),
        _ => AggExpr::new(AggFunc::Max, ScalarExpr::col(2), "V"),
    };
    let grouped = ExprNode::aggregate(joined, vec![1], vec![agg]).unwrap();
    let all = ExprNode::project_cols(grouped.clone(), &[0, 1]).unwrap();
    let high = ExprNode::select(
        grouped,
        ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(1), ScalarExpr::lit(having)),
    )
    .unwrap();
    let high = ExprNode::project(
        high,
        vec![
            (ScalarExpr::col(0), "DName".into()),
            (
                ScalarExpr::bin(BinOp::Add, ScalarExpr::col(1), ScalarExpr::lit(0)),
                "V".into(),
            ),
        ],
    )
    .unwrap();
    db.create_view_group(vec![("AggAll".to_string(), all), ("AggHigh".to_string(), high)])
        .unwrap();
    db
}

/// Every materialized table (roots and auxiliaries) across all engines.
fn materialized_tables(db: &Database) -> Vec<String> {
    let mut out: Vec<String> = db
        .engines()
        .iter()
        .flat_map(|e| e.materialized.values().cloned())
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Transactions with multiple rows per delta, in a namespace disjoint
/// from the generated workload: a 3-row insert, a 2-pair modify, and a
/// single delta deleting all 3 rows at once.
fn multi_row_txns() -> Vec<(String, Delta)> {
    let mut ins = Delta::new();
    for i in 0..3_i64 {
        ins.inserts
            .insert(tuple![format!("zz_{i}"), "dept00001", 140 + i], 1);
    }
    let mut modify = Delta::new();
    modify.push_modify(
        tuple!["zz_0", "dept00001", 140_i64],
        tuple!["zz_0", "dept00001", 200_i64],
        1,
    );
    modify.push_modify(
        tuple!["zz_1", "dept00001", 141_i64],
        tuple!["zz_1", "dept00001", 90_i64],
        1,
    );
    let mut del = Delta::new();
    del.deletes.insert(tuple!["zz_0", "dept00001", 200_i64], 1);
    del.deletes.insert(tuple!["zz_1", "dept00001", 90_i64], 1);
    del.deletes.insert(tuple!["zz_2", "dept00001", 142_i64], 1);
    vec![
        ("Emp".to_string(), ins),
        ("Emp".to_string(), modify),
        ("Emp".to_string(), del),
    ]
}

fn tree_case(thr: i64, agg_pick: u8, having: i64, seed: u64) {
    let mut pk = build_tree_db(PropagationMode::PerKey, thr, agg_pick, having);
    let mut ba = build_tree_db(PropagationMode::Batched, thr, agg_pick, having);
    let mut fu = build_tree_db(PropagationMode::Fused, thr, agg_pick, having);
    let mut txns = mixed_workload(4, 3, 25, seed);
    txns.extend(multi_row_txns());
    for (i, (table, delta)) in txns.into_iter().enumerate() {
        let r_pk = pk.apply_delta(&table, delta.clone()).unwrap();
        let r_ba = ba.apply_delta(&table, delta.clone()).unwrap();
        let r_fu = fu.apply_delta(&table, delta).unwrap();
        assert_eq!(r_pk, r_ba, "txn {i}: per-key vs batched report diverged");
        assert_eq!(
            r_ba, r_fu,
            "txn {i}: fused report diverged (I/O or posed queries)"
        );
    }
    for name in materialized_tables(&pk) {
        let want = pk.catalog.table(&name).unwrap().relation.data();
        assert_eq!(
            want,
            ba.catalog.table(&name).unwrap().relation.data(),
            "batched contents diverged for {name}"
        );
        assert_eq!(
            want,
            fu.catalog.table(&name).unwrap().relation.data(),
            "fused contents diverged for {name}"
        );
    }
    // The materializing evaluator is the oracle: every mode's maintained
    // views must equal a from-scratch recomputation.
    for db in [&pk, &ba, &fu] {
        assert!(verify_all_views(db).unwrap().is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 5,
        ..ProptestConfig::default()
    })]

    /// Random tree parameters x random workloads (plus multi-row delete
    /// transactions): per-key, batched, and fused agree transaction by
    /// transaction and verify against recomputation.
    #[test]
    fn fused_database_matches_perkey_and_oracle(
        thr in 80_i64..200,
        agg_pick in 0_u8..3,
        having in 1_i64..400,
        seed in any::<u64>(),
    ) {
        tree_case(thr, agg_pick, having, seed);
    }
}

//! The deterministic fault-injection harness (requires `--features
//! failpoints`).
//!
//! Sweeps every failpoint site in `spacetime_storage::fault::SITES` across
//! every supported action (typed error / injected panic), hit thresholds,
//! and execution shapes (Sequential, Parallel at pool widths 1/2/4/8),
//! asserting the all-or-nothing contract each time:
//!
//! * a transaction interrupted by a fault leaves every catalog table
//!   **bit-identical** to its pre-transaction state, with
//!   `Database::integrity_check` clean;
//! * an injected panic surfaces as `IvmError::TaskPanicked` (contained by
//!   the pool — the process, the workers, and the catalog all survive);
//! * retrying after clearing the fault produces exactly the report and
//!   contents an unfaulted run produces.
//!
//! Fault plans are process-global, so every test here holds
//! `fault::serial_guard()` for its whole body.

#![cfg(feature = "failpoints")]

use std::sync::Arc;

use spacetime_bench::workload::{load_paper_data, mixed_workload, paper_schema_db};
use spacetime_delta::Delta;
use spacetime_ivm::{
    verify_all_views, Database, ExecutionMode, IvmError, PipelinePool, PropagationMode,
    ShardedDatabase, Txn, TxnScheduler, UpdateReport,
};
use spacetime_storage::fault::{self, FaultAction, FaultPlan, SITES};
use spacetime_storage::{Bag, ShardSpec};

/// Quiet the default panic hook for injected panics: the sweep triggers
/// dozens of *expected* panics, whose backtraces would drown the test log.
/// Real (unexpected) panics still print through the chained hook.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info.payload().downcast_ref::<String>().cloned().or_else(|| {
                info.payload().downcast_ref::<&str>().map(|s| s.to_string())
            });
            if msg.is_some_and(|m| m.contains("injected panic at ")) {
                return;
            }
            prev(info);
        }));
    });
}

/// How transactions execute in one sweep cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    Sequential,
    Parallel(usize),
}

const SHAPES: &[Shape] = &[
    Shape::Sequential,
    Shape::Parallel(1),
    Shape::Parallel(2),
    Shape::Parallel(4),
    Shape::Parallel(8),
];

/// The template database every run clones: paper schema + data, three
/// single-rooted views, a two-rooted view group over a shared aggregate,
/// and the DeptConstraint assertion — several engines, several
/// auxiliaries, so each commit crosses every failpoint site repeatedly.
fn template() -> Database {
    let mut db = paper_schema_db();
    db.set_propagation_mode(PropagationMode::Batched);
    load_paper_data(&mut db, 5, 3);
    db.execute_sql(
        "CREATE MATERIALIZED VIEW DeptProfile AS \
         SELECT DName, COUNT(*) AS Heads, MAX(Salary) AS TopSal \
         FROM Emp GROUP BY DName",
    )
    .unwrap();
    db.execute_sql(
        "CREATE MATERIALIZED VIEW WellPaid AS \
         SELECT EName, Emp.DName, MName FROM Emp, Dept \
         WHERE Emp.DName = Dept.DName AND Salary > 150",
    )
    .unwrap();
    db.execute_sql(
        "CREATE ASSERTION DeptConstraint CHECK (NOT EXISTS ( \
            SELECT Dept.DName FROM Emp, Dept \
            WHERE Dept.DName = Emp.DName \
            GROUP BY Dept.DName, Budget \
            HAVING SUM(Salary) > Budget))",
    )
    .unwrap();
    db
}

fn shaped(db: &Database, shape: Shape) -> Database {
    let mut db = db.clone();
    match shape {
        Shape::Sequential => db.set_execution_mode(ExecutionMode::Sequential),
        Shape::Parallel(threads) => {
            db.set_execution_mode(ExecutionMode::Parallel);
            db.set_pipeline_pool(Arc::new(PipelinePool::new(threads)));
        }
    }
    db
}

fn contents(db: &Database) -> Vec<(String, Bag)> {
    db.catalog
        .iter()
        .map(|(n, t)| (n.to_string(), t.relation.data().clone()))
        .collect()
}

/// Every table of every shard, in shard order.
fn shard_contents(s: &ShardedDatabase) -> Vec<Vec<(String, Bag)>> {
    (0..s.n_shards()).map(|i| contents(&s.shard(i))).collect()
}

/// A workload of transactions that all succeed unfaulted (pre-filtered
/// against a throwaway clone, so assertion-violating or stale-state
/// transactions never muddy the control).
fn passing_txns(template: &Database, want: usize) -> Vec<(String, Delta)> {
    let mut trial = template.clone();
    let mut out = Vec::new();
    for (table, delta) in mixed_workload(5, 3, 40, 0xFA171) {
        if trial.apply_delta(&table, delta.clone()).is_ok() {
            out.push((table, delta));
            if out.len() == want {
                break;
            }
        }
    }
    assert_eq!(out.len(), want, "could not assemble a passing workload");
    out
}

/// The unfaulted reference: per-transaction reports and final contents.
fn control(template: &Database, txns: &[(String, Delta)]) -> (Vec<UpdateReport>, Vec<(String, Bag)>) {
    let mut db = template.clone();
    let reports = txns
        .iter()
        .map(|(t, d)| db.apply_delta(t, d.clone()).unwrap())
        .collect();
    (reports, contents(&db))
}

/// One sweep cell: fault the first transaction at (site, action, on_hit)
/// under `shape`, then assert rollback bit-identity, integrity, and
/// retry-equals-control.
#[allow(clippy::too_many_arguments)]
fn sweep_cell(
    template: &Database,
    txns: &[(String, Delta)],
    ctrl_reports: &[UpdateReport],
    ctrl_contents: &[(String, Bag)],
    site: &'static str,
    action: FaultAction,
    on_hit: u64,
    shape: Shape,
) {
    let mut db = shaped(template, shape);
    let pre = contents(&db);
    let plan = match action {
        FaultAction::Error => FaultPlan::new().error_at(site, on_hit),
        FaultAction::Panic => FaultPlan::new().panic_at(site, on_hit),
    };
    let guard = fault::install(plan);
    let (table, delta) = &txns[0];
    let result = db.apply_delta(table, delta.clone());
    let fired = guard.fired(site);
    let label = format!("{site}/{action:?}/hit{on_hit}/{shape:?}");
    match result {
        Err(err) => {
            assert!(fired, "{label}: errored without the fault firing: {err}");
            match action {
                FaultAction::Error => assert!(
                    err.to_string().contains("injected fault"),
                    "{label}: unexpected error: {err}"
                ),
                FaultAction::Panic => assert!(
                    matches!(&err, IvmError::TaskPanicked { message }
                        if message.contains("injected panic")),
                    "{label}: expected TaskPanicked, got: {err}"
                ),
            }
            // The catalog is bit-identical to its pre-transaction state.
            assert_eq!(contents(&db), pre, "{label}: catalog torn by the fault");
            db.integrity_check()
                .unwrap_or_else(|e| panic!("{label}: integrity after fault: {e}"));
        }
        Ok(report) => {
            // The armed hit count was never reached (e.g. `on_hit` past
            // the site's per-txn hits, or a site this shape never
            // crosses): the run must be indistinguishable from control.
            assert!(!fired, "{label}: fired yet the transaction succeeded");
            assert_eq!(report, ctrl_reports[0], "{label}: report diverged");
        }
    }
    // Clear the fault and (re)run the full workload: the recovered
    // database must be bit-identical to the unfaulted control. If the
    // fault aborted txn 0 it is retried; if it never fired, txn 0 already
    // committed and the remaining transactions pick up from there.
    guard.clear();
    let start = if contents(&db) == pre { 0 } else { 1 };
    for (i, (t, d)) in txns.iter().enumerate().skip(start) {
        let r = db
            .apply_delta(t, d.clone())
            .unwrap_or_else(|e| panic!("{label}: retry txn {i}: {e}"));
        assert_eq!(r, ctrl_reports[i], "{label}: retry txn {i} report diverged");
    }
    drop(guard);
    assert_eq!(contents(&db), ctrl_contents, "{label}: final contents diverged");
    assert!(verify_all_views(&db).unwrap().is_empty(), "{label}");
}

/// The full deterministic sweep: every site x supported action x hit
/// threshold x execution shape. Panic actions only run under Parallel
/// shapes — the containment contract covers pool tasks, not the caller's
/// thread (sites are marked accordingly in the catalog).
#[test]
fn fault_sweep_preserves_atomicity_at_every_site() {
    quiet_injected_panics();
    let _serial = fault::serial_guard();
    let template = template();
    let txns = passing_txns(&template, 4);
    let (ctrl_reports, ctrl_contents) = control(&template, &txns);
    for site in SITES {
        for action in [FaultAction::Error, FaultAction::Panic] {
            let supported = match action {
                FaultAction::Error => site.supports_error,
                FaultAction::Panic => site.supports_panic,
            };
            if !supported {
                continue;
            }
            for on_hit in [1, 2] {
                for &shape in SHAPES {
                    if action == FaultAction::Panic && shape == Shape::Sequential {
                        continue;
                    }
                    sweep_cell(
                        &template,
                        &txns,
                        &ctrl_reports,
                        &ctrl_contents,
                        site.name,
                        action,
                        on_hit,
                        shape,
                    );
                }
            }
        }
    }
}

/// The sequential journaled commit (the dirty-shard fast path) under
/// fault injection, with planning done by the **fused** kernels: every
/// commit-path site x hit threshold, swept across Sequential (in-place
/// journaled commit) and the Parallel staged fallback at pool widths
/// 1/2/4/8. The main sweep covers the same cells under batched planning;
/// this one proves the fused plans feed both commit protocols the exact
/// deltas the rollback machinery expects — post-failure bit-identity,
/// clean integrity, and retry-equals-control every time.
#[test]
fn journaled_commit_fault_sweep_under_fused_planning() {
    quiet_injected_panics();
    let _serial = fault::serial_guard();
    let mut template = template();
    template.set_propagation_mode(PropagationMode::Fused);
    let txns = passing_txns(&template, 4);
    let (ctrl_reports, ctrl_contents) = control(&template, &txns);
    // The three sites the commit paths cross: per-view apply, the base
    // apply, and the commit gate (`storage::restore_table` fires once per
    // journaled table on the sequential path, once per staged table on
    // the parallel one).
    for site in ["ivm::commit_view", "delta::apply_to", "storage::restore_table"] {
        for on_hit in [1, 2, 3] {
            for &shape in SHAPES {
                sweep_cell(
                    &template,
                    &txns,
                    &ctrl_reports,
                    &ctrl_contents,
                    site,
                    FaultAction::Error,
                    on_hit,
                    shape,
                );
            }
        }
    }
}

/// A panic unwinding through the sequential journaled commit: the undo
/// journal must replay before the panic resumes, so the caller that
/// catches the unwind observes a catalog bit-identical to the
/// pre-transaction state — and a clean retry afterwards.
#[test]
fn sequential_commit_panic_rolls_back_before_resuming() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    quiet_injected_panics();
    let _serial = fault::serial_guard();
    let template = template();
    let txns = passing_txns(&template, 1);
    let (ctrl_reports, ctrl_contents) = control(&template, &txns);
    for site in ["ivm::commit_view", "delta::apply_to"] {
        for on_hit in [1, 2] {
            let mut db = shaped(&template, Shape::Sequential);
            let pre = contents(&db);
            let guard = fault::install(FaultPlan::new().panic_at(site, on_hit));
            let (table, delta) = &txns[0];
            let outcome = catch_unwind(AssertUnwindSafe(|| db.apply_delta(table, delta.clone())));
            let label = format!("{site}/hit{on_hit}");
            match outcome {
                Err(_) => {
                    assert!(guard.fired(site), "{label}: panicked without firing");
                    assert_eq!(contents(&db), pre, "{label}: catalog torn by the panic");
                    db.integrity_check()
                        .unwrap_or_else(|e| panic!("{label}: integrity: {e}"));
                }
                Ok(r) => {
                    // Hit count past the site's per-txn crossings: the
                    // run must be indistinguishable from control.
                    assert!(!guard.fired(site), "{label}: fired yet returned");
                    assert_eq!(r.unwrap(), ctrl_reports[0], "{label}");
                }
            }
            guard.clear();
            if contents(&db) == pre {
                let r = db.apply_delta(table, delta.clone()).unwrap();
                assert_eq!(r, ctrl_reports[0], "{label}: retry report diverged");
            }
            drop(guard);
            assert_eq!(contents(&db), ctrl_contents, "{label}: final contents");
            assert!(verify_all_views(&db).unwrap().is_empty(), "{label}");
        }
    }
}

/// Seeded single-fault plans (the splitmix64 path `FaultPlan::seeded`
/// exposes to property tests) under a mid-width pool: whatever the seed
/// picks, atomicity holds.
#[test]
fn seeded_fault_plans_preserve_atomicity() {
    quiet_injected_panics();
    let _serial = fault::serial_guard();
    let template = template();
    let txns = passing_txns(&template, 2);
    let (ctrl_reports, ctrl_contents) = control(&template, &txns);
    for seed in 0..24u64 {
        let mut db = shaped(&template, Shape::Parallel(2));
        let pre = contents(&db);
        let guard = fault::install(FaultPlan::seeded(seed));
        let (table, delta) = &txns[0];
        match db.apply_delta(table, delta.clone()) {
            Err(_) => {
                assert_eq!(contents(&db), pre, "seed {seed}: catalog torn");
                db.integrity_check()
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            }
            Ok(report) => assert_eq!(report, ctrl_reports[0], "seed {seed}"),
        }
        guard.clear();
        if contents(&db) == pre {
            let r = db.apply_delta(table, delta.clone()).unwrap();
            assert_eq!(r, ctrl_reports[0], "seed {seed}: retry report");
        }
        let (t1, d1) = &txns[1];
        let r1 = db.apply_delta(t1, d1.clone()).unwrap();
        assert_eq!(r1, ctrl_reports[1], "seed {seed}: follow-up report");
        drop(guard);
        assert_eq!(contents(&db), ctrl_contents, "seed {seed}: final contents");
    }
}

/// Satellite regression for the torn-commit window `commit_parallel` used
/// to have: with two committing engines, a failure injected into the
/// *second* engine's commit used to leave the first engine's already-
/// mutated tables attached. Now the pre-commit originals are restored:
/// nothing of either engine's commit survives.
#[test]
fn parallel_commit_failure_in_second_engine_restores_first() {
    quiet_injected_panics();
    let _serial = fault::serial_guard();
    let template = template();
    // A broad raise past WellPaid's `Salary > 150` threshold touches every
    // Emp-dependent engine: DeptProfile's TopSal, WellPaid's membership,
    // and the assertion's salary-sum auxiliary all change.
    let delta = {
        let mut d = Delta::new();
        for dept in 0..3 {
            d.push_modify(
                spacetime_storage::tuple![
                    format!("emp{dept:05}_0"),
                    format!("dept{dept:05}"),
                    100_i64
                ],
                spacetime_storage::tuple![
                    format!("emp{dept:05}_0"),
                    format!("dept{dept:05}"),
                    180_i64
                ],
                1,
            );
        }
        d
    };
    // Calibrate: count the `ivm::commit_view` hits of one unfaulted run
    // (armed far past any plausible threshold so nothing fires).
    let commit_hits = {
        let mut probe = shaped(&template, Shape::Parallel(2));
        let guard = fault::install(FaultPlan::new().error_at("ivm::commit_view", u64::MAX));
        probe.apply_delta("Emp", delta.clone()).unwrap();
        guard.hits("ivm::commit_view")
    };
    assert!(
        commit_hits >= 2,
        "regression needs >= 2 committing view deltas, got {commit_hits}"
    );
    for threads in [1, 2] {
        let mut db = shaped(&template, Shape::Parallel(threads));
        let pre = contents(&db);
        // Fire on the *last* commit hit: every other engine's mutation is
        // already staged (or detached) when this one fails.
        let guard = fault::install(FaultPlan::new().error_at("ivm::commit_view", commit_hits));
        let err = db.apply_delta("Emp", delta.clone()).unwrap_err();
        assert!(guard.fired("ivm::commit_view"), "width {threads}: never fired");
        assert!(err.to_string().contains("injected fault"), "{err}");
        assert_eq!(
            contents(&db),
            pre,
            "width {threads}: first engine's commit survived a second-engine failure"
        );
        db.integrity_check().unwrap();
        drop(guard);
        // The identical transaction succeeds once the fault is gone.
        db.apply_delta("Emp", delta.clone()).unwrap();
        assert!(verify_all_views(&db).unwrap().is_empty());
    }
}

/// One cross-shard sweep cell: partition fresh, fault (site, action,
/// on_hit), run the spanning transaction through a width-`width`
/// scheduler, and assert the all-or-nothing contract across the whole
/// footprint — every shard bit-identical to its pre-transaction state
/// after a fault, and a clean retry reproducing the unfaulted control.
#[allow(clippy::too_many_arguments)]
fn cross_shard_cell(
    template: &Database,
    spec: &ShardSpec,
    n_shards: usize,
    txn: &Txn,
    ctrl_report: &UpdateReport,
    ctrl_contents: &[Vec<(String, Bag)>],
    site: &'static str,
    action: FaultAction,
    on_hit: u64,
    width: usize,
) {
    let sharded = ShardedDatabase::partition(template, spec.clone(), n_shards).unwrap();
    let pre = shard_contents(&sharded);
    let plan = match action {
        FaultAction::Error => FaultPlan::new().error_at(site, on_hit),
        FaultAction::Panic => FaultPlan::new().panic_at(site, on_hit),
    };
    let guard = fault::install(plan);
    let sched = TxnScheduler::new(&sharded, Arc::new(PipelinePool::new(width)));
    let out = sched.run(std::slice::from_ref(txn)).unwrap();
    let fired = guard.fired(site);
    let label = format!("{site}/{action:?}/hit{on_hit}/w{width}");
    match &out.results[0] {
        Err(err) => {
            assert!(fired, "{label}: errored without the fault firing: {err}");
            match action {
                FaultAction::Error => assert!(
                    err.to_string().contains("injected fault"),
                    "{label}: unexpected error: {err}"
                ),
                FaultAction::Panic => assert!(
                    matches!(err, IvmError::TaskPanicked { message }
                        if message.contains("injected panic")),
                    "{label}: expected TaskPanicked, got: {err}"
                ),
            }
            // The protocol's core promise: a failure mid-footprint
            // restores every already-committed shard — all shards are
            // bit-identical to their pre-transaction state.
            assert_eq!(
                shard_contents(&sharded),
                pre,
                "{label}: a shard was torn by the fault"
            );
        }
        Ok(report) => {
            // The armed hit count was never reached: indistinguishable
            // from control.
            assert!(!fired, "{label}: fired yet the transaction succeeded");
            assert_eq!(report, ctrl_report, "{label}: report diverged");
        }
    }
    // Clear the fault and retry (if the fault aborted the transaction):
    // the sharded database converges to the unfaulted control exactly.
    guard.clear();
    if shard_contents(&sharded) == pre {
        let retry = sched.run(std::slice::from_ref(txn)).unwrap();
        let r = retry.results[0]
            .as_ref()
            .unwrap_or_else(|e| panic!("{label}: retry failed: {e}"));
        assert_eq!(r, ctrl_report, "{label}: retry report diverged");
    }
    drop(guard);
    assert_eq!(
        shard_contents(&sharded),
        ctrl_contents,
        "{label}: final contents diverged from control"
    );
    assert!(
        sharded.verify_all_shards().unwrap().is_empty(),
        "{label}: a shard diverged from recomputation"
    );
}

/// The cross-shard commit protocol under fault injection: a transaction
/// whose footprint spans several shards, faulted at every commit-path
/// site (typed error *and* injected panic) at hit thresholds reaching
/// from the first shard's commit into the last one's, across scheduler
/// pool widths 1/2/4/8 — plus the dispatch-site panic, which fires before
/// any shard is touched. Every cell asserts post-failure bit-identity of
/// *every* shard and retry-equals-control.
#[test]
fn cross_shard_commit_fault_sweep() {
    quiet_injected_panics();
    let _serial = fault::serial_guard();
    let template = template();
    let spec = ShardSpec::new().with("Emp", vec![1]).with("Dept", vec![0]);
    const N_SHARDS: usize = 4;

    // One transaction spanning several shards: a raise in every
    // department (each department lives in exactly one shard, so the
    // footprint is however many shards the five departments hash into).
    let txn: Txn = {
        let mut emp = Delta::new();
        for dept in 0..5 {
            emp.push_modify(
                spacetime_storage::tuple![
                    format!("emp{dept:05}_0"),
                    format!("dept{dept:05}"),
                    100_i64
                ],
                spacetime_storage::tuple![
                    format!("emp{dept:05}_0"),
                    format!("dept{dept:05}"),
                    180_i64
                ],
                1,
            );
        }
        vec![("Emp".to_string(), emp)]
    };
    {
        // The fixture must actually exercise the cross-shard path.
        let sharded = ShardedDatabase::partition(&template, spec.clone(), N_SHARDS).unwrap();
        let parts = sharded.route_delta("Emp", &txn[0].1).unwrap();
        assert!(
            parts.len() >= 2,
            "cross-shard fixture only spans {} shard(s)",
            parts.len()
        );
    }

    // The unfaulted control: the transaction's report and the final
    // contents of every shard.
    let (ctrl_report, ctrl_contents) = {
        let sharded = ShardedDatabase::partition(&template, spec.clone(), N_SHARDS).unwrap();
        let out = TxnScheduler::new(&sharded, Arc::new(PipelinePool::new(1)))
            .run_serial(std::slice::from_ref(&txn))
            .unwrap();
        let report = out.results.into_iter().next().unwrap().unwrap();
        (report, shard_contents(&sharded))
    };

    // Calibrate each site's total crossings of one unfaulted protocol run
    // (armed far past any plausible threshold so nothing fires), so the
    // sweep can land faults in the *last* shard's commit — after earlier
    // shards already committed.
    let commit_sites = ["ivm::commit_view", "delta::apply_to", "storage::restore_table"];
    let mut site_hits = Vec::new();
    for site in commit_sites {
        let sharded = ShardedDatabase::partition(&template, spec.clone(), N_SHARDS).unwrap();
        let guard = fault::install(FaultPlan::new().error_at(site, u64::MAX));
        let out = TxnScheduler::new(&sharded, Arc::new(PipelinePool::new(1)))
            .run(std::slice::from_ref(&txn))
            .unwrap();
        assert!(out.results[0].is_ok(), "calibration run must pass");
        site_hits.push((site, guard.hits(site)));
    }

    for (site, hits) in site_hits {
        let meta = SITES.iter().find(|s| s.name == site).unwrap();
        let mut on_hits = vec![1, 2, 3, hits.saturating_sub(1).max(1), hits.max(1)];
        on_hits.sort_unstable();
        on_hits.dedup();
        for action in [FaultAction::Error, FaultAction::Panic] {
            let supported = match action {
                FaultAction::Error => meta.supports_error,
                FaultAction::Panic => meta.supports_panic,
            };
            if !supported {
                continue;
            }
            for &on_hit in &on_hits {
                for width in [1usize, 2, 4, 8] {
                    cross_shard_cell(
                        &template,
                        &spec,
                        N_SHARDS,
                        &txn,
                        &ctrl_report,
                        &ctrl_contents,
                        site,
                        action,
                        on_hit,
                        width,
                    );
                }
            }
        }
    }
    // The dispatch-site panic fires before the task body runs: no shard
    // is ever touched, and the scheduler surfaces a typed TaskPanicked.
    for width in [1usize, 2, 4, 8] {
        cross_shard_cell(
            &template,
            &spec,
            N_SHARDS,
            &txn,
            &ctrl_report,
            &ctrl_contents,
            "ivm::pool_dispatch",
            FaultAction::Panic,
            1,
            width,
        );
    }
}

/// A panicking pool task must not kill the worker, the pool, or the
/// database: the error is typed, the catalog intact, and the *same pool*
/// keeps serving subsequent transactions.
#[test]
fn worker_panic_is_contained_and_pool_survives() {
    quiet_injected_panics();
    let _serial = fault::serial_guard();
    let template = template();
    let pool = Arc::new(PipelinePool::new(2));
    let mut db = template.clone();
    db.set_execution_mode(ExecutionMode::Parallel);
    db.set_pipeline_pool(Arc::clone(&pool));
    let txns = passing_txns(&template, 2);
    let pre = contents(&db);
    {
        let _guard = fault::install(FaultPlan::new().panic_at("ivm::pool_dispatch", 1));
        let (table, delta) = &txns[0];
        let err = db.apply_delta(table, delta.clone()).unwrap_err();
        assert!(
            matches!(&err, IvmError::TaskPanicked { message } if message.contains("injected panic")),
            "{err}"
        );
        assert_eq!(contents(&db), pre);
        db.integrity_check().unwrap();
    }
    // Same database, same pool, no fault: business as usual.
    for (table, delta) in &txns {
        db.apply_delta(table, delta.clone()).unwrap();
    }
    assert!(verify_all_views(&db).unwrap().is_empty());
    db.integrity_check().unwrap();
}

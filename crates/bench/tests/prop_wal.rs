//! Crash-recovery proven bit-identical (DESIGN.md §17, EXPERIMENTS.md
//! E-WAL).
//!
//! Every cell of the sweep follows one shape:
//!
//! 1. run a workload durably (WAL + initial checkpoint) and *crash* by
//!    mutilating the log files at a deterministic frame boundary
//!    (`spacetime_wal::crash`) — torn final record, corrupted CRC,
//!    truncated segment, or a dropped global commit record between the
//!    phases of a cross-shard commit;
//! 2. recover with `Database::open` / `ShardedDatabase::open`;
//! 3. assert the recovered state is **bit-identical** (every table,
//!    every shard) to a fresh control database fed exactly the
//!    transactions the mutilated log still proves committed, and that
//!    the recompute oracle finds no mismatch;
//! 4. re-apply the lost tail and assert the retried state matches a
//!    control fed the whole workload — recovery leaves the database
//!    fully serviceable, not merely readable.
//!
//! The crafted workload tails make the loss deterministic: the last
//! transactions are single-insert, single-shard commits of known frame
//! counts, so each crash site loses an exactly-known suffix.

#![cfg(feature = "durability")]

use std::path::{Path, PathBuf};
use std::sync::Arc;

use spacetime_bench::workload::{load_paper_data, mixed_workload, paper_schema_db};
use spacetime_delta::Delta;
use spacetime_ivm::{
    verify_all_views, Database, DurabilityOptions, DurableDatabase, DurableSharded, PipelinePool,
    PropagationMode, ShardedDatabase, Txn, TxnScheduler,
};
use spacetime_storage::{ShardSpec, Tuple, Value};
use spacetime_wal::{crash, test_dir, CheckpointPolicy};

const MODES: &[PropagationMode] = &[
    PropagationMode::PerKey,
    PropagationMode::Batched,
    PropagationMode::Fused,
];

const VIEWS: &[&str] = &[
    "CREATE MATERIALIZED VIEW DeptProfile AS \
     SELECT DName, COUNT(*) AS Heads, MAX(Salary) AS TopSal \
     FROM Emp GROUP BY DName",
    "CREATE MATERIALIZED VIEW WellPaid AS \
     SELECT EName, Emp.DName, MName FROM Emp, Dept \
     WHERE Emp.DName = Dept.DName AND Salary > 150",
    "CREATE MATERIALIZED VIEW ActiveDepts AS SELECT DISTINCT DName FROM Emp",
];

fn shard_spec() -> ShardSpec {
    ShardSpec::new().with("Emp", vec![1]).with("Dept", vec![0])
}

fn build_db(departments: usize, emps_per_dept: usize, mode: PropagationMode) -> Database {
    let mut db = paper_schema_db();
    db.set_propagation_mode(mode);
    load_paper_data(&mut db, departments, emps_per_dept);
    for sql in VIEWS {
        db.execute_sql(sql).unwrap();
    }
    db
}

/// A crafted single-insert transaction: one fresh Emp row. Exactly one
/// shard in its footprint, exactly three WAL frames (begin + delta +
/// commit) on that shard's log, and it always succeeds.
fn tail_txn(i: usize, dname: &str) -> Txn {
    let t = Tuple::new(vec![
        Value::str(format!("crash_e{i:03}")),
        Value::str(dname),
        Value::Int(200 + i as i64),
    ]);
    vec![("Emp".to_string(), Delta::insert(t, 1))]
}

/// A department name (existing or synthetic) routing to `want` under
/// the Emp shard key.
fn dname_routing_to(spec: &ShardSpec, n_shards: usize, want: usize) -> String {
    for i in 0..64 {
        let dname = if i < 16 {
            format!("dept{i:05}")
        } else {
            format!("xdept{i}")
        };
        let probe = Tuple::new(vec![Value::str("probe"), Value::str(&dname), Value::Int(0)]);
        if spec.route("Emp", &probe, n_shards).unwrap() == want {
            return dname;
        }
    }
    panic!("no department routes to shard {want} of {n_shards}");
}

/// The crash sites that mutilate a single shard's (or the unsharded)
/// log, with the exactly-known number of tail transactions each loses
/// when the log ends in crafted three-frame transactions.
#[derive(Debug, Clone, Copy)]
enum Site {
    /// The final frame is cut mid-payload: the last commit record is
    /// torn, so the last transaction aborts.
    TornTail,
    /// The final frame's payload byte is flipped: the CRC rejects it
    /// and the scan stops, aborting the last transaction.
    CorruptLast,
    /// The last four frames are cut: the whole last transaction plus
    /// the commit of the one before it — two transactions abort.
    TruncateFrames,
}

const SITES: &[Site] = &[Site::TornTail, Site::CorruptLast, Site::TruncateFrames];

impl Site {
    fn lost_txns(self) -> usize {
        match self {
            Site::TornTail | Site::CorruptLast => 1,
            Site::TruncateFrames => 2,
        }
    }

    fn mutilate(self, log: &Path) {
        match self {
            Site::TornTail => crash::torn_tail(log).unwrap(),
            Site::CorruptLast => crash::corrupt_last_frame(log).unwrap(),
            Site::TruncateFrames => {
                assert_eq!(crash::truncate_frames(log, 4).unwrap(), 4);
            }
        }
    }
}

fn assert_db_eq(a: &Database, b: &Database, ctx: &str) {
    let names_a: Vec<&str> = a.catalog.iter().map(|(n, _)| n).collect();
    let names_b: Vec<&str> = b.catalog.iter().map(|(n, _)| n).collect();
    assert_eq!(names_a, names_b, "table sets diverged ({ctx})");
    for (name, t) in a.catalog.iter() {
        assert_eq!(
            t.relation.data(),
            b.catalog.table(name).unwrap().relation.data(),
            "table {name} diverged ({ctx})"
        );
    }
}

fn assert_sharded_eq(a: &ShardedDatabase, b: &ShardedDatabase, ctx: &str) {
    assert_eq!(a.n_shards(), b.n_shards(), "shard counts diverged ({ctx})");
    for s in 0..a.n_shards() {
        let da = a.shard(s);
        let db = b.shard(s);
        for (name, t) in da.catalog.iter() {
            assert_eq!(
                t.relation.data(),
                db.catalog.table(name).unwrap().relation.data(),
                "shard {s} table {name} diverged ({ctx})"
            );
        }
    }
}

fn cleanup(dir: &PathBuf) {
    std::fs::remove_dir_all(dir).ok();
}

// ---------------------------------------------------------------------
// Unsharded
// ---------------------------------------------------------------------

/// Base workload plus three crafted tail transactions.
fn unsharded_txns() -> Vec<Txn> {
    let mut txns: Vec<Txn> = mixed_workload(3, 4, 6, 17)
        .into_iter()
        .map(|(table, delta)| vec![(table, delta)])
        .collect();
    for i in 0..3 {
        txns.push(tail_txn(i, "dept00000"));
    }
    txns
}

#[test]
fn wal_unsharded_clean_reopen_is_identical() {
    for &mode in MODES {
        let dir = test_dir("clean_reopen");
        let template = build_db(3, 4, mode);
        let txns = unsharded_txns();
        let mut dur =
            DurableDatabase::create(template.clone(), &dir, DurabilityOptions::default()).unwrap();
        let mut committed = 0u64;
        for t in &txns {
            if dur.apply_transaction(t.clone()).is_ok() {
                committed += 1;
            }
        }
        drop(dur);
        let (rec, stats) = Database::open(&dir).unwrap();
        assert_eq!(stats.replayed_txns, committed, "replayed != committed ({mode:?})");
        assert_eq!(stats.skipped_txns, 0, "clean log has no aborts ({mode:?})");
        assert_eq!(stats.discarded_bytes, 0, "clean log has no torn bytes ({mode:?})");
        assert_eq!(rec.db().propagation_mode(), mode, "mode not restored");
        let mut control = template.clone();
        for t in &txns {
            let _ = control.apply_transaction(t.clone());
        }
        assert_db_eq(rec.db(), &control, &format!("clean reopen, {mode:?}"));
        assert!(verify_all_views(rec.db()).unwrap().is_empty());
        cleanup(&dir);
    }
}

#[test]
fn wal_unsharded_crash_matrix() {
    for &mode in MODES {
        for &site in SITES {
            let dir = test_dir("unsharded_crash");
            let ctx = format!("{mode:?}, {site:?}");
            let template = build_db(3, 4, mode);
            let txns = unsharded_txns();
            let total = txns.len();
            let keep = total - site.lost_txns();

            let mut dur =
                DurableDatabase::create(template.clone(), &dir, DurabilityOptions::default())
                    .unwrap();
            for t in &txns {
                let _ = dur.apply_transaction(t.clone());
            }
            drop(dur);
            site.mutilate(&dir.join("wal.log"));

            let (mut rec, stats) = Database::open(&dir).unwrap();
            let mut control = template.clone();
            let mut committed = 0u64;
            for t in &txns[..keep] {
                if control.apply_transaction(t.clone()).is_ok() {
                    committed += 1;
                }
            }
            assert_eq!(
                stats.replayed_txns, committed,
                "replayed only the committed prefix ({ctx})"
            );
            assert_db_eq(rec.db(), &control, &format!("recovery == control ({ctx})"));
            assert!(
                verify_all_views(rec.db()).unwrap().is_empty(),
                "oracle mismatch after recovery ({ctx})"
            );

            // Retry the lost tail: the recovered database serves on.
            for t in &txns[keep..] {
                let _ = rec.apply_transaction(t.clone());
            }
            let mut control_full = template.clone();
            for t in &txns {
                let _ = control_full.apply_transaction(t.clone());
            }
            assert_db_eq(rec.db(), &control_full, &format!("retry == control ({ctx})"));
            cleanup(&dir);
        }
    }
}

#[test]
fn wal_checkpoint_replays_only_the_tail() {
    let dir = test_dir("ckpt_tail");
    let template = build_db(3, 4, PropagationMode::Batched);
    let mut dur =
        DurableDatabase::create(template.clone(), &dir, DurabilityOptions::default()).unwrap();
    for i in 0..4 {
        dur.apply_transaction(tail_txn(i, "dept00000")).unwrap();
    }
    dur.checkpoint().unwrap();
    for i in 4..7 {
        dur.apply_transaction(tail_txn(i, "dept00001")).unwrap();
    }
    drop(dur);
    let (rec, stats) = Database::open(&dir).unwrap();
    assert_eq!(stats.checkpoint_last_txn, 4, "checkpoint covers the first four");
    assert_eq!(stats.replayed_txns, 3, "only the post-checkpoint tail replays");
    let mut control = template.clone();
    for i in 0..4 {
        control.apply_transaction(tail_txn(i, "dept00000")).unwrap();
    }
    for i in 4..7 {
        control.apply_transaction(tail_txn(i, "dept00001")).unwrap();
    }
    assert_db_eq(rec.db(), &control, "checkpoint + tail");
    assert!(verify_all_views(rec.db()).unwrap().is_empty());
    cleanup(&dir);
}

#[test]
fn wal_checkpoint_policy_triggers_automatically() {
    let dir = test_dir("ckpt_policy");
    let template = build_db(3, 4, PropagationMode::Batched);
    let opts = DurabilityOptions {
        checkpoint: CheckpointPolicy {
            every_txns: Some(2),
            every_bytes: None,
        },
        ..DurabilityOptions::default()
    };
    let mut dur = DurableDatabase::create(template.clone(), &dir, opts).unwrap();
    for i in 0..5 {
        dur.apply_transaction(tail_txn(i, "dept00000")).unwrap();
    }
    drop(dur);
    // Checkpoints fired after txns 2 and 4; only txn 5 is in the log.
    let (rec, stats) = Database::open(&dir).unwrap();
    assert_eq!(stats.replayed_txns, 1, "policy checkpoints bound the replay");
    let mut control = template.clone();
    for i in 0..5 {
        control.apply_transaction(tail_txn(i, "dept00000")).unwrap();
    }
    assert_db_eq(rec.db(), &control, "auto-checkpoint recovery");
    cleanup(&dir);
}

// ---------------------------------------------------------------------
// Sharded
// ---------------------------------------------------------------------

/// Base workload plus three crafted tail transactions that all route to
/// shard 0 — the mutilated log — so the lost transactions are exactly
/// the globally-last ones.
fn sharded_txns(spec: &ShardSpec, n_shards: usize) -> Vec<Txn> {
    let mut txns: Vec<Txn> = mixed_workload(4, 3, 6, 23)
        .into_iter()
        .map(|(table, delta)| vec![(table, delta)])
        .collect();
    let dname = dname_routing_to(spec, n_shards, 0);
    for i in 0..3 {
        txns.push(tail_txn(i, &dname));
    }
    txns
}

#[test]
fn wal_sharded_crash_matrix() {
    for &n_shards in &[1usize, 2, 4, 8] {
        for &mode in MODES {
            for &site in SITES {
                let dir = test_dir("sharded_crash");
                let ctx = format!("{n_shards} shard(s), {mode:?}, {site:?}");
                let template = build_db(4, 3, mode);
                let spec = shard_spec();
                let txns = sharded_txns(&spec, n_shards);
                let total = txns.len();
                let keep = total - site.lost_txns();

                let dur = DurableSharded::create(
                    &template,
                    spec.clone(),
                    n_shards,
                    &dir,
                    DurabilityOptions::default(),
                )
                .unwrap();
                let pool = Arc::new(PipelinePool::new(4));
                TxnScheduler::with_wals(dur.db(), Arc::clone(&pool), dur.wals())
                    .run(&txns)
                    .unwrap();
                drop(dur);
                site.mutilate(&dir.join("shard-000").join("wal.log"));

                let (rec, _stats) = ShardedDatabase::open(&dir, n_shards).unwrap();
                let control =
                    ShardedDatabase::partition(&template, spec.clone(), n_shards).unwrap();
                TxnScheduler::new(&control, Arc::new(PipelinePool::new(1)))
                    .run_serial(&txns[..keep])
                    .unwrap();
                assert_sharded_eq(rec.db(), &control, &format!("recovery == control ({ctx})"));
                assert!(
                    rec.db().verify_all_shards().unwrap().is_empty(),
                    "oracle mismatch after recovery ({ctx})"
                );

                // Retry the lost tail durably on the recovered shards.
                TxnScheduler::with_wals(rec.db(), pool, rec.wals())
                    .run_serial(&txns[keep..])
                    .unwrap();
                let control_full =
                    ShardedDatabase::partition(&template, spec.clone(), n_shards).unwrap();
                TxnScheduler::new(&control_full, Arc::new(PipelinePool::new(1)))
                    .run_serial(&txns)
                    .unwrap();
                assert_sharded_eq(rec.db(), &control_full, &format!("retry == control ({ctx})"));
                cleanup(&dir);
            }
        }
    }
}

/// The inter-phase cross-shard crash: every participant logged `begin +
/// deltas + prepared` and applied in memory, but the global commit
/// record was lost — 2PC's presumed abort. The final transaction spans
/// two shards; dropping the last `global.log` frame must abort exactly
/// it, on every shard it touched.
#[test]
fn wal_global_commit_crash_aborts_cross_shard_txn() {
    for &n_shards in &[2usize, 4] {
        for &mode in MODES {
            let dir = test_dir("global_crash");
            let ctx = format!("{n_shards} shard(s), {mode:?}");
            let template = build_db(4, 3, mode);
            let spec = shard_spec();
            let mut txns = sharded_txns(&spec, n_shards);
            // The final transaction: two inserts routing to different
            // shards, forcing the 2PC path.
            let d0 = dname_routing_to(&spec, n_shards, 0);
            let d1 = dname_routing_to(&spec, n_shards, 1);
            let mut cross = tail_txn(90, &d0);
            cross.extend(tail_txn(91, &d1));
            txns.push(cross);
            let total = txns.len();

            let dur = DurableSharded::create(
                &template,
                spec.clone(),
                n_shards,
                &dir,
                DurabilityOptions::default(),
            )
            .unwrap();
            let pool = Arc::new(PipelinePool::new(1));
            // Serial: global commit records land in admission order, so
            // the last global frame belongs to the last transaction.
            TxnScheduler::with_wals(dur.db(), Arc::clone(&pool), dur.wals())
                .run_serial(&txns)
                .unwrap();
            drop(dur);
            crash::drop_last_frame(&dir.join("global.log")).unwrap();

            let (rec, stats) = ShardedDatabase::open(&dir, n_shards).unwrap();
            assert!(
                stats.skipped_txns >= 2,
                "both prepared participants must be presumed aborted ({ctx})"
            );
            let control = ShardedDatabase::partition(&template, spec.clone(), n_shards).unwrap();
            TxnScheduler::new(&control, Arc::new(PipelinePool::new(1)))
                .run_serial(&txns[..total - 1])
                .unwrap();
            assert_sharded_eq(rec.db(), &control, &format!("recovery == control ({ctx})"));
            assert!(
                rec.db().verify_all_shards().unwrap().is_empty(),
                "oracle mismatch after recovery ({ctx})"
            );

            // Retry the aborted cross-shard transaction.
            TxnScheduler::with_wals(rec.db(), pool, rec.wals())
                .run_serial(&txns[total - 1..])
                .unwrap();
            let control_full =
                ShardedDatabase::partition(&template, spec.clone(), n_shards).unwrap();
            TxnScheduler::new(&control_full, Arc::new(PipelinePool::new(1)))
                .run_serial(&txns)
                .unwrap();
            assert_sharded_eq(rec.db(), &control_full, &format!("retry == control ({ctx})"));
            cleanup(&dir);
        }
    }
}

/// A sharded checkpoint truncates every shard's log *and* the global
/// log; recovery replays nothing and still matches.
#[test]
fn wal_sharded_checkpoint_then_recover() {
    let n_shards = 2;
    let dir = test_dir("sharded_ckpt");
    let template = build_db(4, 3, PropagationMode::Batched);
    let spec = shard_spec();
    let txns = sharded_txns(&spec, n_shards);
    let mut dur = DurableSharded::create(
        &template,
        spec.clone(),
        n_shards,
        &dir,
        DurabilityOptions::default(),
    )
    .unwrap();
    let pool = Arc::new(PipelinePool::new(2));
    TxnScheduler::with_wals(dur.db(), Arc::clone(&pool), dur.wals())
        .run(&txns)
        .unwrap();
    dur.checkpoint().unwrap();
    drop(dur);
    let (rec, stats) = ShardedDatabase::open(&dir, n_shards).unwrap();
    assert_eq!(stats.replayed_txns, 0, "checkpoint absorbed the whole log");
    let control = ShardedDatabase::partition(&template, spec, n_shards).unwrap();
    TxnScheduler::new(&control, Arc::new(PipelinePool::new(1)))
        .run_serial(&txns)
        .unwrap();
    assert_sharded_eq(rec.db(), &control, "post-checkpoint recovery");
    assert!(rec.db().verify_all_shards().unwrap().is_empty());
    cleanup(&dir);
}

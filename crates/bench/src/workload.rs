//! Data and workload generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spacetime_delta::Delta;
use spacetime_ivm::Database;
use spacetime_storage::DataType;
use spacetime_storage::{tuple, Catalog, IoMeter, Schema, TableStats, Tuple, Value};

/// The paper's corporate schema (Emp/Dept with keys and the DName index),
/// as a fresh [`Database`] without data.
pub fn paper_schema_db() -> Database {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE Emp (EName VARCHAR PRIMARY KEY, DName VARCHAR, Salary INTEGER);
         CREATE TABLE Dept (DName VARCHAR PRIMARY KEY, MName VARCHAR, Budget INTEGER);
         CREATE INDEX ON Emp (DName);",
    )
    .expect("static DDL");
    db
}

/// Load the §3.6 sample data, scaled: `departments` departments with
/// `emps_per_dept` employees each (the paper: 1000 × 10). Budgets default
/// high enough that ProblemDept starts empty ("the integrity constraint is
/// rarely violated").
pub fn load_paper_data(db: &mut Database, departments: usize, emps_per_dept: usize) {
    let mut io = IoMeter::new();
    for d in 0..departments {
        let dname = format!("dept{d:05}");
        db.catalog
            .table_mut("Dept")
            .expect("Dept exists")
            .relation
            .insert(
                tuple![
                    dname.clone(),
                    format!("mgr{d}"),
                    (emps_per_dept as i64) * 200
                ],
                1,
                &mut io,
            )
            .expect("valid tuple");
        for e in 0..emps_per_dept {
            db.catalog
                .table_mut("Emp")
                .expect("Emp exists")
                .relation
                .insert(
                    tuple![format!("emp{d:05}_{e}"), dname.clone(), 100_i64],
                    1,
                    &mut io,
                )
                .expect("valid tuple");
        }
    }
    db.catalog.table_mut("Emp").expect("Emp").analyze();
    db.catalog.table_mut("Dept").expect("Dept").analyze();
}

/// The paper's catalog in *analytic* mode: declared statistics only
/// (1000 departments, 10000 employees), no stored tuples. This is what
/// the optimizer-side experiments use — the paper computed its tables
/// analytically too.
pub fn paper_stats_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.create_table(
        "Emp",
        Schema::of_table(
            "Emp",
            &[
                ("EName", DataType::Str),
                ("DName", DataType::Str),
                ("Salary", DataType::Int),
            ],
        ),
    )
    .expect("fresh");
    cat.declare_key("Emp", &["EName"]).expect("cols exist");
    cat.create_index("Emp", &["DName"]).expect("cols exist");
    cat.table_mut("Emp").expect("Emp").stats =
        TableStats::declared(10_000, [(0, 10_000), (1, 1_000), (2, 2_000)]);
    cat.create_table(
        "Dept",
        Schema::of_table(
            "Dept",
            &[
                ("DName", DataType::Str),
                ("MName", DataType::Str),
                ("Budget", DataType::Int),
            ],
        ),
    )
    .expect("fresh");
    cat.declare_key("Dept", &["DName"]).expect("cols exist");
    cat.table_mut("Dept").expect("Dept").stats =
        TableStats::declared(1_000, [(0, 1_000), (1, 950), (2, 600)]);
    cat
}

/// A reproducible stream of single-employee salary modifications (the
/// paper's `>Emp` transaction type) against loaded paper data.
pub fn random_emp_updates(
    departments: usize,
    emps_per_dept: usize,
    count: usize,
    seed: u64,
) -> Vec<(String, Delta)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut salaries: std::collections::HashMap<(usize, usize), i64> =
        std::collections::HashMap::new();
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let d = rng.gen_range(0..departments);
        let e = rng.gen_range(0..emps_per_dept);
        let old_salary = *salaries.entry((d, e)).or_insert(100);
        let new_salary = rng.gen_range(50..200);
        let dname = format!("dept{d:05}");
        let ename = format!("emp{d:05}_{e}");
        let old: Tuple = tuple![ename.clone(), dname.clone(), old_salary];
        let new: Tuple = tuple![ename, dname, new_salary];
        salaries.insert((d, e), new_salary);
        if old == new {
            continue;
        }
        out.push(("Emp".to_string(), Delta::modify(old, new, 1)));
    }
    out
}

/// A reproducible stream of budget modifications (`>Dept`) against data
/// loaded by [`load_paper_data`] with the same `emps_per_dept` (whose
/// initial budgets are `emps_per_dept * 200`).
pub fn random_dept_updates(
    departments: usize,
    emps_per_dept: usize,
    count: usize,
    seed: u64,
) -> Vec<(String, Delta)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut budgets: std::collections::HashMap<usize, i64> = std::collections::HashMap::new();
    let default_budget = (emps_per_dept as i64) * 200;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let d = rng.gen_range(0..departments);
        let old_budget = *budgets.entry(d).or_insert(default_budget);
        let new_budget = rng.gen_range(1_500..3_000);
        if old_budget == new_budget {
            continue;
        }
        budgets.insert(d, new_budget);
        let dname = format!("dept{d:05}");
        out.push((
            "Dept".to_string(),
            Delta::modify(
                tuple![dname.clone(), format!("mgr{d}"), old_budget],
                tuple![dname, format!("mgr{d}"), new_budget],
                1,
            ),
        ));
    }
    out
}

/// A reproducible *mixed* stream of transactions against data loaded by
/// [`load_paper_data`]: single-employee salary modifications (~45%), hires
/// (~15%), departures (~15%), department budget changes (~10%), and
/// multi-row "across-the-board" raises touching up to sixteen employees
/// in distinct departments as one transaction (~15%). The generator tracks
/// the live roster so every delta references exactly the pre-update state
/// of its tuples, and no delta touches the same tuple twice.
pub fn mixed_workload(
    departments: usize,
    emps_per_dept: usize,
    count: usize,
    seed: u64,
) -> Vec<(String, Delta)> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Roster: name -> (dept index, salary), mirroring load_paper_data.
    let mut names: Vec<String> = Vec::with_capacity(departments * emps_per_dept);
    let mut roster: std::collections::HashMap<String, (usize, i64)> =
        std::collections::HashMap::new();
    for d in 0..departments {
        for e in 0..emps_per_dept {
            let name = format!("emp{d:05}_{e}");
            roster.insert(name.clone(), (d, 100));
            names.push(name);
        }
    }
    let mut budgets: std::collections::HashMap<usize, i64> = std::collections::HashMap::new();
    let default_budget = (emps_per_dept as i64) * 200;
    let mut hired = 0usize;
    let dname_of = |d: usize| format!("dept{d:05}");
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let mut roll = rng.gen_range(0..100);
        if (45..75).contains(&roll) && names.len() < 2 {
            roll = 0; // too few employees to hire/fire around: modify instead
        }
        if (85..100).contains(&roll) && names.len() < 4 {
            roll = 0; // not enough staff for a broad raise: modify instead
        }
        if roll < 45 {
            // Salary modification (the paper's `>Emp`).
            let i = rng.gen_range(0..names.len());
            let name = names[i].clone();
            let (d, old_salary) = roster[&name];
            let mut new_salary = rng.gen_range(50..250);
            if new_salary == old_salary {
                new_salary += 1;
            }
            roster.insert(name.clone(), (d, new_salary));
            out.push((
                "Emp".to_string(),
                Delta::modify(
                    tuple![name.clone(), dname_of(d), old_salary],
                    tuple![name, dname_of(d), new_salary],
                    1,
                ),
            ));
        } else if roll < 60 {
            // Hire: fresh primary key, random department.
            let d = rng.gen_range(0..departments);
            let salary = rng.gen_range(50..250) as i64;
            let name = format!("hire{hired:06}");
            hired += 1;
            roster.insert(name.clone(), (d, salary));
            names.push(name.clone());
            out.push((
                "Emp".to_string(),
                Delta::insert(tuple![name, dname_of(d), salary], 1),
            ));
        } else if roll < 75 {
            // Departure: remove a random employee.
            let i = rng.gen_range(0..names.len());
            let name = names.swap_remove(i);
            let (d, salary) = roster.remove(&name).expect("rostered");
            out.push((
                "Emp".to_string(),
                Delta::delete(tuple![name, dname_of(d), salary], 1),
            ));
        } else if roll < 85 {
            // Budget change (the paper's `>Dept`).
            let d = rng.gen_range(0..departments);
            let old_budget = *budgets.entry(d).or_insert(default_budget);
            let mut new_budget = rng.gen_range(500..3_000) as i64;
            if new_budget == old_budget {
                new_budget += 1;
            }
            budgets.insert(d, new_budget);
            out.push((
                "Dept".to_string(),
                Delta::modify(
                    tuple![dname_of(d), format!("mgr{d}"), old_budget],
                    tuple![dname_of(d), format!("mgr{d}"), new_budget],
                    1,
                ),
            ));
        } else {
            // Across-the-board raise: one transaction modifying up to
            // sixteen distinct employees (hence up to sixteen distinct
            // departments) at once.
            let k = rng.gen_range(8..17).min(names.len());
            let mut picked = std::collections::BTreeSet::new();
            while picked.len() < k {
                picked.insert(rng.gen_range(0..names.len()));
            }
            let mut delta = Delta::new();
            for i in picked {
                let name = names[i].clone();
                let (d, old_salary) = roster[&name];
                let mut new_salary = old_salary + rng.gen_range(5..25) as i64;
                if new_salary == old_salary {
                    new_salary += 1;
                }
                roster.insert(name.clone(), (d, new_salary));
                delta.push_modify(
                    tuple![name.clone(), dname_of(d), old_salary],
                    tuple![name, dname_of(d), new_salary],
                    1,
                );
            }
            out.push(("Emp".to_string(), delta));
        }
    }
    out
}

/// One client's stream for the multi-client serving benchmark: the
/// [`mixed_workload`] transaction mix restricted to the department domain
/// `{d : d % clients == client}` of data loaded by [`load_paper_data`],
/// with a per-client hire namespace.
///
/// Clients own pairwise-disjoint departments, employees, and hire names,
/// so **any** interleaving of the per-client streams that preserves each
/// stream's internal order is a valid transaction sequence (every delta
/// still references the exact pre-state of its tuples). That is precisely
/// the guarantee the footprint scheduler gives — per-shard admission
/// order — because every tuple lives in exactly one shard.
pub fn client_workload(
    departments: usize,
    emps_per_dept: usize,
    count: usize,
    seed: u64,
    client: usize,
    clients: usize,
) -> Vec<(String, Delta)> {
    assert!(clients > 0 && client < clients, "client id within stream count");
    let depts: Vec<usize> = (0..departments).filter(|d| d % clients == client).collect();
    assert!(!depts.is_empty(), "every client needs at least one department");
    let mut rng = StdRng::seed_from_u64(seed ^ ((client as u64) << 32));
    let mut names: Vec<String> = Vec::with_capacity(depts.len() * emps_per_dept);
    let mut roster: std::collections::HashMap<String, (usize, i64)> =
        std::collections::HashMap::new();
    for &d in &depts {
        for e in 0..emps_per_dept {
            let name = format!("emp{d:05}_{e}");
            roster.insert(name.clone(), (d, 100));
            names.push(name);
        }
    }
    let mut budgets: std::collections::HashMap<usize, i64> = std::collections::HashMap::new();
    let default_budget = (emps_per_dept as i64) * 200;
    let mut hired = 0usize;
    let dname_of = |d: usize| format!("dept{d:05}");
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let mut roll = rng.gen_range(0..100);
        if (45..75).contains(&roll) && names.len() < 2 {
            roll = 0;
        }
        if (85..100).contains(&roll) && names.len() < 4 {
            roll = 0;
        }
        if roll < 45 {
            // Salary modification.
            let i = rng.gen_range(0..names.len());
            let name = names[i].clone();
            let (d, old_salary) = roster[&name];
            let mut new_salary = rng.gen_range(50..250);
            if new_salary == old_salary {
                new_salary += 1;
            }
            roster.insert(name.clone(), (d, new_salary));
            out.push((
                "Emp".to_string(),
                Delta::modify(
                    tuple![name.clone(), dname_of(d), old_salary],
                    tuple![name, dname_of(d), new_salary],
                    1,
                ),
            ));
        } else if roll < 60 {
            // Hire into one of this client's departments.
            let d = depts[rng.gen_range(0..depts.len())];
            let salary = rng.gen_range(50..250) as i64;
            let name = format!("hire{client:02}x{hired:06}");
            hired += 1;
            roster.insert(name.clone(), (d, salary));
            names.push(name.clone());
            out.push((
                "Emp".to_string(),
                Delta::insert(tuple![name, dname_of(d), salary], 1),
            ));
        } else if roll < 75 {
            // Departure.
            let i = rng.gen_range(0..names.len());
            let name = names.swap_remove(i);
            let (d, salary) = roster.remove(&name).expect("rostered");
            out.push((
                "Emp".to_string(),
                Delta::delete(tuple![name, dname_of(d), salary], 1),
            ));
        } else if roll < 85 {
            // Budget change.
            let d = depts[rng.gen_range(0..depts.len())];
            let old_budget = *budgets.entry(d).or_insert(default_budget);
            let mut new_budget = rng.gen_range(500..3_000) as i64;
            if new_budget == old_budget {
                new_budget += 1;
            }
            budgets.insert(d, new_budget);
            out.push((
                "Dept".to_string(),
                Delta::modify(
                    tuple![dname_of(d), format!("mgr{d}"), old_budget],
                    tuple![dname_of(d), format!("mgr{d}"), new_budget],
                    1,
                ),
            ));
        } else {
            // Across-the-board raise: up to sixteen of this client's
            // employees in one transaction — the natural cross-shard case
            // once departments hash to different shard domains.
            let k = rng.gen_range(8..17).min(names.len());
            let mut picked = std::collections::BTreeSet::new();
            while picked.len() < k {
                picked.insert(rng.gen_range(0..names.len()));
            }
            let mut delta = Delta::new();
            for i in picked {
                let name = names[i].clone();
                let (d, old_salary) = roster[&name];
                let mut new_salary = old_salary + rng.gen_range(5..25) as i64;
                if new_salary == old_salary {
                    new_salary += 1;
                }
                roster.insert(name.clone(), (d, new_salary));
                delta.push_modify(
                    tuple![name.clone(), dname_of(d), old_salary],
                    tuple![name, dname_of(d), new_salary],
                    1,
                );
            }
            out.push(("Emp".to_string(), delta));
        }
    }
    out
}

/// Render a `Value` matrix as an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Convenience: keep `Value` import used and offer literal helpers.
pub fn str_value(s: &str) -> Value {
    Value::str(s)
}

/// The shared fixture for the crash-kill integration test: the child
/// process (`src/bin/crash_child.rs`) and the parent test
/// (`tests/crash_kill.rs`) must build bit-identical databases and
/// transactions, so both call these.
pub fn crash_fixture_db() -> Database {
    let mut db = paper_schema_db();
    load_paper_data(&mut db, 3, 4);
    db.execute_sql(
        "CREATE MATERIALIZED VIEW DeptProfile AS \
         SELECT DName, COUNT(*) AS Heads, MAX(Salary) AS TopSal \
         FROM Emp GROUP BY DName",
    )
    .unwrap();
    db.execute_sql("CREATE MATERIALIZED VIEW ActiveDepts AS SELECT DISTINCT DName FROM Emp")
        .unwrap();
    db
}

/// The `i`-th crash-fixture transaction: a deterministic single-row
/// Emp insert (fresh primary key, so it always succeeds).
pub fn crash_fixture_txn(i: usize) -> Vec<(String, Delta)> {
    let t = Tuple::new(vec![
        Value::str(format!("kill_e{i:04}")),
        Value::str(format!("dept{:05}", i % 3)),
        Value::Int(100 + i as i64),
    ]);
    vec![("Emp".to_string(), Delta::insert(t, 1))]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_data_loads_scaled() {
        let mut db = paper_schema_db();
        load_paper_data(&mut db, 20, 5);
        assert_eq!(db.catalog.table("Dept").unwrap().relation.len(), 20);
        assert_eq!(db.catalog.table("Emp").unwrap().relation.len(), 100);
        assert_eq!(db.catalog.table("Emp").unwrap().stats.distinct[&1], 20);
    }

    #[test]
    fn stats_catalog_matches_paper_parameters() {
        let cat = paper_stats_catalog();
        let emp = cat.table("Emp").unwrap();
        assert_eq!(emp.stats.cardinality, 10_000);
        assert_eq!(emp.stats.avg_group_size(1), 10.0);
        let dept = cat.table("Dept").unwrap();
        assert_eq!(dept.stats.cardinality, 1_000);
        assert!(dept.cols_contain_key(&[0]));
    }

    #[test]
    fn update_streams_are_reproducible_and_consistent() {
        let a = random_emp_updates(10, 5, 30, 42);
        let b = random_emp_updates(10, 5, 30, 42);
        assert_eq!(a.len(), b.len());
        for ((ta, da), (tb, dbb)) in a.iter().zip(&b) {
            assert_eq!(ta, tb);
            assert_eq!(da, dbb);
        }
        // The stream tracks its own salary state: applying it to a loaded
        // database must never reference a non-existent tuple.
        let mut db = paper_schema_db();
        load_paper_data(&mut db, 10, 5);
        for (table, delta) in a {
            db.apply_delta(&table, delta).unwrap();
        }
    }

    #[test]
    fn dept_updates_apply_cleanly() {
        let mut db = paper_schema_db();
        load_paper_data(&mut db, 10, 5);
        for (table, delta) in random_dept_updates(10, 5, 10, 7) {
            db.apply_delta(&table, delta).unwrap();
        }
    }

    #[test]
    fn mixed_workload_is_reproducible_and_applies_cleanly() {
        let a = mixed_workload(10, 5, 60, 99);
        let b = mixed_workload(10, 5, 60, 99);
        assert_eq!(a, b);
        // Must contain all four transaction kinds at this size.
        let inserts = a.iter().filter(|(_, d)| !d.inserts.is_empty()).count();
        let deletes = a.iter().filter(|(_, d)| !d.deletes.is_empty()).count();
        let dept_mods = a.iter().filter(|(t, _)| t == "Dept").count();
        assert!(inserts > 0 && deletes > 0 && dept_mods > 0);
        // Every delta references the exact pre-update state of its tuple.
        let mut db = paper_schema_db();
        load_paper_data(&mut db, 10, 5);
        for (table, delta) in a {
            db.apply_delta(&table, delta).unwrap();
        }
    }

    #[test]
    fn propagation_modes_agree_end_to_end() {
        use spacetime_ivm::{verify_all_views, PropagationMode};
        let build = |mode: PropagationMode| {
            let mut db = paper_schema_db();
            db.set_propagation_mode(mode);
            load_paper_data(&mut db, 10, 5);
            db.execute_sql(
                "CREATE MATERIALIZED VIEW DeptProfile AS \
                 SELECT DName, COUNT(*) AS Heads, MAX(Salary) AS TopSal \
                 FROM Emp GROUP BY DName",
            )
            .unwrap();
            db.execute_sql("CREATE MATERIALIZED VIEW ActiveDepts AS SELECT DISTINCT DName FROM Emp")
                .unwrap();
            db
        };
        let mut pk = build(PropagationMode::PerKey);
        let mut ba = build(PropagationMode::Batched);
        for (table, delta) in mixed_workload(10, 5, 50, 7) {
            let r_pk = pk.apply_delta(&table, delta.clone()).unwrap();
            let r_ba = ba.apply_delta(&table, delta).unwrap();
            assert_eq!(r_pk, r_ba, "charged I/O must not depend on the mode");
        }
        for name in ["DeptProfile", "ActiveDepts"] {
            assert_eq!(
                pk.catalog.table(name).unwrap().relation.data(),
                ba.catalog.table(name).unwrap().relation.data(),
                "{name} diverged between modes"
            );
        }
        assert!(verify_all_views(&pk).unwrap().is_empty());
        assert!(verify_all_views(&ba).unwrap().is_empty());
    }

    #[test]
    fn client_workloads_are_disjoint_and_interleavable() {
        let clients = 4;
        let streams: Vec<_> = (0..clients)
            .map(|c| client_workload(12, 5, 40, 77, c, clients))
            .collect();
        // Reproducible.
        assert_eq!(streams[1], client_workload(12, 5, 40, 77, 1, clients));
        // Each stream touches only its own departments.
        for (c, stream) in streams.iter().enumerate() {
            for (table, delta) in stream {
                for keys in delta.touched_keys(&[if table == "Emp" { 1 } else { 0 }]) {
                    let dname = keys[0].as_str().unwrap().to_string();
                    let d: usize = dname.trim_start_matches("dept").parse().unwrap();
                    assert_eq!(d % clients, c, "client {c} touched {dname}");
                }
            }
        }
        // A round-robin interleave applies cleanly to loaded paper data.
        let mut db = paper_schema_db();
        load_paper_data(&mut db, 12, 5);
        let longest = streams.iter().map(Vec::len).max().unwrap();
        for k in 0..longest {
            for stream in &streams {
                if let Some((table, delta)) = stream.get(k) {
                    db.apply_delta(table, delta.clone()).unwrap();
                }
            }
        }
    }

    #[test]
    fn render_table_aligns() {
        let out = render_table(
            &["a", "bb"],
            &[
                vec!["xxx".into(), "y".into()],
                vec!["z".into(), "wwww".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a    bb"));
        assert!(lines[1].chars().all(|c| c == '-'));
    }
}

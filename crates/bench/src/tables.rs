//! The experiment harness: every table and figure of the paper's
//! evaluation, regenerated from this implementation and checked against
//! the paper's reported values.
//!
//! Each function returns a [`Section`]; the `paper_tables`/`paper_figures`
//! binaries print them, and `EXPERIMENTS.md` records their output.

use std::collections::BTreeMap;

use spacetime_cost::{Cost, CostCtx, Marking, PageIoCostModel, TransactionType};
use spacetime_ivm::{verify_all_views, ViewSelection};
use spacetime_memo::{articulation_groups, GroupId};
use spacetime_optimizer::candidates::render_view_set;
use spacetime_optimizer::exhaustive::optimal_view_set_over;
use spacetime_optimizer::heuristics::{rule_of_thumb_optimize, single_tree_optimize};
use spacetime_optimizer::{
    evaluate_view_set, greedy_add, optimal_view_set, shielding_optimize, EvalConfig, ViewSet,
};

use crate::scenarios::{adepts_status, paper_names, problem_dept, PaperScenario};
use crate::workload::{load_paper_data, paper_schema_db, render_table};

/// One experiment's output.
#[derive(Debug, Clone)]
pub struct Section {
    /// Experiment id (DESIGN.md's index).
    pub id: &'static str,
    /// Title line.
    pub title: String,
    /// Rendered body.
    pub body: String,
    /// Whether the result matches the paper's reported values
    /// (`None` when the paper gives no number to compare).
    pub matches_paper: Option<bool>,
}

impl Section {
    /// Render with a status marker.
    pub fn render(&self) -> String {
        let marker = match self.matches_paper {
            Some(true) => " [matches paper ✓]",
            Some(false) => " [MISMATCH ✗]",
            None => "",
        };
        format!(
            "== {}: {}{} ==\n{}\n",
            self.id, self.title, marker, self.body
        )
    }
}

struct PaperCtx {
    scenario: PaperScenario,
    names: BTreeMap<String, GroupId>,
}

fn paper_ctx() -> PaperCtx {
    let scenario = problem_dept();
    let names: BTreeMap<String, GroupId> = paper_names(&scenario.memo, scenario.root)
        .into_iter()
        .map(|(g, n)| (n.to_string(), g))
        .collect();
    PaperCtx { scenario, names }
}

fn marking(ctx: &PaperCtx, extra: &[&str]) -> Marking {
    extra.iter().map(|n| ctx.names[*n]).collect()
}

fn view_set(ctx: &PaperCtx, extra: &[&str]) -> ViewSet {
    let mut set: ViewSet = extra.iter().map(|n| ctx.names[*n]).collect();
    set.insert(ctx.scenario.root);
    set
}

/// T1 — the §3.6 query-cost table: each posed query under ∅ / {N3} / {N4}.
pub fn t1_query_costs() -> Section {
    let ctx = paper_ctx();
    let model = PageIoCostModel::default();
    let mut cc = CostCtx::new(&ctx.scenario.memo, &ctx.scenario.catalog, &model);
    let none = Marking::new();
    let m3 = marking(&ctx, &["N3"]);
    let m4 = marking(&ctx, &["N4"]);
    let n3 = ctx.names["N3"];
    let n4 = ctx.names["N4"];
    let emp = ctx.names["N5"];
    let dept = ctx.names["N6"];

    // (label, queried node, binding cols, paper's row "∅/{N3}/{N4}",
    //  posed-under mask: None entry means "not posed" under that set).
    type QueryRow = (&'static str, GroupId, Vec<usize>, [Option<f64>; 3]);
    let queries: Vec<QueryRow> = vec![
        ("Q2Ld", n3, vec![0], [Some(11.0), Some(2.0), Some(11.0)]),
        ("Q2Re", dept, vec![0], [Some(2.0), Some(2.0), Some(2.0)]),
        ("Q3e", n4, vec![3, 5], [Some(13.0), Some(13.0), Some(11.0)]),
        ("Q4e", emp, vec![1], [Some(11.0), None, Some(11.0)]),
        ("Q5Ld", emp, vec![1], [Some(11.0), Some(11.0), Some(11.0)]),
        ("Q5Re", dept, vec![0], [Some(2.0), Some(2.0), Some(2.0)]),
    ];
    let mut rows = Vec::new();
    let mut all_ok = true;
    for (label, g, cols, paper) in &queries {
        let mut cells = vec![label.to_string()];
        for (mi, m) in [&none, &m3, &m4].into_iter().enumerate() {
            match paper[mi] {
                Some(expected) => {
                    let got = cc.query_cost(*g, cols, m);
                    if (got.value() - expected).abs() > 1e-9 {
                        all_ok = false;
                        cells.push(format!("{got} (paper: {expected})"));
                    } else {
                        cells.push(format!("{got}"));
                    }
                }
                None => cells.push("—".to_string()),
            }
        }
        rows.push(cells);
    }
    Section {
        id: "T1",
        title: "query costs (page I/Os) under view sets ∅ / {N3} / {N4}".into(),
        body: render_table(&["query", "∅", "{N3}", "{N4}"], &rows),
        matches_paper: Some(all_ok),
    }
}

/// T2 — the materialization (update-application) cost table.
pub fn t2_maintenance_costs() -> Section {
    let ctx = paper_ctx();
    let model = PageIoCostModel::default();
    let mut cc = CostCtx::new(&ctx.scenario.memo, &ctx.scenario.catalog, &model);
    let t_emp = &ctx.scenario.txns[0];
    let t_dept = &ctx.scenario.txns[1];
    let cases = [
        ("N3", t_emp, 3.0),
        ("N3", t_dept, 0.0),
        ("N4", t_emp, 3.0),
        ("N4", t_dept, 21.0),
    ];
    let mut rows = Vec::new();
    let mut all_ok = true;
    for (node, txn, expected) in cases {
        let got = cc.update_apply_cost(ctx.names[node], txn);
        if (got.value() - expected).abs() > 1e-9 {
            all_ok = false;
        }
        rows.push(vec![
            node.to_string(),
            txn.name.clone(),
            got.to_string(),
            format!("{expected}"),
        ]);
    }
    Section {
        id: "T2",
        title: "cost of maintaining each candidate materialization".into(),
        body: render_table(&["view", "txn", "cost", "paper"], &rows),
        matches_paper: Some(all_ok),
    }
}

/// T3 — per-update-track query costs under each view set.
pub fn t3_track_costs() -> Section {
    let ctx = paper_ctx();
    let model = PageIoCostModel::default();
    let sets: Vec<(&str, ViewSet)> = vec![
        ("∅", view_set(&ctx, &[])),
        ("{N3}", view_set(&ctx, &["N3"])),
        ("{N4}", view_set(&ctx, &["N4"])),
    ];
    let config = EvalConfig::default();
    let mut rows = Vec::new();
    let rev_names: BTreeMap<GroupId, String> =
        ctx.names.iter().map(|(n, &g)| (g, n.clone())).collect();
    for txn in &ctx.scenario.txns {
        // Collect per-track costs per set; tracks identified by rendering.
        let mut per_track: BTreeMap<String, BTreeMap<&str, Cost>> = BTreeMap::new();
        for (set_name, set) in &sets {
            let mut cc = CostCtx::new(&ctx.scenario.memo, &ctx.scenario.catalog, &model);
            let eval = evaluate_view_set(
                &mut cc,
                &ctx.scenario.catalog,
                ctx.scenario.root,
                set,
                std::slice::from_ref(txn),
                &config,
            );
            for te in &eval.per_txn[0].tracks {
                let label = te.track.render(
                    &ctx.scenario.memo,
                    |g| {
                        rev_names
                            .get(&ctx.scenario.memo.find(g))
                            .cloned()
                            .unwrap_or_else(|| format!("n{}", g.0))
                    },
                    |o| format!("E{}", o.0),
                );
                per_track
                    .entry(format!("{} {}", txn.name, label))
                    .or_default()
                    .insert(set_name, te.query_cost);
            }
        }
        for (label, costs) in per_track {
            rows.push(vec![
                label,
                costs.get("∅").map(|c| c.to_string()).unwrap_or("—".into()),
                costs
                    .get("{N3}")
                    .map(|c| c.to_string())
                    .unwrap_or("—".into()),
                costs
                    .get("{N4}")
                    .map(|c| c.to_string())
                    .unwrap_or("—".into()),
            ]);
        }
    }
    // The paper's key facts: min >Emp track costs 13/2/13; min >Dept
    // track costs 11/2/11 (checked in T4); here we just show the detail.
    Section {
        id: "T3",
        title: "update-track query costs (all tracks, per view set)".into(),
        body: render_table(&["track", "∅", "{N3}", "{N4}"], &rows),
        matches_paper: None,
    }
}

/// T4 — the combined (query + maintenance) per-transaction table and the
/// weighted averages.
pub fn t4_combined_costs() -> Section {
    let ctx = paper_ctx();
    let model = PageIoCostModel::default();
    let config = EvalConfig::default();
    let sets: Vec<(&str, ViewSet)> = vec![
        ("∅", view_set(&ctx, &[])),
        ("{N3}", view_set(&ctx, &["N3"])),
        ("{N4}", view_set(&ctx, &["N4"])),
    ];
    let paper: BTreeMap<(&str, &str), f64> = [
        ((">Emp", "∅"), 13.0),
        ((">Dept", "∅"), 11.0),
        ((">Emp", "{N3}"), 5.0),
        ((">Dept", "{N3}"), 2.0),
        ((">Emp", "{N4}"), 16.0),
        ((">Dept", "{N4}"), 32.0),
    ]
    .into_iter()
    .collect();
    let mut rows = Vec::new();
    let mut all_ok = true;
    let mut weighted = Vec::new();
    for (set_name, set) in &sets {
        let mut cc = CostCtx::new(&ctx.scenario.memo, &ctx.scenario.catalog, &model);
        let eval = evaluate_view_set(
            &mut cc,
            &ctx.scenario.catalog,
            ctx.scenario.root,
            set,
            &ctx.scenario.txns,
            &config,
        );
        weighted.push((set_name.to_string(), eval.weighted));
        for te in &eval.per_txn {
            let expected = paper[&(te.txn_name.as_str(), *set_name)];
            if (te.total.value() - expected).abs() > 1e-9 {
                all_ok = false;
            }
            rows.push(vec![
                te.txn_name.clone(),
                set_name.to_string(),
                te.total.to_string(),
                format!("{expected}"),
            ]);
        }
    }
    let mut body = render_table(&["txn", "set", "total", "paper"], &rows);
    body.push('\n');
    for (name, w) in weighted {
        body.push_str(&format!("weighted average {name}: {w}\n"));
    }
    Section {
        id: "T4",
        title: "combined cost per (transaction, view set)".into(),
        body,
        matches_paper: Some(all_ok),
    }
}

/// H1 — the headline: {N3} averages 3.5 page I/Os vs 12 for ∅ (~30%),
/// both estimated and *measured* against real data.
pub fn h1_headline() -> Section {
    let ctx = paper_ctx();
    let model = PageIoCostModel::default();
    let config = EvalConfig::default();
    let mut cc = CostCtx::new(&ctx.scenario.memo, &ctx.scenario.catalog, &model);
    let e_none = evaluate_view_set(
        &mut cc,
        &ctx.scenario.catalog,
        ctx.scenario.root,
        &view_set(&ctx, &[]),
        &ctx.scenario.txns,
        &config,
    );
    let e_n3 = evaluate_view_set(
        &mut cc,
        &ctx.scenario.catalog,
        ctx.scenario.root,
        &view_set(&ctx, &["N3"]),
        &ctx.scenario.txns,
        &config,
    );

    // Measured: run the actual engine over loaded data.
    let measured = |selection: ViewSelection| -> (f64, f64) {
        let mut db = paper_schema_db();
        db.set_view_selection(selection);
        load_paper_data(&mut db, 1000, 10);
        db.declare_workload(vec![
            TransactionType::modify(">Emp", "Emp", 1.0),
            TransactionType::modify(">Dept", "Dept", 1.0),
        ]);
        db.execute_sql(
            "CREATE MATERIALIZED VIEW ProblemDept (DName) AS \
             SELECT Dept.DName FROM Emp, Dept WHERE Dept.DName = Emp.DName \
             GROUP BY Dept.DName, Budget HAVING SUM(Salary) > Budget",
        )
        .expect("view");
        let r_emp = db
            .execute_sql("UPDATE Emp SET Salary = 130 WHERE EName = 'emp00042_3'")
            .expect(">Emp update");
        let emp_cost = match r_emp {
            spacetime_ivm::database::SqlOutcome::Updated { report, .. } => {
                report.paper_cost() as f64
            }
            _ => unreachable!(),
        };
        let r_dept = db
            .execute_sql("UPDATE Dept SET Budget = 2500 WHERE DName = 'dept00007'")
            .expect(">Dept update");
        let dept_cost = match r_dept {
            spacetime_ivm::database::SqlOutcome::Updated { report, .. } => {
                report.paper_cost() as f64
            }
            _ => unreachable!(),
        };
        assert!(verify_all_views(&db).expect("verify").is_empty());
        (emp_cost, dept_cost)
    };
    let (m_emp_none, m_dept_none) = measured(ViewSelection::RootOnly);
    let (m_emp_n3, m_dept_n3) = measured(ViewSelection::Exhaustive);

    let est_ratio = e_n3.weighted / e_none.weighted;
    let meas_none = (m_emp_none + m_dept_none) / 2.0;
    let meas_n3 = (m_emp_n3 + m_dept_n3) / 2.0;
    let meas_ratio = meas_n3 / meas_none;
    let ok = (e_none.weighted - 12.0).abs() < 1e-9
        && (e_n3.weighted - 3.5).abs() < 1e-9
        && (meas_none - 12.0).abs() < 1e-9
        && (meas_n3 - 3.5).abs() < 1e-9;
    let body = render_table(
        &["metric", "∅", "{N3} (optimal)", "ratio"],
        &[
            vec![
                "estimated avg page I/Os".into(),
                format!("{}", e_none.weighted),
                format!("{}", e_n3.weighted),
                format!("{:.1}%", est_ratio * 100.0),
            ],
            vec![
                "measured avg page I/Os".into(),
                format!("{meas_none}"),
                format!("{meas_n3}"),
                format!("{:.1}%", meas_ratio * 100.0),
            ],
            vec![
                "paper".into(),
                "12".into(),
                "3.5".into(),
                "~30% (\"threefold decrease\")".into(),
            ],
        ],
    );
    Section {
        id: "H1",
        title: "headline reduction (equal transaction weights)".into(),
        body,
        matches_paper: Some(ok),
    }
}

/// E-SPJ — the §3 candidate enumeration for R1⋈R2⋈R3.
pub fn espj_enumeration() -> Section {
    let s = crate::scenarios::join_chain(3);
    let candidates = spacetime_optimizer::candidate_groups(&s.memo, s.root);
    let join_candidates: Vec<GroupId> = candidates
        .iter()
        .copied()
        .filter(|&g| {
            s.memo
                .group_ops(g)
                .iter()
                .any(|&o| matches!(s.memo.op(o).op, spacetime_algebra::OpKind::Join { .. }))
        })
        .collect();
    let sets = spacetime_optimizer::enumerate_view_sets(s.root, &join_candidates, Some(2));
    let mut body = format!(
        "join-chain R1⋈R2⋈R3: {} candidate equivalence nodes ({} join-shaped)\n",
        candidates.len(),
        join_candidates.len()
    );
    body.push_str(&format!(
        "view sets with ≤2 additional join views: {} (the paper lists 7 for its example)\n",
        sets.len()
    ));
    Section {
        id: "E-SPJ",
        title: "candidate view sets for the SPJ example".into(),
        body,
        matches_paper: Some(sets.len() >= 7),
    }
}

/// E-HEUR — §5 heuristics vs the exhaustive optimum.
pub fn eheur_strategies() -> Section {
    let ctx = paper_ctx();
    let model = PageIoCostModel::default();
    let config = EvalConfig::default();
    let s = &ctx.scenario;
    let ex = optimal_view_set(&s.memo, &s.catalog, &model, s.root, &s.txns, &config);
    let sh = shielding_optimize(&s.memo, &s.catalog, &model, s.root, &s.txns, &config);
    let gr = greedy_add(&s.memo, &s.catalog, &model, s.root, &s.txns, &config);
    let st = single_tree_optimize(
        &s.memo, &s.catalog, &model, s.root, &s.tree, &s.txns, &config,
    );
    let rt = rule_of_thumb_optimize(
        &s.memo, &s.catalog, &model, s.root, &s.tree, &s.txns, &config,
    );
    let rows: Vec<Vec<String>> = [
        ("exhaustive (Fig. 4)", &ex),
        ("shielding (§4)", &sh),
        ("greedy (§5)", &gr),
        ("single-tree (§5)", &st),
        ("rule-of-thumb (§5)", &rt),
    ]
    .into_iter()
    .map(|(name, o)| {
        vec![
            name.to_string(),
            format!("{}", o.best.weighted),
            render_view_set(&o.best.view_set, s.root, |g| {
                paper_names(&s.memo, s.root)
                    .into_iter()
                    .find(|&(gg, _)| gg == s.memo.find(g))
                    .map(|(_, n)| n.to_string())
                    .unwrap_or_else(|| format!("n{}", g.0))
            }),
            o.sets_considered.to_string(),
        ]
    })
    .collect();
    let ok = sh.best.weighted == ex.best.weighted && gr.best.weighted == ex.best.weighted;
    Section {
        id: "E-HEUR",
        title: "search strategies on the motivating example".into(),
        body: render_table(
            &["strategy", "weighted cost", "chosen set", "sets evaluated"],
            &rows,
        ),
        matches_paper: Some(ok),
    }
}

/// F3 — Example 3.1: query-optimal plan vs maintenance-optimal
/// materialization for ADeptsStatus.
pub fn f3_adepts_status() -> Section {
    let s = adepts_status();
    let model = PageIoCostModel::default();
    // Cap tracks per evaluation: the three-way-join DAG admits thousands
    // of (mostly redundant commuted/projected) tracks; 128 comfortably
    // covers the distinct query-cost profiles.
    let config = EvalConfig {
        max_tracks: 128,
        ..EvalConfig::default()
    };
    // The explored ADeptsStatus DAG has ~20 candidate nodes; the fully
    // exhaustive 2^20 space is exactly the explosion §5 warns about.
    // Since the expected optimum ({V1}) is a singleton, searching all
    // sets with ≤2 additional views is exhaustive *enough* here and keeps
    // the experiment tractable (the E-SCALE bench shows the blowup).
    let candidates = spacetime_optimizer::candidate_groups(&s.memo, s.root);
    let outcome = optimal_view_set_over(
        &s.memo,
        &s.catalog,
        &model,
        s.root,
        &candidates,
        &s.txns,
        &config,
        Some(2),
    );
    let extras = outcome.additional_views(&s.memo, s.root);
    let mut body = String::new();
    body.push_str("original (query-optimization-shaped) tree:\n");
    body.push_str(&s.tree.render());
    body.push_str(&format!(
        "\nchosen additional views: {} (weighted cost {})\n",
        extras.len(),
        outcome.best.weighted
    ));
    for &g in &extras {
        body.push_str(&format!(
            "\nmaterialized V1-style subview [{}]:\n{}",
            s.memo.schema(g),
            s.memo.extract_one(g).render()
        ));
    }
    // `evaluated` keeps only the top-K sets, so price ∅ directly.
    let empty_eval = {
        let mut ctx = CostCtx::new(&s.memo, &s.catalog, &model);
        let empty: ViewSet = [s.root].into_iter().collect();
        evaluate_view_set(&mut ctx, &s.catalog, s.root, &empty, &s.txns, &config)
    };
    body.push_str(&format!(
        "\n∅ costs {} vs optimal {} — materializing V1 pays for itself because \
         \"view V1 does not need to be updated\" under ADepts-only updates.\n",
        empty_eval.weighted, outcome.best.weighted
    ));
    // Shape check: an ADepts-free subview is materialized and beats ∅.
    let v1_is_adepts_free = extras
        .iter()
        .any(|&g| !s.memo.extract_one(g).leaf_tables().contains(&"ADepts"));
    Section {
        id: "F3",
        title: "ADeptsStatus: maintenance-optimal ≠ query-optimal (Example 3.1)".into(),
        body,
        matches_paper: Some(v1_is_adepts_free && outcome.best.weighted < empty_eval.weighted),
    }
}

/// F5 — articulation nodes in the Figure 5 DAG.
pub fn f5_articulation() -> Section {
    let s = crate::scenarios::figure5();
    let arts = articulation_groups(&s.memo, s.root);
    let mut body = String::new();
    body.push_str("view tree:\n");
    body.push_str(&s.tree.render());
    body.push_str(&format!(
        "\narticulation equivalence nodes: {}\n",
        arts.len()
    ));
    // The aggregate group must be among them.
    let agg_group = s.memo.groups().find(|&g| {
        s.memo
            .group_ops(g)
            .iter()
            .any(|&o| matches!(s.memo.op(o).op, spacetime_algebra::OpKind::Aggregate { .. }))
    });
    let ok = agg_group
        .map(|g| arts.contains(&s.memo.find(g)))
        .unwrap_or(false);
    body.push_str(&format!(
        "aggregate's equivalence node is an articulation point: {}\n",
        ok
    ));
    Section {
        id: "F5",
        title: "the aggregation node is a natural articulation point (§4.2)".into(),
        body,
        matches_paper: Some(ok),
    }
}

/// All estimated-side sections in order.
pub fn all_table_sections() -> Vec<Section> {
    vec![
        t1_query_costs(),
        t2_maintenance_costs(),
        t3_track_costs(),
        t4_combined_costs(),
        h1_headline(),
        espj_enumeration(),
        eheur_strategies(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_matches() {
        assert_eq!(t1_query_costs().matches_paper, Some(true));
    }

    #[test]
    fn t2_matches() {
        assert_eq!(t2_maintenance_costs().matches_paper, Some(true));
    }

    #[test]
    fn t4_matches() {
        let s = t4_combined_costs();
        assert_eq!(s.matches_paper, Some(true), "{}", s.body);
    }

    #[test]
    fn h1_matches_estimated_and_measured() {
        let s = h1_headline();
        assert_eq!(s.matches_paper, Some(true), "{}", s.body);
    }

    #[test]
    fn heuristic_section_consistent() {
        let s = eheur_strategies();
        assert_eq!(s.matches_paper, Some(true), "{}", s.body);
    }

    #[test]
    fn f3_finds_v1() {
        let s = f3_adepts_status();
        assert_eq!(s.matches_paper, Some(true), "{}", s.body);
    }

    #[test]
    fn f5_confirms_articulation() {
        let s = f5_articulation();
        assert_eq!(s.matches_paper, Some(true), "{}", s.body);
    }
}

//! E-PAR driver: times the view-set search engine in its three modes —
//! serial, parallel, parallel + branch-and-bound pruning — on the
//! `scaling_workload` scenario and writes the results to
//! `BENCH_optimizer.json` in the current directory.
//!
//! Criterion is a dev-dependency (benches only), so this binary measures
//! with plain `std::time::Instant` and emits the JSON by hand. Run it
//! from the workspace root:
//!
//! ```text
//! cargo run --release -p spacetime-bench --bin bench_search
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use spacetime_bench::scenarios::scaling_workload;
use spacetime_optimizer::{
    candidate_groups, optimal_view_set_over, EvalConfig, OptimizeOutcome, PageIoCostModel,
};

const MAX_EXTRA: usize = 2;
const MAX_TRACKS: usize = 64;
const REPS: usize = 3;

struct Measured {
    name: &'static str,
    parallelism: usize,
    prune: bool,
    wall_s: Vec<f64>,
    outcome: OptimizeOutcome,
}

impl Measured {
    fn min_s(&self) -> f64 {
        self.wall_s.iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn mean_s(&self) -> f64 {
        self.wall_s.iter().sum::<f64>() / self.wall_s.len() as f64
    }
}

fn main() {
    let s = scaling_workload();
    let model = PageIoCostModel::default();
    let candidates = candidate_groups(&s.memo, s.root);
    let nproc = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let configs: [(&'static str, usize, bool); 3] = [
        ("serial", 1, false),
        ("parallel", 0, false),
        ("parallel_prune", 0, true),
    ];

    let mut measured: Vec<Measured> = Vec::new();
    for (name, parallelism, prune) in configs {
        let config = EvalConfig {
            parallelism,
            prune,
            max_tracks: MAX_TRACKS,
            ..EvalConfig::default()
        };
        let run = || {
            optimal_view_set_over(
                &s.memo,
                &s.catalog,
                &model,
                s.root,
                &candidates,
                &s.txns,
                &config,
                Some(MAX_EXTRA),
            )
        };
        // One untimed warmup run absorbs first-touch page faults and
        // allocator growth, which otherwise dominate the first sample.
        let mut outcome = run();
        let mut wall_s = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let t0 = Instant::now();
            outcome = run();
            wall_s.push(t0.elapsed().as_secs_f64());
        }
        eprintln!(
            "{name:15} min {:>8.3}s  mean {:>8.3}s  best {:.2}  pruned {}/{}",
            wall_s.iter().copied().fold(f64::INFINITY, f64::min),
            wall_s.iter().sum::<f64>() / wall_s.len() as f64,
            outcome.best.weighted,
            outcome.sets_pruned,
            outcome.sets_considered,
        );
        measured.push(Measured {
            name,
            parallelism,
            prune,
            wall_s,
            outcome,
        });
    }

    // Exactness check: every mode must agree on the winner, bit for bit.
    let baseline = &measured[0].outcome;
    for m in &measured[1..] {
        assert_eq!(
            m.outcome.best.view_set, baseline.best.view_set,
            "{} found a different best set than serial",
            m.name
        );
        assert_eq!(
            m.outcome.best.weighted.to_bits(),
            baseline.best.weighted.to_bits(),
            "{} found a different best cost than serial",
            m.name
        );
    }

    // The shared query-cost cache keys on the *narrowed* marking slice, so
    // distinct view sets priced by different workers must actually collide.
    // The timed configs use one worker per core, which on a single-core
    // host leaves nothing to share across — so probe with an explicit
    // 4-worker search (threads interleave; sharing is about key collisions,
    // not cores). Zero hits here means narrowing regressed into
    // full-marking keys.
    let probe_config = EvalConfig {
        parallelism: 4,
        prune: false,
        max_tracks: MAX_TRACKS,
        ..EvalConfig::default()
    };
    let probe = optimal_view_set_over(
        &s.memo,
        &s.catalog,
        &model,
        s.root,
        &candidates,
        &s.txns,
        &probe_config,
        Some(MAX_EXTRA),
    );
    assert_eq!(
        probe.best.view_set, measured[0].outcome.best.view_set,
        "sharing probe found a different best set than serial"
    );
    assert!(
        probe.query_cache_hits > 0,
        "expected nonzero cross-worker shared query-cache hits (narrowed keys)"
    );
    eprintln!(
        "sharing probe (4 workers): {} cross-worker hits, {} misses",
        probe.query_cache_hits, probe.query_cache_misses
    );

    let serial_min = measured[0].min_s();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"optimizer_search\",\n");
    json.push_str("  \"scenario\": {\n");
    json.push_str("    \"name\": \"scaling_workload\",\n");
    let _ = writeln!(json, "    \"candidate_groups\": {},", candidates.len());
    let _ = writeln!(json, "    \"transaction_types\": {},", s.txns.len());
    let _ = writeln!(json, "    \"max_extra_views\": {MAX_EXTRA},");
    let _ = writeln!(json, "    \"max_tracks\": {MAX_TRACKS},");
    let _ = writeln!(
        json,
        "    \"view_sets\": {}",
        baseline.sets_considered
    );
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"nproc\": {nproc},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    json.push_str("  \"configs\": [\n");
    for (i, m) in measured.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(json, "      \"parallelism\": {},", m.parallelism);
        let _ = writeln!(json, "      \"prune\": {},", m.prune);
        let samples: Vec<String> = m.wall_s.iter().map(|t| format!("{t:.6}")).collect();
        let _ = writeln!(json, "      \"wall_s\": [{}],", samples.join(", "));
        let _ = writeln!(json, "      \"wall_s_min\": {:.6},", m.min_s());
        let _ = writeln!(json, "      \"wall_s_mean\": {:.6},", m.mean_s());
        let _ = writeln!(
            json,
            "      \"speedup_vs_serial\": {:.3},",
            serial_min / m.min_s()
        );
        let _ = writeln!(json, "      \"best_weighted\": {},", m.outcome.best.weighted);
        let _ = writeln!(
            json,
            "      \"best_extra_views\": {},",
            m.outcome.best.view_set.len() - 1
        );
        let _ = writeln!(
            json,
            "      \"sets_considered\": {},",
            m.outcome.sets_considered
        );
        let _ = writeln!(json, "      \"sets_pruned\": {},", m.outcome.sets_pruned);
        let _ = writeln!(
            json,
            "      \"tracks_truncated\": {},",
            m.outcome.tracks_truncated
        );
        let _ = writeln!(
            json,
            "      \"query_cache_hits\": {},",
            m.outcome.query_cache_hits
        );
        let _ = writeln!(
            json,
            "      \"query_cache_misses\": {}",
            m.outcome.query_cache_misses
        );
        json.push_str(if i + 1 == measured.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"cross_worker_probe\": {\n");
    json.push_str("    \"workers\": 4,\n");
    let _ = writeln!(
        json,
        "    \"query_cache_hits\": {},",
        probe.query_cache_hits
    );
    let _ = writeln!(
        json,
        "    \"query_cache_misses\": {}",
        probe.query_cache_misses
    );
    json.push_str("  },\n");
    // Search-progress metrics (sets considered/pruned, shared-cache
    // series, incumbent cost); empty in default builds.
    let _ = writeln!(
        json,
        "  \"metrics_recorded\": {},",
        spacetime_obs::compiled()
    );
    json.push_str("  \"metrics\": ");
    json.push_str(&spacetime_obs::snapshot().render_json());
    json.push_str("\n}\n");

    std::fs::write("BENCH_optimizer.json", &json).expect("write BENCH_optimizer.json");
    println!("wrote BENCH_optimizer.json");
}

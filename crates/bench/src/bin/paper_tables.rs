//! Regenerate every cost table of the paper's evaluation (§3.6), the
//! headline claim, and the §3/§5 shape experiments.
//!
//! ```text
//! cargo run -p spacetime-bench --release --bin paper_tables [--table t1|t2|t3|t4|h1|espj|eheur|f3|f5]
//! ```

use std::io::Write as _;

use spacetime_bench::tables::{
    all_table_sections, eheur_strategies, espj_enumeration, f3_adepts_status, f5_articulation,
    h1_headline, t1_query_costs, t2_maintenance_costs, t3_track_costs, t4_combined_costs,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args
        .iter()
        .position(|a| a == "--table")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_ascii_lowercase());

    let sections = match which.as_deref() {
        Some("t1") => vec![t1_query_costs()],
        Some("t2") => vec![t2_maintenance_costs()],
        Some("t3") => vec![t3_track_costs()],
        Some("t4") => vec![t4_combined_costs()],
        Some("h1") => vec![h1_headline()],
        Some("espj") => vec![espj_enumeration()],
        Some("eheur") => vec![eheur_strategies()],
        Some("f3") => vec![f3_adepts_status()],
        Some("f5") => vec![f5_articulation()],
        Some(other) => {
            eprintln!("unknown table `{other}`");
            std::process::exit(2);
        }
        None => {
            let mut all = all_table_sections();
            all.push(f3_adepts_status());
            all.push(f5_articulation());
            all
        }
    };

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let mut mismatches = 0;
    writeln!(
        lock,
        "Ross, Srivastava & Sudarshan (SIGMOD '96) — regenerated evaluation\n"
    )
    .expect("stdout");
    for s in &sections {
        writeln!(lock, "{}", s.render()).expect("stdout");
        if s.matches_paper == Some(false) {
            mismatches += 1;
        }
    }
    if mismatches > 0 {
        eprintln!("{mismatches} section(s) deviate from the paper");
        std::process::exit(1);
    }
}

//! Throwaway phase profiler (not part of the benchmark suite).

use std::time::Instant;

use spacetime_bench::workload::{load_paper_data, mixed_workload, paper_schema_db};
use spacetime_cost::TransactionType;
use spacetime_ivm::{PropagationMode, ViewSelection};

const VIEWS: [&str; 4] = [
    "CREATE MATERIALIZED VIEW ProblemDept (DName) AS \
     SELECT Dept.DName FROM Emp, Dept WHERE Dept.DName = Emp.DName \
     GROUP BY Dept.DName, Budget HAVING SUM(Salary) > Budget",
    "CREATE MATERIALIZED VIEW DeptProfile AS \
     SELECT DName, COUNT(*) AS Heads, MAX(Salary) AS TopSal \
     FROM Emp GROUP BY DName",
    "CREATE MATERIALIZED VIEW WellPaid AS \
     SELECT EName, Emp.DName, MName FROM Emp, Dept \
     WHERE Emp.DName = Dept.DName AND Salary > 150",
    "CREATE MATERIALIZED VIEW ActiveDepts AS SELECT DISTINCT DName FROM Emp",
];

fn main() {
    let mut db = paper_schema_db();
    db.set_view_selection(ViewSelection::Exhaustive);
    db.set_propagation_mode(PropagationMode::Batched);
    load_paper_data(&mut db, 1000, 10);
    db.declare_workload(vec![
        TransactionType::modify(">Emp", "Emp", 1.0),
        TransactionType::modify(">Dept", "Dept", 1.0),
    ]);
    for view in VIEWS {
        db.execute_sql(view).expect("view DDL");
    }
    db.set_tracing(true);
    let workload = mixed_workload(1000, 10, 200, 9406);
    let (mut plan, mut gate, mut commit) = (0u128, 0u128, 0u128);
    let t0 = Instant::now();
    for (table, delta) in &workload {
        db.apply_delta(table, delta.clone()).expect("apply");
        if let Some(t) = db.last_trace() {
            // notes: ["exec=Sequential", "phases plan=..ns gate=..ns commit=..ns"]
            for n in &t.notes {
                if let Some(rest) = n.strip_prefix("phases ") {
                    for part in rest.split(' ') {
                        let (k, v) = part.split_once('=').unwrap();
                        let v: u128 = v.trim_end_matches("ns").parse().unwrap();
                        match k {
                            "plan" => plan += v,
                            "gate" => gate += v,
                            "commit" => commit += v,
                            _ => {}
                        }
                    }
                }
            }
        }
    }
    let wall = t0.elapsed();
    eprintln!(
        "200 txns in {:.3}s  plan={:.1}ms gate={:.1}ms commit={:.1}ms",
        wall.as_secs_f64(),
        plan as f64 / 1e6,
        gate as f64 / 1e6,
        commit as f64 / 1e6
    );
}

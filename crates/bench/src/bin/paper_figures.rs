//! Regenerate the paper's figures:
//!
//! * F1 — the two equivalent expression trees for ProblemDept (Figure 1).
//! * F2 — the expression DAG with the paper's N/E numbering (Figure 2),
//!   plus Graphviz output.
//! * F3 — the ADeptsStatus trees (Figure 3) — see also `paper_tables --table f3`.
//! * F5 — the articulation-node example (Figure 5).
//!
//! ```text
//! cargo run -p spacetime-bench --release --bin paper_figures [--figure f1|f2|f3|f5] [--dot]
//! ```

use spacetime_algebra::OpKind;
use spacetime_bench::scenarios::{adepts_status, figure5, paper_names, problem_dept};
use spacetime_memo::dot::{render_text, to_dot};

fn f1() {
    let s = problem_dept();
    println!("== F1: two equivalent expression trees for ProblemDept ==\n");
    println!(
        "tree A (as written, aggregate above the join):\n{}",
        s.tree.render()
    );
    // Find the eager-aggregation alternative: an op in the root's child
    // group that is not the original aggregate.
    let names = paper_names(&s.memo, s.root);
    let n3 = names.iter().find(|(_, n)| *n == "N3").map(|&(g, _)| g);
    if let Some(n3) = n3 {
        println!(
            "tree B's SumOfSals building block (the paper's N3):\n{}",
            s.memo.extract_one(n3).render()
        );
    }
    // Extract a tree of the root that routes through N3.
    for t in s.memo.extract_trees(s.root, 64) {
        let has_agg_over_emp = t.render().to_string().contains("BY Emp.DName)");
        if has_agg_over_emp {
            println!("tree B (aggregate pushed below the join):\n{}", t.render());
            break;
        }
    }
}

fn f2(dot: bool) {
    let s = problem_dept();
    println!("== F2: the expression DAG for ProblemDept ==\n");
    println!("{}", render_text(&s.memo, s.root));
    let names = paper_names(&s.memo, s.root);
    println!("paper node mapping:");
    for (g, n) in names {
        let label = s
            .memo
            .group_ops(g)
            .first()
            .map(|&o| {
                let kids: Vec<_> = s
                    .memo
                    .op_children(o)
                    .iter()
                    .map(|&c| s.memo.schema(c))
                    .collect();
                s.memo.op(o).op.describe(&kids.to_vec())
            })
            .unwrap_or_default();
        println!("  {n} = group {g} ({label})");
    }
    println!(
        "\nequivalence nodes: {}, operation nodes: {}, distinct trees: {}",
        s.memo.group_count(),
        s.memo.op_count(),
        s.memo.count_trees(s.root)
    );
    if dot {
        println!("\n{}", to_dot(&s.memo, s.root));
    }
}

fn f3() {
    let s = adepts_status();
    println!("== F3: ADeptsStatus (Example 3.1 / Figure 3) ==\n");
    println!("query-optimization-shaped tree:\n{}", s.tree.render());
    println!("(run `paper_tables --table f3` for the optimizer's choice)");
}

fn f5(dot: bool) {
    let s = figure5();
    println!("== F5: articulation node at the aggregation (Figure 5) ==\n");
    println!("{}", s.tree.render());
    let arts = spacetime_memo::articulation_groups(&s.memo, s.root);
    println!("articulation equivalence nodes:");
    for g in &arts {
        let is_agg = s
            .memo
            .group_ops(*g)
            .iter()
            .any(|&o| matches!(s.memo.op(o).op, OpKind::Aggregate { .. }));
        println!(
            "  {g} [{}]{}",
            s.memo.schema(*g),
            if is_agg { "  <- the aggregation" } else { "" }
        );
    }
    if dot {
        println!("\n{}", to_dot(&s.memo, s.root));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dot = args.iter().any(|a| a == "--dot");
    let which = args
        .iter()
        .position(|a| a == "--figure")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_ascii_lowercase());
    match which.as_deref() {
        Some("f1") => f1(),
        Some("f2") => f2(dot),
        Some("f3") => f3(),
        Some("f5") => f5(dot),
        Some(other) => {
            eprintln!("unknown figure `{other}`");
            std::process::exit(2);
        }
        None => {
            f1();
            println!();
            f2(dot);
            println!();
            f3();
            println!();
            f5(dot);
        }
    }
}

//! Crash-test victim for `tests/crash_kill.rs`.
//!
//! The child builds the shared crash fixture (`workload::crash_fixture_db`)
//! durably in the directory given as its sole argument, prints `READY`,
//! then loops: read one line from stdin; on `go` apply the next fixture
//! transaction and print `ACK <i>` *after* the WAL commit is on disk.
//! The parent kills the process with SIGKILL at an arbitrary point — the
//! default `SyncPolicy::Flush` guarantees every acked transaction (and
//! possibly one in-flight unacked one) is recoverable.

use std::io::{BufRead, Write};
use std::path::Path;

use spacetime_bench::workload::{crash_fixture_db, crash_fixture_txn};
use spacetime_ivm::{DurabilityOptions, DurableDatabase};

fn main() {
    let dir = std::env::args().nth(1).expect("usage: crash_child <dir>");
    let db = crash_fixture_db();
    let mut dur = DurableDatabase::create(db, Path::new(&dir), DurabilityOptions::default())
        .expect("create durable db");

    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    writeln!(stdout, "READY").unwrap();
    stdout.flush().unwrap();

    let mut i = 0usize;
    for line in stdin.lock().lines() {
        let line = line.unwrap();
        match line.trim() {
            "go" => {
                dur.apply_transaction(crash_fixture_txn(i)).expect("apply");
                writeln!(stdout, "ACK {i}").unwrap();
                stdout.flush().unwrap();
                i += 1;
            }
            "quit" | "" => break,
            other => panic!("unknown command: {other:?}"),
        }
    }
}

//! E-IVM driver: sustained-throughput benchmark for the delta-propagation
//! data plane. Streams a mixed insert/delete/modify workload through two
//! identical databases — one in `PerKey` propagation mode, one in the
//! default `Batched` mode — asserting after every transaction that the
//! two produce bit-identical `UpdateReport` I/O counters, and at the end
//! that every materialized table (roots and auxiliaries) holds identical
//! contents, verified against full recomputation.
//!
//! Batching is a wall-clock optimisation only: it must never change the
//! deltas or the charged I/O (see DESIGN.md §10). This binary is the
//! executable form of that invariant, plus the throughput numbers.
//!
//! ```text
//! cargo run --release -p spacetime-bench --bin bench_ivm            # full
//! cargo run --release -p spacetime-bench --bin bench_ivm -- --smoke # CI
//! ```
//!
//! Writes `BENCH_ivm.json` in the current directory.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use spacetime_bench::workload::{load_paper_data, mixed_workload, paper_schema_db};
use spacetime_cost::TransactionType;
use spacetime_ivm::{verify_all_views, Database, PropagationMode, ViewSelection};

const SEED: u64 = 9406; // SIGMOD '96

struct Scenario {
    name: &'static str,
    departments: usize,
    emps_per_dept: usize,
    transactions: usize,
}

struct ModeRun {
    wall: Duration,
    io_total: u64,
    paper_cost: u64,
}

impl ModeRun {
    fn txns_per_sec(&self, n: usize) -> f64 {
        n as f64 / self.wall.as_secs_f64()
    }
}

struct Measured {
    scenario: Scenario,
    per_key: ModeRun,
    batched: ModeRun,
    reports_identical: bool,
    views_identical: bool,
    verified: bool,
    view_count: usize,
    materialized_nodes: usize,
}

/// The view definitions under maintenance: a join + aggregate + HAVING
/// (the paper's ProblemDept), a plain aggregate, an SPJ join, and a
/// DISTINCT projection — one of each propagation rule.
const VIEWS: [&str; 4] = [
    "CREATE MATERIALIZED VIEW ProblemDept (DName) AS \
     SELECT Dept.DName FROM Emp, Dept WHERE Dept.DName = Emp.DName \
     GROUP BY Dept.DName, Budget HAVING SUM(Salary) > Budget",
    "CREATE MATERIALIZED VIEW DeptProfile AS \
     SELECT DName, COUNT(*) AS Heads, MAX(Salary) AS TopSal \
     FROM Emp GROUP BY DName",
    "CREATE MATERIALIZED VIEW WellPaid AS \
     SELECT EName, Emp.DName, MName FROM Emp, Dept \
     WHERE Emp.DName = Dept.DName AND Salary > 150",
    "CREATE MATERIALIZED VIEW ActiveDepts AS SELECT DISTINCT DName FROM Emp",
];

fn build_db(s: &Scenario, mode: PropagationMode) -> Database {
    let mut db = paper_schema_db();
    db.set_view_selection(ViewSelection::Exhaustive);
    db.set_propagation_mode(mode);
    load_paper_data(&mut db, s.departments, s.emps_per_dept);
    db.declare_workload(vec![
        TransactionType::modify(">Emp", "Emp", 1.0),
        TransactionType::modify(">Dept", "Dept", 1.0),
    ]);
    for view in VIEWS {
        db.execute_sql(view).expect("view DDL");
    }
    db
}

/// Every table name materialized by any engine (roots and auxiliaries).
fn materialized_names(db: &Database) -> Vec<String> {
    let mut names: Vec<String> = db
        .engines()
        .iter()
        .flat_map(|e| e.materialized.values().cloned())
        .collect();
    names.sort();
    names.dedup();
    names
}

fn run_scenario(s: Scenario) -> Measured {
    eprintln!(
        "scenario {}: {} depts x {} emps, {} transactions",
        s.name, s.departments, s.emps_per_dept, s.transactions
    );
    let workload = mixed_workload(s.departments, s.emps_per_dept, s.transactions, SEED);
    let mut db_pk = build_db(&s, PropagationMode::PerKey);
    let mut db_b = build_db(&s, PropagationMode::Batched);

    let mut reports_identical = true;
    let mut pk = ModeRun {
        wall: Duration::ZERO,
        io_total: 0,
        paper_cost: 0,
    };
    let mut ba = ModeRun {
        wall: Duration::ZERO,
        io_total: 0,
        paper_cost: 0,
    };
    for (table, delta) in &workload {
        let t0 = Instant::now();
        let r_pk = db_pk.apply_delta(table, delta.clone()).expect("per-key");
        pk.wall += t0.elapsed();
        let t0 = Instant::now();
        let r_b = db_b.apply_delta(table, delta.clone()).expect("batched");
        ba.wall += t0.elapsed();
        // The invariant: batching never changes the charged I/O.
        assert_eq!(
            r_pk, r_b,
            "per-update I/O counters diverged on {table} delta {delta:?}"
        );
        reports_identical &= r_pk == r_b;
        pk.io_total += r_pk.total();
        pk.paper_cost += r_pk.paper_cost();
        ba.io_total += r_b.total();
        ba.paper_cost += r_b.paper_cost();
    }

    // Final state: every materialized table bit-identical across modes.
    let names = materialized_names(&db_pk);
    assert_eq!(names, materialized_names(&db_b));
    let mut views_identical = true;
    for name in &names {
        let a = &db_pk.catalog.table(name).expect("per-key table").relation;
        let b = &db_b.catalog.table(name).expect("batched table").relation;
        let same = a.data() == b.data();
        assert!(same, "materialized table {name} diverged between modes");
        views_identical &= same;
    }
    let verified = verify_all_views(&db_b).expect("recompute").is_empty()
        && verify_all_views(&db_pk).expect("recompute").is_empty();
    assert!(verified, "a view diverged from recomputation");

    let measured = Measured {
        per_key: pk,
        batched: ba,
        reports_identical,
        views_identical,
        verified,
        view_count: VIEWS.len(),
        materialized_nodes: names.len(),
        scenario: s,
    };
    eprintln!(
        "  per_key {:>8.3}s ({:>8.1} txn/s)   batched {:>8.3}s ({:>8.1} txn/s)   speedup {:.2}x   io {} == {}",
        measured.per_key.wall.as_secs_f64(),
        measured.per_key.txns_per_sec(measured.scenario.transactions),
        measured.batched.wall.as_secs_f64(),
        measured.batched.txns_per_sec(measured.scenario.transactions),
        measured.per_key.wall.as_secs_f64() / measured.batched.wall.as_secs_f64(),
        measured.per_key.io_total,
        measured.batched.io_total,
    );
    measured
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scenarios = if smoke {
        vec![
            Scenario {
                name: "paper",
                departments: 20,
                emps_per_dept: 5,
                transactions: 40,
            },
            Scenario {
                name: "scaling",
                departments: 100,
                emps_per_dept: 10,
                transactions: 80,
            },
        ]
    } else {
        vec![
            Scenario {
                name: "paper",
                departments: 1000,
                emps_per_dept: 10,
                transactions: 600,
            },
            Scenario {
                name: "scaling",
                departments: 4000,
                emps_per_dept: 10,
                transactions: 1000,
            },
        ]
    };

    let measured: Vec<Measured> = scenarios.into_iter().map(run_scenario).collect();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"ivm_data_plane\",\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    json.push_str("  \"scenarios\": [\n");
    for (i, m) in measured.iter().enumerate() {
        let n = m.scenario.transactions;
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", m.scenario.name);
        let _ = writeln!(json, "      \"departments\": {},", m.scenario.departments);
        let _ = writeln!(json, "      \"emps_per_dept\": {},", m.scenario.emps_per_dept);
        let _ = writeln!(json, "      \"transactions\": {n},");
        let _ = writeln!(json, "      \"views\": {},", m.view_count);
        let _ = writeln!(json, "      \"materialized_nodes\": {},", m.materialized_nodes);
        for (label, run) in [("per_key", &m.per_key), ("batched", &m.batched)] {
            let _ = writeln!(json, "      \"{label}\": {{");
            let _ = writeln!(json, "        \"wall_s\": {:.6},", run.wall.as_secs_f64());
            let _ = writeln!(json, "        \"txns_per_sec\": {:.1},", run.txns_per_sec(n));
            let _ = writeln!(json, "        \"io_total\": {},", run.io_total);
            let _ = writeln!(json, "        \"paper_cost_io\": {}", run.paper_cost);
            json.push_str("      },\n");
        }
        let _ = writeln!(
            json,
            "      \"speedup\": {:.3},",
            m.per_key.wall.as_secs_f64() / m.batched.wall.as_secs_f64()
        );
        let _ = writeln!(json, "      \"io_identical\": {},", m.reports_identical);
        let _ = writeln!(json, "      \"views_identical\": {},", m.views_identical);
        let _ = writeln!(json, "      \"verified_against_recompute\": {}", m.verified);
        json.push_str(if i + 1 == measured.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    std::fs::write("BENCH_ivm.json", &json).expect("write BENCH_ivm.json");
    println!("wrote BENCH_ivm.json");
}

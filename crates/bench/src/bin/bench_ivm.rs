//! E-IVM driver: sustained-throughput benchmark for the delta-propagation
//! data plane. Streams a mixed insert/delete/modify workload through four
//! identical databases — `PerKey` propagation, the default `Batched` mode,
//! `Batched` under the parallel pipeline (`ExecutionMode::Parallel`), and
//! the `Fused` streaming-kernel mode — asserting after every transaction
//! that all four produce bit-identical `UpdateReport` counters, and at the
//! end that every materialized table (roots and auxiliaries) holds
//! identical contents, verified against full recomputation.
//!
//! Batching, the pipeline, and kernel fusion are wall-clock optimisations
//! only: they must never change the deltas or the charged I/O (DESIGN.md
//! §10–§11, §15). This binary is the executable form of that invariant,
//! plus the throughput numbers. The wide scenario additionally sweeps
//! pinned pool widths (1/2/4/8 threads) for the E-PIPE thread-scaling
//! table. Each mode also reports its plan/gate/commit phase split
//! (`Database::phase_totals`), cross-checked against the measured wall.
//!
//! ```text
//! cargo run --release -p spacetime-bench --bin bench_ivm            # full
//! cargo run --release -p spacetime-bench --bin bench_ivm -- --smoke # CI
//! ```
//!
//! Writes `BENCH_ivm.json` in the current directory.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use spacetime_bench::scenarios::build_wide_pipeline_db;
use spacetime_bench::workload::{
    client_workload, load_paper_data, mixed_workload, paper_schema_db,
};
use spacetime_cost::TransactionType;
use spacetime_ivm::{
    verify_all_views, Database, ExecutionMode, PhaseTotals, PipelinePool, PropagationMode,
    SchedStats, ShardedDatabase, Txn, TxnScheduler, UpdateReport, ViewSelection,
};
use spacetime_obs::quantile_sorted;
use spacetime_storage::ShardSpec;

const SEED: u64 = 9406; // SIGMOD '96
const SWEEP_THREADS: [usize; 4] = [1, 2, 4, 8];
/// Client streams in the multi-client serving benchmark.
const SERVE_CLIENTS: usize = 8;

/// Heap-allocation counting, compiled in with `--features alloc-stats`:
/// a `#[global_allocator]` shim over `System` that counts every
/// `alloc`/`realloc`/`alloc_zeroed`. The JSON reports allocations *per
/// transaction* per mode — the data-plane representation work
/// (inline values, shard-wise copy-on-write, borrowed-key probes) shows
/// up here directly. Off by default so the timed numbers stay untaxed.
#[cfg(feature = "alloc-stats")]
mod alloc_stats {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    struct Counting;

    // SAFETY: defers every operation to `System`; the counter is a pure
    // side effect.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, l: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(l) }
        }
        unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
            unsafe { System.dealloc(p, l) }
        }
        unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(p, l, n) }
        }
        unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc_zeroed(l) }
        }
    }

    #[global_allocator]
    static COUNTER: Counting = Counting;

    pub fn compiled() -> bool {
        true
    }

    pub fn count() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

#[cfg(not(feature = "alloc-stats"))]
mod alloc_stats {
    pub fn compiled() -> bool {
        false
    }

    pub fn count() -> u64 {
        0
    }
}

struct Scenario {
    name: &'static str,
    departments: usize,
    emps_per_dept: usize,
    transactions: usize,
    /// Use the wide E-PIPE multi-view setup and sweep pool widths.
    wide: bool,
}

struct ModeRun {
    wall: Duration,
    io_total: u64,
    paper_cost: u64,
    queries_posed: u64,
    /// Per-transaction wall clock, for exact latency percentiles.
    latencies_ns: Vec<u64>,
    /// Heap allocations attributed to this mode's `apply_delta` calls
    /// (zero unless built with `--features alloc-stats`).
    allocs: u64,
    /// Plan/gate/commit attribution of the measured wall
    /// (`Database::phase_totals`).
    phases: PhaseTotals,
}

impl ModeRun {
    fn txns_per_sec(&self, n: usize) -> f64 {
        n as f64 / self.wall.as_secs_f64()
    }

    /// Exact nearest-rank (p50, p95, p99, max) over the recorded
    /// per-transaction latencies.
    fn latency_quantiles_ns(&self) -> (u64, u64, u64, u64) {
        let mut v = self.latencies_ns.clone();
        v.sort_unstable();
        (
            quantile_sorted(&v, 0.50),
            quantile_sorted(&v, 0.95),
            quantile_sorted(&v, 0.99),
            v.last().copied().unwrap_or(0),
        )
    }
}

struct SweepPoint {
    threads: usize,
    wall: Duration,
    queries_posed: u64,
}

struct Measured {
    scenario: Scenario,
    per_key: ModeRun,
    batched: ModeRun,
    parallel: ModeRun,
    fused: ModeRun,
    /// The width the parallel-mode database actually ran at (satellite of
    /// the 1-CPU auto-degrade: 1 on a single-core host with no explicit
    /// override, else the pool width).
    parallel_effective_width: usize,
    reports_identical: bool,
    views_identical: bool,
    verified: bool,
    view_count: usize,
    materialized_nodes: usize,
    /// Pinned-pool txn throughput per thread count (wide scenario only).
    thread_scaling: Vec<SweepPoint>,
}

/// One shard count of the multi-client serving sweep.
struct ServePoint {
    shards: usize,
    wall: Duration,
    latencies_ns: Vec<u64>,
    stats: SchedStats,
    replay_identical: bool,
}

impl ServePoint {
    fn txns_per_sec(&self, n: usize) -> f64 {
        n as f64 / self.wall.as_secs_f64()
    }

    fn latency_quantiles_ns(&self) -> (u64, u64, u64, u64) {
        let mut v = self.latencies_ns.clone();
        v.sort_unstable();
        (
            quantile_sorted(&v, 0.50),
            quantile_sorted(&v, 0.95),
            quantile_sorted(&v, 0.99),
            v.last().copied().unwrap_or(0),
        )
    }
}

/// The multi-client serving benchmark's results.
struct ServeMeasured {
    departments: usize,
    emps_per_dept: usize,
    transactions: usize,
    points: Vec<ServePoint>,
    union_matches_unsharded: bool,
    /// Scheduler counters accumulated across the concurrent runs only
    /// (serial replays record no metrics) — balanced against the metrics
    /// plane.
    sched_totals: SchedStats,
    /// Posed-query totals from every `apply_delta` this benchmark drove
    /// (control + concurrent + replay), for the global metrics book.
    queries_posed: u64,
}

/// The view definitions under maintenance: a join + aggregate + HAVING
/// (the paper's ProblemDept), a plain aggregate, an SPJ join, and a
/// DISTINCT projection — one of each propagation rule.
const VIEWS: [&str; 4] = [
    "CREATE MATERIALIZED VIEW ProblemDept (DName) AS \
     SELECT Dept.DName FROM Emp, Dept WHERE Dept.DName = Emp.DName \
     GROUP BY Dept.DName, Budget HAVING SUM(Salary) > Budget",
    "CREATE MATERIALIZED VIEW DeptProfile AS \
     SELECT DName, COUNT(*) AS Heads, MAX(Salary) AS TopSal \
     FROM Emp GROUP BY DName",
    "CREATE MATERIALIZED VIEW WellPaid AS \
     SELECT EName, Emp.DName, MName FROM Emp, Dept \
     WHERE Emp.DName = Dept.DName AND Salary > 150",
    "CREATE MATERIALIZED VIEW ActiveDepts AS SELECT DISTINCT DName FROM Emp",
];

fn build_db(s: &Scenario, mode: PropagationMode) -> Database {
    if s.wide {
        let mut db = build_wide_pipeline_db(s.departments, s.emps_per_dept);
        db.set_propagation_mode(mode);
        return db;
    }
    let mut db = paper_schema_db();
    db.set_view_selection(ViewSelection::Exhaustive);
    db.set_propagation_mode(mode);
    load_paper_data(&mut db, s.departments, s.emps_per_dept);
    db.declare_workload(vec![
        TransactionType::modify(">Emp", "Emp", 1.0),
        TransactionType::modify(">Dept", "Dept", 1.0),
    ]);
    for view in VIEWS {
        db.execute_sql(view).expect("view DDL");
    }
    db
}

/// Every table name materialized by any engine (roots and auxiliaries).
fn materialized_names(db: &Database) -> Vec<String> {
    let mut names: Vec<String> = db
        .engines()
        .iter()
        .flat_map(|e| e.materialized.values().cloned())
        .collect();
    names.sort();
    names.dedup();
    names
}

fn run_scenario(s: Scenario) -> Measured {
    eprintln!(
        "scenario {}: {} depts x {} emps, {} transactions{}",
        s.name,
        s.departments,
        s.emps_per_dept,
        s.transactions,
        if s.wide { " (wide)" } else { "" }
    );
    let workload = mixed_workload(s.departments, s.emps_per_dept, s.transactions, SEED);
    let mut db_pk = build_db(&s, PropagationMode::PerKey);
    let mut db_b = build_db(&s, PropagationMode::Batched);
    let mut db_par = build_db(&s, PropagationMode::Batched);
    db_par.set_execution_mode(ExecutionMode::Parallel);
    let mut db_fu = build_db(&s, PropagationMode::Fused);
    for db in [&mut db_pk, &mut db_b, &mut db_par, &mut db_fu] {
        db.set_phase_stats(true);
    }

    let mut reports_identical = true;
    let zero = || ModeRun {
        wall: Duration::ZERO,
        io_total: 0,
        paper_cost: 0,
        queries_posed: 0,
        latencies_ns: Vec::new(),
        allocs: 0,
        phases: PhaseTotals::default(),
    };
    let (mut pk, mut ba, mut par, mut fu) = (zero(), zero(), zero(), zero());
    // One timed `apply_delta` plus its per-run bookkeeping.
    let measure = |db: &mut Database, run: &mut ModeRun, table: &str, delta| {
        let a0 = alloc_stats::count();
        let t0 = Instant::now();
        let r = db.apply_delta(table, delta).expect("apply_delta");
        let dt = t0.elapsed();
        run.wall += dt;
        run.latencies_ns.push(dt.as_nanos() as u64);
        run.allocs += alloc_stats::count() - a0;
        run.io_total += r.total();
        run.paper_cost += r.paper_cost();
        run.queries_posed += r.queries_posed;
        r
    };
    // Measurement order: the parallel pipeline goes last because its pool
    // workers wind down asynchronously — on a saturated host their tail
    // steals cycles from whatever is timed next, and the loop wrap-around
    // puts that between transactions rather than inside a mode's window.
    for (table, delta) in &workload {
        let r_pk = measure(&mut db_pk, &mut pk, table, delta.clone());
        let r_b = measure(&mut db_b, &mut ba, table, delta.clone());
        let r_fu = measure(&mut db_fu, &mut fu, table, delta.clone());
        let r_par = measure(&mut db_par, &mut par, table, delta.clone());
        // The invariant: neither batching, the pipeline, nor kernel
        // fusion may change the charged I/O or the posed-query count.
        assert_eq!(
            r_pk, r_b,
            "per-update I/O counters diverged on {table} delta {delta:?}"
        );
        assert_eq!(
            r_b, r_par,
            "parallel pipeline diverged on {table} delta {delta:?}"
        );
        assert_eq!(
            r_b, r_fu,
            "fused kernels diverged on {table} delta {delta:?}"
        );
        reports_identical &= r_pk == r_b && r_b == r_par && r_b == r_fu;
    }
    for (db, run) in [
        (&db_pk, &mut pk),
        (&db_b, &mut ba),
        (&db_par, &mut par),
        (&db_fu, &mut fu),
    ] {
        run.phases = db.phase_totals();
        // The phase split must attribute (nearly all of) the measured
        // wall: everything outside the three phases is loop overhead.
        let sum = run.phases.sum_ns() as f64;
        let wall = run.wall.as_nanos() as f64;
        assert!(
            sum <= wall * 1.01 && sum >= wall * 0.50,
            "phase attribution ({sum}ns) inconsistent with measured wall ({wall}ns)"
        );
    }

    // Final state: every materialized table bit-identical across modes.
    let names = materialized_names(&db_pk);
    assert_eq!(names, materialized_names(&db_b));
    assert_eq!(names, materialized_names(&db_par));
    assert_eq!(names, materialized_names(&db_fu));
    let mut views_identical = true;
    for name in &names {
        let a = &db_pk.catalog.table(name).expect("per-key table").relation;
        let b = &db_b.catalog.table(name).expect("batched table").relation;
        let c = &db_par.catalog.table(name).expect("parallel table").relation;
        let d = &db_fu.catalog.table(name).expect("fused table").relation;
        let same = a.data() == b.data() && b.data() == c.data() && c.data() == d.data();
        assert!(same, "materialized table {name} diverged between modes");
        views_identical &= same;
    }
    let verified = verify_all_views(&db_b).expect("recompute").is_empty()
        && verify_all_views(&db_pk).expect("recompute").is_empty()
        && verify_all_views(&db_par).expect("recompute").is_empty()
        && verify_all_views(&db_fu).expect("recompute").is_empty();
    assert!(verified, "a view diverged from recomputation");

    // Pinned-pool sweep (wide scenario): fresh database per width, same
    // workload, explicit pool so `RAYON_NUM_THREADS`/core count don't leak
    // into the table.
    let mut thread_scaling = Vec::new();
    if s.wide {
        for threads in SWEEP_THREADS {
            let mut db = build_db(&s, PropagationMode::Batched);
            db.set_execution_mode(ExecutionMode::Parallel);
            db.set_pipeline_pool(Arc::new(PipelinePool::new(threads)));
            let mut queries_posed = 0u64;
            let t0 = Instant::now();
            for (table, delta) in &workload {
                let r = db.apply_delta(table, delta.clone()).expect("sweep");
                queries_posed += r.queries_posed;
            }
            let wall = t0.elapsed();
            eprintln!(
                "  sweep {threads} thread(s): {:>8.3}s ({:>8.1} txn/s)",
                wall.as_secs_f64(),
                s.transactions as f64 / wall.as_secs_f64()
            );
            thread_scaling.push(SweepPoint {
                threads,
                wall,
                queries_posed,
            });
        }
    }

    let view_count: usize = db_b.engines().iter().map(|e| e.roots.len()).sum();
    let measured = Measured {
        per_key: pk,
        batched: ba,
        parallel: par,
        fused: fu,
        parallel_effective_width: db_par.effective_width(),
        reports_identical,
        views_identical,
        verified,
        view_count,
        materialized_nodes: names.len(),
        scenario: s,
        thread_scaling,
    };
    eprintln!(
        "  per_key {:>8.3}s ({:>8.1} txn/s)   batched {:>8.3}s ({:>8.1} txn/s)   parallel {:>8.3}s ({:>8.1} txn/s)   fused {:>8.3}s ({:>8.1} txn/s)   io {} == {} == {} == {}",
        measured.per_key.wall.as_secs_f64(),
        measured.per_key.txns_per_sec(measured.scenario.transactions),
        measured.batched.wall.as_secs_f64(),
        measured.batched.txns_per_sec(measured.scenario.transactions),
        measured.parallel.wall.as_secs_f64(),
        measured.parallel.txns_per_sec(measured.scenario.transactions),
        measured.fused.wall.as_secs_f64(),
        measured.fused.txns_per_sec(measured.scenario.transactions),
        measured.per_key.io_total,
        measured.batched.io_total,
        measured.parallel.io_total,
        measured.fused.io_total,
    );
    measured
}

/// The multi-client serving benchmark: `SERVE_CLIENTS` closed-loop client
/// streams over disjoint department domains, round-robin interleaved into
/// one admission queue, scheduled by [`TxnScheduler`] over a
/// [`ShardedDatabase`] at each shard count in `shard_counts`. Per point:
/// sustained txn/s and exact latency percentiles, plus the determinism
/// checks — every concurrent run is replayed serially on a fresh
/// partition and must be bit-identical in every report and every shard
/// table, the single-shard run must match an unsharded control exactly,
/// and every shard union must equal the control's tables.
fn run_serve(
    departments: usize,
    emps_per_dept: usize,
    txns_per_client: usize,
    shard_counts: &[usize],
) -> ServeMeasured {
    eprintln!(
        "serve: {departments} depts x {emps_per_dept} emps, {SERVE_CLIENTS} clients x {txns_per_client} txns, shards {shard_counts:?}"
    );
    // The template every partition clones: the paper schema under the
    // fused data plane (the fastest single-stream mode — the serving
    // layer's concurrency stacks on top of it).
    let mut template = paper_schema_db();
    template.set_view_selection(ViewSelection::Exhaustive);
    template.set_propagation_mode(PropagationMode::Fused);
    load_paper_data(&mut template, departments, emps_per_dept);
    template.declare_workload(vec![
        TransactionType::modify(">Emp", "Emp", 1.0),
        TransactionType::modify(">Dept", "Dept", 1.0),
    ]);
    for view in VIEWS {
        template.execute_sql(view).expect("view DDL");
    }

    let streams: Vec<_> = (0..SERVE_CLIENTS)
        .map(|c| {
            client_workload(
                departments,
                emps_per_dept,
                txns_per_client,
                SEED,
                c,
                SERVE_CLIENTS,
            )
        })
        .collect();
    let mut txns: Vec<Txn> = Vec::with_capacity(SERVE_CLIENTS * txns_per_client);
    for k in 0..txns_per_client {
        for stream in &streams {
            txns.push(vec![stream[k].clone()]);
        }
    }
    let transactions = txns.len();

    // Unsharded control: the whole queue, in admission order, on one
    // full database.
    let mut control = template.clone();
    let mut queries_posed = 0u64;
    let mut control_reports: Vec<UpdateReport> = Vec::with_capacity(transactions);
    for txn in &txns {
        let r = control.apply_transaction(txn.clone()).expect("control txn");
        queries_posed += r.queries_posed;
        control_reports.push(r);
    }

    // Emp is sharded by DName (column 1), Dept by DName (column 0): every
    // view joins or groups on DName, so partitioned serving is exact.
    let spec = ShardSpec::new().with("Emp", vec![1]).with("Dept", vec![0]);
    let mut points = Vec::new();
    let mut sched_totals = SchedStats::default();
    let mut union_matches = true;
    for &shards in shard_counts {
        let sharded =
            ShardedDatabase::partition(&template, spec.clone(), shards).expect("partition");
        let sched = TxnScheduler::new(&sharded, Arc::new(PipelinePool::new(shards)));
        let t0 = Instant::now();
        let out = sched.run(&txns).expect("scheduler run");
        let wall = t0.elapsed();
        let reports: Vec<&UpdateReport> = out
            .results
            .iter()
            .map(|r| r.as_ref().expect("serve txn"))
            .collect();
        queries_posed += reports.iter().map(|r| r.queries_posed).sum::<u64>();
        sched_totals.absorb(&out.stats);

        // Determinism: serial replay on a second fresh partition is
        // bit-identical in every report and every shard table.
        let replayed =
            ShardedDatabase::partition(&template, spec.clone(), shards).expect("partition");
        let replay = TxnScheduler::new(&replayed, Arc::new(PipelinePool::new(1)))
            .run_serial(&txns)
            .expect("serial replay");
        let mut replay_identical = true;
        for (a, b) in out.results.iter().zip(replay.results.iter()) {
            let (a, b) = (a.as_ref().expect("serve txn"), b.as_ref().expect("replay txn"));
            assert_eq!(a, b, "serial replay diverged from the concurrent reports");
            replay_identical &= a == b;
        }
        queries_posed += replay
            .results
            .iter()
            .map(|r| r.as_ref().expect("replay txn").queries_posed)
            .sum::<u64>();
        for s in 0..shards {
            let a = sharded.shard(s);
            let b = replayed.shard(s);
            for (name, table) in a.catalog.iter() {
                let other = b.catalog.table(name).expect("replay table");
                let same = table.relation.data() == other.relation.data();
                assert!(same, "shard {s} table {name} diverged under serial replay");
                replay_identical &= same;
            }
        }
        // One shard is the degenerate case: the scheduler must reproduce
        // the unsharded control report-for-report.
        if shards == 1 {
            for (r, c) in reports.iter().zip(control_reports.iter()) {
                assert_eq!(*r, c, "single-shard serve diverged from the unsharded control");
            }
        }
        // The shard-locality contract: every base and materialized
        // table's shard union equals the unsharded control; every shard
        // verifies against recomputation.
        let mut names: Vec<String> = vec!["Emp".into(), "Dept".into()];
        names.extend(materialized_names(&template));
        for name in &names {
            let union = sharded.union_table(name).expect("union");
            let ctrl = control.catalog.table(name).expect("control table");
            let same = &union == ctrl.relation.data();
            assert!(same, "shard union of {name} diverged from the unsharded control");
            union_matches &= same;
        }
        assert!(
            sharded.verify_all_shards().expect("verify").is_empty(),
            "a shard diverged from recomputation"
        );
        eprintln!(
            "  serve {shards} shard(s): {:>8.3}s ({:>8.1} txn/s)   waves {}   concurrent {}   deferrals {}   cross-shard {}",
            wall.as_secs_f64(),
            transactions as f64 / wall.as_secs_f64(),
            out.stats.waves,
            out.stats.admitted_concurrent,
            out.stats.conflict_deferrals,
            out.stats.cross_shard_txns,
        );
        points.push(ServePoint {
            shards,
            wall,
            latencies_ns: out.latencies_ns,
            stats: out.stats,
            replay_identical,
        });
    }
    ServeMeasured {
        departments,
        emps_per_dept,
        transactions,
        points,
        union_matches_unsharded: union_matches,
        sched_totals,
        queries_posed,
    }
}

/// E-WAL: the durability tax and the recovery-time curve.
///
/// Runs the paper workload twice over identical databases — once purely
/// in memory, once through `DurableDatabase` (WAL on, default
/// `SyncPolicy::Flush`) — and reports the throughput ratio, the log
/// amplification (WAL bytes on disk / raw encoded delta payload bytes),
/// and recovery time as a function of the checkpoint interval: for each
/// `every_txns` policy the whole workload is re-run durably, the handle
/// dropped (crash-stop), and `Database::open` timed cold.
#[cfg(feature = "durability")]
struct WalMeasured {
    departments: usize,
    emps_per_dept: usize,
    transactions: usize,
    wal_off_tps: f64,
    wal_on_tps: f64,
    wal_bytes: u64,
    delta_bytes: u64,
    recovered_identical: bool,
    /// (checkpoint every_txns — 0 = never, replayed_txns, recovery_ms).
    recovery: Vec<(u64, u64, f64)>,
}

#[cfg(feature = "durability")]
fn run_wal_bench(departments: usize, emps_per_dept: usize, transactions: usize) -> WalMeasured {
    use spacetime_ivm::{DurabilityOptions, DurableDatabase};
    use spacetime_wal::CheckpointPolicy;

    eprintln!("wal: {departments} depts x {emps_per_dept} emps, {transactions} transactions");
    let workload = mixed_workload(departments, emps_per_dept, transactions, SEED);
    let build = || {
        let mut db = paper_schema_db();
        db.set_propagation_mode(PropagationMode::Fused);
        load_paper_data(&mut db, departments, emps_per_dept);
        for view in VIEWS {
            db.execute_sql(view).expect("view DDL");
        }
        db
    };
    // The honest denominator for log amplification: what the deltas cost
    // to encode at all, before frame headers, begin/commit records, and
    // sync policy pile on.
    let delta_bytes: u64 = workload
        .iter()
        .map(|(_, d)| {
            let mut buf = Vec::new();
            spacetime_wal::codec::put_delta(&mut buf, d);
            buf.len() as u64
        })
        .sum();

    // Baseline: the same workload purely in memory, through the same
    // transactional apply path the durable wrapper uses (all-or-nothing
    // `apply_transaction`, not raw `apply_delta`) — the ratio isolates
    // the durability tax, not the transaction-rollback machinery.
    let mut mem = build();
    let t0 = Instant::now();
    for (table, delta) in &workload {
        mem.apply_transaction(vec![(table.clone(), delta.clone())])
            .expect("apply_transaction");
    }
    let wal_off = t0.elapsed();

    // One durable pass per checkpoint interval; `0` means never, so that
    // recovery replays the entire log — the curve's worst end.
    let n = transactions as u64;
    let intervals: [Option<u64>; 3] = [None, Some(n.div_ceil(4).max(1)), Some(n.div_ceil(16).max(1))];
    let mut wal_on = Duration::ZERO;
    let mut wal_bytes = 0u64;
    let mut recovered_identical = true;
    let mut recovery = Vec::new();
    for (k, &every) in intervals.iter().enumerate() {
        let dir = spacetime_wal::test_dir(&format!("bench_wal_{}", every.unwrap_or(0)));
        let opts = DurabilityOptions {
            checkpoint: CheckpointPolicy {
                every_txns: every,
                ..CheckpointPolicy::default()
            },
            ..DurabilityOptions::default()
        };
        let mut dur = DurableDatabase::create(build(), &dir, opts).expect("create durable db");
        let t0 = Instant::now();
        for (table, delta) in &workload {
            dur.apply_delta(table, delta.clone()).expect("apply_delta");
        }
        let wall = t0.elapsed();
        // The uncheckpointed pass is the apples-to-apples throughput
        // number (checkpoints trade serve-path time for recovery time).
        if every.is_none() {
            wal_on = wall;
            wal_bytes = std::fs::metadata(dir.join("wal.log"))
                .map(|m| m.len())
                .unwrap_or(0);
        }
        drop(dur); // crash-stop: no final checkpoint, recovery does the work

        let t0 = Instant::now();
        let (rec, stats) = Database::open(&dir).expect("recovery");
        let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
        recovery.push((every.unwrap_or(0), stats.replayed_txns, recovery_ms));

        // Recovery must be bit-identical to the in-memory run — checked
        // on every interval, reported once.
        let rec = rec.into_db();
        for (name, t) in mem.catalog.iter() {
            if rec.catalog.table(name).ok().map(|rt| rt.relation.data()) != Some(t.relation.data()) {
                eprintln!(
                    "wal: recovered table {name} diverged (every_txns={})",
                    every.unwrap_or(0)
                );
                recovered_identical = false;
            }
        }
        if k == 0 && !verify_all_views(&rec).expect("oracle").is_empty() {
            eprintln!("wal: recompute oracle found stale views after recovery");
            recovered_identical = false;
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    WalMeasured {
        departments,
        emps_per_dept,
        transactions,
        wal_off_tps: transactions as f64 / wal_off.as_secs_f64(),
        wal_on_tps: transactions as f64 / wal_on.as_secs_f64(),
        wal_bytes,
        delta_bytes,
        recovered_identical,
        recovery,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scenarios = if smoke {
        vec![
            Scenario {
                name: "paper",
                departments: 20,
                emps_per_dept: 5,
                transactions: 40,
                wide: false,
            },
            Scenario {
                name: "scaling",
                departments: 100,
                emps_per_dept: 10,
                transactions: 80,
                wide: false,
            },
            Scenario {
                name: "wide",
                departments: 40,
                emps_per_dept: 6,
                transactions: 50,
                wide: true,
            },
        ]
    } else {
        vec![
            Scenario {
                name: "paper",
                departments: 1000,
                emps_per_dept: 10,
                transactions: 600,
                wide: false,
            },
            Scenario {
                name: "scaling",
                departments: 4000,
                emps_per_dept: 10,
                transactions: 1000,
                wide: false,
            },
            Scenario {
                name: "wide",
                departments: 1000,
                emps_per_dept: 10,
                transactions: 400,
                wide: true,
            },
        ]
    };

    let measured: Vec<Measured> = scenarios.into_iter().map(run_scenario).collect();

    // The multi-client serving benchmark (8 closed-loop clients over the
    // sharded scheduler, swept across shard counts).
    let serve = if smoke {
        run_serve(24, 5, 30, &[1, 2, 4])
    } else {
        run_serve(256, 8, 150, &[1, 2, 4, 8])
    };

    // The metrics snapshot is taken *before* the WAL bench: the
    // consistency books balance the posed-query counter exactly against
    // the measured loops above, and the durable passes (plus the replay
    // queries recovery poses inside `Database::open`) are not in them.
    let expected_queries_posed: u64 = measured
        .iter()
        .map(|m| {
            m.per_key.queries_posed
                + m.batched.queries_posed
                + m.parallel.queries_posed
                + m.fused.queries_posed
                + m.thread_scaling
                    .iter()
                    .map(|p| p.queries_posed)
                    .sum::<u64>()
        })
        .sum::<u64>()
        + serve.queries_posed;
    let snap = spacetime_obs::snapshot();
    #[cfg(feature = "metrics")]
    assert_metrics_consistent(&snap, expected_queries_posed, &serve.sched_totals);
    let _ = (expected_queries_posed, &serve.sched_totals);

    #[cfg(feature = "durability")]
    let wal = if smoke {
        run_wal_bench(20, 5, 150)
    } else {
        run_wal_bench(1000, 10, 600)
    };
    // The WAL-plane books run on a second snapshot, delta'd against the
    // pre-WAL one the report embeds.
    #[cfg(all(feature = "metrics", feature = "durability"))]
    assert_wal_metrics_consistent(&snap, &wal);

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"ivm_data_plane\",\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    // Benchmarks must run the unfaulted hot path: CI greps for `false`.
    let _ = writeln!(
        json,
        "  \"failpoints_compiled\": {},",
        spacetime_storage::fault::compiled()
    );
    // Allocation counts are only meaningful when the counting allocator
    // is compiled in; `allocs_per_txn` reads 0.0 otherwise.
    let _ = writeln!(
        json,
        "  \"alloc_stats_compiled\": {},",
        alloc_stats::compiled()
    );
    json.push_str("  \"scenarios\": [\n");
    for (i, m) in measured.iter().enumerate() {
        let n = m.scenario.transactions;
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", m.scenario.name);
        let _ = writeln!(json, "      \"departments\": {},", m.scenario.departments);
        let _ = writeln!(json, "      \"emps_per_dept\": {},", m.scenario.emps_per_dept);
        let _ = writeln!(json, "      \"transactions\": {n},");
        let _ = writeln!(json, "      \"views\": {},", m.view_count);
        let _ = writeln!(json, "      \"materialized_nodes\": {},", m.materialized_nodes);
        for (label, run) in [
            ("per_key", &m.per_key),
            ("batched", &m.batched),
            ("parallel", &m.parallel),
            ("fused", &m.fused),
        ] {
            let (p50, p95, p99, max) = run.latency_quantiles_ns();
            let _ = writeln!(json, "      \"{label}\": {{");
            let _ = writeln!(json, "        \"wall_s\": {:.6},", run.wall.as_secs_f64());
            let _ = writeln!(json, "        \"txns_per_sec\": {:.1},", run.txns_per_sec(n));
            let _ = writeln!(json, "        \"io_total\": {},", run.io_total);
            let _ = writeln!(json, "        \"paper_cost_io\": {},", run.paper_cost);
            let _ = writeln!(json, "        \"queries_posed\": {},", run.queries_posed);
            let _ = writeln!(
                json,
                "        \"latency_ns\": {{ \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}, \"max\": {max} }},"
            );
            let _ = writeln!(
                json,
                "        \"phases_ns\": {{ \"plan\": {}, \"gate\": {}, \"commit\": {}, \"wall_fraction\": {:.3} }}{}",
                run.phases.plan_ns,
                run.phases.gate_ns,
                run.phases.commit_ns,
                run.phases.sum_ns() as f64 / run.wall.as_nanos() as f64,
                if alloc_stats::compiled() { "," } else { "" }
            );
            // Allocation counts are meaningless without the counting
            // allocator; the key is omitted entirely so consumers can't
            // mistake 0.0 for a measurement.
            if alloc_stats::compiled() {
                let _ = writeln!(
                    json,
                    "        \"allocs_per_txn\": {:.1}",
                    run.allocs as f64 / n as f64
                );
            }
            json.push_str("      },\n");
        }
        // The width parallel mode actually ran at (1 when the 1-CPU
        // auto-degrade kicked in; the pool width otherwise).
        let _ = writeln!(
            json,
            "      \"parallel_effective_width\": {},",
            m.parallel_effective_width
        );
        let _ = writeln!(
            json,
            "      \"speedup\": {:.3},",
            m.per_key.wall.as_secs_f64() / m.batched.wall.as_secs_f64()
        );
        let _ = writeln!(
            json,
            "      \"par_speedup\": {:.3},",
            m.batched.wall.as_secs_f64() / m.parallel.wall.as_secs_f64()
        );
        let _ = writeln!(
            json,
            "      \"fused_speedup\": {:.3},",
            m.batched.wall.as_secs_f64() / m.fused.wall.as_secs_f64()
        );
        if !m.thread_scaling.is_empty() {
            json.push_str("      \"thread_scaling\": [\n");
            for (j, p) in m.thread_scaling.iter().enumerate() {
                let _ = write!(
                    json,
                    "        {{ \"threads\": {}, \"wall_s\": {:.6}, \"txns_per_sec\": {:.1}, \"speedup_vs_seq_batched\": {:.3} }}",
                    p.threads,
                    p.wall.as_secs_f64(),
                    n as f64 / p.wall.as_secs_f64(),
                    m.batched.wall.as_secs_f64() / p.wall.as_secs_f64()
                );
                json.push_str(if j + 1 == m.thread_scaling.len() {
                    "\n"
                } else {
                    ",\n"
                });
            }
            json.push_str("      ],\n");
        }
        let _ = writeln!(json, "      \"io_identical\": {},", m.reports_identical);
        let _ = writeln!(json, "      \"views_identical\": {},", m.views_identical);
        let _ = writeln!(json, "      \"verified_against_recompute\": {}", m.verified);
        json.push_str(if i + 1 == measured.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ],\n");

    json.push_str("  \"serve\": {\n");
    let _ = writeln!(json, "    \"clients\": {SERVE_CLIENTS},");
    let _ = writeln!(json, "    \"departments\": {},", serve.departments);
    let _ = writeln!(json, "    \"emps_per_dept\": {},", serve.emps_per_dept);
    let _ = writeln!(json, "    \"transactions\": {},", serve.transactions);
    let _ = writeln!(
        json,
        "    \"union_matches_unsharded\": {},",
        serve.union_matches_unsharded
    );
    // The scheduler's own books for the concurrent runs — the exact
    // values the labeled metric families must balance against under
    // `--features metrics` (see `assert_metrics_consistent`).
    let _ = writeln!(
        json,
        "    \"sched_totals\": {{ \"txns\": {}, \"committed\": {}, \"aborted\": {}, \"shard_participations\": {}, \"waves\": {}, \"cross_shard_txns\": {} }},",
        serve.sched_totals.txns,
        serve.sched_totals.committed,
        serve.sched_totals.aborted,
        serve.sched_totals.shard_participations,
        serve.sched_totals.waves,
        serve.sched_totals.cross_shard_txns,
    );
    json.push_str("    \"points\": [\n");
    for (j, p) in serve.points.iter().enumerate() {
        let (p50, p95, p99, max) = p.latency_quantiles_ns();
        let _ = write!(
            json,
            "      {{ \"shards\": {}, \"wall_s\": {:.6}, \"txns_per_sec\": {:.1}, \"latency_ns\": {{ \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}, \"max\": {max} }}, \"waves\": {}, \"max_wave_width\": {}, \"admitted_concurrent\": {}, \"conflict_serialized\": {}, \"cross_shard_txns\": {}, \"replay_identical\": {} }}",
            p.shards,
            p.wall.as_secs_f64(),
            p.txns_per_sec(serve.transactions),
            p.stats.waves,
            p.stats.max_wave_width,
            p.stats.admitted_concurrent,
            p.stats.conflict_deferrals,
            p.stats.cross_shard_txns,
            p.replay_identical,
        );
        json.push_str(if j + 1 == serve.points.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");

    // The WAL section only exists when durability is compiled in (the
    // bench crate's default); `durability_compiled` tells consumers
    // which shape to expect. CI's no-WAL grep checks the root library
    // stack, not this binary.
    let _ = writeln!(
        json,
        "  \"durability_compiled\": {},",
        cfg!(feature = "durability")
    );
    #[cfg(feature = "durability")]
    {
        json.push_str("  \"wal\": {\n");
        let _ = writeln!(json, "    \"departments\": {},", wal.departments);
        let _ = writeln!(json, "    \"emps_per_dept\": {},", wal.emps_per_dept);
        let _ = writeln!(json, "    \"transactions\": {},", wal.transactions);
        let _ = writeln!(json, "    \"wal_off_txns_per_sec\": {:.1},", wal.wal_off_tps);
        let _ = writeln!(json, "    \"wal_on_txns_per_sec\": {:.1},", wal.wal_on_tps);
        let _ = writeln!(
            json,
            "    \"throughput_ratio\": {:.4},",
            wal.wal_on_tps / wal.wal_off_tps
        );
        let _ = writeln!(json, "    \"wal_bytes\": {},", wal.wal_bytes);
        let _ = writeln!(json, "    \"delta_bytes\": {},", wal.delta_bytes);
        let _ = writeln!(
            json,
            "    \"log_amplification\": {:.3},",
            wal.wal_bytes as f64 / wal.delta_bytes.max(1) as f64
        );
        let _ = writeln!(
            json,
            "    \"recovered_identical\": {},",
            wal.recovered_identical
        );
        json.push_str("    \"recovery\": [\n");
        for (j, (every, replayed, ms)) in wal.recovery.iter().enumerate() {
            let _ = write!(
                json,
                "      {{ \"checkpoint_every_txns\": {every}, \"replayed_txns\": {replayed}, \"recovery_ms\": {ms:.3} }}"
            );
            json.push_str(if j + 1 == wal.recovery.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        json.push_str("    ]\n");
        json.push_str("  },\n");
    }

    // Process-wide metrics: empty (and `metrics_recorded: false`) in the
    // default build, fully populated under `--features metrics`. CI greps
    // both states.
    let _ = writeln!(
        json,
        "  \"metrics_recorded\": {},",
        spacetime_obs::compiled()
    );
    json.push_str("  \"metrics\": ");
    json.push_str(&snap.render_json());
    json.push_str("\n}\n");

    std::fs::write("BENCH_ivm.json", &json).expect("write BENCH_ivm.json");
    println!("wrote BENCH_ivm.json");
    append_bench_history(&measured, &serve, smoke);
}

/// One compact line per run appended to `results/bench_history.jsonl` —
/// the longitudinal record `ci/throughput_ratchet.py` renders as a trend
/// table. Wall-clock metadata lives here rather than in `BENCH_ivm.json`
/// so the main report's shape stays run-independent.
fn append_bench_history(measured: &[Measured], serve: &ServeMeasured, smoke: bool) {
    use std::io::Write as _;
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut line = String::new();
    let _ = write!(
        line,
        "{{ \"ts\": {ts}, \"smoke\": {smoke}, \"metrics\": {}, \"durability\": {}, \"scenarios\": {{",
        spacetime_obs::compiled(),
        cfg!(feature = "durability"),
    );
    for (i, m) in measured.iter().enumerate() {
        let n = m.scenario.transactions;
        let _ = write!(
            line,
            "{}\"{}\": {{ \"batched_tps\": {:.1}, \"parallel_tps\": {:.1}, \"fused_tps\": {:.1} }}",
            if i == 0 { " " } else { ", " },
            m.scenario.name,
            m.batched.txns_per_sec(n),
            m.parallel.txns_per_sec(n),
            m.fused.txns_per_sec(n),
        );
    }
    let _ = write!(line, " }}, \"serve_tps\": {{");
    for (j, p) in serve.points.iter().enumerate() {
        let _ = write!(
            line,
            "{}\"s{}\": {:.1}",
            if j == 0 { " " } else { ", " },
            p.shards,
            p.txns_per_sec(serve.transactions)
        );
    }
    let _ = write!(line, " }} }}");
    let appended = std::fs::create_dir_all("results").and_then(|()| {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open("results/bench_history.jsonl")
            .and_then(|mut f| writeln!(f, "{line}"))
    });
    match appended {
        Ok(()) => println!("appended results/bench_history.jsonl"),
        Err(e) => eprintln!("bench history append failed: {e}"),
    }
}

/// Internal-consistency checks over the recorded metrics (CI's
/// metrics-smoke job): every cache's hit/miss split sums to its lookups,
/// and the global posed-query counter agrees exactly with the
/// `UpdateReport` totals accumulated by the measured loops (every
/// `apply_delta` in this binary flows through them; data loading writes
/// relations directly).
#[cfg(feature = "metrics")]
fn assert_metrics_consistent(
    snap: &spacetime_obs::MetricsSnapshot,
    expected_queries_posed: u64,
    sched: &SchedStats,
) {
    use spacetime_obs::names as metric;
    for (lookups, hits, misses) in [
        (
            metric::PLAN_CACHE_LOOKUPS,
            metric::PLAN_CACHE_HITS,
            metric::PLAN_CACHE_MISSES,
        ),
        (
            metric::DELTA_CACHE_LOOKUPS,
            metric::DELTA_CACHE_HITS,
            metric::DELTA_CACHE_MISSES,
        ),
        (
            metric::QUERY_CACHE_LOOKUPS,
            metric::QUERY_CACHE_HITS,
            metric::QUERY_CACHE_MISSES,
        ),
    ] {
        assert_eq!(
            snap.counter(hits) + snap.counter(misses),
            snap.counter(lookups),
            "cache series {lookups} inconsistent"
        );
    }
    assert_eq!(
        snap.counter(metric::QUERIES_POSED),
        expected_queries_posed,
        "queries_posed counter disagrees with the UpdateReport totals"
    );
    assert!(snap.counter(metric::UPDATES_APPLIED) > 0);
    assert!(snap.counter(metric::POOL_TASKS) > 0, "pool tasks recorded");
    let latency = snap
        .histogram(metric::UPDATE_LATENCY_NS)
        .expect("update latency histogram recorded");
    assert!(latency.count > 0);
    // The scheduler's counters must balance exactly against the
    // `SchedStats` accumulated by the serving benchmark (the only
    // scheduler user in this process; serial replays record nothing).
    for (name, expected) in [
        (metric::SCHED_TXNS, sched.txns),
        (metric::SCHED_ADMITTED_CONCURRENT, sched.admitted_concurrent),
        (metric::SCHED_CONFLICT_SERIALIZED, sched.conflict_deferrals),
        (metric::SCHED_CROSS_SHARD_TXNS, sched.cross_shard_txns),
        (metric::SCHED_WAVES, sched.waves),
    ] {
        assert_eq!(
            snap.counter(name),
            expected,
            "scheduler counter {name} disagrees with the SchedStats books"
        );
    }
    // Every admitted transaction completed, so the queue-depth gauges
    // (global and the per-shard labeled family) must have drained back
    // to zero.
    assert_eq!(
        snap.gauge(metric::SCHED_QUEUE_DEPTH),
        0.0,
        "scheduler queue-depth gauge did not drain"
    );
    assert_eq!(
        snap.labeled_gauge_sum(metric::SCHED_SHARD_QUEUE_DEPTH),
        0.0,
        "per-shard queue-depth gauges did not drain"
    );
    for s in 0..16 {
        assert_eq!(
            snap.labeled_gauge(metric::SCHED_SHARD_QUEUE_DEPTH, metric::shard_label(s)),
            0.0,
            "shard {s} queue-depth gauge did not drain"
        );
    }
    // Serving-plane books: every labeled family must balance against the
    // `SchedStats` accumulated over the serving benchmark's concurrent
    // runs (serial replays record no metrics by design, and the stats
    // absorbed above cover exactly the concurrent runs).
    assert_eq!(
        snap.labeled_counter_sum(metric::SHARD_TXNS),
        sched.shard_participations,
        "per-shard txn counters disagree with the footprint books"
    );
    assert_eq!(
        snap.labeled_counter(metric::SCHED_TXN_OUTCOMES, metric::LABEL_OUTCOME_COMMITTED),
        sched.committed,
        "committed-outcome counter disagrees with the SchedStats books"
    );
    assert_eq!(
        snap.labeled_counter(metric::SCHED_TXN_OUTCOMES, metric::LABEL_OUTCOME_ABORTED),
        sched.aborted,
        "aborted-outcome counter disagrees with the SchedStats books"
    );
    assert_eq!(
        snap.labeled_counter_sum(metric::SCHED_WAVE_WIDTHS),
        sched.waves,
        "wave-width counters do not sum to the wave count"
    );
    assert_eq!(
        snap.counter(metric::SCHED_CROSS_SHARD_COMMITS)
            + snap.counter(metric::SCHED_CROSS_SHARD_ABORTS),
        sched.cross_shard_txns,
        "cross-shard commit/abort split does not sum to the cross-shard txns"
    );
    // Workload-drift accounting: the measured loops pushed far more than
    // a window's worth of events, so both the sliding txn mix and the
    // per-view maintenance-cost EWMAs must be populated.
    assert!(!snap.txn_mix.is_empty(), "txn-mix drift window is empty");
    assert!(!snap.view_cost_ewma.is_empty(), "view-cost EWMAs are empty");
    eprintln!("metrics consistency: ok");
}

/// The WAL-plane books (CI's metrics-smoke job, featured durable build):
/// the per-kind labeled record family must sum to the plain append
/// counter and agree frame-for-frame with what the three durable passes
/// wrote, and the recovery counters must balance against the
/// `RecoveryStats` each timed `Database::open` returned. Delta-based
/// against the pre-WAL snapshot so the books stay exact even if earlier
/// phases ever grow WAL traffic.
#[cfg(all(feature = "metrics", feature = "durability"))]
fn assert_wal_metrics_consistent(before: &spacetime_obs::MetricsSnapshot, wal: &WalMeasured) {
    use spacetime_obs::names as metric;
    let snap = spacetime_obs::snapshot();
    let n = wal.transactions as u64;
    assert_eq!(
        snap.labeled_counter_sum(metric::WAL_RECORDS),
        snap.counter(metric::WAL_APPENDS),
        "per-kind WAL record counters do not sum to the append counter"
    );
    // Three durable passes, each writing the workload once as
    // single-shard, single-delta transactions: one begin, one delta,
    // one commit frame per transaction (recovery appends none of these).
    for kind in [
        metric::LABEL_WAL_BEGIN,
        metric::LABEL_WAL_DELTA,
        metric::LABEL_WAL_COMMIT,
    ] {
        assert_eq!(
            snap.labeled_counter(metric::WAL_RECORDS, kind)
                - before.labeled_counter(metric::WAL_RECORDS, kind),
            3 * n,
            "WAL record count for {kind} disagrees with the workload books"
        );
    }
    let replayed: u64 = wal.recovery.iter().map(|&(_, r, _)| r).sum();
    assert_eq!(
        snap.counter(metric::WAL_RECOVERY_REPLAYED_TXNS)
            - before.counter(metric::WAL_RECOVERY_REPLAYED_TXNS),
        replayed,
        "replayed-txn counter disagrees with the RecoveryStats books"
    );
    // The replay-lag gauge holds whatever the most recent recovery saw.
    let last = wal.recovery.last().map(|&(_, r, _)| r).unwrap_or(0);
    assert_eq!(
        snap.gauge(metric::WAL_REPLAY_LAG_TXNS),
        last as f64,
        "replay-lag gauge disagrees with the last recovery's RecoveryStats"
    );
    // Checkpoint age: crash-stopped sessions never hand back their
    // uncheckpointed txns, so the process-wide gauge ends at the sum of
    // each pass's post-last-checkpoint tail — `n mod every_txns` per
    // interval (the whole workload for the never-checkpoint pass).
    let expected_age: u64 = [None, Some(n.div_ceil(4).max(1)), Some(n.div_ceil(16).max(1))]
        .iter()
        .map(|every| match every {
            Some(e) => n % e,
            None => n,
        })
        .sum();
    assert_eq!(
        snap.gauge(metric::WAL_CHECKPOINT_AGE_TXNS) - before.gauge(metric::WAL_CHECKPOINT_AGE_TXNS),
        expected_age as f64,
        "checkpoint-age gauge disagrees with the checkpoint-interval books"
    );
    eprintln!("wal metrics consistency: ok");
}

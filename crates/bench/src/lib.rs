//! # spacetime-bench
//!
//! Workload generators, the paper's scenarios, and the experiment harness
//! that regenerates **every table and figure** of the paper's evaluation
//! (§3.6 tables T1–T4, the headline claim H1, Figures 1/2/3/5, and the
//! §3/§4/§5 shape experiments). See `EXPERIMENTS.md` at the workspace
//! root for the recorded paper-vs-measured comparison.
//!
//! Binaries:
//!
//! * `paper_tables` — regenerates the §3.6 cost tables (estimated *and*
//!   measured) plus the E-SPJ/E-HEUR experiments.
//! * `paper_figures` — regenerates the figures (expression trees, the
//!   expression DAG, the ADeptsStatus example, articulation nodes).
//!
//! Criterion benches: `bench_optimizer`, `bench_maintenance`,
//! `bench_memo`.

pub mod scenarios;
pub mod tables;
pub mod workload;

pub use scenarios::{
    adepts_status, figure5, join_chain, paper_names, problem_dept, scaling_workload, stacked_view,
    PaperScenario,
};
pub use workload::{client_workload, load_paper_data, paper_schema_db, random_emp_updates};

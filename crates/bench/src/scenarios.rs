//! The paper's scenarios as reusable setups.

use spacetime_algebra::{AggExpr, AggFunc, BinOp, CmpOp, ExprNode, ExprTree, OpKind, ScalarExpr};
use spacetime_cost::TransactionType;
use spacetime_ivm::{Database, PropagationMode};
use spacetime_memo::{explore, GroupId, Memo};
use spacetime_storage::{Catalog, DataType, Schema, TableStats};

use crate::workload::{load_paper_data, paper_schema_db, paper_stats_catalog};

/// A prepared optimization scenario.
pub struct PaperScenario {
    /// Base-table statistics and keys.
    pub catalog: Catalog,
    /// The explored DAG.
    pub memo: Memo,
    /// The view's group.
    pub root: GroupId,
    /// The original (user) expression tree.
    pub tree: ExprTree,
    /// The workload.
    pub txns: Vec<TransactionType>,
}

/// §1.1/§3.6: the `ProblemDept` view over the sample corporate database.
pub fn problem_dept() -> PaperScenario {
    let catalog = paper_stats_catalog();
    let emp = ExprNode::scan(&catalog, "Emp").expect("Emp");
    let dept = ExprNode::scan(&catalog, "Dept").expect("Dept");
    let join = ExprNode::join_on(emp, dept, &[("Emp.DName", "Dept.DName")]).expect("valid join");
    let agg = ExprNode::aggregate(
        join,
        vec![3, 5],
        vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum")],
    )
    .expect("valid aggregate");
    let tree = ExprNode::select(
        agg,
        ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(2), ScalarExpr::col(1)),
    )
    .expect("valid select");
    let mut memo = Memo::new();
    let root = memo.insert_tree(&tree);
    memo.set_root(root);
    explore(&mut memo, &catalog).expect("exploration");
    let root = memo.find(root);
    PaperScenario {
        catalog,
        memo,
        root,
        tree,
        txns: vec![
            TransactionType::modify(">Emp", "Emp", 1.0),
            TransactionType::modify(">Dept", "Dept", 1.0),
        ],
    }
}

/// The paper's Figure-2 node names for the ProblemDept DAG, located
/// structurally: N1 = root, N2 = the aggregate/join-alternative group,
/// N3 = SumOfSals (aggregate over Emp), N4 = Emp ⋈ Dept, N5 = Emp,
/// N6 = Dept.
pub fn paper_names(memo: &Memo, root: GroupId) -> Vec<(GroupId, &'static str)> {
    let root = memo.find(root);
    let mut names = Vec::new();
    names.push((root, "N1"));
    let mut n2 = None;
    for op in memo.group_ops(root) {
        if matches!(memo.op(op).op, OpKind::Select { .. }) {
            n2 = Some(memo.op_children(op)[0]);
        }
    }
    if let Some(n2) = n2 {
        names.push((n2, "N2"));
    }
    for g in memo.groups() {
        for op in memo.group_ops(g) {
            match &memo.op(op).op {
                OpKind::Aggregate { .. } => {
                    let child = memo.op_children(op)[0];
                    let over_emp = memo.group_ops(child).iter().any(
                        |&c| matches!(&memo.op(c).op, OpKind::Scan { table } if table == "Emp"),
                    );
                    if over_emp {
                        names.push((memo.find(g), "N3"));
                    }
                }
                OpKind::Join { .. } => {
                    let children = memo.op_children(op);
                    // N4 is specifically Emp ⋈ Dept (in that column order);
                    // the commuted Dept ⋈ Emp lives in a different group.
                    let emp_first = memo
                        .schema(g)
                        .column(0)
                        .and_then(|c| c.qualifier.as_deref().map(|q| q == "Emp"))
                        .unwrap_or(false);
                    if children.iter().all(|&c| memo.is_leaf(c)) && emp_first {
                        names.push((memo.find(g), "N4"));
                    }
                }
                OpKind::Scan { table } if table == "Emp" => {
                    names.push((memo.find(g), "N5"));
                }
                OpKind::Scan { table } if table == "Dept" => {
                    names.push((memo.find(g), "N6"));
                }
                _ => {}
            }
        }
    }
    names.sort_by_key(|&(g, n)| (n, g));
    names.dedup();
    names
}

/// §3.1 (Example 3.1 / Figure 3): the `ADeptsStatus` view over Emp, Dept
/// and the small `ADepts` relation, updated only on `ADepts`.
pub fn adepts_status() -> PaperScenario {
    let mut catalog = paper_stats_catalog();
    catalog
        .create_table(
            "ADepts",
            Schema::of_table("ADepts", &[("DName", DataType::Str)]),
        )
        .expect("fresh");
    catalog.declare_key("ADepts", &["DName"]).expect("cols");
    // "the number of tuples in ADepts is small compared to the number of
    // tuples in Dept".
    catalog.table_mut("ADepts").expect("ADepts").stats = TableStats::declared(50, [(0, 50)]);

    let emp = ExprNode::scan(&catalog, "Emp").expect("Emp");
    let dept = ExprNode::scan(&catalog, "Dept").expect("Dept");
    let adepts = ExprNode::scan(&catalog, "ADepts").expect("ADepts");
    // FROM Emp, Dept, ADepts WHERE Dept.DName = Emp.DName AND
    // Emp.DName = ADepts.DName GROUP BY Dept.DName, Budget.
    let j1 = ExprNode::join_on(emp, dept, &[("Emp.DName", "Dept.DName")]).expect("join 1");
    let j2 = ExprNode::join_on(j1, adepts, &[("Emp.DName", "ADepts.DName")]).expect("join 2");
    let tree = ExprNode::aggregate(
        j2,
        vec![3, 5],
        vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SumSal")],
    )
    .expect("aggregate");
    let mut memo = Memo::new();
    let root = memo.insert_tree(&tree);
    memo.set_root(root);
    explore(&mut memo, &catalog).expect("exploration");
    let root = memo.find(root);
    PaperScenario {
        catalog,
        memo,
        root,
        tree,
        // "ADeptsStatus is a materialized view that has to be maintained
        // under updates only to the relation ADepts."
        txns: vec![
            TransactionType::insert("+ADepts", "ADepts", 1.0),
            TransactionType::delete("-ADepts", "ADepts", 1.0),
        ],
    }
}

/// §4.2 (Figure 5): `R ⋈ γ(S ⋈ T)` where the aggregation can be neither
/// pushed nor pulled — its parent equivalence node is a natural
/// articulation point.
pub fn figure5() -> PaperScenario {
    let mut catalog = Catalog::new();
    for (name, cols, card, distinct) in [
        (
            "R",
            vec![("Item", DataType::Str), ("Region", DataType::Str)],
            2_000u64,
            vec![(0usize, 500u64), (1, 20)],
        ),
        (
            "S",
            vec![("Item", DataType::Str), ("Quantity", DataType::Int)],
            10_000,
            vec![(0, 500), (1, 100)],
        ),
        (
            "T",
            vec![("Item", DataType::Str), ("Price", DataType::Int)],
            500,
            vec![(0, 500), (1, 300)],
        ),
    ] {
        catalog
            .create_table(name, Schema::of_table(name, &cols))
            .expect("fresh");
        catalog.table_mut(name).expect("t").stats = TableStats::declared(card, distinct);
    }
    catalog.declare_key("T", &["Item"]).expect("cols");
    catalog.create_index("S", &["Item"]).expect("cols");
    catalog.create_index("R", &["Item"]).expect("cols");

    let s = ExprNode::scan(&catalog, "S").expect("S");
    let t = ExprNode::scan(&catalog, "T").expect("T");
    let st = ExprNode::join_on(s, t, &[("S.Item", "T.Item")]).expect("S⋈T");
    // SUM(S.Quantity * T.Price) BY T.Item — the argument spans both sides,
    // so eager aggregation cannot fire ("the aggregation cannot be pushed
    // down the expression tree because it needs both S.Quantity and
    // T.Price").
    let agg = ExprNode::aggregate(
        st,
        vec![2],
        vec![AggExpr::new(
            AggFunc::Sum,
            ScalarExpr::bin(BinOp::Mul, ScalarExpr::col(1), ScalarExpr::col(3)),
            "Total",
        )],
    )
    .expect("aggregate");
    let r = ExprNode::scan(&catalog, "R").expect("R");
    let tree = ExprNode::join_on(r, agg, &[("R.Item", "Item")]).expect("R⋈γ");
    let mut memo = Memo::new();
    let root = memo.insert_tree(&tree);
    memo.set_root(root);
    explore(&mut memo, &catalog).expect("exploration");
    let root = memo.find(root);
    PaperScenario {
        catalog,
        memo,
        root,
        tree,
        txns: vec![
            TransactionType::modify(">S", "S", 1.0),
            TransactionType::modify(">R", "R", 1.0),
        ],
    }
}

/// §3's SPJ example, generalized: `R1 ⋈ R2 ⋈ … ⋈ Rn` as a chain. Used for
/// the optimizer-scaling benchmarks (E-SCALE).
pub fn join_chain(n: usize) -> PaperScenario {
    assert!(n >= 2);
    let mut catalog = Catalog::new();
    for i in 0..n {
        let name = format!("R{}", i + 1);
        let cols = [
            (format!("a{}", i + 1), DataType::Int),
            (format!("x{}", i + 1), DataType::Int),
        ];
        let col_refs: Vec<(&str, DataType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        catalog
            .create_table(&name, Schema::of_table(&name, &col_refs))
            .expect("fresh");
        catalog.table_mut(&name).expect("t").stats =
            TableStats::declared(1_000 * (i as u64 + 1), [(0, 500), (1, 100)]);
        catalog
            .create_index(&name, &[&format!("a{}", i + 1)])
            .expect("cols");
        catalog
            .create_index(&name, &[&format!("x{}", i + 1)])
            .expect("cols");
    }
    let mut tree = ExprNode::scan(&catalog, "R1").expect("R1");
    for i in 1..n {
        let next = ExprNode::scan(&catalog, &format!("R{}", i + 1)).expect("Ri");
        let left_col = tree
            .schema
            .resolve_dotted(&format!("x{i}"))
            .expect("chain column");
        tree = ExprNode::join(
            tree,
            next,
            spacetime_algebra::JoinCondition::on(vec![(left_col, 0)]),
        )
        .expect("chain join");
    }
    let mut memo = Memo::new();
    let root = memo.insert_tree(&tree);
    memo.set_root(root);
    explore(&mut memo, &catalog).expect("exploration");
    let root = memo.find(root);
    let txns = (0..n)
        .map(|i| TransactionType::modify(format!(">R{}", i + 1), format!("R{}", i + 1), 1.0))
        .collect();
    PaperScenario {
        catalog,
        memo,
        root,
        tree,
        txns,
    }
}

/// E-PAR: the parallel-search scaling workload — a four-relation join
/// chain capped by grouping/aggregation, maintained under skewed-weight
/// transactions on every base table. Exploration yields well over a dozen
/// candidate subviews, so the view-set space is wide enough for the
/// search engine's parallelism and branch-and-bound pruning to matter;
/// the skewed weights make the heaviest-transaction-first partial sums
/// cross the pruning threshold early.
pub fn scaling_workload() -> PaperScenario {
    let n = 4;
    let mut catalog = Catalog::new();
    for i in 0..n {
        let name = format!("R{}", i + 1);
        let cols = [
            (format!("a{}", i + 1), DataType::Int),
            (format!("x{}", i + 1), DataType::Int),
        ];
        let col_refs: Vec<(&str, DataType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        catalog
            .create_table(&name, Schema::of_table(&name, &col_refs))
            .expect("fresh");
        catalog.table_mut(&name).expect("t").stats =
            TableStats::declared(1_000 * (i as u64 + 1), [(0, 500), (1, 100)]);
        catalog
            .create_index(&name, &[&format!("a{}", i + 1)])
            .expect("cols");
        catalog
            .create_index(&name, &[&format!("x{}", i + 1)])
            .expect("cols");
    }
    let mut chain = ExprNode::scan(&catalog, "R1").expect("R1");
    for i in 1..n {
        let next = ExprNode::scan(&catalog, &format!("R{}", i + 1)).expect("Ri");
        let left_col = chain
            .schema
            .resolve_dotted(&format!("x{i}"))
            .expect("chain column");
        chain = ExprNode::join(
            chain,
            next,
            spacetime_algebra::JoinCondition::on(vec![(left_col, 0)]),
        )
        .expect("chain join");
    }
    // Group by the head key, totalling the tail attribute — the
    // aggregation spans the whole chain, so it stays on top.
    let group_col = chain.schema.resolve_dotted("a1").expect("a1");
    let sum_col = chain.schema.resolve_dotted(&format!("x{n}")).expect("xn");
    let tree = ExprNode::aggregate(
        chain,
        vec![group_col],
        vec![AggExpr::new(
            AggFunc::Sum,
            ScalarExpr::col(sum_col),
            "Total",
        )],
    )
    .expect("top aggregate");
    let mut memo = Memo::new();
    let root = memo.insert_tree(&tree);
    memo.set_root(root);
    explore(&mut memo, &catalog).expect("exploration");
    let root = memo.find(root);
    // Skewed weights: updates to the head of the chain dominate. The skew
    // goes on the *weight* (relative frequency), not the delta size —
    // every transaction stays a unit modification.
    let txns = (0..n)
        .map(|i| {
            TransactionType::modify(format!(">R{}", i + 1), format!("R{}", i + 1), 1.0)
                .with_weight((1u64 << (n - 1 - i)) as f64)
        })
        .collect();
    PaperScenario {
        catalog,
        memo,
        root,
        tree,
        txns,
    }
}

/// A stack of `levels` aggregate-over-join layers (each an articulation
/// point) — the shape where the Shielding Principle pays off (E-SH).
pub fn stacked_view(levels: usize) -> PaperScenario {
    assert!(levels >= 1);
    let mut catalog = Catalog::new();
    // Base fact table.
    catalog
        .create_table(
            "F0",
            Schema::of_table("F0", &[("k0", DataType::Str), ("v0", DataType::Int)]),
        )
        .expect("fresh");
    catalog.table_mut("F0").expect("t").stats =
        TableStats::declared(10_000, [(0, 1_000), (1, 500)]);
    catalog.create_index("F0", &["k0"]).expect("cols");
    // One dimension table per level, keyed.
    for l in 1..=levels {
        let name = format!("D{l}");
        let c0 = format!("k{}", l - 1);
        let c1 = format!("k{l}");
        let c2 = format!("w{l}");
        catalog
            .create_table(
                &name,
                Schema::of_table(
                    &name,
                    &[
                        (c0.as_str(), DataType::Str),
                        (c1.as_str(), DataType::Str),
                        (c2.as_str(), DataType::Int),
                    ],
                ),
            )
            .expect("fresh");
        catalog
            .declare_key(&name, &[&format!("k{}", l - 1)])
            .expect("cols");
        catalog.table_mut(&name).expect("t").stats = TableStats::declared(
            1_000 / l as u64,
            [(0, 1_000 / l as u64), (1, 500 / l as u64), (2, 100)],
        );
    }
    // tree_l = γ_{D_l.k_l; SUM(prev_total * w_l)}(tree_{l-1} ⋈ D_l)
    let mut tree = ExprNode::scan(&catalog, "F0").expect("F0");
    for l in 1..=levels {
        let dim = ExprNode::scan(&catalog, &format!("D{l}")).expect("Dl");
        let key_col = tree
            .schema
            .resolve_dotted(&format!("k{}", l - 1))
            .expect("key col");
        let val_col = if l == 1 {
            tree.schema.resolve_dotted("v0").expect("v0")
        } else {
            tree.schema
                .resolve_dotted(&format!("t{}", l - 1))
                .expect("running total")
        };
        let joined = ExprNode::join(
            tree,
            dim,
            spacetime_algebra::JoinCondition::on(vec![(key_col, 0)]),
        )
        .expect("level join");
        let arity_left = joined.children[0].schema.arity();
        tree = ExprNode::aggregate(
            joined,
            vec![arity_left + 1], // D_l.k_l
            vec![AggExpr::new(
                AggFunc::Sum,
                // prev value × level weight spans both sides: not pushable.
                ScalarExpr::bin(
                    BinOp::Mul,
                    ScalarExpr::col(val_col),
                    ScalarExpr::col(arity_left + 2),
                ),
                format!("t{l}"),
            )],
        )
        .expect("level aggregate");
    }
    let mut memo = Memo::new();
    let root = memo.insert_tree(&tree);
    memo.set_root(root);
    explore(&mut memo, &catalog).expect("exploration");
    let root = memo.find(root);
    PaperScenario {
        catalog,
        memo,
        root,
        tree,
        txns: vec![TransactionType::modify(">F0", "F0", 1.0)],
    }
}

/// E-PIPE: the wide runtime scenario's view definitions — eight SQL views
/// over the *overlapping* Emp/Dept base tables, so a single base delta
/// fans out across many independent engines (the parallel pipeline's
/// engine-level axis). `HighEarners` and `HighEarnerCount` share the
/// access-free σ(Salary>150)(Emp) prefix, exercising the cross-engine
/// shared-delta cache.
pub const WIDE_PIPELINE_VIEWS: &[&str] = &[
    "CREATE MATERIALIZED VIEW ProblemDept (DName) AS \
     SELECT Dept.DName FROM Emp, Dept WHERE Dept.DName = Emp.DName \
     GROUP BY Dept.DName, Budget HAVING SUM(Salary) > Budget",
    "CREATE MATERIALIZED VIEW DeptProfile AS \
     SELECT DName, COUNT(*) AS Heads, MAX(Salary) AS TopSal \
     FROM Emp GROUP BY DName",
    "CREATE MATERIALIZED VIEW WellPaid AS \
     SELECT EName, Emp.DName, MName FROM Emp, Dept \
     WHERE Emp.DName = Dept.DName AND Salary > 150",
    "CREATE MATERIALIZED VIEW ActiveDepts AS SELECT DISTINCT DName FROM Emp",
    "CREATE MATERIALIZED VIEW PayrollByDept AS \
     SELECT DName, SUM(Salary) AS Payroll FROM Emp GROUP BY DName",
    "CREATE MATERIALIZED VIEW HighEarners AS \
     SELECT EName, DName FROM Emp WHERE Salary > 150",
    "CREATE MATERIALIZED VIEW HighEarnerCount AS \
     SELECT DName, COUNT(*) AS N FROM Emp WHERE Salary > 150 GROUP BY DName",
    "CREATE MATERIALIZED VIEW LowPaid AS \
     SELECT EName, DName FROM Emp WHERE Salary < 80",
];

/// Build the E-PIPE database: loaded paper data, batched propagation, the
/// eight [`WIDE_PIPELINE_VIEWS`], and a two-rooted view group (Payroll /
/// BigPayroll over a shared per-department salary sum) — ten maintained
/// views total, every one dependent on `Emp`. Execution mode is left at
/// its default; callers opt into the pipeline.
pub fn build_wide_pipeline_db(departments: usize, emps_per_dept: usize) -> Database {
    let mut db = paper_schema_db();
    db.set_propagation_mode(PropagationMode::Batched);
    load_paper_data(&mut db, departments, emps_per_dept);
    for sql in WIDE_PIPELINE_VIEWS {
        db.execute_sql(sql).expect("static view DDL");
    }
    let emp = ExprNode::scan(&db.catalog, "Emp").expect("Emp");
    let agg = ExprNode::aggregate(
        emp,
        vec![1],
        vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum")],
    )
    .expect("valid aggregate");
    let payroll = ExprNode::select(
        agg.clone(),
        ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(1), ScalarExpr::lit(0)),
    )
    .expect("valid select");
    let big_payroll = ExprNode::select(
        agg,
        ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(1), ScalarExpr::lit(500)),
    )
    .expect("valid select");
    db.create_view_group(vec![
        ("Payroll".to_string(), payroll),
        ("BigPayroll".to_string(), big_payroll),
    ])
    .expect("view group");
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_names_identify_all_six_nodes() {
        let s = problem_dept();
        let names = paper_names(&s.memo, s.root);
        let labels: Vec<&str> = names.iter().map(|(_, n)| *n).collect();
        for expected in ["N1", "N2", "N3", "N4", "N5", "N6"] {
            assert!(labels.contains(&expected), "{labels:?}");
        }
    }

    #[test]
    fn adepts_status_has_v1_candidate() {
        // The DAG must contain an aggregate-over-(Emp⋈Dept-free) shape
        // reachable without ADepts: a group whose leaves exclude ADepts
        // yet which aggregates salary — the paper's V1 building block.
        let s = adepts_status();
        let mut found = false;
        for g in s.memo.groups() {
            for op in s.memo.group_ops(g) {
                if matches!(s.memo.op(op).op, OpKind::Aggregate { .. }) {
                    let tree = s.memo.extract_one(g);
                    let leaves = tree.leaf_tables();
                    if !leaves.contains(&"ADepts") {
                        found = true;
                    }
                }
            }
        }
        assert!(found, "no ADepts-free aggregate candidate in the DAG");
    }

    #[test]
    fn join_chain_scales() {
        for n in 2..=4 {
            let s = join_chain(n);
            assert!(s.memo.count_trees(s.root) >= 1);
            assert_eq!(s.txns.len(), n);
        }
    }

    #[test]
    fn scaling_workload_is_wide_enough() {
        use spacetime_optimizer::candidate_groups;
        let s = scaling_workload();
        let candidates = candidate_groups(&s.memo, s.root);
        assert!(
            candidates.len() >= 12,
            "E-PAR needs ≥12 candidate groups, got {}",
            candidates.len()
        );
        assert!(s.txns.len() >= 4);
        // Weights must be skewed (heaviest-first pruning relies on it).
        assert!(s.txns[0].weight > s.txns[s.txns.len() - 1].weight);
    }

    #[test]
    fn stacked_view_builds() {
        let s = stacked_view(2);
        assert!(s.memo.group_count() >= 6);
        let arts = spacetime_memo::articulation_groups(&s.memo, s.root);
        assert!(!arts.is_empty(), "stacked aggregates must shield");
    }

    #[test]
    fn wide_pipeline_db_builds_and_maintains() {
        use spacetime_ivm::verify_all_views;
        let mut db = build_wide_pipeline_db(8, 4);
        // ≥ 8 views over overlapping base tables, all dependent on Emp.
        let view_count: usize = db.engines().iter().map(|e| e.roots.len()).sum();
        assert!(view_count >= 10, "wide scenario has {view_count} views");
        assert!(db.engines().iter().all(|e| e.depends_on("Emp")));
        for (table, delta) in crate::workload::mixed_workload(8, 4, 20, 3) {
            db.apply_delta(&table, delta).unwrap();
        }
        assert!(verify_all_views(&db).unwrap().is_empty());
    }

    #[test]
    fn figure5_aggregate_cannot_be_pushed() {
        let s = figure5();
        // No aggregate-over-S-only or over-T-only group may exist.
        for g in s.memo.groups() {
            for op in s.memo.group_ops(g) {
                if matches!(s.memo.op(op).op, OpKind::Aggregate { .. }) {
                    let leaves = s.memo.extract_one(g).leaf_tables().len();
                    assert!(leaves >= 2, "aggregation pushed to a single table");
                }
            }
        }
    }
}

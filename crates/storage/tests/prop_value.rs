//! Property tests for the compact `Value`/`SmallStr` representation.
//!
//! The data-plane overhaul (inline strings, interning, fixed-seed
//! hashing) must be *invisible* to semantics: string values compare,
//! hash and order exactly like the `&str`s they hold regardless of which
//! representation (inline vs interned, and which construction path) they
//! ended up in, and the `Value` total order keeps its documented Null/NaN
//! corners.

use std::cmp::Ordering;
use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hash};
use std::sync::Arc;

use proptest::prelude::*;

use spacetime_storage::{SmallStr, Value};

fn hash_of<T: Hash>(v: &T) -> u64 {
    // One fixed RandomState per process is enough: we only ever compare
    // hashes produced by the same hasher.
    use std::sync::OnceLock;
    static STATE: OnceLock<RandomState> = OnceLock::new();
    STATE.get_or_init(RandomState::new).hash_one(v)
}

/// Strings that straddle the inline boundary: lengths 0..=2*INLINE_CAP,
/// multibyte characters included.
fn any_string() -> impl Strategy<Value = String> {
    prop_oneof![
        // ASCII of every length around the boundary.
        proptest::collection::vec((b'a'..=b'z').prop_map(|b| b as char), 0..=2 * SmallStr::INLINE_CAP)
            .prop_map(|cs| cs.into_iter().collect::<String>()),
        // Multibyte: é is 2 bytes, 💾 is 4 — byte length ≠ char count.
        proptest::collection::vec(
            prop_oneof![Just('é'), Just('💾'), Just('a')],
            0..=SmallStr::INLINE_CAP
        )
        .prop_map(|cs| cs.into_iter().collect::<String>()),
    ]
}

/// Every way a `SmallStr` can be built from the same text.
fn all_constructions(s: &str) -> Vec<SmallStr> {
    vec![
        SmallStr::new(s),
        SmallStr::from(s),
        SmallStr::from(s.to_string()),
        SmallStr::from(Arc::<str>::from(s)),
    ]
}

proptest! {
    /// Eq/Ord/Hash on `SmallStr` agree with `str`, for every pair of
    /// construction paths (inline-vs-inline, inline-vs-interned,
    /// interned-vs-interned — `From<Arc<str>>` must re-inline short
    /// strings, so mixed-representation comparisons of equal text never
    /// occur, which is what makes representation-based Eq sound).
    #[test]
    fn smallstr_matches_str_semantics(a in any_string(), b in any_string()) {
        for sa in all_constructions(&a) {
            prop_assert_eq!(sa.as_str(), a.as_str());
            prop_assert_eq!(sa.is_inline(), a.len() <= SmallStr::INLINE_CAP,
                "inline iff short: {:?}", a);
            for sb in all_constructions(&b) {
                prop_assert_eq!(sa == sb, a == b);
                prop_assert_eq!(sa.cmp(&sb), a.as_str().cmp(b.as_str()));
                if a == b {
                    prop_assert_eq!(hash_of(&sa), hash_of(&sb));
                }
            }
        }
    }

    /// Same coherence lifted to `Value::Str`, plus hash-equality.
    #[test]
    fn value_str_matches_str_semantics(a in any_string(), b in any_string()) {
        let va = Value::str(&a);
        let vb = Value::str(&b);
        prop_assert_eq!(va == vb, a == b);
        prop_assert_eq!(va.total_cmp(&vb), a.as_str().cmp(b.as_str()));
        if a == b {
            prop_assert_eq!(hash_of(&va), hash_of(&vb));
        }
    }

    /// The `Value` total order really is total and hash-coherent over a
    /// mixed domain including Null, NaN, ±0.0 and cross-type numerics.
    #[test]
    fn value_total_order_is_total_and_hash_coherent(
        xs in proptest::collection::vec(
            prop_oneof![
                Just(Value::Null),
                any::<bool>().prop_map(Value::Bool),
                any::<i64>().prop_map(Value::Int),
                (-1.0e12..1.0e12).prop_map(Value::Double),
                // Small integers in both types exercise the Int/Double
                // cross-type equality corner.
                (-4i64..5).prop_map(|n| Value::Double(n as f64)),
                (-4i64..5).prop_map(Value::Int),
                Just(Value::Double(f64::NAN)),
                Just(Value::Double(-0.0)),
                Just(Value::Double(0.0)),
                any_string().prop_map(|s| Value::str(&s)),
            ],
            1..12,
        )
    ) {
        for x in &xs {
            // Reflexive — including NaN (self-equal under the total order).
            prop_assert_eq!(x.total_cmp(x), Ordering::Equal);
            // Null sorts first, NaN sorts greatest among numerics.
            if !x.is_null() {
                prop_assert_eq!(Value::Null.total_cmp(x), Ordering::Less);
            }
            for y in &xs {
                // Antisymmetry.
                prop_assert_eq!(x.total_cmp(y), y.total_cmp(x).reverse());
                // Equal-by-order values hash alike (grouping soundness);
                // covers Int/Double cross-type equality and -0.0 == 0.0.
                if x.total_cmp(y) == Ordering::Equal {
                    prop_assert_eq!(hash_of(x), hash_of(y));
                }
                for z in &xs {
                    // Transitivity on the ≤ relation.
                    if x.total_cmp(y) != Ordering::Greater
                        && y.total_cmp(z) != Ordering::Greater
                    {
                        prop_assert_ne!(x.total_cmp(z), Ordering::Greater);
                    }
                }
            }
        }
    }

    /// Short strings — the empty string included — never touch the
    /// interner: every construction path inlines them.
    #[test]
    fn short_strings_always_inline(
        s in proptest::collection::vec((b'a'..=b'z').prop_map(|b| b as char), 0..=SmallStr::INLINE_CAP)
            .prop_map(|cs| cs.into_iter().collect::<String>())
    ) {
        for built in all_constructions(&s) {
            prop_assert!(built.is_inline(), "{:?} should be inline", s);
        }
        match Value::str(&s) {
            Value::Str(ss) => prop_assert!(ss.is_inline()),
            other => prop_assert!(false, "Value::str built {other:?}"),
        }
    }
}

#[test]
fn empty_string_is_inline_and_equal_across_paths() {
    let a = SmallStr::new("");
    assert!(a.is_inline());
    assert_eq!(a.as_str(), "");
    for b in all_constructions("") {
        assert!(b.is_inline());
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }
}

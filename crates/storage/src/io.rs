//! Page-I/O accounting.
//!
//! §3.6 of the paper fixes the physical cost model used throughout its
//! evaluation:
//!
//! > *"We assume all indices are hash indices, that there are no overflowed
//! > hash buckets, and that there is no clustering of the tuples in the
//! > relation. We count the number of page I/O operations. Looking up a
//! > materialized relation using an index involves reading one index page
//! > and as many relation pages as the number of tuples returned. Updating a
//! > materialized relation involves reading and writing (when required) one
//! > index page per index maintained on the materialized relation, one
//! > relation page read per tuple to read the old value, and one relation
//! > page write per tuple to write the new value."*
//!
//! [`IoMeter`] charges exactly those events. Both the *estimated* costs the
//! optimizer computes (in `spacetime-cost`) and the *measured* costs the IVM
//! engine observes (in `spacetime-ivm`) are denominated in these page I/Os,
//! so the two are directly comparable — which is how EXPERIMENTS.md checks
//! the paper's numbers.

use std::fmt;

/// Mutable page-I/O counters, threaded through every storage access.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoMeter {
    /// Index pages read (one per hash-index probe, per the paper).
    pub index_page_reads: u64,
    /// Index pages written (index maintenance on update).
    pub index_page_writes: u64,
    /// Data (relation) pages read — one per tuple fetched, since tuples are
    /// unclustered.
    pub data_page_reads: u64,
    /// Data pages written — one per tuple written.
    pub data_page_writes: u64,
}

impl IoMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        IoMeter::default()
    }

    /// Total page I/Os — the quantity the paper's tables report.
    pub fn total(&self) -> u64 {
        self.index_page_reads
            + self.index_page_writes
            + self.data_page_reads
            + self.data_page_writes
    }

    /// Charge one index-page read (a hash probe).
    pub fn index_probe(&mut self) {
        self.index_page_reads += 1;
    }

    /// Charge index-page writes.
    pub fn index_write(&mut self, pages: u64) {
        self.index_page_writes += pages;
    }

    /// Charge reads of `n` unclustered tuples (one page each).
    pub fn read_tuples(&mut self, n: u64) {
        self.data_page_reads += n;
    }

    /// Charge writes of `n` unclustered tuples (one page each).
    pub fn write_tuples(&mut self, n: u64) {
        self.data_page_writes += n;
    }

    /// Charge a sequential scan of `pages` full pages.
    pub fn scan_pages(&mut self, pages: u64) {
        self.data_page_reads += pages;
    }

    /// Snapshot the current counters; subtract later with
    /// [`IoSnapshot::delta`].
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot(*self)
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = IoMeter::default();
    }
}

impl fmt::Display for IoMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} page I/Os (idx r/w {}/{}, data r/w {}/{})",
            self.total(),
            self.index_page_reads,
            self.index_page_writes,
            self.data_page_reads,
            self.data_page_writes
        )
    }
}

/// A point-in-time copy of an [`IoMeter`], for scoped measurement.
#[derive(Debug, Clone, Copy)]
pub struct IoSnapshot(IoMeter);

impl IoSnapshot {
    /// Counters accumulated since the snapshot was taken.
    pub fn delta(&self, now: &IoMeter) -> IoMeter {
        IoMeter {
            index_page_reads: now.index_page_reads - self.0.index_page_reads,
            index_page_writes: now.index_page_writes - self.0.index_page_writes,
            data_page_reads: now.data_page_reads - self.0.data_page_reads,
            data_page_writes: now.data_page_writes - self.0.data_page_writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_lookup_charges_one_plus_tuples() {
        // The paper's canonical example: an indexed read of the 10 Emp
        // tuples of one department costs 11 page I/Os.
        let mut io = IoMeter::new();
        io.index_probe();
        io.read_tuples(10);
        assert_eq!(io.total(), 11);
    }

    #[test]
    fn update_charges_read_modify_write() {
        // Maintaining N4 on a Dept update: read+modify+write 10 tuples plus
        // one index page read = 21 page I/Os (paper §3.6).
        let mut io = IoMeter::new();
        io.index_probe();
        io.read_tuples(10);
        io.write_tuples(10);
        assert_eq!(io.total(), 21);
    }

    #[test]
    fn snapshot_delta_isolates_a_scope() {
        let mut io = IoMeter::new();
        io.read_tuples(5);
        let snap = io.snapshot();
        io.index_probe();
        io.write_tuples(2);
        let d = snap.delta(&io);
        assert_eq!(d.total(), 3);
        assert_eq!(d.data_page_reads, 0);
        assert_eq!(io.total(), 8);
    }

    #[test]
    fn display_summarizes() {
        let mut io = IoMeter::new();
        io.index_probe();
        io.read_tuples(1);
        assert!(io.to_string().starts_with("2 page I/Os"));
    }
}

//! Multisets of tuples.
//!
//! SQL views have multiset semantics, and incremental maintenance of
//! multiset views is count-based: a [`Bag`] maps each distinct tuple to its
//! multiplicity. This is the common currency between stored relations,
//! query results and (via signed counts in `spacetime-delta`) deltas.

use std::collections::HashMap;
use std::fmt;

use crate::error::{StorageError, StorageResult};
use crate::tuple::Tuple;

/// A multiset of tuples: distinct tuple → multiplicity (> 0).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bag {
    counts: HashMap<Tuple, u64>,
    total: u64,
}

impl Bag {
    /// The empty bag.
    pub fn new() -> Self {
        Bag::default()
    }

    /// Build from an iterator of tuples (each with multiplicity 1).
    pub fn from_tuples(tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut b = Bag::new();
        for t in tuples {
            b.insert(t, 1);
        }
        b
    }

    /// Number of *distinct* tuples.
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// Total number of tuples counting multiplicity.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Multiplicity of a tuple (0 if absent).
    pub fn count(&self, t: &Tuple) -> u64 {
        self.counts.get(t).copied().unwrap_or(0)
    }

    /// Whether the tuple occurs at least once.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.count(t) > 0
    }

    /// Insert `n` copies of a tuple. Inserting zero copies is a no-op.
    pub fn insert(&mut self, t: Tuple, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(t).or_insert(0) += n;
        self.total += n;
    }

    /// Remove `n` copies; errors if fewer than `n` copies are present.
    pub fn remove(&mut self, t: &Tuple, n: u64) -> StorageResult<()> {
        if n == 0 {
            return Ok(());
        }
        match self.counts.get_mut(t) {
            Some(c) if *c > n => {
                *c -= n;
                self.total -= n;
                Ok(())
            }
            Some(c) if *c == n => {
                self.counts.remove(t);
                self.total -= n;
                Ok(())
            }
            _ => Err(StorageError::TupleNotFound {
                relation: "<bag>".into(),
            }),
        }
    }

    /// Remove up to `n` copies, returning how many were actually removed.
    pub fn remove_up_to(&mut self, t: &Tuple, n: u64) -> u64 {
        let have = self.count(t);
        let take = have.min(n);
        if take > 0 {
            self.remove(t, take).expect("count checked");
        }
        take
    }

    /// Iterate `(tuple, multiplicity)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, u64)> {
        self.counts.iter().map(|(t, &c)| (t, c))
    }

    /// Iterate tuples, repeating each per its multiplicity.
    pub fn iter_expanded(&self) -> impl Iterator<Item = &Tuple> {
        self.counts
            .iter()
            .flat_map(|(t, &c)| std::iter::repeat_n(t, c as usize))
    }

    /// Deterministically-ordered `(tuple, multiplicity)` pairs (for output
    /// and testing).
    pub fn sorted(&self) -> Vec<(Tuple, u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(t, &c)| (t.clone(), c)).collect();
        v.sort();
        v
    }

    /// Bag union (additive).
    pub fn union(&self, other: &Bag) -> Bag {
        let mut out = self.clone();
        for (t, c) in other.iter() {
            out.insert(t.clone(), c);
        }
        out
    }

    /// Monus (bag difference, truncating at zero): `self ∸ other`.
    pub fn monus(&self, other: &Bag) -> Bag {
        let mut out = Bag::new();
        for (t, c) in self.iter() {
            let o = other.count(t);
            if c > o {
                out.insert(t.clone(), c - o);
            }
        }
        out
    }

    /// Consume into the count map.
    pub fn into_counts(self) -> HashMap<Tuple, u64> {
        self.counts
    }
}

impl fmt::Display for Bag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{")?;
        for (t, c) in self.sorted() {
            if c == 1 {
                writeln!(f, "  {t}")?;
            } else {
                writeln!(f, "  {t} x{c}")?;
            }
        }
        write!(f, "}}")
    }
}

impl FromIterator<Tuple> for Bag {
    fn from_iter<T: IntoIterator<Item = Tuple>>(iter: T) -> Self {
        Bag::from_tuples(iter)
    }
}

impl FromIterator<(Tuple, u64)> for Bag {
    fn from_iter<T: IntoIterator<Item = (Tuple, u64)>>(iter: T) -> Self {
        let mut b = Bag::new();
        for (t, c) in iter {
            b.insert(t, c);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn multiplicities_accumulate() {
        let mut b = Bag::new();
        b.insert(tuple![1], 2);
        b.insert(tuple![1], 3);
        assert_eq!(b.count(&tuple![1]), 5);
        assert_eq!(b.len(), 5);
        assert_eq!(b.distinct_len(), 1);
    }

    #[test]
    fn insert_zero_is_noop() {
        let mut b = Bag::new();
        b.insert(tuple![1], 0);
        assert!(b.is_empty());
        assert_eq!(b.distinct_len(), 0);
    }

    #[test]
    fn remove_exact_and_partial() {
        let mut b = Bag::new();
        b.insert(tuple![1], 3);
        b.remove(&tuple![1], 2).unwrap();
        assert_eq!(b.count(&tuple![1]), 1);
        b.remove(&tuple![1], 1).unwrap();
        assert!(!b.contains(&tuple![1]));
        assert_eq!(b.distinct_len(), 0, "zero-count entries are dropped");
    }

    #[test]
    fn remove_underflow_errors() {
        let mut b = Bag::new();
        b.insert(tuple![1], 1);
        assert!(b.remove(&tuple![1], 2).is_err());
        assert!(b.remove(&tuple![2], 1).is_err());
        assert_eq!(b.count(&tuple![1]), 1, "failed remove leaves bag intact");
    }

    #[test]
    fn remove_up_to_truncates() {
        let mut b = Bag::new();
        b.insert(tuple![1], 2);
        assert_eq!(b.remove_up_to(&tuple![1], 5), 2);
        assert_eq!(b.remove_up_to(&tuple![1], 5), 0);
    }

    #[test]
    fn union_and_monus() {
        let a: Bag = [(tuple![1], 3), (tuple![2], 1)].into_iter().collect();
        let b: Bag = [(tuple![1], 1), (tuple![3], 2)].into_iter().collect();
        let u = a.union(&b);
        assert_eq!(u.count(&tuple![1]), 4);
        assert_eq!(u.count(&tuple![3]), 2);
        let m = a.monus(&b);
        assert_eq!(m.count(&tuple![1]), 2);
        assert_eq!(m.count(&tuple![2]), 1);
        assert_eq!(m.count(&tuple![3]), 0);
    }

    #[test]
    fn equality_is_bag_equality() {
        let a: Bag = [(tuple![1], 2)].into_iter().collect();
        let mut b = Bag::new();
        b.insert(tuple![1], 1);
        b.insert(tuple![1], 1);
        assert_eq!(a, b);
    }

    #[test]
    fn iter_expanded_repeats() {
        let a: Bag = [(tuple![7], 3)].into_iter().collect();
        assert_eq!(a.iter_expanded().count(), 3);
    }

    #[test]
    fn sorted_is_deterministic() {
        let a: Bag = [(tuple![2], 1), (tuple![1], 1)].into_iter().collect();
        let s = a.sorted();
        assert_eq!(s[0].0, tuple![1]);
        assert_eq!(s[1].0, tuple![2]);
    }
}

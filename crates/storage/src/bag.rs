//! Multisets of tuples.
//!
//! SQL views have multiset semantics, and incremental maintenance of
//! multiset views is count-based: a [`Bag`] maps each distinct tuple to its
//! multiplicity. This is the common currency between stored relations,
//! query results and (via signed counts in `spacetime-delta`) deltas.
//!
//! ## Representation: flat for small, sharded copy-on-write for large
//!
//! The staged-commit protocol copies every touched table per transaction
//! (`Arc::make_mut` on the catalog's `Arc<Table>`), so the cost of cloning
//! a bag is on the per-transaction critical path. A small bag (a per-key
//! query result, an index bucket) is a single flat hash map — cheap to
//! build, cheap to drop. Once a bag grows past [`PROMOTE_AT`] distinct
//! tuples it promotes to [`SHARD_COUNT`] *individually shared* shards:
//! cloning the bag then costs one `Arc` bump per shard, and a mutation
//! deep-copies only the one shard (~1/[`SHARD_COUNT`] of the data) it
//! lands in. A transaction that modifies a handful of tuples in a
//! 40 000-row table copies a few hundred entries instead of 40 000.
//!
//! Shard routing uses the fixed-seed [`crate::fx`] hash, so equal content
//! always produces equal shard layouts; equality between two sharded bags
//! compares shard-wise with an `Arc::ptr_eq` fast path (undisturbed shards
//! of a copied table compare in O(1)).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{StorageError, StorageResult};
use crate::fx::{fx_hash_one, FxHashMap};
use crate::tuple::Tuple;

/// Number of shards in the large representation (power of two).
const SHARD_COUNT: usize = 64;

/// Distinct-tuple count beyond which a bag promotes to sharded storage.
/// Low enough that every stored relation in the paper workloads shards,
/// high enough that transient per-key results never pay shard overhead.
const PROMOTE_AT: usize = 192;

type Shard = FxHashMap<Tuple, u64>;

#[derive(Debug, Clone)]
enum Store {
    /// Small: one flat map.
    Flat(Shard),
    /// Large: `SHARD_COUNT` copy-on-write shards, routed by tuple hash.
    Sharded(Vec<Arc<Shard>>),
}

/// A multiset of tuples: distinct tuple → multiplicity (> 0).
///
/// Mutations additionally record which shards they disturbed in a
/// [`SHARD_COUNT`]-bit dirty mask (bit 0 for the flat representation), so
/// a commit can report — and a rollback can be checked against — exactly
/// how much of the bag one transaction touched. The mask is bookkeeping,
/// not content: equality ignores it.
#[derive(Debug, Clone)]
pub struct Bag {
    store: Store,
    total: u64,
    distinct: usize,
    dirty: u64,
}

impl Default for Bag {
    fn default() -> Self {
        Bag {
            store: Store::Flat(Shard::default()),
            total: 0,
            distinct: 0,
            dirty: 0,
        }
    }
}

#[inline]
fn shard_of(t: &Tuple) -> usize {
    (fx_hash_one(t) as usize) & (SHARD_COUNT - 1)
}

impl Bag {
    /// The empty bag.
    pub fn new() -> Self {
        Bag::default()
    }

    /// Build from an iterator of tuples (each with multiplicity 1).
    pub fn from_tuples(tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut b = Bag::new();
        for t in tuples {
            b.insert(t, 1);
        }
        b
    }

    /// Number of *distinct* tuples.
    pub fn distinct_len(&self) -> usize {
        self.distinct
    }

    /// Total number of tuples counting multiplicity.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Multiplicity of a tuple (0 if absent).
    pub fn count(&self, t: &Tuple) -> u64 {
        match &self.store {
            Store::Flat(m) => m.get(t).copied().unwrap_or(0),
            Store::Sharded(s) => s[shard_of(t)].get(t).copied().unwrap_or(0),
        }
    }

    /// Whether the tuple occurs at least once.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.count(t) > 0
    }

    /// Promote flat storage to sharded storage (one-time copy).
    fn promote(&mut self) {
        let Store::Flat(m) = &mut self.store else {
            return;
        };
        let mut shards: Vec<Shard> = (0..SHARD_COUNT).map(|_| Shard::default()).collect();
        for (t, c) in m.drain() {
            let s = shard_of(&t);
            shards[s].insert(t, c);
        }
        self.store = Store::Sharded(shards.into_iter().map(Arc::new).collect());
        // A promotion rewrites every shard.
        self.dirty = u64::MAX;
    }

    /// Insert `n` copies of a tuple. Inserting zero copies is a no-op.
    pub fn insert(&mut self, t: Tuple, n: u64) {
        if n == 0 {
            return;
        }
        if matches!(&self.store, Store::Flat(_)) && self.distinct >= PROMOTE_AT {
            self.promote();
        }
        let map = match &mut self.store {
            Store::Flat(m) => {
                self.dirty |= 1;
                m
            }
            Store::Sharded(s) => {
                let sh = shard_of(&t);
                self.dirty |= 1 << sh;
                Arc::make_mut(&mut s[sh])
            }
        };
        let entry = map.entry(t).or_insert(0);
        if *entry == 0 {
            self.distinct += 1;
        }
        *entry += n;
        self.total += n;
    }

    /// Remove `n` copies; errors if fewer than `n` copies are present.
    pub fn remove(&mut self, t: &Tuple, n: u64) -> StorageResult<()> {
        if n == 0 {
            return Ok(());
        }
        if self.count(t) < n {
            return Err(StorageError::TupleNotFound {
                relation: "<bag>".into(),
            });
        }
        let map = match &mut self.store {
            Store::Flat(m) => {
                self.dirty |= 1;
                m
            }
            Store::Sharded(s) => {
                let sh = shard_of(t);
                self.dirty |= 1 << sh;
                Arc::make_mut(&mut s[sh])
            }
        };
        let c = map.get_mut(t).expect("count checked");
        if *c == n {
            map.remove(t);
            self.distinct -= 1;
        } else {
            *c -= n;
        }
        self.total -= n;
        Ok(())
    }

    /// Bitmask of shards disturbed since the last [`Bag::clear_dirty`]
    /// (bit 0 for the flat representation).
    pub fn dirty_mask(&self) -> u64 {
        self.dirty
    }

    /// Number of shards disturbed since the last [`Bag::clear_dirty`].
    pub fn dirty_shards(&self) -> u32 {
        self.dirty.count_ones()
    }

    /// Reset the dirty-shard mask (content unchanged).
    pub fn clear_dirty(&mut self) {
        self.dirty = 0;
    }

    /// Remove up to `n` copies, returning how many were actually removed.
    pub fn remove_up_to(&mut self, t: &Tuple, n: u64) -> u64 {
        let have = self.count(t);
        let take = have.min(n);
        if take > 0 {
            self.remove(t, take).expect("count checked");
        }
        take
    }

    /// Iterate `(tuple, multiplicity)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, u64)> {
        let it: Box<dyn Iterator<Item = (&Tuple, u64)>> = match &self.store {
            Store::Flat(m) => Box::new(m.iter().map(|(t, &c)| (t, c))),
            Store::Sharded(s) => Box::new(
                s.iter()
                    .flat_map(|sh| sh.iter().map(|(t, &c)| (t, c))),
            ),
        };
        it
    }

    /// Iterate tuples, repeating each per its multiplicity.
    pub fn iter_expanded(&self) -> impl Iterator<Item = &Tuple> {
        self.iter()
            .flat_map(|(t, c)| std::iter::repeat_n(t, c as usize))
    }

    /// Deterministically-ordered `(tuple, multiplicity)` pairs (for output
    /// and testing).
    pub fn sorted(&self) -> Vec<(Tuple, u64)> {
        let mut v: Vec<_> = self.iter().map(|(t, c)| (t.clone(), c)).collect();
        v.sort();
        v
    }

    /// Bag union (additive).
    pub fn union(&self, other: &Bag) -> Bag {
        let mut out = self.clone();
        for (t, c) in other.iter() {
            out.insert(t.clone(), c);
        }
        out
    }

    /// Monus (bag difference, truncating at zero): `self ∸ other`.
    pub fn monus(&self, other: &Bag) -> Bag {
        let mut out = Bag::new();
        for (t, c) in self.iter() {
            let o = other.count(t);
            if c > o {
                out.insert(t.clone(), c - o);
            }
        }
        out
    }

    /// Consume into a count map.
    pub fn into_counts(self) -> HashMap<Tuple, u64> {
        match self.store {
            Store::Flat(m) => m.into_iter().collect(),
            Store::Sharded(s) => s
                .into_iter()
                .flat_map(|sh| {
                    Arc::try_unwrap(sh)
                        .unwrap_or_else(|a| (*a).clone())
                        .into_iter()
                })
                .collect(),
        }
    }
}

impl PartialEq for Bag {
    fn eq(&self, other: &Self) -> bool {
        if self.total != other.total || self.distinct != other.distinct {
            return false;
        }
        match (&self.store, &other.store) {
            (Store::Flat(a), Store::Flat(b)) => a == b,
            // Same content ⇒ same shard layout (fixed-seed routing), so
            // compare shard-wise; undisturbed copies are pointer-equal.
            (Store::Sharded(a), Store::Sharded(b)) => a
                .iter()
                .zip(b)
                .all(|(x, y)| Arc::ptr_eq(x, y) || x == y),
            // Mixed representations can hold equal content (promotion is
            // size-history dependent); fall back to semantic comparison.
            _ => self.iter().all(|(t, c)| other.count(t) == c),
        }
    }
}
impl Eq for Bag {}

impl fmt::Display for Bag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{")?;
        for (t, c) in self.sorted() {
            if c == 1 {
                writeln!(f, "  {t}")?;
            } else {
                writeln!(f, "  {t} x{c}")?;
            }
        }
        write!(f, "}}")
    }
}

impl FromIterator<Tuple> for Bag {
    fn from_iter<T: IntoIterator<Item = Tuple>>(iter: T) -> Self {
        Bag::from_tuples(iter)
    }
}

impl FromIterator<(Tuple, u64)> for Bag {
    fn from_iter<T: IntoIterator<Item = (Tuple, u64)>>(iter: T) -> Self {
        let mut b = Bag::new();
        for (t, c) in iter {
            b.insert(t, c);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn multiplicities_accumulate() {
        let mut b = Bag::new();
        b.insert(tuple![1], 2);
        b.insert(tuple![1], 3);
        assert_eq!(b.count(&tuple![1]), 5);
        assert_eq!(b.len(), 5);
        assert_eq!(b.distinct_len(), 1);
    }

    #[test]
    fn insert_zero_is_noop() {
        let mut b = Bag::new();
        b.insert(tuple![1], 0);
        assert!(b.is_empty());
        assert_eq!(b.distinct_len(), 0);
    }

    #[test]
    fn remove_exact_and_partial() {
        let mut b = Bag::new();
        b.insert(tuple![1], 3);
        b.remove(&tuple![1], 2).unwrap();
        assert_eq!(b.count(&tuple![1]), 1);
        b.remove(&tuple![1], 1).unwrap();
        assert!(!b.contains(&tuple![1]));
        assert_eq!(b.distinct_len(), 0, "zero-count entries are dropped");
    }

    #[test]
    fn remove_underflow_errors() {
        let mut b = Bag::new();
        b.insert(tuple![1], 1);
        assert!(b.remove(&tuple![1], 2).is_err());
        assert!(b.remove(&tuple![2], 1).is_err());
        assert_eq!(b.count(&tuple![1]), 1, "failed remove leaves bag intact");
    }

    #[test]
    fn remove_up_to_truncates() {
        let mut b = Bag::new();
        b.insert(tuple![1], 2);
        assert_eq!(b.remove_up_to(&tuple![1], 5), 2);
        assert_eq!(b.remove_up_to(&tuple![1], 5), 0);
    }

    #[test]
    fn union_and_monus() {
        let a: Bag = [(tuple![1], 3), (tuple![2], 1)].into_iter().collect();
        let b: Bag = [(tuple![1], 1), (tuple![3], 2)].into_iter().collect();
        let u = a.union(&b);
        assert_eq!(u.count(&tuple![1]), 4);
        assert_eq!(u.count(&tuple![3]), 2);
        let m = a.monus(&b);
        assert_eq!(m.count(&tuple![1]), 2);
        assert_eq!(m.count(&tuple![2]), 1);
        assert_eq!(m.count(&tuple![3]), 0);
    }

    #[test]
    fn equality_is_bag_equality() {
        let a: Bag = [(tuple![1], 2)].into_iter().collect();
        let mut b = Bag::new();
        b.insert(tuple![1], 1);
        b.insert(tuple![1], 1);
        assert_eq!(a, b);
    }

    #[test]
    fn iter_expanded_repeats() {
        let a: Bag = [(tuple![7], 3)].into_iter().collect();
        assert_eq!(a.iter_expanded().count(), 3);
    }

    #[test]
    fn sorted_is_deterministic() {
        let a: Bag = [(tuple![2], 1), (tuple![1], 1)].into_iter().collect();
        let s = a.sorted();
        assert_eq!(s[0].0, tuple![1]);
        assert_eq!(s[1].0, tuple![2]);
    }

    fn big(n: i64) -> Bag {
        (0..n).map(|i| tuple![i]).collect()
    }

    #[test]
    fn promotion_preserves_contents_and_counters() {
        let n = (PROMOTE_AT as i64) * 2;
        let b = big(n);
        assert!(matches!(b.store, Store::Sharded(_)), "must have promoted");
        assert_eq!(b.len(), n as u64);
        assert_eq!(b.distinct_len(), n as usize);
        for i in 0..n {
            assert_eq!(b.count(&tuple![i]), 1);
        }
        assert_eq!(b.iter().count(), n as usize);
    }

    #[test]
    fn sharded_and_flat_bags_with_equal_content_compare_equal() {
        // Build sharded by overshooting then removing; flat directly.
        let n = (PROMOTE_AT as i64) * 2;
        let mut sharded = big(n);
        for i in 100..n {
            sharded.remove(&tuple![i], 1).unwrap();
        }
        let flat = big(100);
        assert!(matches!(sharded.store, Store::Sharded(_)));
        assert!(matches!(flat.store, Store::Flat(_)));
        assert_eq!(sharded, flat);
        assert_eq!(flat, sharded);
        sharded.insert(tuple![-1], 1);
        assert_ne!(sharded, flat);
    }

    #[test]
    fn clone_shares_shards_until_mutation() {
        let n = (PROMOTE_AT as i64) * 2;
        let a = big(n);
        let mut b = a.clone();
        assert_eq!(a, b);
        b.insert(tuple![0], 1); // copies exactly one shard
        assert_eq!(a.count(&tuple![0]), 1, "original untouched");
        assert_eq!(b.count(&tuple![0]), 2);
        if let (Store::Sharded(sa), Store::Sharded(sb)) = (&a.store, &b.store) {
            let shared = sa
                .iter()
                .zip(sb)
                .filter(|(x, y)| Arc::ptr_eq(x, y))
                .count();
            assert_eq!(shared, SHARD_COUNT - 1, "only the touched shard copied");
        } else {
            panic!("expected sharded stores");
        }
    }

    #[test]
    fn dirty_mask_tracks_disturbed_shards_only() {
        let n = (PROMOTE_AT as i64) * 2;
        let mut b = big(n);
        b.clear_dirty();
        assert_eq!(b.dirty_shards(), 0);
        b.insert(tuple![0], 1);
        b.remove(&tuple![0], 1).unwrap();
        assert_eq!(b.dirty_shards(), 1, "one tuple disturbs one shard");
        // Failed removes leave the mask untouched.
        let mask = b.dirty_mask();
        assert!(b.remove(&tuple![-123], 1).is_err());
        assert_eq!(b.dirty_mask(), mask);
        // Equality ignores the mask.
        let mut c = b.clone();
        c.clear_dirty();
        assert_eq!(b, c);
    }

    #[test]
    fn into_counts_roundtrips_across_representations() {
        for n in [10i64, (PROMOTE_AT as i64) * 2] {
            let b = big(n);
            let counts = b.clone().into_counts();
            assert_eq!(counts.len(), n as usize);
            assert!(counts.values().all(|&c| c == 1));
        }
    }
}

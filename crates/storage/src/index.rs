//! Hash indices over column subsets.
//!
//! Per the paper's physical model, every index is a hash index with no
//! overflowed buckets: a probe reads exactly one index page, then one data
//! page per matching tuple. [`HashIndex`] stores the matching tuples (with
//! multiplicities) directly under each key; the I/O charging happens in
//! [`crate::relation::Relation`], which knows when an access is index-backed.

use std::collections::HashMap;

use crate::bag::Bag;
use crate::tuple::Tuple;
use crate::value::Value;

/// A hash index mapping a key (values of `key_cols`) to the bag of matching
/// tuples.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    key_cols: Vec<usize>,
    buckets: HashMap<Box<[Value]>, Bag>,
}

impl HashIndex {
    /// Create an empty index on the given column positions.
    pub fn new(key_cols: Vec<usize>) -> Self {
        HashIndex {
            key_cols,
            buckets: HashMap::new(),
        }
    }

    /// The indexed column positions.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Extract this index's key from a tuple.
    pub fn key_of(&self, t: &Tuple) -> Box<[Value]> {
        self.key_cols
            .iter()
            .map(|&c| t.get(c).cloned().unwrap_or(Value::Null))
            .collect()
    }

    /// Insert `n` copies of a tuple.
    pub fn insert(&mut self, t: &Tuple, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets
            .entry(self.key_of(t))
            .or_default()
            .insert(t.clone(), n);
    }

    /// Remove `n` copies of a tuple; the caller guarantees presence (the
    /// owning relation's bag is the source of truth).
    pub fn remove(&mut self, t: &Tuple, n: u64) {
        let key = self.key_of(t);
        if let Some(bucket) = self.buckets.get_mut(&key) {
            bucket.remove_up_to(t, n);
            if bucket.is_empty() {
                self.buckets.remove(&key);
            }
        }
    }

    /// All tuples matching `key`, as a bag (empty if none).
    pub fn probe(&self, key: &[Value]) -> Option<&Bag> {
        self.buckets.get(key)
    }

    /// Number of tuples (counting multiplicity) under `key`.
    pub fn probe_count(&self, key: &[Value]) -> u64 {
        self.buckets.get(key).map_or(0, |b| b.len())
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.buckets.len()
    }

    /// Rebuild from scratch over a bag.
    pub fn rebuild(&mut self, data: &Bag) {
        self.buckets.clear();
        for (t, c) in data.iter() {
            self.insert(t, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn sample() -> HashIndex {
        // Index on column 1 (DName) of (EName, DName, Salary).
        let mut idx = HashIndex::new(vec![1]);
        idx.insert(&tuple!["alice", "Sales", 100], 1);
        idx.insert(&tuple!["bob", "Sales", 80], 1);
        idx.insert(&tuple!["carol", "Eng", 120], 1);
        idx
    }

    #[test]
    fn probe_finds_all_matches() {
        let idx = sample();
        assert_eq!(idx.probe_count(&[Value::str("Sales")]), 2);
        assert_eq!(idx.probe_count(&[Value::str("Eng")]), 1);
        assert_eq!(idx.probe_count(&[Value::str("HR")]), 0);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn remove_cleans_empty_buckets() {
        let mut idx = sample();
        idx.remove(&tuple!["carol", "Eng", 120], 1);
        assert_eq!(idx.probe_count(&[Value::str("Eng")]), 0);
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn multiplicity_respected() {
        let mut idx = HashIndex::new(vec![0]);
        idx.insert(&tuple!["k", 1], 3);
        assert_eq!(idx.probe_count(&[Value::str("k")]), 3);
        idx.remove(&tuple!["k", 1], 2);
        assert_eq!(idx.probe_count(&[Value::str("k")]), 1);
    }

    #[test]
    fn composite_keys() {
        let mut idx = HashIndex::new(vec![0, 1]);
        idx.insert(&tuple!["a", 1, 10], 1);
        idx.insert(&tuple!["a", 2, 20], 1);
        assert_eq!(idx.probe_count(&[Value::str("a"), Value::Int(1)]), 1);
        assert_eq!(idx.probe_count(&[Value::str("a"), Value::Int(3)]), 0);
    }

    #[test]
    fn rebuild_matches_incremental() {
        let data: Bag = [(tuple!["x", 1], 2), (tuple!["y", 2], 1)]
            .into_iter()
            .collect();
        let mut a = HashIndex::new(vec![0]);
        a.rebuild(&data);
        let mut b = HashIndex::new(vec![0]);
        for (t, c) in data.iter() {
            b.insert(t, c);
        }
        assert_eq!(
            a.probe_count(&[Value::str("x")]),
            b.probe_count(&[Value::str("x")])
        );
        assert_eq!(a.distinct_keys(), b.distinct_keys());
    }
}

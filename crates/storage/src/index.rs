//! Hash indices over column subsets.
//!
//! Per the paper's physical model, every index is a hash index with no
//! overflowed buckets: a probe reads exactly one index page, then one data
//! page per matching tuple. [`HashIndex`] stores the matching tuples (with
//! multiplicities) directly under each key; the I/O charging happens in
//! [`crate::relation::Relation`], which knows when an access is index-backed.
//!
//! ## Representation
//!
//! Buckets live in [`SHARD_COUNT`] copy-on-write shards routed by the
//! fixed-seed [`crate::fx`] hash of the key, mirroring
//! [`crate::bag::Bag`]'s large representation: cloning an index is one
//! `Arc` bump per shard, and a mutation deep-copies only the shard its key
//! routes to. Single-column indices — the overwhelmingly common case —
//! take a specialized path keyed by [`Value`] directly, so neither probes
//! nor maintenance ever allocate a key slice; composite indices accept
//! borrowed `&[Value]` probes (the owned `Box<[Value]>` key is built only
//! when maintenance actually inserts a new bucket).

use std::sync::Arc;

use crate::bag::Bag;
use crate::fx::{fx_hash_one, FxHashMap, FxHasher};
use crate::tuple::Tuple;
use crate::value::Value;

/// Number of bucket shards (power of two).
const SHARD_COUNT: usize = 64;

#[derive(Debug, Clone)]
enum Buckets {
    /// Single-column key: keyed by the value itself, no slice allocation
    /// on any path.
    Single(Vec<Arc<FxHashMap<Value, Bag>>>),
    /// Composite key: probed by borrowed `&[Value]`.
    Multi(Vec<Arc<FxHashMap<Box<[Value]>, Bag>>>),
}

/// A hash index mapping a key (values of `key_cols`) to the bag of matching
/// tuples.
///
/// Like [`Bag`], maintenance records disturbed bucket shards in a dirty
/// mask so commits can report how much of the index one transaction
/// touched.
#[derive(Debug, Clone)]
pub struct HashIndex {
    key_cols: Vec<usize>,
    buckets: Buckets,
    dirty: u64,
}

impl Default for HashIndex {
    fn default() -> Self {
        HashIndex::new(Vec::new())
    }
}

fn empty_shards<K, V>() -> Vec<Arc<FxHashMap<K, V>>> {
    (0..SHARD_COUNT)
        .map(|_| Arc::new(FxHashMap::default()))
        .collect()
}

/// Shard routing for a borrowed key slice. Must agree with
/// [`shard_of_tuple_key`]: both hash the key exactly as `<[Value]>::hash`
/// does (length prefix, then elements).
#[inline]
fn shard_of_slice(key: &[Value]) -> usize {
    (fx_hash_one(key) as usize) & (SHARD_COUNT - 1)
}

/// Shard routing for a tuple's key columns, without materializing the key.
#[inline]
fn shard_of_tuple_key(t: &Tuple, cols: &[usize]) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = FxHasher::default();
    h.write_usize(cols.len());
    for &c in cols {
        t.get(c).unwrap_or(&Value::Null).hash(&mut h);
    }
    (h.finish() as usize) & (SHARD_COUNT - 1)
}

#[inline]
fn shard_of_value(v: &Value) -> usize {
    (fx_hash_one(v) as usize) & (SHARD_COUNT - 1)
}

impl HashIndex {
    /// Create an empty index on the given column positions.
    pub fn new(key_cols: Vec<usize>) -> Self {
        let buckets = if key_cols.len() == 1 {
            Buckets::Single(empty_shards())
        } else {
            Buckets::Multi(empty_shards())
        };
        HashIndex {
            key_cols,
            buckets,
            dirty: 0,
        }
    }

    /// The indexed column positions.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Extract this index's key from a tuple. Allocates; maintenance and
    /// probe paths avoid this — it exists for callers that need an owned
    /// key (e.g. collecting touched keys).
    pub fn key_of(&self, t: &Tuple) -> Box<[Value]> {
        self.key_cols
            .iter()
            .map(|&c| t.get(c).cloned().unwrap_or(Value::Null))
            .collect()
    }

    /// Whether two tuples disagree on this index's key (allocation-free
    /// replacement for `key_of(a) != key_of(b)`).
    pub fn key_changed(&self, a: &Tuple, b: &Tuple) -> bool {
        self.key_cols.iter().any(|&c| {
            a.get(c).unwrap_or(&Value::Null) != b.get(c).unwrap_or(&Value::Null)
        })
    }

    /// Insert `n` copies of a tuple.
    pub fn insert(&mut self, t: &Tuple, n: u64) {
        if n == 0 {
            return;
        }
        match &mut self.buckets {
            Buckets::Single(shards) => {
                let col = self.key_cols[0];
                let key = t.get(col).unwrap_or(&Value::Null);
                let s = shard_of_value(key);
                self.dirty |= 1 << s;
                let map = Arc::make_mut(&mut shards[s]);
                match map.get_mut(key) {
                    Some(bucket) => bucket.insert(t.clone(), n),
                    None => {
                        let mut bucket = Bag::new();
                        bucket.insert(t.clone(), n);
                        map.insert(key.clone(), bucket);
                    }
                }
            }
            Buckets::Multi(shards) => {
                let s = shard_of_tuple_key(t, &self.key_cols);
                self.dirty |= 1 << s;
                let map = Arc::make_mut(&mut shards[s]);
                let key: Box<[Value]> = self
                    .key_cols
                    .iter()
                    .map(|&c| t.get(c).cloned().unwrap_or(Value::Null))
                    .collect();
                map.entry(key).or_default().insert(t.clone(), n);
            }
        }
    }

    /// Remove `n` copies of a tuple; the caller guarantees presence (the
    /// owning relation's bag is the source of truth).
    pub fn remove(&mut self, t: &Tuple, n: u64) {
        match &mut self.buckets {
            Buckets::Single(shards) => {
                let col = self.key_cols[0];
                let key = t.get(col).unwrap_or(&Value::Null);
                let s = shard_of_value(key);
                self.dirty |= 1 << s;
                let map = Arc::make_mut(&mut shards[s]);
                if let Some(bucket) = map.get_mut(key) {
                    bucket.remove_up_to(t, n);
                    if bucket.is_empty() {
                        map.remove(key);
                    }
                }
            }
            Buckets::Multi(shards) => {
                let s = shard_of_tuple_key(t, &self.key_cols);
                self.dirty |= 1 << s;
                let map = Arc::make_mut(&mut shards[s]);
                let key: Box<[Value]> = self
                    .key_cols
                    .iter()
                    .map(|&c| t.get(c).cloned().unwrap_or(Value::Null))
                    .collect();
                if let Some(bucket) = map.get_mut(&key) {
                    bucket.remove_up_to(t, n);
                    if bucket.is_empty() {
                        map.remove(&key);
                    }
                }
            }
        }
    }

    /// All tuples matching `key`, as a bag (empty if none). The key is
    /// borrowed; no allocation on this path.
    pub fn probe(&self, key: &[Value]) -> Option<&Bag> {
        match &self.buckets {
            Buckets::Single(shards) => {
                let k = key.first()?;
                shards[shard_of_value(k)].get(k)
            }
            Buckets::Multi(shards) => shards[shard_of_slice(key)].get(key),
        }
    }

    /// Number of tuples (counting multiplicity) under `key`.
    pub fn probe_count(&self, key: &[Value]) -> u64 {
        self.probe(key).map_or(0, |b| b.len())
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        match &self.buckets {
            Buckets::Single(shards) => shards.iter().map(|s| s.len()).sum(),
            Buckets::Multi(shards) => shards.iter().map(|s| s.len()).sum(),
        }
    }

    /// Rebuild from scratch over a bag.
    pub fn rebuild(&mut self, data: &Bag) {
        self.buckets = if self.key_cols.len() == 1 {
            Buckets::Single(empty_shards())
        } else {
            Buckets::Multi(empty_shards())
        };
        self.dirty = u64::MAX;
        for (t, c) in data.iter() {
            self.insert(t, c);
        }
    }

    /// Bitmask of bucket shards disturbed since the last
    /// [`HashIndex::clear_dirty`].
    pub fn dirty_mask(&self) -> u64 {
        self.dirty
    }

    /// Number of bucket shards disturbed since the last
    /// [`HashIndex::clear_dirty`].
    pub fn dirty_shards(&self) -> u32 {
        self.dirty.count_ones()
    }

    /// Reset the dirty-shard mask (content unchanged).
    pub fn clear_dirty(&mut self) {
        self.dirty = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn sample() -> HashIndex {
        // Index on column 1 (DName) of (EName, DName, Salary).
        let mut idx = HashIndex::new(vec![1]);
        idx.insert(&tuple!["alice", "Sales", 100], 1);
        idx.insert(&tuple!["bob", "Sales", 80], 1);
        idx.insert(&tuple!["carol", "Eng", 120], 1);
        idx
    }

    #[test]
    fn probe_finds_all_matches() {
        let idx = sample();
        assert_eq!(idx.probe_count(&[Value::str("Sales")]), 2);
        assert_eq!(idx.probe_count(&[Value::str("Eng")]), 1);
        assert_eq!(idx.probe_count(&[Value::str("HR")]), 0);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn remove_cleans_empty_buckets() {
        let mut idx = sample();
        idx.remove(&tuple!["carol", "Eng", 120], 1);
        assert_eq!(idx.probe_count(&[Value::str("Eng")]), 0);
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn multiplicity_respected() {
        let mut idx = HashIndex::new(vec![0]);
        idx.insert(&tuple!["k", 1], 3);
        assert_eq!(idx.probe_count(&[Value::str("k")]), 3);
        idx.remove(&tuple!["k", 1], 2);
        assert_eq!(idx.probe_count(&[Value::str("k")]), 1);
    }

    #[test]
    fn composite_keys() {
        let mut idx = HashIndex::new(vec![0, 1]);
        idx.insert(&tuple!["a", 1, 10], 1);
        idx.insert(&tuple!["a", 2, 20], 1);
        assert_eq!(idx.probe_count(&[Value::str("a"), Value::Int(1)]), 1);
        assert_eq!(idx.probe_count(&[Value::str("a"), Value::Int(3)]), 0);
    }

    #[test]
    fn composite_shard_routing_matches_slice_routing() {
        // Maintenance routes by tuple columns, probes by key slice; the two
        // must land in the same shard for every key shape.
        let tuples = [
            tuple!["a", 1, 10],
            tuple![2.5, "b", 3],
            tuple![Value::Null, "x", -7],
            tuple!["long-department-name-here", 0, 0],
        ];
        for t in &tuples {
            for cols in [vec![0usize, 1], vec![2, 0], vec![1, 2, 0]] {
                let key: Vec<Value> = cols
                    .iter()
                    .map(|&c| t.get(c).cloned().unwrap_or(Value::Null))
                    .collect();
                assert_eq!(
                    shard_of_tuple_key(t, &cols),
                    shard_of_slice(&key),
                    "routing diverged for cols {cols:?}"
                );
            }
        }
    }

    #[test]
    fn rebuild_matches_incremental() {
        let data: Bag = [(tuple!["x", 1], 2), (tuple!["y", 2], 1)]
            .into_iter()
            .collect();
        let mut a = HashIndex::new(vec![0]);
        a.rebuild(&data);
        let mut b = HashIndex::new(vec![0]);
        for (t, c) in data.iter() {
            b.insert(t, c);
        }
        assert_eq!(
            a.probe_count(&[Value::str("x")]),
            b.probe_count(&[Value::str("x")])
        );
        assert_eq!(a.distinct_keys(), b.distinct_keys());
    }

    #[test]
    fn key_changed_agrees_with_key_of() {
        let idx = HashIndex::new(vec![1, 2]);
        let a = tuple!["alice", "Sales", 100];
        let b = tuple!["alice", "Sales", 130];
        let c = tuple!["alice", "Eng", 100];
        assert_eq!(idx.key_changed(&a, &b), idx.key_of(&a) != idx.key_of(&b));
        assert_eq!(idx.key_changed(&a, &c), idx.key_of(&a) != idx.key_of(&c));
        assert!(idx.key_changed(&a, &b), "salary is part of this key");
        let dname_only = HashIndex::new(vec![1]);
        assert!(!dname_only.key_changed(&a, &b));
        assert!(dname_only.key_changed(&a, &c));
    }

    #[test]
    fn clone_shares_shards_until_mutation() {
        let a = sample();
        let mut b = a.clone();
        b.insert(&tuple!["dave", "Eng", 90], 1);
        assert_eq!(a.probe_count(&[Value::str("Eng")]), 1, "original untouched");
        assert_eq!(b.probe_count(&[Value::str("Eng")]), 2);
    }
}

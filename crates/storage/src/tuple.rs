//! Tuples: immutable, cheaply-clonable rows.

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// An immutable tuple of [`Value`]s.
///
/// Tuples are shared freely between bags, indices and deltas, so the value
/// slice lives behind an [`Arc`]; cloning a tuple is a refcount bump.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Build a tuple from values. Accepts anything convertible straight to
    /// the shared slice (a `Vec`, a boxed slice, an array, `&[Value]`) —
    /// the old `impl Into<Vec<Value>>` bound forced every caller through an
    /// intermediate `Vec` even when one already existed, paying two
    /// allocations per tuple.
    pub fn new(values: impl Into<Arc<[Value]>>) -> Self {
        Tuple(values.into())
    }

    /// Build a tuple directly from an iterator of values (no intermediate
    /// collection at the call site; prefer this over building a `Vec` only
    /// to convert it).
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Self {
        values.into_iter().collect()
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Whether the tuple has no fields.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Field access.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// All fields.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Project onto the given column positions (positions may repeat or
    /// reorder). Out-of-range positions yield NULL — callers validate
    /// positions against schemas before evaluation, so this is a
    /// defense-in-depth default rather than a supported feature.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(
            positions
                .iter()
                .map(|&p| self.0.get(p).cloned().unwrap_or(Value::Null))
                .collect(),
        )
    }

    /// Concatenate two tuples (used by joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        Tuple(self.0.iter().chain(other.0.iter()).cloned().collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

/// Build a tuple from heterogeneous literals: `tuple!["Sales", 100, 1.5]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new([$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_reorders_and_repeats() {
        let t = tuple!["a", 1, 2.5];
        let p = t.project(&[2, 0, 0]);
        assert_eq!(
            p.values(),
            &[Value::Double(2.5), Value::str("a"), Value::str("a")]
        );
    }

    #[test]
    fn out_of_range_projection_yields_null() {
        let t = tuple![1];
        assert_eq!(t.project(&[5]).values(), &[Value::Null]);
    }

    #[test]
    fn concat_appends_fields() {
        let a = tuple![1, 2];
        let b = tuple!["x"];
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.get(2), Some(&Value::str("x")));
    }

    #[test]
    fn clone_is_shallow() {
        let a = tuple![1, 2, 3];
        let b = a.clone();
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn display_renders_parenthesized() {
        assert_eq!(tuple![1, "x"].to_string(), "(1, 'x')");
    }
}

//! A deterministic, fixed-seed hasher for hot-path maps and shard routing.
//!
//! `std`'s default `RandomState` seeds SipHash per map instance, which is
//! both slow for the short keys this engine hashes (values, tuples, small
//! key slices) and unusable for *shard selection*, where the same key must
//! route to the same shard in every map, every process, every run. This is
//! the classic FxHash multiply-rotate mix (as used by rustc): not
//! collision-resistant against adversaries, fine for trusted workloads.
//!
//! Determinism here is load-bearing: [`crate::bag::Bag`] and
//! [`crate::index::HashIndex`] place entries in shards by `fx_hash_one`, and
//! shard-wise structural equality (with `Arc::ptr_eq` fast paths) is only
//! sound because equal content always lands in equal shards.

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Multiplicative mixing constant (golden-ratio derived, as in rustc's
/// FxHash).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: one `u64`, mixed by rotate-xor-multiply per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Zero-sized builder producing [`FxHasher`]s; every map built from it
/// hashes identically.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` with the deterministic fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` with the deterministic fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hash one value with the fixed-seed hasher. This is the shard-routing
/// primitive: stable across maps, processes and runs.
#[inline]
pub fn fx_hash_one<T: Hash + ?Sized>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic_across_hasher_instances() {
        let a = fx_hash_one("dept00042");
        let b = fx_hash_one("dept00042");
        assert_eq!(a, b);
        assert_ne!(fx_hash_one("dept00042"), fx_hash_one("dept00043"));
    }

    #[test]
    fn map_type_aliases_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("x".into(), 1);
        assert_eq!(m.get("x"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }

    #[test]
    fn unaligned_tails_do_not_collide_with_padding() {
        // A 3-byte string and the same bytes zero-padded to 8 must differ:
        // the tail word carries its length in the top byte.
        let short = fx_hash_one(b"abc".as_slice());
        let padded = fx_hash_one(b"abc\0\0\0\0\0".as_slice());
        assert_ne!(short, padded);
    }
}

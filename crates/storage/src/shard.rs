//! Declared shard keys and the fixed-seed shard router.
//!
//! A [`ShardSpec`] declares, per base relation, which column positions
//! form the *shard key* (e.g. `Emp` hash-sharded by `DName`, `Dept` by its
//! `DName` primary key). Routing hashes the projected key columns with the
//! same fixed-seed [`crate::fx::FxHasher`] that places tuples into
//! [`crate::bag::Bag`] shards, so a tuple routes to the same shard domain
//! in every process, every run — the property the sharded serving layer's
//! determinism invariant (serial replay in admission order reproduces
//! bit-identical state) is built on.
//!
//! The spec is purely *declarative*: it neither partitions data nor checks
//! schemas. Validation against a concrete catalog (key columns in range,
//! every base relation covered) is the partitioning caller's job, because
//! only that caller knows which catalog the spec is meant for.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use crate::error::{StorageError, StorageResult};
use crate::fx::FxHasher;
use crate::tuple::Tuple;
use crate::value::Value;

/// Declared shard keys: base relation name → key column positions.
///
/// Relations sharing shard-key *values* (here: `Emp.DName` and
/// `Dept.DName`) co-locate — equal key values hash identically regardless
/// of which relation they come from — which is what makes views that join
/// or group on the shard key maintainable entirely shard-locally.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardSpec {
    keys: BTreeMap<String, Vec<usize>>,
}

impl ShardSpec {
    /// An empty spec.
    pub fn new() -> Self {
        ShardSpec::default()
    }

    /// Declare (or replace) a relation's shard-key columns. Builder-style.
    pub fn with(mut self, table: impl Into<String>, key_cols: Vec<usize>) -> Self {
        self.declare(table, key_cols);
        self
    }

    /// Declare (or replace) a relation's shard-key columns.
    pub fn declare(&mut self, table: impl Into<String>, key_cols: Vec<usize>) {
        self.keys.insert(table.into(), key_cols);
    }

    /// The declared key columns for a relation, if any.
    pub fn key_cols(&self, table: &str) -> Option<&[usize]> {
        self.keys.get(table).map(Vec::as_slice)
    }

    /// Every declared relation, in name order.
    pub fn tables(&self) -> impl Iterator<Item = (&str, &[usize])> {
        self.keys.iter().map(|(t, c)| (t.as_str(), c.as_slice()))
    }

    /// Whether any key is declared.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Route a tuple of `table` to one of `n_shards` domains: fixed-seed
    /// hash of the projected key columns, reduced modulo the shard count.
    /// Errors if the table has no declared key or a key column is out of
    /// range for this tuple.
    pub fn route(&self, table: &str, tuple: &Tuple, n_shards: usize) -> StorageResult<usize> {
        let cols = self.keys.get(table).ok_or_else(|| {
            StorageError::BadIndexColumns(format!("no shard key declared for `{table}`"))
        })?;
        let values = tuple.values();
        let mut h = FxHasher::default();
        for &c in cols {
            let v: &Value = values.get(c).ok_or_else(|| {
                StorageError::BadIndexColumns(format!(
                    "shard-key column {c} out of range for a `{table}` tuple of arity {}",
                    values.len()
                ))
            })?;
            v.hash(&mut h);
        }
        Ok(reduce(h.finish(), n_shards))
    }
}

/// Reduce a routing hash onto `n_shards` domains. A single shard swallows
/// everything (the unsharded degenerate case); zero shards is a caller bug.
#[inline]
fn reduce(hash: u64, n_shards: usize) -> usize {
    debug_assert!(n_shards > 0, "shard count must be positive");
    if n_shards <= 1 {
        0
    } else {
        (hash % n_shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn spec() -> ShardSpec {
        ShardSpec::new()
            .with("Emp", vec![1])
            .with("Dept", vec![0])
    }

    #[test]
    fn routing_is_deterministic_and_colocates_key_values() {
        let s = spec();
        let emp: Tuple = tuple!["alice", "dept00042", 100];
        let dept: Tuple = tuple!["dept00042", "mgr42", 2000];
        for n in [1usize, 2, 4, 8, 64] {
            let a = s.route("Emp", &emp, n).unwrap();
            let b = s.route("Emp", &emp, n).unwrap();
            assert_eq!(a, b, "same tuple, same shard at {n}");
            assert!(a < n);
            // Equal key values co-locate across relations.
            assert_eq!(a, s.route("Dept", &dept, n).unwrap());
        }
        // One shard swallows everything.
        assert_eq!(s.route("Emp", &emp, 1).unwrap(), 0);
    }

    #[test]
    fn routing_spreads_distinct_keys() {
        let s = spec();
        let mut seen = std::collections::BTreeSet::new();
        for d in 0..64 {
            let t: Tuple = tuple![format!("e{d}"), format!("dept{d:05}"), 100];
            seen.insert(s.route("Emp", &t, 8).unwrap());
        }
        assert!(seen.len() >= 4, "64 keys over 8 shards must spread: {seen:?}");
    }

    #[test]
    fn undeclared_table_and_bad_column_error() {
        let s = spec();
        let t: Tuple = tuple!["x", "y", 1];
        assert!(s.route("Nope", &t, 4).is_err());
        let bad = ShardSpec::new().with("Emp", vec![9]);
        assert!(bad.route("Emp", &t, 4).is_err());
    }

    #[test]
    fn declare_replaces_and_lists() {
        let mut s = spec();
        s.declare("Emp", vec![0]);
        assert_eq!(s.key_cols("Emp"), Some(&[0usize][..]));
        let names: Vec<&str> = s.tables().map(|(t, _)| t).collect();
        assert_eq!(names, vec!["Dept", "Emp"]);
        assert!(!s.is_empty());
        assert!(ShardSpec::new().is_empty());
    }
}

//! Compact strings: small-string inlining with an interned spill path.
//!
//! Tuple data in this engine is overwhelmingly short identifiers
//! (`dept00042`, `emp00042_7`): storing each behind an `Arc<str>` costs a
//! heap allocation at construction, a pointer chase per comparison and
//! refcount traffic per clone. [`SmallStr`] stores strings of up to
//! [`SmallStr::INLINE_CAP`] bytes inline — clone is a `memcpy`, equality is
//! a couple of word compares, hashing reads no foreign cache line. Longer
//! strings spill to an `Arc<str>` obtained from the [`Interner`], which
//! deduplicates them process-wide so equal spilled strings are
//! pointer-identical and equality short-circuits on `Arc::ptr_eq`.
//!
//! Invariant: a string is inline **iff** `len() <= INLINE_CAP`. Both
//! constructors enforce this, so two equal strings always have the same
//! representation and representation-blind `Eq`/`Ord`/`Hash` (all defined
//! on the string *content*) agree with representation-aware fast paths.
//!
//! The interner pool is deliberately process-wide rather than truly
//! per-catalog: staged table copies, catalog snapshots and probe keys built
//! by the parser must agree on pointer identity for the `ptr_eq` fast path
//! to fire across snapshot boundaries. [`Catalog`](crate::catalog::Catalog)
//! exposes the pool through [`Interner::handle`]. The pool is append-only;
//! for this engine's workloads (bounded vocabularies of names) that is the
//! right trade.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

use crate::fx::FxHashSet;

/// A string that stores short content inline and interns long content.
#[derive(Clone)]
pub struct SmallStr(Repr);

#[derive(Clone)]
enum Repr {
    /// Up to `INLINE_CAP` bytes stored in place.
    Inline { len: u8, buf: [u8; SmallStr::INLINE_CAP] },
    /// Longer content, deduplicated through the interner.
    Shared(Arc<str>),
}

impl SmallStr {
    /// Maximum inline length in bytes. Chosen to cover every identifier the
    /// paper workloads generate while keeping `Value` a couple of words.
    pub const INLINE_CAP: usize = 22;

    /// Build from a string slice: inline if it fits, interned otherwise.
    pub fn new(s: &str) -> Self {
        if s.len() <= Self::INLINE_CAP {
            let mut buf = [0u8; Self::INLINE_CAP];
            buf[..s.len()].copy_from_slice(s.as_bytes());
            SmallStr(Repr::Inline {
                len: s.len() as u8,
                buf,
            })
        } else {
            SmallStr(Repr::Shared(Interner::global().intern(s)))
        }
    }

    /// The string content.
    #[inline]
    pub fn as_str(&self) -> &str {
        match &self.0 {
            Repr::Inline { len, buf } => {
                // Construction only ever copies in valid UTF-8 prefixes.
                std::str::from_utf8(&buf[..*len as usize]).expect("inline bytes are UTF-8")
            }
            Repr::Shared(s) => s,
        }
    }

    /// Whether the content is stored inline (no heap involvement).
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Inline { .. })
    }
}

impl Deref for SmallStr {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq for SmallStr {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (Repr::Inline { len: a, buf: ba }, Repr::Inline { len: b, buf: bb }) => {
                // Equal-capacity buffers are zero-padded past `len`, so the
                // whole-buffer compare (vectorized word compares) is exact.
                a == b && ba == bb
            }
            (Repr::Shared(a), Repr::Shared(b)) => Arc::ptr_eq(a, b) || a == b,
            // Inline iff short: mixed representations have different lengths.
            _ => false,
        }
    }
}
impl Eq for SmallStr {}

impl PartialOrd for SmallStr {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SmallStr {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if let (Repr::Shared(a), Repr::Shared(b)) = (&self.0, &other.0) {
            if Arc::ptr_eq(a, b) {
                return std::cmp::Ordering::Equal;
            }
        }
        self.as_str().cmp(other.as_str())
    }
}

impl Hash for SmallStr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Content hashing: must agree across representations and match what
        // `Arc<str>` hashed before the representation change.
        self.as_str().hash(state)
    }
}

impl fmt::Display for SmallStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for SmallStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl From<&str> for SmallStr {
    fn from(s: &str) -> Self {
        SmallStr::new(s)
    }
}
impl From<String> for SmallStr {
    fn from(s: String) -> Self {
        SmallStr::new(&s)
    }
}
impl From<Arc<str>> for SmallStr {
    fn from(s: Arc<str>) -> Self {
        SmallStr::new(&s)
    }
}

/// A deduplicating pool of spilled (longer-than-inline) strings.
#[derive(Clone, Default)]
pub struct Interner {
    pool: Arc<Mutex<FxHashSet<Arc<str>>>>,
}

impl Interner {
    /// The process-wide pool backing every [`SmallStr`] spill.
    pub fn global() -> &'static Interner {
        static GLOBAL: OnceLock<Interner> = OnceLock::new();
        GLOBAL.get_or_init(Interner::default)
    }

    /// A clonable handle to this pool (shares the underlying storage).
    pub fn handle(&self) -> Interner {
        self.clone()
    }

    /// Intern a string: returns the pooled `Arc`, pointer-identical for
    /// equal content.
    pub fn intern(&self, s: &str) -> Arc<str> {
        let mut pool = self.pool.lock().expect("interner lock");
        if let Some(existing) = pool.get(s) {
            return existing.clone();
        }
        let shared: Arc<str> = Arc::from(s);
        pool.insert(shared.clone());
        shared
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.pool.lock().expect("interner lock").len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Interner({} strings)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fx::fx_hash_one;

    #[test]
    fn short_strings_inline_long_strings_spill() {
        assert!(SmallStr::new("").is_inline());
        assert!(SmallStr::new("dept00042").is_inline());
        assert!(SmallStr::new(&"x".repeat(SmallStr::INLINE_CAP)).is_inline());
        assert!(!SmallStr::new(&"x".repeat(SmallStr::INLINE_CAP + 1)).is_inline());
    }

    #[test]
    fn spilled_strings_are_pointer_deduplicated() {
        let long = "y".repeat(40);
        let a = SmallStr::new(&long);
        let b = SmallStr::new(&long);
        match (&a.0, &b.0) {
            (Repr::Shared(x), Repr::Shared(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => panic!("long strings must spill"),
        }
        assert_eq!(a, b);
    }

    #[test]
    fn eq_ord_hash_agree_with_str_semantics() {
        let cases = ["", "a", "dept00042", "zz", &"q".repeat(30), &"q".repeat(31)];
        for x in cases {
            for y in cases {
                let (sx, sy) = (SmallStr::new(x), SmallStr::new(y));
                assert_eq!(sx == sy, x == y, "eq({x:?},{y:?})");
                assert_eq!(sx.cmp(&sy), x.cmp(y), "ord({x:?},{y:?})");
                if x == y {
                    assert_eq!(fx_hash_one(&sx), fx_hash_one(&sy));
                }
            }
        }
    }

    #[test]
    fn deref_and_display_expose_content() {
        let s = SmallStr::new("Sales");
        assert_eq!(s.len(), 5);
        assert!(s.starts_with("Sal"));
        assert_eq!(s.to_string(), "Sales");
        assert_eq!(format!("{s:?}"), "\"Sales\"");
    }

    #[test]
    fn multibyte_utf8_roundtrips() {
        for s in ["héllo", "日本語", "ωωωωωωω"] {
            assert_eq!(SmallStr::new(s).as_str(), s);
        }
    }
}

//! Table statistics for cost estimation.
//!
//! The paper's optimizer estimates delta sizes and query costs from simple
//! statistics: relation cardinalities and per-column distinct counts (so
//! that, e.g., the average department has `|Emp| / distinct(DName) = 10`
//! employees). [`TableStats`] carries exactly that, either declared up front
//! (the paper's analytic mode) or gathered from data by [`TableStats::analyze`].

use std::collections::HashMap;

use crate::bag::Bag;
use crate::relation::DEFAULT_TUPLES_PER_PAGE;

/// Statistics about one stored relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableStats {
    /// Total tuples (with multiplicity).
    pub cardinality: u64,
    /// Distinct value counts per column position (absent = unknown).
    pub distinct: HashMap<usize, u64>,
    /// Packing factor for scan pricing.
    pub tuples_per_page: u64,
}

impl Default for TableStats {
    fn default() -> Self {
        TableStats {
            cardinality: 0,
            distinct: HashMap::new(),
            tuples_per_page: DEFAULT_TUPLES_PER_PAGE,
        }
    }
}

impl TableStats {
    /// Declare statistics analytically (the paper's mode: "1000 departments,
    /// 10000 employees, uniform distribution").
    pub fn declared(cardinality: u64, distinct: impl IntoIterator<Item = (usize, u64)>) -> Self {
        TableStats {
            cardinality,
            distinct: distinct.into_iter().collect(),
            ..TableStats::default()
        }
    }

    /// Gather statistics from actual data.
    pub fn analyze(data: &Bag, arity: usize) -> Self {
        let mut per_col: Vec<std::collections::HashSet<&crate::value::Value>> =
            (0..arity).map(|_| Default::default()).collect();
        for (t, _) in data.iter() {
            for (c, set) in per_col.iter_mut().enumerate() {
                if let Some(v) = t.get(c) {
                    set.insert(v);
                }
            }
        }
        TableStats {
            cardinality: data.len(),
            distinct: per_col
                .iter()
                .enumerate()
                .map(|(c, s)| (c, s.len() as u64))
                .collect(),
            ..TableStats::default()
        }
    }

    /// Distinct count for a column, defaulting to the cardinality (i.e.
    /// assume unique) when unknown — a conservative choice that never
    /// overestimates group sizes.
    pub fn distinct_or_card(&self, col: usize) -> u64 {
        self.distinct
            .get(&col)
            .copied()
            .unwrap_or(self.cardinality)
            .max(1)
    }

    /// Expected number of tuples sharing one value of `col` (the paper's
    /// "average department contains 10 employees").
    pub fn avg_group_size(&self, col: usize) -> f64 {
        if self.cardinality == 0 {
            return 0.0;
        }
        self.cardinality as f64 / self.distinct_or_card(col) as f64
    }

    /// Number of data pages occupied.
    pub fn pages(&self) -> u64 {
        self.cardinality.div_ceil(self.tuples_per_page.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn paper_statistics_give_group_size_ten() {
        // Emp: 10000 tuples, 1000 distinct departments.
        let s = TableStats::declared(10_000, [(1, 1_000)]);
        assert_eq!(s.avg_group_size(1), 10.0);
        assert_eq!(s.distinct_or_card(1), 1_000);
    }

    #[test]
    fn unknown_distinct_defaults_to_cardinality() {
        let s = TableStats::declared(1_000, []);
        assert_eq!(s.distinct_or_card(0), 1_000);
        assert_eq!(s.avg_group_size(0), 1.0);
    }

    #[test]
    fn analyze_counts_distincts() {
        let data: Bag = [
            (tuple!["a", "Sales"], 1),
            (tuple!["b", "Sales"], 2),
            (tuple!["c", "Eng"], 1),
        ]
        .into_iter()
        .collect();
        let s = TableStats::analyze(&data, 2);
        assert_eq!(s.cardinality, 4);
        assert_eq!(s.distinct[&0], 3);
        assert_eq!(s.distinct[&1], 2);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = TableStats::default();
        assert_eq!(s.avg_group_size(3), 0.0);
        assert_eq!(s.pages(), 0);
        assert_eq!(
            s.distinct_or_card(0),
            1,
            "clamped to 1 to avoid div-by-zero"
        );
    }

    #[test]
    fn pages_round_up() {
        let mut s = TableStats::declared(11, []);
        s.tuples_per_page = 10;
        assert_eq!(s.pages(), 2);
    }
}

//! Schemas and column name resolution.
//!
//! Columns carry an optional *qualifier* (originating table or view name),
//! so that `Dept.DName = Emp.DName` resolves unambiguously after a join even
//! though both columns are named `DName`.

use std::fmt;

use crate::error::{StorageError, StorageResult};
use crate::tuple::Tuple;
use crate::value::DataType;

/// A column: optional qualifier, name, and type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Column {
    /// The table/view the column originates from, if tracked.
    pub qualifier: Option<String>,
    /// The column name.
    pub name: String,
    /// The column type.
    pub dtype: DataType,
}

impl Column {
    /// A qualified column.
    pub fn new(qualifier: impl Into<String>, name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
            dtype,
        }
    }

    /// An unqualified column (e.g. a computed output).
    pub fn bare(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            qualifier: None,
            name: name.into(),
            dtype,
        }
    }

    /// Whether this column answers to `(qualifier, name)`.
    /// An unqualified reference matches any qualifier.
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .is_some_and(|cq| cq.eq_ignore_ascii_case(q)),
        }
    }

    /// `qualifier.name` or bare `name`.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.qualified_name())
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Build a schema where every column shares one qualifier.
    pub fn of_table(table: &str, cols: &[(&str, DataType)]) -> Self {
        Schema {
            columns: cols
                .iter()
                .map(|(n, t)| Column::new(table, *n, *t))
                .collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by position.
    pub fn column(&self, i: usize) -> Option<&Column> {
        self.columns.get(i)
    }

    /// Resolve a possibly-qualified column reference to a position.
    ///
    /// `"DName"` resolves if exactly one column has that name;
    /// `"Dept.DName"` style references pass `Some("Dept")`.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> StorageResult<usize> {
        let mut hits = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.matches(qualifier, name));
        match (hits.next(), hits.next()) {
            (Some((i, _)), None) => Ok(i),
            (None, _) => Err(StorageError::UnknownColumn {
                column: match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.to_string(),
                },
                schema: self.to_string(),
            }),
            (Some(_), Some(_)) => Err(StorageError::AmbiguousColumn(name.to_string())),
        }
    }

    /// Parse-and-resolve a dotted reference like `"Dept.DName"` or `"DName"`.
    pub fn resolve_dotted(&self, reference: &str) -> StorageResult<usize> {
        match reference.split_once('.') {
            Some((q, n)) => self.resolve(Some(q), n),
            None => self.resolve(None, reference),
        }
    }

    /// Concatenate two schemas (join output).
    pub fn concat(&self, other: &Schema) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .chain(other.columns.iter())
                .cloned()
                .collect(),
        }
    }

    /// Project onto positions.
    pub fn project(&self, positions: &[usize]) -> Schema {
        Schema {
            columns: positions
                .iter()
                .filter_map(|&p| self.columns.get(p).cloned())
                .collect(),
        }
    }

    /// Re-qualify every column with a new qualifier (view output schema).
    pub fn requalify(&self, qualifier: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column {
                    qualifier: Some(qualifier.to_string()),
                    name: c.name.clone(),
                    dtype: c.dtype,
                })
                .collect(),
        }
    }

    /// Check a tuple against this schema (arity and types; NULL passes any
    /// type).
    pub fn validate(&self, tuple: &Tuple) -> StorageResult<()> {
        if tuple.arity() != self.arity() {
            return Err(StorageError::SchemaMismatch {
                detail: format!(
                    "tuple arity {} vs schema arity {} [{self}]",
                    tuple.arity(),
                    self.arity()
                ),
            });
        }
        for (i, col) in self.columns.iter().enumerate() {
            let v = tuple.get(i).expect("arity checked");
            if !v.conforms_to(col.dtype) {
                return Err(StorageError::SchemaMismatch {
                    detail: format!("value {v} does not conform to {}: {}", col, col.dtype),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", c.qualified_name())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::Value;

    fn emp() -> Schema {
        Schema::of_table(
            "Emp",
            &[
                ("EName", DataType::Str),
                ("DName", DataType::Str),
                ("Salary", DataType::Int),
            ],
        )
    }

    fn dept() -> Schema {
        Schema::of_table(
            "Dept",
            &[
                ("DName", DataType::Str),
                ("MName", DataType::Str),
                ("Budget", DataType::Int),
            ],
        )
    }

    #[test]
    fn unqualified_resolution_unique() {
        assert_eq!(emp().resolve(None, "Salary").unwrap(), 2);
        assert_eq!(
            emp().resolve(None, "salary").unwrap(),
            2,
            "case-insensitive"
        );
    }

    #[test]
    fn joined_schema_needs_qualifier_for_shared_names() {
        let j = emp().concat(&dept());
        assert!(matches!(
            j.resolve(None, "DName"),
            Err(StorageError::AmbiguousColumn(_))
        ));
        assert_eq!(j.resolve(Some("Dept"), "DName").unwrap(), 3);
        assert_eq!(j.resolve_dotted("Emp.DName").unwrap(), 1);
    }

    #[test]
    fn unknown_column_reports_schema() {
        let err = emp().resolve(None, "Budget").unwrap_err();
        match err {
            StorageError::UnknownColumn { column, schema } => {
                assert_eq!(column, "Budget");
                assert!(schema.contains("Emp.Salary"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn validate_checks_arity_and_types() {
        let s = emp();
        assert!(s.validate(&tuple!["alice", "Sales", 100]).is_ok());
        assert!(
            s.validate(&tuple![Value::Null, "Sales", 100]).is_ok(),
            "NULL conforms to any type"
        );
        assert!(s.validate(&tuple!["alice", "Sales"]).is_err());
        assert!(s.validate(&tuple!["alice", "Sales", "oops"]).is_err());
    }

    #[test]
    fn requalify_renames_origin() {
        let v = emp().requalify("V");
        assert_eq!(v.resolve(Some("V"), "Salary").unwrap(), 2);
        assert!(v.resolve(Some("Emp"), "Salary").is_err());
    }

    #[test]
    fn project_keeps_selected_columns() {
        let p = emp().project(&[1, 2]);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.column(0).unwrap().name, "DName");
    }
}

//! The database catalog: named tables with schema, data, statistics, keys
//! and indices.
//!
//! Both *base relations* and *materialized views* live here — the paper's
//! model treats a materialized view exactly like a stored relation once the
//! optimizer decides to keep it (equivalence nodes for database relations
//! are "already materialized", §3.1).

use std::collections::BTreeMap;
use std::ops::Deref;
use std::sync::Arc;

use crate::error::{StorageError, StorageResult};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::stats::TableStats;

/// One catalog entry.
#[derive(Debug, Clone)]
pub struct Table {
    /// The stored relation (schema + data + indices).
    pub relation: Relation,
    /// Estimation statistics (declared or analyzed).
    pub stats: TableStats,
    /// Candidate keys, as column-position sets. Used by key-based query
    /// elimination (the paper's "Q3d needs no I/O because DName is a key
    /// for Dept") and by the eager-aggregation rewrite rule.
    pub keys: Vec<Vec<usize>>,
    /// Whether this is a base relation (true) or a materialized view.
    pub is_base: bool,
}

impl Table {
    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        self.relation.schema()
    }

    /// Whether `cols` is a superset of some declared key.
    pub fn cols_contain_key(&self, cols: &[usize]) -> bool {
        self.keys
            .iter()
            .any(|key| key.iter().all(|k| cols.contains(k)))
    }

    /// Refresh statistics from the stored data.
    pub fn analyze(&mut self) {
        let arity = self.relation.schema().arity();
        let tpp = self.stats.tuples_per_page;
        self.stats = TableStats::analyze(self.relation.data(), arity);
        self.stats.tuples_per_page = tpp;
    }
}

/// The catalog: tables by (case-sensitive) name.
///
/// Entries are `Arc`-backed copy-on-write: cloning the catalog (or taking
/// a [`Catalog::snapshot`]) shares every table's storage, and the first
/// mutation through [`Catalog::table_mut`] after a share clones just that
/// table. This is what makes lock-free snapshot reads cheap enough to take
/// per transaction: a snapshot costs one `Arc` clone per table, not a data
/// copy.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// A read-only view of the catalog at this instant. O(#tables) `Arc`
    /// clones; no tuple data is copied. Mutations to the live catalog
    /// after the snapshot (via [`Catalog::table_mut`]) copy-on-write the
    /// affected table and leave the snapshot untouched.
    pub fn snapshot(&self) -> CatalogSnapshot {
        CatalogSnapshot {
            inner: self.clone(),
        }
    }

    /// Detach a table from the catalog, returning its shared handle. Used
    /// by the parallel commit path to hand disjoint tables to worker
    /// threads; pair with [`Catalog::restore_table`]. While detached, the
    /// table is absent from lookups. Fires the `storage::take_table`
    /// failpoint *before* detaching, so an injected failure here leaves
    /// the catalog untouched.
    pub fn take_table(&mut self, name: &str) -> StorageResult<Arc<Table>> {
        crate::fault::fire("storage::take_table")?;
        self.tables
            .remove(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Re-attach a table previously removed with [`Catalog::take_table`].
    /// Infallible by design: rollback paths depend on re-attachment never
    /// failing (a rollback that can itself fail leaves a torn catalog).
    pub fn restore_table(&mut self, name: impl Into<String>, table: Arc<Table>) {
        self.tables.insert(name.into(), table);
    }

    /// The shared handle of a table (an `Arc` clone, no data copy). The
    /// staged-commit protocol starts from this handle and mutates a
    /// copy-on-write duplicate, leaving the cataloged original pristine
    /// until [`Catalog::restore_tables`] swaps the copy in.
    pub fn table_arc(&self, name: &str) -> StorageResult<Arc<Table>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// The commit point of the staged-commit protocol: atomically swap a
    /// batch of staged tables into the catalog. The `storage::restore_table`
    /// failpoint fires once per staged table *before any insertion*, so an
    /// injected failure aborts the whole swap with the catalog unchanged;
    /// past that gate the swap is pure `BTreeMap` inserts and cannot fail.
    pub fn restore_tables(
        &mut self,
        tables: impl IntoIterator<Item = (String, Arc<Table>)>,
    ) -> StorageResult<()> {
        let tables: Vec<(String, Arc<Table>)> = tables.into_iter().collect();
        for _ in &tables {
            crate::fault::fire("storage::restore_table")?;
        }
        for (name, table) in tables {
            self.tables.insert(name, table);
        }
        Ok(())
    }

    /// Register a base table.
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
    ) -> StorageResult<&mut Table> {
        self.create_entry(name.into(), schema, true)
    }

    /// Register a materialized view's storage.
    pub fn create_materialized(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
    ) -> StorageResult<&mut Table> {
        self.create_entry(name.into(), schema, false)
    }

    fn create_entry(
        &mut self,
        name: String,
        schema: Schema,
        is_base: bool,
    ) -> StorageResult<&mut Table> {
        if self.tables.contains_key(&name) {
            return Err(StorageError::DuplicateTable(name));
        }
        let table = Table {
            relation: Relation::new(name.clone(), schema),
            stats: TableStats::default(),
            keys: Vec::new(),
            is_base,
        };
        let entry = self.tables.entry(name).or_insert_with(|| Arc::new(table));
        Ok(Arc::make_mut(entry))
    }

    /// Remove a table.
    pub fn drop_table(&mut self, name: &str) -> StorageResult<Table> {
        self.tables
            .remove(name)
            .map(|t| Arc::try_unwrap(t).unwrap_or_else(|a| (*a).clone()))
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> StorageResult<&Table> {
        self.tables
            .get(name)
            .map(Arc::as_ref)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Look up a table mutably. If the table is shared with a snapshot,
    /// this clones it first (copy-on-write), so snapshots stay immutable.
    pub fn table_mut(&mut self, name: &str) -> StorageResult<&mut Table> {
        self.tables
            .get_mut(name)
            .map(Arc::make_mut)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Iterate tables in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Table)> {
        self.tables.iter().map(|(n, t)| (n.as_str(), t.as_ref()))
    }

    /// The string interner backing this catalog's spilled `Str` values.
    /// The pool is process-wide (see [`crate::smallstr`] for why pointer
    /// identity must span catalog snapshots and staged table copies); this
    /// accessor is the catalog-scoped handle to it.
    pub fn interner(&self) -> crate::smallstr::Interner {
        crate::smallstr::Interner::global().handle()
    }

    /// Declare a candidate key on a table by column names, creating a hash
    /// index on it as well (keys are always index-backed in our physical
    /// model).
    pub fn declare_key(&mut self, table: &str, key_cols: &[&str]) -> StorageResult<()> {
        let t = self.table_mut(table)?;
        let positions: Vec<usize> = key_cols
            .iter()
            .map(|c| t.relation.schema().resolve_dotted(c))
            .collect::<StorageResult<_>>()?;
        t.relation.create_index(positions.clone())?;
        if !t.keys.contains(&positions) {
            t.keys.push(positions);
        }
        Ok(())
    }

    /// Create a (non-key) hash index by column names.
    pub fn create_index(&mut self, table: &str, cols: &[&str]) -> StorageResult<usize> {
        let t = self.table_mut(table)?;
        let positions: Vec<usize> = cols
            .iter()
            .map(|c| t.relation.schema().resolve_dotted(c))
            .collect::<StorageResult<_>>()?;
        t.relation.create_index(positions)
    }
}

/// An immutable, `Send + Sync` view of a [`Catalog`] at one instant.
///
/// The read-view contract: a snapshot observes exactly the committed state
/// at the time of [`Catalog::snapshot`], regardless of later mutations to
/// the live catalog. All read APIs are available through `Deref`; there is
/// deliberately no mutable access.
#[derive(Debug, Clone)]
pub struct CatalogSnapshot {
    inner: Catalog,
}

impl Deref for CatalogSnapshot {
    type Target = Catalog;

    fn deref(&self) -> &Catalog {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::IoMeter;
    use crate::tuple;
    use crate::value::DataType;

    fn demo() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "Dept",
            Schema::of_table(
                "Dept",
                &[
                    ("DName", DataType::Str),
                    ("MName", DataType::Str),
                    ("Budget", DataType::Int),
                ],
            ),
        )
        .unwrap();
        cat.declare_key("Dept", &["DName"]).unwrap();
        cat
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut cat = demo();
        let err = cat
            .create_table("Dept", Schema::of_table("Dept", &[("X", DataType::Int)]))
            .unwrap_err();
        assert!(matches!(err, StorageError::DuplicateTable(_)));
    }

    #[test]
    fn declare_key_creates_backing_index() {
        let cat = demo();
        let t = cat.table("Dept").unwrap();
        assert_eq!(t.keys, vec![vec![0]]);
        assert!(t.relation.find_index(&[0]).is_some());
        assert!(t.cols_contain_key(&[0, 2]));
        assert!(!t.cols_contain_key(&[1, 2]));
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let mut cat = demo();
        assert!(matches!(
            cat.table("Nope"),
            Err(StorageError::UnknownTable(_))
        ));
        assert!(cat.declare_key("Dept", &["Missing"]).is_err());
    }

    #[test]
    fn analyze_reflects_data() {
        let mut cat = demo();
        let mut io = IoMeter::new();
        cat.table_mut("Dept")
            .unwrap()
            .relation
            .insert(tuple!["Sales", "mary", 500], 1, &mut io)
            .unwrap();
        cat.table_mut("Dept").unwrap().analyze();
        assert_eq!(cat.table("Dept").unwrap().stats.cardinality, 1);
        assert_eq!(cat.table("Dept").unwrap().stats.distinct[&0], 1);
    }

    #[test]
    fn drop_removes() {
        let mut cat = demo();
        cat.drop_table("Dept").unwrap();
        assert!(!cat.contains("Dept"));
        assert!(cat.drop_table("Dept").is_err());
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut cat = demo();
        let mut io = IoMeter::new();
        cat.table_mut("Dept")
            .unwrap()
            .relation
            .insert(tuple!["Sales", "mary", 500], 1, &mut io)
            .unwrap();
        let snap = cat.snapshot();
        assert_eq!(snap.table("Dept").unwrap().relation.len(), 1);
        // Mutate the live catalog: the snapshot must not see it.
        cat.table_mut("Dept")
            .unwrap()
            .relation
            .insert(tuple!["R&D", "ann", 900], 1, &mut io)
            .unwrap();
        assert_eq!(cat.table("Dept").unwrap().relation.len(), 2);
        assert_eq!(snap.table("Dept").unwrap().relation.len(), 1);
        // Dropping a table from the live catalog leaves the snapshot whole.
        cat.drop_table("Dept").unwrap();
        assert!(snap.table("Dept").is_ok());
    }

    #[test]
    fn snapshot_shares_storage_until_write() {
        let mut cat = demo();
        let snap = cat.snapshot();
        // Untouched tables stay physically shared with the snapshot.
        let live = cat.table("Dept").unwrap() as *const Table;
        let shared = snap.table("Dept").unwrap() as *const Table;
        assert_eq!(live, shared, "snapshot must not deep-copy");
        // The first write un-shares exactly the written table.
        cat.table_mut("Dept").unwrap().analyze();
        let live = cat.table("Dept").unwrap() as *const Table;
        let shared = snap.table("Dept").unwrap() as *const Table;
        assert_ne!(live, shared, "write must copy-on-write");
    }

    #[test]
    fn take_and_restore_roundtrip() {
        let mut cat = demo();
        let t = cat.take_table("Dept").unwrap();
        assert!(cat.table("Dept").is_err(), "detached while taken");
        assert!(cat.take_table("Dept").is_err());
        cat.restore_table("Dept", t);
        assert!(cat.table("Dept").is_ok());
        assert_eq!(cat.table("Dept").unwrap().keys, vec![vec![0]]);
    }

    #[test]
    fn restore_tables_swaps_a_batch() {
        let mut cat = demo();
        let mut io = IoMeter::new();
        let mut staged = cat.table_arc("Dept").unwrap();
        Arc::make_mut(&mut staged)
            .relation
            .insert(tuple!["Sales", "mary", 500], 1, &mut io)
            .unwrap();
        // The cataloged original is untouched until the swap.
        assert_eq!(cat.table("Dept").unwrap().relation.len(), 0);
        cat.restore_tables([("Dept".to_string(), staged)]).unwrap();
        assert_eq!(cat.table("Dept").unwrap().relation.len(), 1);
    }

    #[test]
    fn materialized_views_are_flagged() {
        let mut cat = demo();
        cat.create_materialized(
            "SumOfSals",
            Schema::of_table(
                "SumOfSals",
                &[("DName", DataType::Str), ("SalSum", DataType::Int)],
            ),
        )
        .unwrap();
        assert!(!cat.table("SumOfSals").unwrap().is_base);
        assert!(cat.table("Dept").unwrap().is_base);
    }
}

//! The database catalog: named tables with schema, data, statistics, keys
//! and indices.
//!
//! Both *base relations* and *materialized views* live here — the paper's
//! model treats a materialized view exactly like a stored relation once the
//! optimizer decides to keep it (equivalence nodes for database relations
//! are "already materialized", §3.1).

use std::collections::BTreeMap;

use crate::error::{StorageError, StorageResult};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::stats::TableStats;

/// One catalog entry.
#[derive(Debug, Clone)]
pub struct Table {
    /// The stored relation (schema + data + indices).
    pub relation: Relation,
    /// Estimation statistics (declared or analyzed).
    pub stats: TableStats,
    /// Candidate keys, as column-position sets. Used by key-based query
    /// elimination (the paper's "Q3d needs no I/O because DName is a key
    /// for Dept") and by the eager-aggregation rewrite rule.
    pub keys: Vec<Vec<usize>>,
    /// Whether this is a base relation (true) or a materialized view.
    pub is_base: bool,
}

impl Table {
    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        self.relation.schema()
    }

    /// Whether `cols` is a superset of some declared key.
    pub fn cols_contain_key(&self, cols: &[usize]) -> bool {
        self.keys
            .iter()
            .any(|key| key.iter().all(|k| cols.contains(k)))
    }

    /// Refresh statistics from the stored data.
    pub fn analyze(&mut self) {
        let arity = self.relation.schema().arity();
        let tpp = self.stats.tuples_per_page;
        self.stats = TableStats::analyze(self.relation.data(), arity);
        self.stats.tuples_per_page = tpp;
    }
}

/// The catalog: tables by (case-sensitive) name.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a base table.
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
    ) -> StorageResult<&mut Table> {
        self.create_entry(name.into(), schema, true)
    }

    /// Register a materialized view's storage.
    pub fn create_materialized(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
    ) -> StorageResult<&mut Table> {
        self.create_entry(name.into(), schema, false)
    }

    fn create_entry(
        &mut self,
        name: String,
        schema: Schema,
        is_base: bool,
    ) -> StorageResult<&mut Table> {
        if self.tables.contains_key(&name) {
            return Err(StorageError::DuplicateTable(name));
        }
        let table = Table {
            relation: Relation::new(name.clone(), schema),
            stats: TableStats::default(),
            keys: Vec::new(),
            is_base,
        };
        Ok(self.tables.entry(name).or_insert(table))
    }

    /// Remove a table.
    pub fn drop_table(&mut self, name: &str) -> StorageResult<Table> {
        self.tables
            .remove(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> StorageResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Look up a table mutably.
    pub fn table_mut(&mut self, name: &str) -> StorageResult<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Iterate tables in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Table)> {
        self.tables.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// Declare a candidate key on a table by column names, creating a hash
    /// index on it as well (keys are always index-backed in our physical
    /// model).
    pub fn declare_key(&mut self, table: &str, key_cols: &[&str]) -> StorageResult<()> {
        let t = self.table_mut(table)?;
        let positions: Vec<usize> = key_cols
            .iter()
            .map(|c| t.relation.schema().resolve_dotted(c))
            .collect::<StorageResult<_>>()?;
        t.relation.create_index(positions.clone())?;
        if !t.keys.contains(&positions) {
            t.keys.push(positions);
        }
        Ok(())
    }

    /// Create a (non-key) hash index by column names.
    pub fn create_index(&mut self, table: &str, cols: &[&str]) -> StorageResult<usize> {
        let t = self.table_mut(table)?;
        let positions: Vec<usize> = cols
            .iter()
            .map(|c| t.relation.schema().resolve_dotted(c))
            .collect::<StorageResult<_>>()?;
        t.relation.create_index(positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::IoMeter;
    use crate::tuple;
    use crate::value::DataType;

    fn demo() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "Dept",
            Schema::of_table(
                "Dept",
                &[
                    ("DName", DataType::Str),
                    ("MName", DataType::Str),
                    ("Budget", DataType::Int),
                ],
            ),
        )
        .unwrap();
        cat.declare_key("Dept", &["DName"]).unwrap();
        cat
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut cat = demo();
        let err = cat
            .create_table("Dept", Schema::of_table("Dept", &[("X", DataType::Int)]))
            .unwrap_err();
        assert!(matches!(err, StorageError::DuplicateTable(_)));
    }

    #[test]
    fn declare_key_creates_backing_index() {
        let cat = demo();
        let t = cat.table("Dept").unwrap();
        assert_eq!(t.keys, vec![vec![0]]);
        assert!(t.relation.find_index(&[0]).is_some());
        assert!(t.cols_contain_key(&[0, 2]));
        assert!(!t.cols_contain_key(&[1, 2]));
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let mut cat = demo();
        assert!(matches!(
            cat.table("Nope"),
            Err(StorageError::UnknownTable(_))
        ));
        assert!(cat.declare_key("Dept", &["Missing"]).is_err());
    }

    #[test]
    fn analyze_reflects_data() {
        let mut cat = demo();
        let mut io = IoMeter::new();
        cat.table_mut("Dept")
            .unwrap()
            .relation
            .insert(tuple!["Sales", "mary", 500], 1, &mut io)
            .unwrap();
        cat.table_mut("Dept").unwrap().analyze();
        assert_eq!(cat.table("Dept").unwrap().stats.cardinality, 1);
        assert_eq!(cat.table("Dept").unwrap().stats.distinct[&0], 1);
    }

    #[test]
    fn drop_removes() {
        let mut cat = demo();
        cat.drop_table("Dept").unwrap();
        assert!(!cat.contains("Dept"));
        assert!(cat.drop_table("Dept").is_err());
    }

    #[test]
    fn materialized_views_are_flagged() {
        let mut cat = demo();
        cat.create_materialized(
            "SumOfSals",
            Schema::of_table(
                "SumOfSals",
                &[("DName", DataType::Str), ("SalSum", DataType::Int)],
            ),
        )
        .unwrap();
        assert!(!cat.table("SumOfSals").unwrap().is_base);
        assert!(cat.table("Dept").unwrap().is_base);
    }
}

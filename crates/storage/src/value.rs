//! The value domain.
//!
//! Values are the atoms stored in tuples. The domain is deliberately small —
//! the paper's examples need integers, floats (salaries/budgets), strings
//! (names) and NULL — but the comparison and hashing semantics are done
//! carefully so that values can serve as grouping keys, hash-index keys and
//! bag elements:
//!
//! * [`Value`] implements **total** `Eq`/`Ord`/`Hash`. Doubles are compared
//!   via a total order (NaN sorts greatest and equals itself), and `Null`
//!   equals `Null` — matching SQL `GROUP BY`/`DISTINCT` treatment, *not* SQL
//!   `=` (three-valued comparison is provided separately by [`Value::sql_eq`]
//!   and [`Value::sql_cmp`]).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{StorageError, StorageResult};
use crate::smallstr::SmallStr;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Booleans.
    Bool,
    /// 64-bit signed integers.
    Int,
    /// 64-bit IEEE floats.
    Double,
    /// UTF-8 strings.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => write!(f, "BOOLEAN"),
            DataType::Int => write!(f, "INTEGER"),
            DataType::Double => write!(f, "DOUBLE"),
            DataType::Str => write!(f, "VARCHAR"),
        }
    }
}

/// A single SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Double(f64),
    /// A string; short content is stored inline, long content is interned
    /// (see [`SmallStr`]).
    Str(SmallStr),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(SmallStr::new(s.as_ref()))
    }

    /// The string content, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The runtime type of this value, or `None` for NULL (which inhabits
    /// every type).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// Whether the value inhabits `ty` (NULL inhabits everything).
    pub fn conforms_to(&self, ty: DataType) -> bool {
        self.data_type().is_none_or(|t| t == ty)
    }

    /// Numeric view of the value, coercing `Int` to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// SQL three-valued equality: `NULL = x` is unknown (`None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }

    /// SQL three-valued comparison: `None` when either side is NULL or the
    /// values are of incomparable types.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Int(_), Value::Double(_)) | (Value::Double(_), Value::Int(_)) => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                Some(a.partial_cmp(&b).unwrap_or(Ordering::Equal))
            }
            (a, b) if a.data_type() == b.data_type() => Some(self.total_cmp(other)),
            _ => None,
        }
    }

    /// Total comparison used for grouping, indexing, and deterministic
    /// output ordering. NULL sorts first; across types, order is
    /// Null < Bool < numeric < Str; ints and doubles compare numerically.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Double(_) => 2,
                Value::Str(_) => 3,
            }
        }
        // Normalize -0.0 to 0.0 so the total order agrees with `Hash`.
        fn norm(d: f64) -> f64 {
            if d == 0.0 {
                0.0
            } else {
                d
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Double(a), Value::Double(b)) => norm(*a).total_cmp(&norm(*b)),
            (Value::Int(a), Value::Double(b)) => (*a as f64).total_cmp(&norm(*b)),
            (Value::Double(a), Value::Int(b)) => norm(*a).total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Add two numeric values (used by SUM/AVG maintenance).
    pub fn add(&self, other: &Value) -> StorageResult<Value> {
        numeric_binop(self, other, "+", |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// Subtract two numeric values (used by SUM maintenance on deletions).
    pub fn sub(&self, other: &Value) -> StorageResult<Value> {
        numeric_binop(self, other, "-", |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// Multiply two numeric values.
    pub fn mul(&self, other: &Value) -> StorageResult<Value> {
        numeric_binop(self, other, "*", |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// Divide two numeric values; integer division for two ints; division by
    /// zero is a type error (we have no error-value domain).
    pub fn div(&self, other: &Value) -> StorageResult<Value> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Err(StorageError::TypeError("division by zero".into()))
                } else {
                    Ok(Value::Int(a / b))
                }
            }
            _ => {
                let (a, b) = float_pair(self, other, "/")?;
                if b == 0.0 {
                    Err(StorageError::TypeError("division by zero".into()))
                } else {
                    Ok(Value::Double(a / b))
                }
            }
        }
    }

    /// Negate a numeric value.
    pub fn neg(&self) -> StorageResult<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(a) => Ok(Value::Int(-a)),
            Value::Double(a) => Ok(Value::Double(-a)),
            other => Err(StorageError::TypeError(format!("cannot negate {other}"))),
        }
    }
}

fn float_pair(a: &Value, b: &Value, op: &str) -> StorageResult<(f64, f64)> {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(StorageError::TypeError(format!(
            "cannot apply `{op}` to {a} and {b}"
        ))),
    }
}

fn numeric_binop(
    a: &Value,
    b: &Value,
    op: &str,
    int_op: impl Fn(i64, i64) -> Option<i64>,
    dbl_op: impl Fn(f64, f64) -> f64,
) -> StorageResult<Value> {
    match (a, b) {
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        (Value::Int(x), Value::Int(y)) => int_op(*x, *y)
            .map(Value::Int)
            .ok_or_else(|| StorageError::TypeError(format!("integer overflow in `{op}`"))),
        _ => {
            let (x, y) = float_pair(a, b, op)?;
            Ok(Value::Double(dbl_op(x, y)))
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The discriminant scheme must agree with `total_cmp`'s notion of
        // equality: ints and doubles that compare equal must hash equally,
        // so all numerics hash through their f64 bits when the value is
        // representable, and ints otherwise.
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                let as_d = *i as f64;
                if as_d as i64 == *i {
                    2u8.hash(state);
                    as_d.to_bits().hash(state);
                } else {
                    3u8.hash(state);
                    i.hash(state);
                }
            }
            Value::Double(d) => {
                2u8.hash(state);
                // Normalize -0.0 to 0.0 so equal values hash equally.
                let d = if *d == 0.0 { 0.0 } else { *d };
                d.to_bits().hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_equals_null_for_grouping() {
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn int_double_cross_type_equality_and_hash_agree() {
        let a = Value::Int(42);
        let b = Value::Double(42.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        assert_eq!(Value::Double(-0.0), Value::Double(0.0));
        assert_eq!(hash_of(&Value::Double(-0.0)), hash_of(&Value::Double(0.0)));
    }

    #[test]
    fn nan_is_totally_ordered_and_self_equal() {
        let nan = Value::Double(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert_eq!(nan.total_cmp(&Value::Double(1e300)), Ordering::Greater);
    }

    #[test]
    fn sql_cmp_is_three_valued() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(Value::Int(1).sql_cmp(&Value::str("a")), None);
    }

    #[test]
    fn arithmetic_propagates_null() {
        assert_eq!(Value::Null.add(&Value::Int(1)).unwrap(), Value::Null);
        assert_eq!(Value::Int(2).mul(&Value::Null).unwrap(), Value::Null);
    }

    #[test]
    fn arithmetic_mixed_types() {
        assert_eq!(
            Value::Int(2).add(&Value::Double(0.5)).unwrap(),
            Value::Double(2.5)
        );
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
    }

    #[test]
    fn arithmetic_type_errors() {
        assert!(Value::str("x").add(&Value::Int(1)).is_err());
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert!(Value::Bool(true).neg().is_err());
    }

    #[test]
    fn integer_overflow_is_detected() {
        assert!(Value::Int(i64::MAX).add(&Value::Int(1)).is_err());
        assert!(Value::Int(i64::MIN).sub(&Value::Int(1)).is_err());
    }

    #[test]
    fn display_renders_sql_ish() {
        assert_eq!(Value::str("Sales").to_string(), "'Sales'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(10).to_string(), "10");
    }

    #[test]
    fn cross_type_rank_order_is_stable() {
        let mut vs = vec![
            Value::str("a"),
            Value::Int(5),
            Value::Bool(true),
            Value::Null,
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Int(5),
                Value::str("a"),
            ]
        );
    }
}

//! Deterministic fault injection (failpoints).
//!
//! The transactional guarantees of the system — "failure anywhere in the
//! maintenance pipeline means the transaction never happened" — are only
//! trustworthy if failures can be *produced on demand* at every point
//! where the commit protocol could be interrupted. This module provides
//! named failpoint **sites** threaded through the storage/delta/ivm
//! runtime; a test installs a [`FaultPlan`] mapping a site to an action
//! (typed error or panic) that fires on the Nth hit of that site.
//!
//! Zero cost when disabled: without the `failpoints` cargo feature,
//! [`fire`] and [`fire_panic`] are `#[inline(always)]` no-ops and none of
//! the plan machinery is compiled, so the default build's hot path is
//! byte-for-byte the unfaulted one.
//!
//! With the feature on but no plan installed, each hit is one mutex lock
//! on an empty `Option` — negligible, and only test builds enable it.
//!
//! Plans are process-global (worker threads must observe them), so tests
//! that install plans must serialize; [`serial_guard`] provides the lock.

use crate::error::StorageResult;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Return a typed [`StorageError::FaultInjected`].
    Error,
    /// Panic with a recognizable message (`"injected panic at <site>"`).
    Panic,
}

/// One failpoint site in the catalog: its name and which actions the
/// surrounding code can absorb while keeping the all-or-nothing contract.
///
/// Panic-capable sites are exactly those reached from
/// [`PipelinePool`]-contained tasks (`ExecutionMode::Parallel`); a panic
/// injected at an error-only site would unwind the *caller's* thread,
/// which is outside the containment contract.
#[derive(Debug, Clone, Copy)]
pub struct Site {
    /// The site's name, as passed to [`fire`].
    pub name: &'static str,
    /// Whether [`FaultAction::Error`] injection keeps the catalog whole.
    pub supports_error: bool,
    /// Whether [`FaultAction::Panic`] injection is contained (the site
    /// runs inside a pool task under `ExecutionMode::Parallel`).
    pub supports_panic: bool,
}

/// The failpoint site catalog (DESIGN.md §12). Sweeping tests iterate
/// this; adding a site here automatically adds it to the fault sweep.
pub const SITES: &[Site] = &[
    // Fired by `Catalog::take_table` before detaching — interrupts the
    // parallel commit while it is collecting per-engine table ownership.
    Site {
        name: "storage::take_table",
        supports_error: true,
        supports_panic: false,
    },
    // Fired by `Catalog::restore_tables` once per staged table *before*
    // any insertion — interrupts the commit-point swap, which must then
    // leave the pre-transaction tables in place.
    Site {
        name: "storage::restore_table",
        supports_error: true,
        supports_panic: false,
    },
    // Fired by `apply_to_relation` before touching the relation — the
    // innermost write of every commit path (views, auxiliaries, base).
    // Panic-capable: under `ExecutionMode::Parallel` the apply runs in a
    // pool-contained commit task.
    Site {
        name: "delta::apply_to",
        supports_error: true,
        supports_panic: true,
    },
    // Fired by the engine commit paths once per view delta — the Nth hit
    // interrupts the commit after N-1 views of the transaction already
    // applied to staged/detached copies.
    Site {
        name: "ivm::commit_view",
        supports_error: true,
        supports_panic: true,
    },
    // Fired by `PipelinePool` as each task starts (inline fast path
    // included). Panic-only: the pool's job wrapper has no error channel,
    // but every unwind is caught and surfaced as `IvmError::TaskPanicked`.
    Site {
        name: "ivm::pool_dispatch",
        supports_error: false,
        supports_panic: true,
    },
    // Fired by `WalWriter::append` before any bytes are framed — a
    // durable-commit append that errors must leave memory and disk
    // agreeing (the durability layer restores its catalog backup).
    // Only reachable in `durability` builds; the fault sweep tolerates
    // sites that never fire.
    Site {
        name: "wal::append",
        supports_error: true,
        supports_panic: false,
    },
    // Fired immediately before the cross-shard global commit record is
    // appended — the 2PC decision point. An error here must abort the
    // whole wave (presumed abort: prepared-but-uncommitted participants
    // roll back at recovery).
    Site {
        name: "wal::global_commit",
        supports_error: true,
        supports_panic: false,
    },
];

/// Whether this build compiled the failpoint machinery in.
pub const fn compiled() -> bool {
    cfg!(feature = "failpoints")
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::{FaultAction, StorageResult, SITES};
    use crate::error::StorageError;
    use std::collections::BTreeMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// A named site armed to fire on its Nth hit.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct FaultSpec {
        /// Fire when the site's hit counter reaches this value (1-based).
        pub on_hit: u64,
        /// What firing does.
        pub action: FaultAction,
    }

    /// A deterministic fault schedule: site name → armed spec.
    ///
    /// The plan is deterministic in the sense that *which site fires, on
    /// which hit, with which action* is fixed up front; under parallel
    /// execution the hit that reaches the threshold may come from any
    /// worker, but every firing must trigger the same full rollback.
    #[derive(Debug, Clone, Default)]
    pub struct FaultPlan {
        specs: BTreeMap<&'static str, FaultSpec>,
    }

    impl FaultPlan {
        /// An empty plan (no site armed).
        pub fn new() -> Self {
            FaultPlan::default()
        }

        /// Arm `site` to return an injected error on its `on_hit`th hit.
        pub fn error_at(mut self, site: &'static str, on_hit: u64) -> Self {
            self.specs.insert(
                site,
                FaultSpec {
                    on_hit,
                    action: FaultAction::Error,
                },
            );
            self
        }

        /// Arm `site` to panic on its `on_hit`th hit.
        pub fn panic_at(mut self, site: &'static str, on_hit: u64) -> Self {
            self.specs.insert(
                site,
                FaultSpec {
                    on_hit,
                    action: FaultAction::Panic,
                },
            );
            self
        }

        /// A single-site plan derived deterministically from a seed:
        /// splitmix64 picks one catalog site, a hit number in `1..=3`,
        /// and (among the actions that site supports) an action. Property
        /// harnesses use this to turn a proptest seed into a fault.
        pub fn seeded(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let site = SITES[(next() % SITES.len() as u64) as usize];
            let on_hit = 1 + next() % 3;
            let action = match (site.supports_error, site.supports_panic) {
                (true, true) => {
                    if next() % 2 == 0 {
                        FaultAction::Error
                    } else {
                        FaultAction::Panic
                    }
                }
                (false, true) => FaultAction::Panic,
                _ => FaultAction::Error,
            };
            match action {
                FaultAction::Error => FaultPlan::new().error_at(site.name, on_hit),
                FaultAction::Panic => FaultPlan::new().panic_at(site.name, on_hit),
            }
        }
    }

    #[derive(Debug, Default)]
    struct Active {
        plan: FaultPlan,
        hits: BTreeMap<&'static str, u64>,
        /// Sites whose spec already fired (fire exactly once per install).
        fired: BTreeMap<&'static str, bool>,
    }

    fn active() -> &'static Mutex<Option<Active>> {
        static ACTIVE: OnceLock<Mutex<Option<Active>>> = OnceLock::new();
        ACTIVE.get_or_init(|| Mutex::new(None))
    }

    fn serial() -> &'static Mutex<()> {
        static SERIAL: OnceLock<Mutex<()>> = OnceLock::new();
        SERIAL.get_or_init(|| Mutex::new(()))
    }

    fn lock_active() -> MutexGuard<'static, Option<Active>> {
        // A panic injected *while the lock is held* is impossible (firing
        // happens after the guard drops), but a panicking worker elsewhere
        // must not poison the plan for the rest of the harness.
        active().lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Serialize fault-harness tests: plans are process-global, so tests
    /// that install plans (or that must run unfaulted) hold this lock.
    pub fn serial_guard() -> MutexGuard<'static, ()> {
        serial().lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Install a plan for the lifetime of the returned guard. The caller
    /// is responsible for serialization (see [`serial_guard`]); installing
    /// over an existing plan replaces it.
    pub fn install(plan: FaultPlan) -> FaultGuard {
        *lock_active() = Some(Active {
            plan,
            hits: BTreeMap::new(),
            fired: BTreeMap::new(),
        });
        FaultGuard { _private: () }
    }

    /// Uninstalls the plan on drop.
    #[derive(Debug)]
    pub struct FaultGuard {
        _private: (),
    }

    impl FaultGuard {
        /// Hits recorded for `site` since install.
        pub fn hits(&self, site: &str) -> u64 {
            lock_active()
                .as_ref()
                .and_then(|a| a.hits.get(site).copied())
                .unwrap_or(0)
        }

        /// Whether the armed spec for `site` has fired.
        pub fn fired(&self, site: &str) -> bool {
            lock_active()
                .as_ref()
                .and_then(|a| a.fired.get(site).copied())
                .unwrap_or(false)
        }

        /// Disarm every site (hit counting continues; nothing fires). The
        /// "retry after clearing the fault" step of the sweep.
        pub fn clear(&self) {
            if let Some(a) = lock_active().as_mut() {
                a.plan = FaultPlan::new();
            }
        }
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            *lock_active() = None;
        }
    }

    /// Record a hit at `site`; fire the armed action if its threshold is
    /// reached. Sites must pass a name from [`SITES`].
    pub fn fire(site: &'static str) -> StorageResult<()> {
        let action = {
            let mut guard = lock_active();
            let Some(a) = guard.as_mut() else {
                return Ok(());
            };
            let hits = a.hits.entry(site).or_insert(0);
            *hits += 1;
            let Some(spec) = a.plan.specs.get(site) else {
                return Ok(());
            };
            if *hits != spec.on_hit || a.fired.get(site).copied().unwrap_or(false) {
                return Ok(());
            }
            a.fired.insert(site, true);
            spec.action
            // Guard drops here: panicking below must not poison the plan.
        };
        spacetime_obs::counter_add(spacetime_obs::names::FAILPOINTS_FIRED, 1);
        spacetime_obs::flight::record("failpoint", || format!("{site} fired {action:?}"));
        match action {
            FaultAction::Error => Err(StorageError::FaultInjected {
                site: site.to_string(),
            }),
            FaultAction::Panic => panic!("injected panic at {site}"),
        }
    }

    /// [`fire`] for sites with no error channel (panic-only): an armed
    /// `Error` action at such a site is ignored.
    pub fn fire_panic(site: &'static str) {
        match fire(site) {
            Ok(()) | Err(_) => {}
        }
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{fire, fire_panic, install, serial_guard, FaultGuard, FaultPlan, FaultSpec};

/// No-op stand-ins when the `failpoints` feature is off: calls compile to
/// nothing, so the default build pays zero cost for the instrumentation.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn fire(_site: &'static str) -> StorageResult<()> {
    Ok(())
}

/// See the feature-gated [`fire`]; no-op without `failpoints`.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn fire_panic(_site: &'static str) {}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use crate::error::StorageError;

    #[test]
    fn fires_on_nth_hit_exactly_once() {
        let _serial = serial_guard();
        let guard = install(FaultPlan::new().error_at("delta::apply_to", 3));
        assert!(fire("delta::apply_to").is_ok());
        assert!(fire("delta::apply_to").is_ok());
        let err = fire("delta::apply_to").unwrap_err();
        assert!(matches!(err, StorageError::FaultInjected { ref site } if site == "delta::apply_to"));
        // Subsequent hits pass (the spec fires once per install).
        assert!(fire("delta::apply_to").is_ok());
        assert_eq!(guard.hits("delta::apply_to"), 4);
        assert!(guard.fired("delta::apply_to"));
        // Other sites are counted but never fire.
        assert!(fire("storage::take_table").is_ok());
        assert_eq!(guard.hits("storage::take_table"), 1);
    }

    #[test]
    fn clear_disarms_but_keeps_counting() {
        let _serial = serial_guard();
        let guard = install(FaultPlan::new().error_at("storage::take_table", 1));
        guard.clear();
        assert!(fire("storage::take_table").is_ok());
        assert_eq!(guard.hits("storage::take_table"), 1);
        assert!(!guard.fired("storage::take_table"));
    }

    #[test]
    fn uninstalled_is_silent() {
        let _serial = serial_guard();
        assert!(fire("delta::apply_to").is_ok());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_supported() {
        let _serial = serial_guard();
        for seed in 0..64u64 {
            let a = format!("{:?}", FaultPlan::seeded(seed));
            let b = format!("{:?}", FaultPlan::seeded(seed));
            assert_eq!(a, b, "seed {seed} not deterministic");
        }
    }

    #[test]
    fn catalog_is_consistent() {
        for s in SITES {
            assert!(
                s.supports_error || s.supports_panic,
                "site {} supports nothing",
                s.name
            );
        }
    }
}

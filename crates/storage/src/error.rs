//! Crate-wide error type.

use std::fmt;

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors produced by the storage layer.
///
/// Higher layers (algebra, IVM, SQL) wrap this type; keeping it closed and
/// descriptive makes failure-path tests precise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table name was not found in the catalog.
    UnknownTable(String),
    /// A table with this name already exists in the catalog.
    DuplicateTable(String),
    /// A column name could not be resolved against a schema.
    UnknownColumn {
        /// The column (possibly qualified) that failed to resolve.
        column: String,
        /// A rendering of the schema it was resolved against.
        schema: String,
    },
    /// A column name resolved to more than one column.
    AmbiguousColumn(String),
    /// A tuple's arity or types did not match the target schema.
    SchemaMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// An attempt to delete a tuple (or more copies of a tuple) than the
    /// relation holds.
    TupleNotFound {
        /// The relation involved.
        relation: String,
    },
    /// A value-level type error (e.g. arithmetic on a string).
    TypeError(String),
    /// An index was requested on columns outside the schema.
    BadIndexColumns(String),
    /// A fault-injection site fired (`failpoints` feature; see the
    /// `fault` module). Never produced in production builds.
    FaultInjected {
        /// The failpoint site that fired.
        site: String,
    },
    /// An internal invariant did not hold (a bug, not a user error) —
    /// surfaced as a typed error instead of a runtime-path panic so one
    /// broken invariant cannot poison the whole database.
    Internal(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            StorageError::DuplicateTable(name) => write!(f, "table `{name}` already exists"),
            StorageError::UnknownColumn { column, schema } => {
                write!(f, "unknown column `{column}` in schema [{schema}]")
            }
            StorageError::AmbiguousColumn(name) => write!(f, "ambiguous column `{name}`"),
            StorageError::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            StorageError::TupleNotFound { relation } => {
                write!(f, "tuple not present in relation `{relation}`")
            }
            StorageError::TypeError(msg) => write!(f, "type error: {msg}"),
            StorageError::BadIndexColumns(msg) => write!(f, "bad index columns: {msg}"),
            StorageError::FaultInjected { site } => {
                write!(f, "injected fault at failpoint `{site}`")
            }
            StorageError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = StorageError::UnknownTable("Emp".into());
        assert_eq!(e.to_string(), "unknown table `Emp`");
        let e = StorageError::UnknownColumn {
            column: "Dept.Budget".into(),
            schema: "EName, DName, Salary".into(),
        };
        assert!(e.to_string().contains("Dept.Budget"));
        assert!(e.to_string().contains("EName"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            StorageError::AmbiguousColumn("DName".into()),
            StorageError::AmbiguousColumn("DName".into())
        );
        assert_ne!(
            StorageError::UnknownTable("A".into()),
            StorageError::UnknownTable("B".into())
        );
    }
}

//! Transaction-scoped scratch arena.
//!
//! Hot-path propagation reuses the same few scratch buffers on every
//! update: kernel row buffers, probe keys, group accumulators. Allocating
//! them per tuple (or per transaction) shows up directly in
//! `allocs_per_txn`. A [`TxnArena`] pools the buffers instead — `take`
//! hands out a cleared buffer with whatever capacity it accumulated on
//! earlier transactions, `put` returns it. The pool is *reset, not
//! freed*, between updates: capacity ratchets up to the workload's
//! high-water mark once and stays there.
//!
//! The arena is deliberately value-typed scratch only. Nothing in it
//! outlives the borrow that took it, so there is no lifetime machinery —
//! discipline is enforced by `take`/`put` moving the `Vec`s.
//!
//! [`with_arena`] exposes a thread-local instance: propagation is
//! single-threaded per engine task, and each pool worker gets its own
//! arena for free.

use std::cell::RefCell;

use crate::value::Value;

/// A pool of reusable `Vec<Value>` scratch buffers.
#[derive(Debug, Default)]
pub struct TxnArena {
    bufs: Vec<Vec<Value>>,
    taken: u64,
    reused: u64,
}

impl TxnArena {
    /// An empty arena.
    pub fn new() -> Self {
        TxnArena::default()
    }

    /// A cleared scratch buffer, reusing pooled capacity when available.
    pub fn take_buf(&mut self) -> Vec<Value> {
        self.taken += 1;
        match self.bufs.pop() {
            Some(b) => {
                self.reused += 1;
                b
            }
            None => Vec::new(),
        }
    }

    /// Return a buffer to the pool. Contents are cleared; capacity is
    /// kept.
    pub fn put_buf(&mut self, mut buf: Vec<Value>) {
        buf.clear();
        self.bufs.push(buf);
    }

    /// Buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.bufs.len()
    }

    /// `(takes, reuses)` since construction — reuse rate ≈ 100% after
    /// the first transaction is the arena working as intended.
    pub fn stats(&self) -> (u64, u64) {
        (self.taken, self.reused)
    }
}

thread_local! {
    static ARENA: RefCell<TxnArena> = RefCell::new(TxnArena::new());
}

/// Run `f` with this thread's arena. Do not call [`with_arena`] (or
/// anything that might) from inside `f` — the arena is a `RefCell`.
pub fn with_arena<R>(f: impl FnOnce(&mut TxnArena) -> R) -> R {
    ARENA.with(|a| f(&mut a.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_keep_capacity_across_reuse() {
        let mut arena = TxnArena::new();
        let mut b = arena.take_buf();
        b.extend([Value::Int(1), Value::Int(2), Value::Int(3)]);
        let cap = b.capacity();
        arena.put_buf(b);
        let b2 = arena.take_buf();
        assert!(b2.is_empty(), "returned buffers are cleared");
        assert_eq!(b2.capacity(), cap, "capacity is pooled, not freed");
        let (taken, reused) = arena.stats();
        assert_eq!((taken, reused), (2, 1));
    }

    #[test]
    fn thread_local_arena_is_isolated() {
        with_arena(|a| {
            let b = a.take_buf();
            a.put_buf(b);
        });
        let pooled_here = with_arena(|a| a.pooled());
        assert!(pooled_here >= 1);
        std::thread::spawn(|| {
            with_arena(|a| assert_eq!(a.pooled(), 0, "fresh thread, fresh arena"));
        })
        .join()
        .unwrap();
    }
}

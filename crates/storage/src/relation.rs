//! Stored relations: a bag of tuples plus its hash indices, with all
//! accesses charged to an [`IoMeter`] per the paper's §3.6 accounting rules.

use crate::bag::Bag;
use crate::error::{StorageError, StorageResult};
use crate::index::HashIndex;
use crate::io::IoMeter;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Default number of tuples per data page, used only to price full
/// sequential scans (the paper's example never scans; every access there is
/// index-backed).
pub const DEFAULT_TUPLES_PER_PAGE: u64 = 10;

/// A stored relation (base table or materialized view).
#[derive(Debug, Clone)]
pub struct Relation {
    name: String,
    schema: Schema,
    data: Bag,
    indexes: Vec<HashIndex>,
    tuples_per_page: u64,
}

impl Relation {
    /// Create an empty relation.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Relation {
            name: name.into(),
            schema,
            data: Bag::new(),
            indexes: Vec::new(),
            tuples_per_page: DEFAULT_TUPLES_PER_PAGE,
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total tuple count (with multiplicity).
    pub fn len(&self) -> u64 {
        self.data.len()
    }

    /// Whether the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of data pages occupied (for scan pricing).
    pub fn pages(&self) -> u64 {
        self.data.len().div_ceil(self.tuples_per_page)
    }

    /// Override the tuples-per-page packing factor.
    pub fn set_tuples_per_page(&mut self, tpp: u64) {
        assert!(tpp > 0, "tuples_per_page must be positive");
        self.tuples_per_page = tpp;
    }

    /// The tuples-per-page packing factor (checkpoints persist it).
    pub fn tuples_per_page(&self) -> u64 {
        self.tuples_per_page
    }

    /// Direct (uncharged) access to the underlying bag — for verification
    /// oracles and statistics gathering, not for costed query paths.
    pub fn data(&self) -> &Bag {
        &self.data
    }

    /// Number of secondary indices maintained.
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// The index definitions (column position sets).
    pub fn index_defs(&self) -> Vec<Vec<usize>> {
        self.indexes.iter().map(|i| i.key_cols().to_vec()).collect()
    }

    /// Create (or find) a hash index on the given column positions.
    pub fn create_index(&mut self, key_cols: Vec<usize>) -> StorageResult<usize> {
        for &c in &key_cols {
            if c >= self.schema.arity() {
                return Err(StorageError::BadIndexColumns(format!(
                    "column position {c} out of range for `{}`",
                    self.name
                )));
            }
        }
        if let Some(id) = self.find_index(&key_cols) {
            return Ok(id);
        }
        let mut idx = HashIndex::new(key_cols);
        idx.rebuild(&self.data);
        self.indexes.push(idx);
        Ok(self.indexes.len() - 1)
    }

    /// Find an existing index on exactly these columns.
    pub fn find_index(&self, key_cols: &[usize]) -> Option<usize> {
        self.indexes.iter().position(|i| i.key_cols() == key_cols)
    }

    /// The column positions of index `index_id`.
    pub fn index_key_cols(&self, index_id: usize) -> &[usize] {
        self.indexes[index_id].key_cols()
    }

    /// Best index for an exact-match probe on `cols`: an index whose column
    /// *order* equals `cols` wins (the probe key can be used verbatim);
    /// failing that, any index on the same column *set* is usable but the
    /// caller must permute the key into the index's order. Returns
    /// `(index_id, needs_permutation)`.
    pub fn find_exact_index(&self, cols: &[usize]) -> Option<(usize, bool)> {
        let mut fallback = None;
        for (id, idx) in self.indexes.iter().enumerate() {
            let def = idx.key_cols();
            if def == cols {
                return Some((id, false));
            }
            if fallback.is_none() && def.len() == cols.len() && def.iter().all(|c| cols.contains(c))
            {
                fallback = Some((id, true));
            }
        }
        fallback
    }

    /// Uncharged index probe: the bucket of tuples matching `key`, if any.
    /// For self-maintenance reads whose I/O is accounted elsewhere (the
    /// §3.6 "reading, modifying and writing 1 tuple" arithmetic charges the
    /// read when the update is applied) — not for costed query paths.
    pub fn peek(&self, index_id: usize, key: &[Value]) -> Option<&Bag> {
        self.indexes[index_id].probe(key)
    }

    /// Indexed lookup: charges 1 index page + one data page per returned
    /// tuple, and returns the matching bag (cloned; results are small).
    pub fn lookup(&self, index_id: usize, key: &[Value], io: &mut IoMeter) -> Bag {
        io.index_probe();
        let result = self.indexes[index_id]
            .probe(key)
            .cloned()
            .unwrap_or_default();
        io.read_tuples(result.len());
        result
    }

    /// Indexed existence/count check: charges only the index probe.
    pub fn lookup_count(&self, index_id: usize, key: &[Value], io: &mut IoMeter) -> u64 {
        io.index_probe();
        self.indexes[index_id].probe_count(key)
    }

    /// Full scan: charges sequential pages and returns the bag.
    pub fn scan(&self, io: &mut IoMeter) -> &Bag {
        io.scan_pages(self.pages());
        &self.data
    }

    /// Insert `n` copies of a tuple, charging maintenance I/O:
    /// one index page read **and write** per index (the bucket contents
    /// change), plus one data page write per inserted tuple.
    pub fn insert(&mut self, t: Tuple, n: u64, io: &mut IoMeter) -> StorageResult<()> {
        if n == 0 {
            return Ok(());
        }
        self.schema.validate(&t)?;
        for idx in &mut self.indexes {
            io.index_probe();
            io.index_write(1);
            idx.insert(&t, n);
        }
        io.write_tuples(n);
        self.data.insert(t, n);
        Ok(())
    }

    /// Delete `n` copies of a tuple, charging one index page read+write per
    /// index, one data page read per tuple located and one write per tuple
    /// removed.
    pub fn delete(&mut self, t: &Tuple, n: u64, io: &mut IoMeter) -> StorageResult<()> {
        if n == 0 {
            return Ok(());
        }
        if self.data.count(t) < n {
            return Err(StorageError::TupleNotFound {
                relation: self.name.clone(),
            });
        }
        for idx in &mut self.indexes {
            io.index_probe();
            io.index_write(1);
            idx.remove(t, n);
        }
        io.read_tuples(n);
        io.write_tuples(n);
        self.data.remove(t, n).expect("count checked");
        Ok(())
    }

    /// Modify `n` copies of `old` into `new`, charging per the paper's
    /// convention: one index page read per index, an index page **write only
    /// when that index's key actually changed**, one data page read per
    /// tuple (fetch the old value) and one write per tuple (store the new
    /// value).
    ///
    /// This is the §3.6 arithmetic: maintaining N3 under a salary change
    /// touches 1 tuple → 1 index read + 1 data read + 1 data write = 3;
    /// maintaining N4 under a budget change touches 10 tuples →
    /// 1 + 10 + 10 = 21.
    pub fn modify(
        &mut self,
        old: &Tuple,
        new: Tuple,
        n: u64,
        io: &mut IoMeter,
    ) -> StorageResult<()> {
        if n == 0 {
            return Ok(());
        }
        self.schema.validate(&new)?;
        if self.data.count(old) < n {
            return Err(StorageError::TupleNotFound {
                relation: self.name.clone(),
            });
        }
        for idx in &mut self.indexes {
            io.index_probe();
            if idx.key_changed(old, &new) {
                io.index_write(1);
            }
            idx.remove(old, n);
            idx.insert(&new, n);
        }
        io.read_tuples(n);
        io.write_tuples(n);
        self.data.remove(old, n).expect("count checked");
        self.data.insert(new, n);
        Ok(())
    }

    /// Replace the entire contents (initial load / full recompute); charges
    /// nothing — loads are outside the maintenance-cost accounting.
    pub fn load(&mut self, data: Bag) -> StorageResult<()> {
        for (t, _) in data.iter() {
            self.schema.validate(t)?;
        }
        for idx in &mut self.indexes {
            idx.rebuild(&data);
        }
        self.data = data;
        Ok(())
    }

    /// Total number of storage shards (data bag plus every index)
    /// disturbed since the last [`Relation::clear_dirty`] — how much of
    /// this relation the current transaction actually touched.
    pub fn dirty_shards(&self) -> u32 {
        self.data.dirty_shards() + self.indexes.iter().map(HashIndex::dirty_shards).sum::<u32>()
    }

    /// Reset all dirty-shard masks (content unchanged).
    pub fn clear_dirty(&mut self) {
        self.data.clear_dirty();
        for idx in &mut self.indexes {
            idx.clear_dirty();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::value::DataType;

    fn emp() -> Relation {
        let mut r = Relation::new(
            "Emp",
            Schema::of_table(
                "Emp",
                &[
                    ("EName", DataType::Str),
                    ("DName", DataType::Str),
                    ("Salary", DataType::Int),
                ],
            ),
        );
        r.create_index(vec![1]).unwrap();
        let mut io = IoMeter::new();
        for (e, d, s) in [
            ("alice", "Sales", 100),
            ("bob", "Sales", 80),
            ("carol", "Eng", 120),
        ] {
            r.insert(tuple![e, d, s], 1, &mut io).unwrap();
        }
        r
    }

    #[test]
    fn lookup_charges_paper_cost() {
        let r = emp();
        let mut io = IoMeter::new();
        let hits = r.lookup(0, &[Value::str("Sales")], &mut io);
        assert_eq!(hits.len(), 2);
        assert_eq!(io.total(), 3, "1 index page + 2 tuple pages");
        let miss = r.lookup(0, &[Value::str("HR")], &mut io);
        assert!(miss.is_empty());
        assert_eq!(io.total(), 4, "a miss still reads the index page");
    }

    #[test]
    fn modify_without_key_change_skips_index_write() {
        let mut r = emp();
        let mut io = IoMeter::new();
        r.modify(
            &tuple!["alice", "Sales", 100],
            tuple!["alice", "Sales", 130],
            1,
            &mut io,
        )
        .unwrap();
        // 1 index read + 1 data read + 1 data write = 3 (paper's N3 cost).
        assert_eq!(io.total(), 3);
        assert_eq!(io.index_page_writes, 0);
    }

    #[test]
    fn modify_with_key_change_writes_index() {
        let mut r = emp();
        let mut io = IoMeter::new();
        r.modify(
            &tuple!["alice", "Sales", 100],
            tuple!["alice", "Eng", 100],
            1,
            &mut io,
        )
        .unwrap();
        assert_eq!(io.index_page_writes, 1);
        let mut io2 = IoMeter::new();
        assert_eq!(r.lookup(0, &[Value::str("Eng")], &mut io2).len(), 2);
    }

    #[test]
    fn delete_missing_tuple_errors() {
        let mut r = emp();
        let mut io = IoMeter::new();
        let err = r.delete(&tuple!["dave", "HR", 50], 1, &mut io).unwrap_err();
        assert!(matches!(err, StorageError::TupleNotFound { .. }));
        assert_eq!(io.total(), 0, "failed delete charges nothing");
    }

    #[test]
    fn insert_validates_schema() {
        let mut r = emp();
        let mut io = IoMeter::new();
        assert!(r.insert(tuple![1, 2], 1, &mut io).is_err());
        assert!(r.insert(tuple![1, "Sales", 10], 1, &mut io).is_err());
    }

    #[test]
    fn scan_charges_pages() {
        let mut r = emp();
        r.set_tuples_per_page(2);
        let mut io = IoMeter::new();
        let all = r.scan(&mut io);
        assert_eq!(all.len(), 3);
        assert_eq!(io.total(), 2, "3 tuples at 2/page = 2 pages");
    }

    #[test]
    fn load_rebuilds_indexes_without_charges() {
        let mut r = emp();
        let fresh: Bag = [(tuple!["zed", "Ops", 70], 2)].into_iter().collect();
        r.load(fresh).unwrap();
        let mut io = IoMeter::new();
        assert_eq!(r.lookup(0, &[Value::str("Ops")], &mut io).len(), 2);
        assert_eq!(r.lookup(0, &[Value::str("Sales")], &mut io).len(), 0);
    }

    #[test]
    fn exact_index_prefers_matching_column_order() {
        let mut r = emp();
        // Two indexes on the same column set, opposite orders.
        let rev = r.create_index(vec![1, 0]).unwrap();
        let fwd = r.create_index(vec![0, 1]).unwrap();
        // A probe on [0, 1] must pick the order-matching index (no remap).
        assert_eq!(r.find_exact_index(&[0, 1]), Some((fwd, false)));
        assert_eq!(r.find_exact_index(&[1, 0]), Some((rev, false)));
        // With only the reversed index present, the set-match fallback
        // fires and reports that the probe key needs permuting.
        let mut r2 = emp();
        let only = r2.create_index(vec![1, 0]).unwrap();
        assert_eq!(r2.find_exact_index(&[0, 1]), Some((only, true)));
        // No index on the set at all.
        assert_eq!(r.find_exact_index(&[2]), None);
    }

    #[test]
    fn exact_index_permuted_fallback_probes_correctly() {
        let mut r = emp();
        // Same column *set* as the probe, but non-identity order — and a
        // same-length decoy on a different set that must never match.
        let decoy = r.create_index(vec![1, 2]).unwrap();
        let idx = r.create_index(vec![2, 0]).unwrap();
        let (found, permute) = r.find_exact_index(&[0, 2]).expect("set matches");
        assert_eq!(found, idx);
        assert!(permute, "order differs, caller must remap the key");
        assert_ne!(found, decoy, "a different column set must not match");
        // Remap the probe key [EName, Salary] into the index's [2, 0]
        // order, exactly as the engine's self-maintenance path does.
        let cols = [0usize, 2];
        let key = [Value::str("alice"), Value::Int(100)];
        let probe: Vec<Value> = r
            .index_key_cols(found)
            .iter()
            .map(|c| key[cols.iter().position(|x| x == c).unwrap()].clone())
            .collect();
        assert_eq!(probe, vec![Value::Int(100), Value::str("alice")]);
        let bag = r.peek(found, &probe).expect("row present");
        assert_eq!(bag.len(), 1);
        assert_eq!(bag.sorted()[0].0, tuple!["alice", "Sales", 100]);
        // Probing with the *unpermuted* key misses: the fallback is only
        // sound together with the remap.
        assert!(r.peek(found, &key).is_none());
    }

    #[test]
    fn peek_is_uncharged_and_matches_lookup() {
        let r = emp();
        let mut io = IoMeter::new();
        let via_lookup = r.lookup(0, &[Value::str("Sales")], &mut io);
        let via_peek = r.peek(0, &[Value::str("Sales")]).cloned().unwrap();
        assert_eq!(via_lookup, via_peek);
        assert_eq!(io.total(), 3, "lookup charged; peek added nothing");
        assert!(r.peek(0, &[Value::str("HR")]).is_none());
    }

    #[test]
    fn create_index_is_idempotent_and_validated() {
        let mut r = emp();
        let a = r.create_index(vec![1]).unwrap();
        let b = r.create_index(vec![1]).unwrap();
        assert_eq!(a, b);
        assert!(r.create_index(vec![9]).is_err());
    }
}

//! # spacetime-storage
//!
//! The storage substrate for the `spacetime` reproduction of Ross,
//! Srivastava & Sudarshan, *"Materialized View Maintenance and Integrity
//! Constraint Checking: Trading Space for Time"* (SIGMOD 1996).
//!
//! The paper evaluates its view-selection algorithms under a concrete
//! physical model (§3.6): relations stored unclustered, accessed through
//! hash indices with no overflowed buckets, and costs counted in **page
//! I/Os**. This crate provides exactly that substrate:
//!
//! * [`value`] — the SQL-ish value domain ([`Value`], [`DataType`]) with a
//!   total order suitable for grouping and indexing.
//! * [`smallstr`] — compact strings ([`SmallStr`]): small-string inlining
//!   plus an interned spill path ([`Interner`]).
//! * [`fx`] — the deterministic fixed-seed hasher used by hot-path maps
//!   and shard routing.
//! * [`tuple`] — cheaply-clonable tuples ([`Tuple`]).
//! * [`schema`] — column/schema metadata and name resolution.
//! * [`bag`] — multisets of tuples ([`Bag`]); all relations and views have
//!   SQL multiset semantics.
//! * [`index`] — hash indices ([`HashIndex`]) over column subsets.
//! * [`relation`] — stored relations ([`Relation`]) combining a bag with its
//!   indices.
//! * [`io`] — the page-I/O meter ([`IoMeter`]) that charges accesses by the
//!   paper's accounting rules, so that *measured* costs are commensurable
//!   with the optimizer's *estimated* costs.
//! * [`stats`] — per-table statistics ([`TableStats`]) used by cost
//!   estimation.
//! * [`catalog`] — the database catalog ([`Catalog`], [`Table`]): schemas,
//!   data, statistics, keys and indices by table name.
//! * [`shard`] — declared shard keys ([`ShardSpec`]) and the fixed-seed
//!   router mapping tuples to shard domains.
//! * [`error`] — the crate-wide error type ([`StorageError`]).
//! * [`fault`] — deterministic fault injection (failpoints), compiled to
//!   no-ops unless the `failpoints` feature is enabled.

pub mod arena;
pub mod bag;
pub mod catalog;
pub mod error;
pub mod fault;
pub mod fx;
pub mod index;
pub mod io;
pub mod relation;
pub mod schema;
pub mod shard;
pub mod smallstr;
pub mod stats;
pub mod tuple;
pub mod value;

pub use arena::TxnArena;
pub use bag::Bag;
pub use catalog::{Catalog, CatalogSnapshot, Table};
pub use error::{StorageError, StorageResult};
pub use index::HashIndex;
pub use io::{IoMeter, IoSnapshot};
pub use fx::{fx_hash_one, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use relation::Relation;
pub use schema::{Column, Schema};
pub use shard::ShardSpec;
pub use smallstr::{Interner, SmallStr};
pub use stats::TableStats;
pub use tuple::Tuple;
pub use value::{DataType, Value};

//! Operator-level property tests: for every operator and every delta
//! shape, `old_output + propagate(delta) == op(old_input + delta)` —
//! under all three aggregate costing regimes (input re-query,
//! self-materialized, group-complete is exercised separately since it
//! needs the key guarantee).

use proptest::prelude::*;

use spacetime_algebra::eval::{aggregate_bag, join_bags, project_bag};
use spacetime_algebra::{AggExpr, AggFunc, CmpOp, ExprNode, JoinCondition, ScalarExpr};
use spacetime_delta::{propagate, BagAccess, Delta};
use spacetime_storage::{tuple, Bag, Catalog, DataType, Schema, Tuple};

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    for name in ["L", "R"] {
        cat.create_table(
            name,
            Schema::of_table(name, &[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .unwrap();
    }
    cat
}

fn bag_from(rows: &[(i64, i64, u8)]) -> Bag {
    rows.iter()
        .map(|&(k, v, c)| (tuple![k, v], (c % 3) as u64 + 1))
        .collect()
}

/// Build a delta against `base`: delete/modify entries reference actual
/// rows (selected by index), inserts are free.
fn delta_from(base: &Bag, ops: &[(u8, i64, i64, u8)]) -> Delta {
    let rows = base.sorted();
    let mut delta = Delta::new();
    let mut available: std::collections::HashMap<Tuple, u64> = rows.iter().cloned().collect();
    for &(kind, k, v, sel) in ops {
        match kind % 3 {
            0 => delta.inserts.insert(tuple![k, v], 1),
            1 | 2 => {
                if rows.is_empty() {
                    continue;
                }
                let (t, _) = &rows[sel as usize % rows.len()];
                let have = available.get_mut(t);
                let Some(have) = have else { continue };
                if *have == 0 {
                    continue;
                }
                *have -= 1;
                if kind % 3 == 1 {
                    delta.deletes.insert(t.clone(), 1);
                } else {
                    let new = tuple![k, v];
                    if new != *t {
                        delta.push_modify(t.clone(), new, 1);
                    }
                }
            }
            _ => unreachable!(),
        }
    }
    delta
}

/// Canonicalize a delta for comparison: `modifies` is a `Vec` whose order
/// depends on bag iteration order, which differs between two `Bag`
/// instances; the multiset semantics do not.
fn canon(mut d: Delta) -> Delta {
    d.modifies.sort();
    d
}

fn rows_strategy() -> impl Strategy<Value = Vec<(i64, i64, u8)>> {
    prop::collection::vec((0i64..4, 0i64..20, any::<u8>()), 0..7)
}

fn ops_strategy() -> impl Strategy<Value = Vec<(u8, i64, i64, u8)>> {
    prop::collection::vec((any::<u8>(), 0i64..4, 0i64..20, any::<u8>()), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn select_rule_exact(rows in rows_strategy(), ops in ops_strategy()) {
        let cat = catalog();
        let l = ExprNode::scan(&cat, "L").unwrap();
        let node = ExprNode::select(
            l,
            ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::col(1), ScalarExpr::lit(10)),
        )
        .unwrap();
        let base = bag_from(&rows);
        let delta = delta_from(&base, &ops);
        let mut access = BagAccess::new(vec![base.clone()]);
        let d_out = propagate(&node, 0, &delta, &mut access).unwrap();

        let filter = |b: &Bag| -> Bag {
            b.iter()
                .filter(|(t, _)| matches!(t.get(1), Some(v) if *v >= spacetime_storage::Value::Int(10)))
                .map(|(t, c)| (t.clone(), c))
                .collect()
        };
        let mut old_out = filter(&base);
        let mut new_base = base.clone();
        delta.apply_to(&mut new_base).unwrap();
        let expect = filter(&new_base);
        d_out.apply_to(&mut old_out).unwrap();
        prop_assert_eq!(old_out, expect);
    }

    #[test]
    fn project_rule_exact(rows in rows_strategy(), ops in ops_strategy()) {
        let cat = catalog();
        let l = ExprNode::scan(&cat, "L").unwrap();
        let node = ExprNode::project_cols(l, &[0]).unwrap();
        let base = bag_from(&rows);
        let delta = delta_from(&base, &ops);
        let mut access = BagAccess::new(vec![base.clone()]);
        let d_out = propagate(&node, 0, &delta, &mut access).unwrap();
        let exprs = vec![(ScalarExpr::col(0), "k".to_string())];
        let mut old_out = project_bag(&base, &exprs).unwrap();
        let mut new_base = base.clone();
        delta.apply_to(&mut new_base).unwrap();
        let expect = project_bag(&new_base, &exprs).unwrap();
        d_out.apply_to(&mut old_out).unwrap();
        prop_assert_eq!(old_out, expect);
    }

    #[test]
    fn join_rule_exact_either_side(
        lrows in rows_strategy(),
        rrows in rows_strategy(),
        ops in ops_strategy(),
        side in 0usize..2,
    ) {
        let cat = catalog();
        let l = ExprNode::scan(&cat, "L").unwrap();
        let r = ExprNode::scan(&cat, "R").unwrap();
        let node = ExprNode::join_on(l, r, &[("L.k", "R.k")]).unwrap();
        let cond = JoinCondition::on(vec![(0, 0)]);
        let lbase = bag_from(&lrows);
        let rbase = bag_from(&rrows);
        let delta = delta_from(if side == 0 { &lbase } else { &rbase }, &ops);
        let mut access = BagAccess::new(vec![lbase.clone(), rbase.clone()]);
        let d_out = propagate(&node, side, &delta, &mut access).unwrap();
        let mut old_out = join_bags(&lbase, &rbase, &cond).unwrap();
        let (mut nl, mut nr) = (lbase.clone(), rbase.clone());
        if side == 0 {
            delta.apply_to(&mut nl).unwrap();
        } else {
            delta.apply_to(&mut nr).unwrap();
        }
        let expect = join_bags(&nl, &nr, &cond).unwrap();
        d_out.apply_to(&mut old_out).unwrap();
        prop_assert_eq!(old_out, expect);
    }

    #[test]
    fn aggregate_rule_exact_all_regimes(
        rows in rows_strategy(),
        ops in ops_strategy(),
        materialized in any::<bool>(),
    ) {
        let cat = catalog();
        let l = ExprNode::scan(&cat, "L").unwrap();
        let node = ExprNode::aggregate(
            l,
            vec![0],
            vec![
                AggExpr::new(AggFunc::Sum, ScalarExpr::col(1), "s"),
                AggExpr::count_star("n"),
                AggExpr::new(AggFunc::Min, ScalarExpr::col(1), "lo"),
                AggExpr::new(AggFunc::Avg, ScalarExpr::col(1), "a"),
            ],
        )
        .unwrap();
        let aggs = match &node.op {
            spacetime_algebra::OpKind::Aggregate { aggs, .. } => aggs.clone(),
            _ => unreachable!(),
        };
        let base = bag_from(&rows);
        let delta = delta_from(&base, &ops);
        let mut old_out = aggregate_bag(&base, &[0], &aggs).unwrap();
        // A grouped aggregate over an empty input has no rows.
        if base.is_empty() {
            old_out = Bag::new();
        }
        let mut access = if materialized {
            BagAccess::materialized(vec![base.clone()], old_out.clone())
        } else {
            BagAccess::new(vec![base.clone()])
        };
        let d_out = propagate(&node, 0, &delta, &mut access).unwrap();
        let mut new_base = base.clone();
        delta.apply_to(&mut new_base).unwrap();
        let expect = if new_base.is_empty() {
            Bag::new()
        } else {
            aggregate_bag(&new_base, &[0], &aggs).unwrap()
        };
        d_out.apply_to(&mut old_out).unwrap();
        prop_assert_eq!(old_out, expect);
    }

    /// The batched data plane is a wall-clock optimisation only: answering
    /// the posed queries through one hash partition per (child, cols) must
    /// yield the same delta AND the same number of posed queries as the
    /// per-key path, and both must agree with recomputation.
    #[test]
    fn batched_join_matches_per_key_and_oracle(
        lrows in rows_strategy(),
        rrows in rows_strategy(),
        ops in ops_strategy(),
        side in 0usize..2,
    ) {
        let cat = catalog();
        let l = ExprNode::scan(&cat, "L").unwrap();
        let r = ExprNode::scan(&cat, "R").unwrap();
        let node = ExprNode::join_on(l, r, &[("L.k", "R.k")]).unwrap();
        let cond = JoinCondition::on(vec![(0, 0)]);
        let lbase = bag_from(&lrows);
        let rbase = bag_from(&rrows);
        let delta = delta_from(if side == 0 { &lbase } else { &rbase }, &ops);

        let mut per_key = BagAccess::new(vec![lbase.clone(), rbase.clone()]);
        let mut batched = BagAccess::new(vec![lbase.clone(), rbase.clone()]);
        batched.batched = true;
        let d_pk = propagate(&node, side, &delta, &mut per_key).unwrap();
        let d_b = propagate(&node, side, &delta, &mut batched).unwrap();
        prop_assert_eq!(canon(d_pk.clone()), canon(d_b));
        prop_assert_eq!(per_key.queries_posed, batched.queries_posed);

        let mut old_out = join_bags(&lbase, &rbase, &cond).unwrap();
        let (mut nl, mut nr) = (lbase.clone(), rbase.clone());
        if side == 0 {
            delta.apply_to(&mut nl).unwrap();
        } else {
            delta.apply_to(&mut nr).unwrap();
        }
        let expect = join_bags(&nl, &nr, &cond).unwrap();
        d_pk.apply_to(&mut old_out).unwrap();
        prop_assert_eq!(old_out, expect);
    }

    #[test]
    fn batched_aggregate_matches_per_key_and_oracle(
        rows in rows_strategy(),
        ops in ops_strategy(),
        materialized in any::<bool>(),
    ) {
        let cat = catalog();
        let l = ExprNode::scan(&cat, "L").unwrap();
        let node = ExprNode::aggregate(
            l,
            vec![0],
            vec![
                AggExpr::new(AggFunc::Sum, ScalarExpr::col(1), "s"),
                AggExpr::count_star("n"),
                AggExpr::new(AggFunc::Max, ScalarExpr::col(1), "hi"),
                AggExpr::new(AggFunc::Avg, ScalarExpr::col(1), "a"),
            ],
        )
        .unwrap();
        let aggs = match &node.op {
            spacetime_algebra::OpKind::Aggregate { aggs, .. } => aggs.clone(),
            _ => unreachable!(),
        };
        let base = bag_from(&rows);
        let delta = delta_from(&base, &ops);
        let mut old_out = aggregate_bag(&base, &[0], &aggs).unwrap();
        if base.is_empty() {
            old_out = Bag::new();
        }
        let make = |batched: bool| -> BagAccess {
            let mut a = if materialized {
                BagAccess::materialized(vec![base.clone()], old_out.clone())
            } else {
                BagAccess::new(vec![base.clone()])
            };
            a.batched = batched;
            a
        };
        let mut per_key = make(false);
        let mut batched = make(true);
        let d_pk = propagate(&node, 0, &delta, &mut per_key).unwrap();
        let d_b = propagate(&node, 0, &delta, &mut batched).unwrap();
        prop_assert_eq!(canon(d_pk.clone()), canon(d_b));
        prop_assert_eq!(per_key.queries_posed, batched.queries_posed);

        let mut new_base = base.clone();
        delta.apply_to(&mut new_base).unwrap();
        let expect = if new_base.is_empty() {
            Bag::new()
        } else {
            aggregate_bag(&new_base, &[0], &aggs).unwrap()
        };
        d_pk.apply_to(&mut old_out).unwrap();
        prop_assert_eq!(old_out, expect);
    }

    #[test]
    fn batched_distinct_matches_per_key(rows in rows_strategy(), ops in ops_strategy()) {
        let cat = catalog();
        let l = ExprNode::scan(&cat, "L").unwrap();
        let node = ExprNode::distinct(l).unwrap();
        let base = bag_from(&rows);
        let delta = delta_from(&base, &ops);
        let mut per_key = BagAccess::new(vec![base.clone()]);
        let mut batched = BagAccess::new(vec![base.clone()]);
        batched.batched = true;
        let d_pk = propagate(&node, 0, &delta, &mut per_key).unwrap();
        let d_b = propagate(&node, 0, &delta, &mut batched).unwrap();
        prop_assert_eq!(canon(d_pk), canon(d_b));
        prop_assert_eq!(per_key.queries_posed, batched.queries_posed);
    }

    /// Two-level tree: the join's output delta feeds an aggregate over the
    /// join. Both stages must agree between modes, and the composed result
    /// must match recomputing the whole tree over updated inputs.
    #[test]
    fn batched_tree_join_then_aggregate(
        lrows in rows_strategy(),
        rrows in rows_strategy(),
        ops in ops_strategy(),
        side in 0usize..2,
    ) {
        let cat = catalog();
        let l = ExprNode::scan(&cat, "L").unwrap();
        let r = ExprNode::scan(&cat, "R").unwrap();
        let join = ExprNode::join_on(l, r, &[("L.k", "R.k")]).unwrap();
        let cond = JoinCondition::on(vec![(0, 0)]);
        let agg = ExprNode::aggregate(
            join.clone(),
            vec![0],
            vec![
                AggExpr::new(AggFunc::Sum, ScalarExpr::col(1), "s"),
                AggExpr::count_star("n"),
            ],
        )
        .unwrap();
        let aggs = match &agg.op {
            spacetime_algebra::OpKind::Aggregate { aggs, .. } => aggs.clone(),
            _ => unreachable!(),
        };
        let lbase = bag_from(&lrows);
        let rbase = bag_from(&rrows);
        let delta = delta_from(if side == 0 { &lbase } else { &rbase }, &ops);
        let old_join = join_bags(&lbase, &rbase, &cond).unwrap();
        let mut old_out = if old_join.is_empty() {
            Bag::new()
        } else {
            aggregate_bag(&old_join, &[0], &aggs).unwrap()
        };

        // Stage 1: through the join, both modes.
        let mut per_key = BagAccess::new(vec![lbase.clone(), rbase.clone()]);
        let mut batched = BagAccess::new(vec![lbase.clone(), rbase.clone()]);
        batched.batched = true;
        let dj = propagate(&join, side, &delta, &mut per_key).unwrap();
        let dj_b = propagate(&join, side, &delta, &mut batched).unwrap();
        prop_assert_eq!(canon(dj.clone()), canon(dj_b));

        // Stage 2: the same join delta through the aggregate, both modes.
        let mut per_key = BagAccess::materialized(vec![old_join.clone()], old_out.clone());
        let mut batched = BagAccess::materialized(vec![old_join.clone()], old_out.clone());
        batched.batched = true;
        let da = propagate(&agg, 0, &dj, &mut per_key).unwrap();
        let da_b = propagate(&agg, 0, &dj, &mut batched).unwrap();
        prop_assert_eq!(canon(da.clone()), canon(da_b));
        prop_assert_eq!(per_key.queries_posed, batched.queries_posed);

        // Oracle for the whole tree.
        let (mut nl, mut nr) = (lbase.clone(), rbase.clone());
        if side == 0 {
            delta.apply_to(&mut nl).unwrap();
        } else {
            delta.apply_to(&mut nr).unwrap();
        }
        let new_join = join_bags(&nl, &nr, &cond).unwrap();
        let expect = if new_join.is_empty() {
            Bag::new()
        } else {
            aggregate_bag(&new_join, &[0], &aggs).unwrap()
        };
        da.apply_to(&mut old_out).unwrap();
        prop_assert_eq!(old_out, expect);
    }

    #[test]
    fn distinct_rule_exact(rows in rows_strategy(), ops in ops_strategy()) {
        let cat = catalog();
        let l = ExprNode::scan(&cat, "L").unwrap();
        let node = ExprNode::distinct(l).unwrap();
        let base = bag_from(&rows);
        let delta = delta_from(&base, &ops);
        let mut access = BagAccess::new(vec![base.clone()]);
        let d_out = propagate(&node, 0, &delta, &mut access).unwrap();
        let dedupe = |b: &Bag| -> Bag { b.iter().map(|(t, _)| (t.clone(), 1)).collect() };
        let mut old_out = dedupe(&base);
        let mut new_base = base.clone();
        delta.apply_to(&mut new_base).unwrap();
        let expect = dedupe(&new_base);
        d_out.apply_to(&mut old_out).unwrap();
        prop_assert_eq!(old_out, expect);
    }
}

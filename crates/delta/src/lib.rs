//! # spacetime-delta
//!
//! Incremental view maintenance deltas and per-operator propagation rules,
//! following the differential approach the paper builds on ([2, 14] in its
//! bibliography): given updates (differentials) Δ`R_i` to base relations,
//! compute the differential ΔV of a view as an expression over the Δ's, the
//! *old* states of the inputs, and (when materialized) the old state of the
//! view itself.
//!
//! * [`delta`] — the [`Delta`] type: inserted tuples, deleted tuples, and
//!   first-class *modified* tuple pairs (the paper's three update kinds).
//!   Keeping modifications paired is what lets aggregate maintenance "add
//!   to or subtract from the previous aggregate values" (§1).
//! * [`propagate`] — per-operator rules computing the output delta of a
//!   node from one input's delta. Queries the rules pose on the *other*
//!   inputs (the semijoin lookups of §2.2) go through the [`InputAccess`]
//!   trait, so the caller decides whether each query is answered by a
//!   materialized-view lookup or by evaluating a plan — exactly the
//!   materialization trade-off the paper optimizes.
//! * [`apply`] — applying a delta to a stored relation (charging the
//!   paper's update-cost I/O) or to an in-memory bag (for verification).

pub mod apply;
pub mod delta;
pub mod propagate;

pub use apply::{apply_to_bag, apply_to_relation, apply_to_relation_undo, UndoLog};
pub use delta::{Delta, Modify};
pub use propagate::{propagate, propagate_chain, BagAccess, InputAccess};

//! Applying deltas to storage.
//!
//! [`apply_to_relation`] performs the physical updates and therefore incurs
//! the paper's *"cost of performing updates to V"* (§3.4): per touched
//! tuple, index page reads (and writes when a key changes), a data page
//! read of the old value and a data page write of the new value — charged
//! by [`Relation`]'s mutation methods.

use spacetime_storage::{Bag, IoMeter, Relation, StorageResult};

use crate::delta::Delta;

/// Apply a delta to a stored relation, charging maintenance I/O to `io`.
///
/// Order matters for bag correctness: deletions and modification removals
/// happen before insertions, so a delta that moves `n` copies between
/// identical tuples round-trips.
pub fn apply_to_relation(delta: &Delta, rel: &mut Relation, io: &mut IoMeter) -> StorageResult<()> {
    // The innermost write of every commit path; firing here interrupts a
    // transaction with zero or more earlier deltas already staged.
    spacetime_storage::fault::fire("delta::apply_to")?;
    for (t, c) in delta.deletes.iter() {
        rel.delete(t, c, io)?;
    }
    for m in &delta.modifies {
        rel.modify(&m.old, m.new.clone(), m.count, io)?;
    }
    for (t, c) in delta.inserts.iter() {
        rel.insert(t.clone(), c, io)?;
    }
    Ok(())
}

/// Apply a delta to an in-memory bag (verification oracle).
pub fn apply_to_bag(delta: &Delta, bag: &mut Bag) -> StorageResult<()> {
    delta.apply_to(bag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::Delta;
    use spacetime_storage::{tuple, DataType, Schema};

    fn sum_of_sals_relation() -> Relation {
        let mut r = Relation::new(
            "SumOfSals",
            Schema::of_table(
                "SumOfSals",
                &[("DName", DataType::Str), ("SalSum", DataType::Int)],
            ),
        );
        r.create_index(vec![0]).unwrap();
        let mut io = IoMeter::new();
        for d in 0..3 {
            r.insert(tuple![format!("dept{d}"), 100 * d], 1, &mut io)
                .unwrap();
        }
        r
    }

    #[test]
    fn modify_charges_paper_maintenance_cost() {
        // The paper's N3 arithmetic: modifying one SumOfSals tuple costs
        // 3 page I/Os (1 index read + 1 data read + 1 data write).
        let mut r = sum_of_sals_relation();
        let d = Delta::modify(tuple!["dept1", 100], tuple!["dept1", 130], 1);
        let mut io = IoMeter::new();
        apply_to_relation(&d, &mut r, &mut io).unwrap();
        assert_eq!(io.total(), 3);
    }

    #[test]
    fn mixed_delta_applies_in_safe_order() {
        let mut r = sum_of_sals_relation();
        let mut d = Delta::delete(tuple!["dept0", 0], 1);
        d.inserts.insert(tuple!["dept9", 900], 1);
        d.push_modify(tuple!["dept2", 200], tuple!["dept2", 250], 1);
        let mut io = IoMeter::new();
        apply_to_relation(&d, &mut r, &mut io).unwrap();
        assert_eq!(r.len(), 3);
        assert!(r.data().contains(&tuple!["dept9", 900]));
        assert!(r.data().contains(&tuple!["dept2", 250]));
        assert!(!r.data().contains(&tuple!["dept0", 0]));
    }

    #[test]
    fn apply_failure_reports_missing_tuple() {
        let mut r = sum_of_sals_relation();
        let d = Delta::delete(tuple!["ghost", 1], 1);
        let mut io = IoMeter::new();
        assert!(apply_to_relation(&d, &mut r, &mut io).is_err());
    }

    #[test]
    fn bag_and_relation_agree() {
        let mut r = sum_of_sals_relation();
        let mut bag = r.data().clone();
        let d = Delta::modify(tuple!["dept1", 100], tuple!["dept1", 101], 1);
        let mut io = IoMeter::new();
        apply_to_relation(&d, &mut r, &mut io).unwrap();
        apply_to_bag(&d, &mut bag).unwrap();
        assert_eq!(&bag, r.data());
    }
}

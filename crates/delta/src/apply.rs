//! Applying deltas to storage.
//!
//! [`apply_to_relation`] performs the physical updates and therefore incurs
//! the paper's *"cost of performing updates to V"* (§3.4): per touched
//! tuple, index page reads (and writes when a key changes), a data page
//! read of the old value and a data page write of the new value — charged
//! by [`Relation`]'s mutation methods.
//!
//! [`apply_to_relation_undo`] is the journaled variant used by the
//! in-place sequential commit fast path: every successful relation op is
//! recorded in an [`UndoLog`] so a failure later in the same transaction
//! can be rolled back by replaying exact inverse ops in reverse order —
//! no copy-on-write staging, no whole-table copies.

use spacetime_storage::{Bag, Catalog, IoMeter, Relation, StorageResult};

use crate::delta::Delta;

/// Apply a delta to a stored relation, charging maintenance I/O to `io`.
///
/// Order matters for bag correctness: deletions and modification removals
/// happen before insertions, so a delta that moves `n` copies between
/// identical tuples round-trips.
pub fn apply_to_relation(delta: &Delta, rel: &mut Relation, io: &mut IoMeter) -> StorageResult<()> {
    // The innermost write of every commit path; firing here interrupts a
    // transaction with zero or more earlier deltas already staged.
    spacetime_storage::fault::fire("delta::apply_to")?;
    for (t, c) in delta.deletes.iter() {
        rel.delete(t, c, io)?;
    }
    for m in &delta.modifies {
        rel.modify(&m.old, m.new.clone(), m.count, io)?;
    }
    for (t, c) in delta.inserts.iter() {
        rel.insert(t.clone(), c, io)?;
    }
    Ok(())
}

/// Apply a delta to an in-memory bag (verification oracle).
pub fn apply_to_bag(delta: &Delta, bag: &mut Bag) -> StorageResult<()> {
    delta.apply_to(bag)
}

/// One recorded relation mutation, stored as the information needed to
/// invert it.
#[derive(Debug, Clone)]
enum UndoOp {
    /// `n` copies of `t` were inserted.
    Insert(spacetime_storage::Tuple, u64),
    /// `n` copies of `t` were deleted.
    Delete(spacetime_storage::Tuple, u64),
    /// `count` copies of `old` became `new`.
    Modify {
        old: spacetime_storage::Tuple,
        new: spacetime_storage::Tuple,
        count: u64,
    },
}

/// Per-relation run of recorded ops (in application order).
#[derive(Debug, Default, Clone)]
struct UndoEntry {
    table: String,
    ops: Vec<UndoOp>,
}

/// An inverse-op journal for the in-place commit fast path.
///
/// [`apply_to_relation_undo`] records each successful relation op here;
/// [`UndoLog::rollback`] replays the exact inverses in reverse order,
/// restoring the catalog to its pre-transaction contents without any
/// staged table copies. The log's buffers are pooled: [`UndoLog::reset`]
/// keeps entry and op capacity, so a steady stream of transactions
/// journals without allocating.
///
/// Rollback bypasses the update-cost accounting on purpose (a failed
/// transaction reports its error, not I/O for work that was undone), and
/// replays raw [`Relation`] ops, which have no failpoints — an injected
/// fault can interrupt a commit but never the rollback that repairs it.
#[derive(Debug, Default, Clone)]
pub struct UndoLog {
    entries: Vec<UndoEntry>,
    live: usize,
}

impl UndoLog {
    /// A fresh, empty log.
    pub fn new() -> Self {
        UndoLog::default()
    }

    /// Forget all recorded ops, keeping buffer capacity for reuse.
    pub fn reset(&mut self) {
        for e in &mut self.entries[..self.live] {
            e.table.clear();
            e.ops.clear();
        }
        self.live = 0;
    }

    /// Whether anything has been recorded since the last reset.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of journaled apply runs (one per relation touched, in
    /// application order; runs are never merged, so this equals the number
    /// of deltas applied).
    pub fn table_count(&self) -> usize {
        self.live
    }

    /// The journaled tables, in application order.
    pub fn tables(&self) -> impl Iterator<Item = &str> {
        self.entries[..self.live].iter().map(|e| e.table.as_str())
    }

    /// Open a new per-relation run (reusing a pooled entry if available).
    fn begin(&mut self, table: &str) {
        if self.live == self.entries.len() {
            self.entries.push(UndoEntry::default());
        }
        let e = &mut self.entries[self.live];
        debug_assert!(e.table.is_empty() && e.ops.is_empty(), "reset() clears");
        e.table.push_str(table);
        self.live += 1;
    }

    fn push(&mut self, op: UndoOp) {
        self.entries[self.live - 1].ops.push(op);
    }

    /// Replay exact inverse ops in reverse order, restoring every
    /// journaled relation to its pre-transaction contents, then reset.
    ///
    /// Errors only on a journal/catalog mismatch, which would indicate a
    /// bug in the recording side — callers treat it as fatal.
    pub fn rollback(&mut self, catalog: &mut Catalog) -> StorageResult<()> {
        // Uncharged: rollback is repair, not accounted maintenance work.
        let mut io = IoMeter::new();
        for e in self.entries[..self.live].iter().rev() {
            let rel = &mut catalog.table_mut(&e.table)?.relation;
            for op in e.ops.iter().rev() {
                match op {
                    UndoOp::Insert(t, n) => rel.delete(t, *n, &mut io)?,
                    UndoOp::Delete(t, n) => rel.insert(t.clone(), *n, &mut io)?,
                    UndoOp::Modify { old, new, count } => {
                        rel.modify(new, old.clone(), *count, &mut io)?
                    }
                }
            }
        }
        self.reset();
        Ok(())
    }
}

/// [`apply_to_relation`] with journaling: records each successful op into
/// `undo` so the whole application (and everything before it in the same
/// transaction) can be inverted by [`UndoLog::rollback`]. An op that fails
/// mid-delta leaves the journal exactly covering the ops that did land.
pub fn apply_to_relation_undo(
    delta: &Delta,
    rel: &mut Relation,
    io: &mut IoMeter,
    undo: &mut UndoLog,
) -> StorageResult<()> {
    // Same failpoint as the staged path: firing here interrupts a
    // transaction with zero or more earlier deltas already applied.
    spacetime_storage::fault::fire("delta::apply_to")?;
    undo.begin(rel.name());
    for (t, c) in delta.deletes.iter() {
        rel.delete(t, c, io)?;
        undo.push(UndoOp::Delete(t.clone(), c));
    }
    for m in &delta.modifies {
        rel.modify(&m.old, m.new.clone(), m.count, io)?;
        undo.push(UndoOp::Modify {
            old: m.old.clone(),
            new: m.new.clone(),
            count: m.count,
        });
    }
    for (t, c) in delta.inserts.iter() {
        rel.insert(t.clone(), c, io)?;
        undo.push(UndoOp::Insert(t.clone(), c));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::Delta;
    use spacetime_storage::{tuple, DataType, Schema};

    fn sum_of_sals_relation() -> Relation {
        let mut r = Relation::new(
            "SumOfSals",
            Schema::of_table(
                "SumOfSals",
                &[("DName", DataType::Str), ("SalSum", DataType::Int)],
            ),
        );
        r.create_index(vec![0]).unwrap();
        let mut io = IoMeter::new();
        for d in 0..3 {
            r.insert(tuple![format!("dept{d}"), 100 * d], 1, &mut io)
                .unwrap();
        }
        r
    }

    #[test]
    fn modify_charges_paper_maintenance_cost() {
        // The paper's N3 arithmetic: modifying one SumOfSals tuple costs
        // 3 page I/Os (1 index read + 1 data read + 1 data write).
        let mut r = sum_of_sals_relation();
        let d = Delta::modify(tuple!["dept1", 100], tuple!["dept1", 130], 1);
        let mut io = IoMeter::new();
        apply_to_relation(&d, &mut r, &mut io).unwrap();
        assert_eq!(io.total(), 3);
    }

    #[test]
    fn mixed_delta_applies_in_safe_order() {
        let mut r = sum_of_sals_relation();
        let mut d = Delta::delete(tuple!["dept0", 0], 1);
        d.inserts.insert(tuple!["dept9", 900], 1);
        d.push_modify(tuple!["dept2", 200], tuple!["dept2", 250], 1);
        let mut io = IoMeter::new();
        apply_to_relation(&d, &mut r, &mut io).unwrap();
        assert_eq!(r.len(), 3);
        assert!(r.data().contains(&tuple!["dept9", 900]));
        assert!(r.data().contains(&tuple!["dept2", 250]));
        assert!(!r.data().contains(&tuple!["dept0", 0]));
    }

    #[test]
    fn apply_failure_reports_missing_tuple() {
        let mut r = sum_of_sals_relation();
        let d = Delta::delete(tuple!["ghost", 1], 1);
        let mut io = IoMeter::new();
        assert!(apply_to_relation(&d, &mut r, &mut io).is_err());
    }

    #[test]
    fn undo_rollback_restores_exact_contents() {
        use spacetime_storage::Catalog;
        let mut cat = Catalog::new();
        cat.create_table(
            "SumOfSals",
            Schema::of_table(
                "SumOfSals",
                &[("DName", DataType::Str), ("SalSum", DataType::Int)],
            ),
        )
        .unwrap();
        {
            let rel = &mut cat.table_mut("SumOfSals").unwrap().relation;
            rel.create_index(vec![0]).unwrap();
            let mut io = IoMeter::new();
            for d in 0..3 {
                rel.insert(tuple![format!("dept{d}"), 100 * d], 1, &mut io)
                    .unwrap();
            }
        }
        let pre = cat.table("SumOfSals").unwrap().relation.data().clone();

        let mut d = Delta::delete(tuple!["dept0", 0], 1);
        d.inserts.insert(tuple!["dept9", 900], 2);
        d.push_modify(tuple!["dept2", 200], tuple!["dept2", 250], 1);
        let mut undo = UndoLog::new();
        let mut io = IoMeter::new();
        {
            let rel = &mut cat.table_mut("SumOfSals").unwrap().relation;
            apply_to_relation_undo(&d, rel, &mut io, &mut undo).unwrap();
        }
        assert_eq!(undo.table_count(), 1);
        assert_eq!(undo.tables().collect::<Vec<_>>(), vec!["SumOfSals"]);
        assert_ne!(&pre, cat.table("SumOfSals").unwrap().relation.data());

        undo.rollback(&mut cat).unwrap();
        let rel = &cat.table("SumOfSals").unwrap().relation;
        assert_eq!(&pre, rel.data());
        // Index restored too: probes agree with the data bag.
        let mut io = IoMeter::new();
        assert_eq!(rel.lookup(0, &[spacetime_storage::Value::str("dept2")], &mut io).len(), 1);
        assert!(undo.is_empty(), "rollback resets the log");
    }

    #[test]
    fn undo_covers_partial_application() {
        // A delta that fails mid-apply leaves the journal covering exactly
        // the ops that landed, so rollback restores the pre-state.
        let mut cat = spacetime_storage::Catalog::new();
        cat.create_table(
            "SumOfSals",
            Schema::of_table(
                "SumOfSals",
                &[("DName", DataType::Str), ("SalSum", DataType::Int)],
            ),
        )
        .unwrap();
        {
            let rel = &mut cat.table_mut("SumOfSals").unwrap().relation;
            let mut io = IoMeter::new();
            for d in 0..3 {
                rel.insert(tuple![format!("dept{d}"), 100 * d], 1, &mut io)
                    .unwrap();
            }
        }
        let pre = cat.table("SumOfSals").unwrap().relation.data().clone();
        // Deletes apply first; the modify of a ghost tuple then fails.
        let mut d = Delta::delete(tuple!["dept0", 0], 1);
        d.push_modify(tuple!["ghost", 1], tuple!["ghost", 2], 1);
        let mut undo = UndoLog::new();
        let mut io = IoMeter::new();
        {
            let rel = &mut cat.table_mut("SumOfSals").unwrap().relation;
            assert!(apply_to_relation_undo(&d, rel, &mut io, &mut undo).is_err());
        }
        undo.rollback(&mut cat).unwrap();
        assert_eq!(&pre, cat.table("SumOfSals").unwrap().relation.data());
    }

    #[test]
    fn undo_reset_pools_buffers() {
        let mut r = sum_of_sals_relation();
        let mut undo = UndoLog::new();
        let mut io = IoMeter::new();
        for i in 0..4 {
            let d = Delta::modify(
                tuple!["dept1", 100 + i],
                tuple!["dept1", 100 + i + 1],
                1,
            );
            apply_to_relation_undo(&d, &mut r, &mut io, &mut undo).unwrap();
            assert_eq!(undo.table_count(), 1);
            undo.reset();
            assert!(undo.is_empty());
        }
    }

    #[test]
    fn bag_and_relation_agree() {
        let mut r = sum_of_sals_relation();
        let mut bag = r.data().clone();
        let d = Delta::modify(tuple!["dept1", 100], tuple!["dept1", 101], 1);
        let mut io = IoMeter::new();
        apply_to_relation(&d, &mut r, &mut io).unwrap();
        apply_to_bag(&d, &mut bag).unwrap();
        assert_eq!(&bag, r.data());
    }
}

//! Per-operator delta propagation.
//!
//! [`propagate`] computes the output delta of one operator node from a
//! delta on **one** of its inputs, posing queries on the other inputs via
//! [`InputAccess`] — the §2.2 model:
//!
//! > *"Consider a node N for the operation E₁ ⋈ E₂, and suppose an update
//! > ΔE₁ is propagated up to node N. … a query has to be posed to E₂ asking
//! > for all tuples that match ΔE₁ on the join attributes … When E₂ is a
//! > database relation, or a materialized view, a lookup is sufficient; in
//! > general, the query must be evaluated."*
//!
//! The rules assume **sequential propagation**: a transaction that updates
//! several base relations propagates one relation's delta at a time (states
//! are updated between propagations), so at any moment exactly one child of
//! a binary node carries a delta. `InputAccess::matching` must answer with
//! the *pre-update* state of the queried input.
//!
//! The aggregate rule realizes the paper's three costing regimes:
//!
//! 1. **Group-complete delta** ([`InputAccess::group_complete`]): the delta
//!    provably contains every tuple of each affected group (the Q3d
//!    key-elimination of §3.6) — no query at all.
//! 2. **Self-maintainable update**: no deletions, invertible aggregates,
//!    and the node's own output is materialized — the old row is read from
//!    the materialization and adjusted ("subtracting … and adding", §1);
//!    no input query (Q4e is not posed when N3 is materialized).
//! 3. **Input re-query**: otherwise, fetch the affected group's old tuples
//!    from the input (Q4e's 11 page I/Os when N3 is not materialized).

use std::collections::{BTreeMap, BTreeSet};

use spacetime_algebra::eval::aggregate_bag;
use spacetime_algebra::kernel::{FusedProgram, KernelScratch, PairOutcome};
use spacetime_algebra::{AggExpr, AggFunc, ExprNode, JoinCondition, OpKind, ScalarExpr};
use spacetime_storage::{Bag, HashIndex, StorageError, StorageResult, Tuple, Value};

use crate::delta::{Delta, Modify};

/// How the propagation rules read the (old) states they need.
pub trait InputAccess {
    /// Tuples of input `child` whose `cols` project to `key`, in the
    /// pre-update state. This is the paper's "query posed on an equivalence
    /// node"; implementations charge lookup or evaluation cost as
    /// appropriate.
    fn matching(&mut self, child: usize, cols: &[usize], key: &[Value]) -> StorageResult<Bag>;

    /// Answer one posed query per key in a single batch: key → matching
    /// tuples of input `child`. The rules collect each delta's distinct
    /// keys up front and call this once per (child, cols), so
    /// implementations can amortize plan choice and index resolution
    /// across the whole delta. The default answers key by key via
    /// [`InputAccess::matching`]; overrides must charge the same I/O —
    /// batching may change wall-clock time, never the charged counters.
    fn matching_all(
        &mut self,
        child: usize,
        cols: &[usize],
        keys: &[Vec<Value>],
    ) -> StorageResult<BTreeMap<Vec<Value>, Bag>> {
        let mut out = BTreeMap::new();
        for key in keys {
            out.insert(key.clone(), self.matching(child, cols, key)?);
        }
        Ok(out)
    }

    /// The node's own old output rows whose `cols` project to `key`, *if*
    /// the node's output is materialized; `None` when it is not.
    fn self_rows(&mut self, cols: &[usize], key: &[Value]) -> StorageResult<Option<Bag>>;

    /// Whether the arriving delta is known to contain *all* tuples of every
    /// group it touches, w.r.t. the given grouping columns (established by
    /// key analysis on the update track; enables query-free maintenance).
    fn group_complete(&self, cols: &[usize]) -> bool {
        let _ = cols;
        false
    }
}

/// [`InputAccess`] over in-memory bags: children's old states held
/// directly, queries answered by filtering. Used by tests and by the
/// verification oracle; it also counts the queries it answers, so tests can
/// assert *which* queries a strategy poses (the paper's "Q4e is not posed"
/// checks).
#[derive(Debug, Default)]
pub struct BagAccess {
    /// Old state of each input.
    pub children: Vec<Bag>,
    /// Old output, if the node is materialized.
    pub self_output: Option<Bag>,
    /// Whether deltas are group-complete (see trait).
    pub complete: bool,
    /// Number of `matching` queries answered.
    pub queries_posed: usize,
    /// Answer `matching_all` by partitioning the child once with a
    /// [`HashIndex`] instead of filtering per key. Output and
    /// `queries_posed` accounting are identical either way (property-tested
    /// in `tests/prop_delta.rs`); this double exists so tests can compare
    /// the two paths.
    pub batched: bool,
}

impl BagAccess {
    /// Access over the given input states, not materialized.
    pub fn new(children: Vec<Bag>) -> Self {
        BagAccess {
            children,
            ..Default::default()
        }
    }

    /// Access with the node's own output materialized.
    pub fn materialized(children: Vec<Bag>, self_output: Bag) -> Self {
        BagAccess {
            children,
            self_output: Some(self_output),
            ..Default::default()
        }
    }
}

fn filter_by_key(bag: &Bag, cols: &[usize], key: &[Value]) -> Bag {
    bag.iter()
        .filter(|(t, _)| {
            cols.iter()
                .zip(key)
                .all(|(&c, kv)| t.get(c).map_or(kv.is_null(), |v| v == kv))
        })
        .map(|(t, c)| (t.clone(), c))
        .collect()
}

impl InputAccess for BagAccess {
    fn matching(&mut self, child: usize, cols: &[usize], key: &[Value]) -> StorageResult<Bag> {
        self.queries_posed += 1;
        Ok(filter_by_key(&self.children[child], cols, key))
    }

    fn matching_all(
        &mut self,
        child: usize,
        cols: &[usize],
        keys: &[Vec<Value>],
    ) -> StorageResult<BTreeMap<Vec<Value>, Bag>> {
        let mut out = BTreeMap::new();
        if !self.batched {
            for key in keys {
                out.insert(key.clone(), self.matching(child, cols, key)?);
            }
            return Ok(out);
        }
        // One physical pass over the child, then O(1) probes — but still
        // one *posed query* per key, exactly like the per-key path.
        let mut partition = HashIndex::new(cols.to_vec());
        partition.rebuild(&self.children[child]);
        for key in keys {
            self.queries_posed += 1;
            out.insert(
                key.clone(),
                partition.probe(key).cloned().unwrap_or_default(),
            );
        }
        Ok(out)
    }

    fn self_rows(&mut self, cols: &[usize], key: &[Value]) -> StorageResult<Option<Bag>> {
        Ok(self
            .self_output
            .as_ref()
            .map(|b| filter_by_key(b, cols, key)))
    }

    fn group_complete(&self, _cols: &[usize]) -> bool {
        self.complete
    }
}

/// Compute the output delta of `node` given `delta` arriving on input
/// `delta_child` (0 for unary operators).
pub fn propagate(
    node: &ExprNode,
    delta_child: usize,
    delta: &Delta,
    access: &mut dyn InputAccess,
) -> StorageResult<Delta> {
    if delta.is_empty() {
        return Ok(Delta::new());
    }
    match &node.op {
        OpKind::Scan { .. } => Ok(delta.clone()),
        OpKind::Select { predicate } => propagate_select(predicate, delta),
        OpKind::Project { exprs } => propagate_project(exprs, delta),
        OpKind::Join { condition } => propagate_join(condition, delta_child, delta, access),
        OpKind::Aggregate { group_by, aggs } => propagate_aggregate(group_by, aggs, delta, access),
        OpKind::Distinct => propagate_distinct(node.schema.arity(), delta, access),
    }
}

// ---------------------------------------------------------------------
// Fused chains
// ---------------------------------------------------------------------

/// Propagate a delta through a whole compiled `Select`/`Project` chain in
/// one streaming pass — the fused equivalent of folding [`propagate`] over
/// each chain op, bit-identical by construction (each delta element's path
/// through the chain is independent; the kernel replicates the per-stage
/// modify splitting, and bag accumulation is order-free).
///
/// Chains pose no queries and charge no I/O in any mode, so fusion is a
/// pure wall-clock optimization: no intermediate `Delta` per operator, no
/// `Bag` churn for filtered tuples, and projection scratch comes from the
/// thread's transaction arena (reset, not freed, between updates).
pub fn propagate_chain(prog: &FusedProgram, delta: &Delta) -> StorageResult<Delta> {
    if delta.is_empty() {
        return Ok(Delta::new());
    }
    spacetime_storage::arena::with_arena(|arena| {
        let mut scratch = KernelScratch::from_bufs([
            arena.take_buf(),
            arena.take_buf(),
            arena.take_buf(),
            arena.take_buf(),
        ]);
        let result = run_chain(prog, delta, &mut scratch);
        for buf in scratch.into_bufs() {
            arena.put_buf(buf);
        }
        result
    })
}

fn run_chain(
    prog: &FusedProgram,
    delta: &Delta,
    scratch: &mut KernelScratch,
) -> StorageResult<Delta> {
    let mut out = Delta::new();
    for (t, c) in delta.inserts.iter() {
        if let Some(t2) = prog.apply_one(t, scratch)? {
            out.inserts.insert(t2, c);
        }
    }
    for (t, c) in delta.deletes.iter() {
        if let Some(t2) = prog.apply_one(t, scratch)? {
            out.deletes.insert(t2, c);
        }
    }
    for m in &delta.modifies {
        match prog.apply_pair(&m.old, &m.new, scratch)? {
            None => {}
            Some(PairOutcome::Modify(o, n)) => out.push_modify(o, n, m.count),
            Some(PairOutcome::DeleteOld(o)) => {
                out.deletes.insert(o, m.count);
            }
            Some(PairOutcome::InsertNew(n)) => {
                out.inserts.insert(n, m.count);
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Select
// ---------------------------------------------------------------------

fn propagate_select(predicate: &ScalarExpr, delta: &Delta) -> StorageResult<Delta> {
    let mut out = Delta::new();
    for (t, c) in delta.inserts.iter() {
        if predicate.eval_predicate(t)? {
            out.inserts.insert(t.clone(), c);
        }
    }
    for (t, c) in delta.deletes.iter() {
        if predicate.eval_predicate(t)? {
            out.deletes.insert(t.clone(), c);
        }
    }
    for m in &delta.modifies {
        match (
            predicate.eval_predicate(&m.old)?,
            predicate.eval_predicate(&m.new)?,
        ) {
            (true, true) => out.push_modify(m.old.clone(), m.new.clone(), m.count),
            (true, false) => out.deletes.insert(m.old.clone(), m.count),
            (false, true) => out.inserts.insert(m.new.clone(), m.count),
            (false, false) => {}
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Project
// ---------------------------------------------------------------------

fn propagate_project(exprs: &[(ScalarExpr, String)], delta: &Delta) -> StorageResult<Delta> {
    let apply = |t: &Tuple| -> StorageResult<Tuple> {
        Ok(exprs
            .iter()
            .map(|(e, _)| e.eval(t))
            .collect::<StorageResult<Vec<Value>>>()?
            .into())
    };
    let mut out = Delta::new();
    for (t, c) in delta.inserts.iter() {
        out.inserts.insert(apply(t)?, c);
    }
    for (t, c) in delta.deletes.iter() {
        out.deletes.insert(apply(t)?, c);
    }
    for m in &delta.modifies {
        // `push_modify` drops pairs the projection made identical.
        out.push_modify(apply(&m.old)?, apply(&m.new)?, m.count);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Join
// ---------------------------------------------------------------------

fn key_of(t: &Tuple, cols: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(cols.len());
    for &c in cols {
        let v = t.get(c).cloned().unwrap_or(Value::Null);
        if v.is_null() {
            return None; // NULL never joins
        }
        key.push(v);
    }
    Some(key)
}

fn propagate_join(
    condition: &JoinCondition,
    delta_child: usize,
    delta: &Delta,
    access: &mut dyn InputAccess,
) -> StorageResult<Delta> {
    debug_assert!(delta_child < 2, "join has two inputs");
    let (my_cols, other_cols) = if delta_child == 0 {
        (condition.left_cols(), condition.right_cols())
    } else {
        (condition.right_cols(), condition.left_cols())
    };
    let other_child = 1 - delta_child;
    // Keep modifications paired only when their join key is unchanged.
    let d = delta.split_modifies_on(&my_cols);

    let concat = |mine: &Tuple, other: &Tuple| -> Tuple {
        if delta_child == 0 {
            mine.concat(other)
        } else {
            other.concat(mine)
        }
    };
    let residual_ok = |joined: &Tuple| -> StorageResult<bool> {
        match &condition.residual {
            Some(r) => r.eval_predicate(joined),
            None => Ok(true),
        }
    };

    // Collect the delta's distinct join keys up front and pose *one*
    // batched query for all of them — one posed query per distinct key, as
    // the paper's cost tables assume, with plan choice amortized across
    // the delta by the access implementation.
    let mut keys: BTreeSet<Vec<Value>> = BTreeSet::new();
    for (t, _) in d.inserts.iter().chain(d.deletes.iter()) {
        if let Some(key) = key_of(t, &my_cols) {
            keys.insert(key);
        }
    }
    for m in &d.modifies {
        if let Some(key) = key_of(&m.old, &my_cols) {
            keys.insert(key);
        }
    }
    let keys: Vec<Vec<Value>> = keys.into_iter().collect();
    let matches = access.matching_all(other_child, &other_cols, &keys)?;
    let empty = Bag::new();
    let lookup = |key: &[Value]| -> &Bag { matches.get(key).unwrap_or(&empty) };

    let mut out = Delta::new();
    for (t, c) in d.inserts.iter() {
        let Some(key) = key_of(t, &my_cols) else {
            continue;
        };
        for (o, oc) in lookup(&key).iter() {
            let joined = concat(t, o);
            if residual_ok(&joined)? {
                out.inserts.insert(joined, c * oc);
            }
        }
    }
    for (t, c) in d.deletes.iter() {
        let Some(key) = key_of(t, &my_cols) else {
            continue;
        };
        for (o, oc) in lookup(&key).iter() {
            let joined = concat(t, o);
            if residual_ok(&joined)? {
                out.deletes.insert(joined, c * oc);
            }
        }
    }
    for m in &d.modifies {
        let Some(key) = key_of(&m.old, &my_cols) else {
            continue;
        };
        for (o, oc) in lookup(&key).iter() {
            let old_j = concat(&m.old, o);
            let new_j = concat(&m.new, o);
            match (residual_ok(&old_j)?, residual_ok(&new_j)?) {
                (true, true) => out.push_modify(old_j, new_j, m.count * oc),
                (true, false) => out.deletes.insert(old_j, m.count * oc),
                (false, true) => out.inserts.insert(new_j, m.count * oc),
                (false, false) => {}
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Aggregate
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct GroupDelta {
    ins: Bag,
    del: Bag,
    mods: Vec<Modify>,
}

fn propagate_aggregate(
    group_by: &[usize],
    aggs: &[AggExpr],
    delta: &Delta,
    access: &mut dyn InputAccess,
) -> StorageResult<Delta> {
    // Modifications that move a tuple between groups become
    // delete-from-old-group + insert-into-new-group.
    let d = delta.split_modifies_on(group_by);

    let mut groups: BTreeMap<Vec<Value>, GroupDelta> = BTreeMap::new();
    let key_of_t = |t: &Tuple| -> Vec<Value> {
        group_by
            .iter()
            .map(|&c| t.get(c).cloned().unwrap_or(Value::Null))
            .collect()
    };
    for (t, c) in d.inserts.iter() {
        groups
            .entry(key_of_t(t))
            .or_default()
            .ins
            .insert(t.clone(), c);
    }
    for (t, c) in d.deletes.iter() {
        groups
            .entry(key_of_t(t))
            .or_default()
            .del
            .insert(t.clone(), c);
    }
    for m in &d.modifies {
        groups
            .entry(key_of_t(&m.old))
            .or_default()
            .mods
            .push(m.clone());
    }

    // Pass 1: resolve the query-free regimes (1 and 2) per group, in key
    // order, collecting the keys that need the regime-3 input re-query.
    let self_cols: Vec<usize> = (0..group_by.len()).collect();
    let mut resolved: BTreeMap<&Vec<Value>, (Option<Tuple>, Option<Tuple>)> = BTreeMap::new();
    let mut pending: Vec<Vec<Value>> = Vec::new();
    for (key, gd) in &groups {
        match group_rows_query_free(group_by, aggs, key, gd, &self_cols, access)? {
            Some(rows) => {
                resolved.insert(key, rows);
            }
            None => pending.push(key.clone()),
        }
    }

    // One batched query fetches every re-queried group's old contents —
    // still one posed query per affected group, as §3.6 prices it (Q4e).
    let fetched = access.matching_all(0, group_by, &pending)?;

    // Pass 2: emit rows in key order, so the output delta is identical to
    // the one the per-key path produced.
    let mut out = Delta::new();
    let empty = Bag::new();
    for (key, gd) in &groups {
        let (old_row, new_row) = match resolved.remove(key) {
            Some(rows) => rows,
            None => {
                let old_group = fetched.get(key).unwrap_or(&empty);
                group_rows_requeried(group_by, aggs, gd, old_group)?
            }
        };
        match (old_row, new_row) {
            (None, None) => {}
            (None, Some(n)) => out.inserts.insert(n, 1),
            (Some(o), None) => out.deletes.insert(o, 1),
            (Some(o), Some(n)) => out.push_modify(o, n, 1),
        }
    }
    Ok(out)
}

/// Regimes 1 and 2: the group's (old, new) rows when no input query is
/// needed, or `None` when the group must fall through to the regime-3
/// re-query.
fn group_rows_query_free(
    group_by: &[usize],
    aggs: &[AggExpr],
    key: &[Value],
    gd: &GroupDelta,
    self_cols: &[usize],
    access: &mut dyn InputAccess,
) -> StorageResult<Option<(Option<Tuple>, Option<Tuple>)>> {
    // Regime 1: the delta contains the whole group — no query at all.
    if access.group_complete(group_by) {
        let mut old_group = gd.del.clone();
        let mut new_group = gd.ins.clone();
        for m in &gd.mods {
            old_group.insert(m.old.clone(), m.count);
            new_group.insert(m.new.clone(), m.count);
        }
        let old_row = agg_single_row(&old_group, group_by, aggs)?;
        let new_row = agg_single_row(&new_group, group_by, aggs)?;
        return Ok(Some((old_row, new_row)));
    }

    // Regime 2: self-maintainable from the node's own materialization.
    let invertible_shape = gd.del.is_empty()
        && aggs.iter().all(|a| match a.func {
            AggFunc::Sum | AggFunc::Count => true,
            AggFunc::Min | AggFunc::Max => gd.mods.is_empty(), // insert-only
            AggFunc::Avg => false,
        });
    if invertible_shape {
        if let Some(rows) = access.self_rows(self_cols, key)? {
            let old_row = rows.iter().next().map(|(t, _)| t.clone());
            return match old_row {
                Some(old) => {
                    let new = adjust_row(&old, group_by, aggs, gd)?;
                    Ok(Some((Some(old), Some(new))))
                }
                None if gd.mods.is_empty() => {
                    // A brand-new group built entirely from inserts.
                    let new_row = agg_single_row(&gd.ins, group_by, aggs)?;
                    Ok(Some((None, new_row)))
                }
                None => Err(StorageError::TupleNotFound {
                    relation: "<materialized aggregate group>".into(),
                }),
            };
        }
    }
    Ok(None)
}

/// Regime 3: the group's (old, new) rows from its re-queried old contents.
fn group_rows_requeried(
    group_by: &[usize],
    aggs: &[AggExpr],
    gd: &GroupDelta,
    old_group: &Bag,
) -> StorageResult<(Option<Tuple>, Option<Tuple>)> {
    let mut new_group = old_group.clone();
    for (t, c) in gd.del.iter() {
        new_group.remove(t, c)?;
    }
    for m in &gd.mods {
        new_group.remove(&m.old, m.count)?;
    }
    for m in &gd.mods {
        new_group.insert(m.new.clone(), m.count);
    }
    for (t, c) in gd.ins.iter() {
        new_group.insert(t.clone(), c);
    }
    let old_row = agg_single_row(old_group, group_by, aggs)?;
    let new_row = agg_single_row(&new_group, group_by, aggs)?;
    Ok((old_row, new_row))
}

/// Aggregate one group's tuples into its (single) output row, or `None`
/// for an empty group.
fn agg_single_row(
    group: &Bag,
    group_by: &[usize],
    aggs: &[AggExpr],
) -> StorageResult<Option<Tuple>> {
    if group.is_empty() {
        return Ok(None);
    }
    let rows = aggregate_bag(group, group_by, aggs)?;
    debug_assert_eq!(rows.distinct_len(), 1, "one group in, one row out");
    let row = rows.iter().next().map(|(t, _)| t.clone());
    Ok(row)
}

/// Apply an invertible (insert/modify-only) delta to a materialized
/// aggregate row: the paper's "adding to or subtracting from the previous
/// aggregate values".
fn adjust_row(
    old: &Tuple,
    group_by: &[usize],
    aggs: &[AggExpr],
    gd: &GroupDelta,
) -> StorageResult<Tuple> {
    let mut values: Vec<Value> = old.values().to_vec();
    for (i, agg) in aggs.iter().enumerate() {
        let pos = group_by.len() + i;
        let current = values[pos].clone();
        values[pos] = match agg.func {
            AggFunc::Sum => {
                let mut running = if current.is_null() {
                    None
                } else {
                    Some(current)
                };
                for (t, c) in gd.ins.iter() {
                    accumulate(&mut running, agg, t, c as i64)?;
                }
                for m in &gd.mods {
                    accumulate(&mut running, agg, &m.new, m.count as i64)?;
                    accumulate(&mut running, agg, &m.old, -(m.count as i64))?;
                }
                running.unwrap_or(Value::Null)
            }
            AggFunc::Count => {
                let mut n = match current {
                    Value::Int(n) => n,
                    other => {
                        return Err(StorageError::TypeError(format!(
                            "COUNT column held {other}"
                        )))
                    }
                };
                for (t, c) in gd.ins.iter() {
                    if arg_non_null(agg, t)? {
                        n += c as i64;
                    }
                }
                for m in &gd.mods {
                    let was = arg_non_null(agg, &m.old)?;
                    let is = arg_non_null(agg, &m.new)?;
                    n += (is as i64 - was as i64) * m.count as i64;
                }
                Value::Int(n)
            }
            AggFunc::Min | AggFunc::Max => {
                // Insert-only (guaranteed by the caller's shape check).
                let mut best = if current.is_null() {
                    None
                } else {
                    Some(current)
                };
                for (t, _) in gd.ins.iter() {
                    if let Some(arg) = eval_arg(agg, t)? {
                        let better = match (&best, agg.func) {
                            (None, _) => true,
                            (Some(b), AggFunc::Min) => arg < *b,
                            (Some(b), AggFunc::Max) => arg > *b,
                            _ => unreachable!(),
                        };
                        if better {
                            best = Some(arg);
                        }
                    }
                }
                best.unwrap_or(Value::Null)
            }
            AggFunc::Avg => unreachable!("AVG never takes the invertible path"),
        };
    }
    Ok(Tuple::new(values))
}

fn eval_arg(agg: &AggExpr, t: &Tuple) -> StorageResult<Option<Value>> {
    match &agg.arg {
        Some(e) => {
            let v = e.eval(t)?;
            Ok(if v.is_null() { None } else { Some(v) })
        }
        None => Ok(None),
    }
}

fn arg_non_null(agg: &AggExpr, t: &Tuple) -> StorageResult<bool> {
    match &agg.arg {
        Some(e) => Ok(!e.eval(t)?.is_null()),
        None => Ok(true), // COUNT(*)
    }
}

fn accumulate(
    running: &mut Option<Value>,
    agg: &AggExpr,
    t: &Tuple,
    signed_count: i64,
) -> StorageResult<()> {
    if let Some(arg) = eval_arg(agg, t)? {
        let contribution = arg.mul(&Value::Int(signed_count))?;
        *running = Some(match running.take() {
            Some(r) => r.add(&contribution)?,
            None => contribution,
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Distinct
// ---------------------------------------------------------------------

fn propagate_distinct(
    arity: usize,
    delta: &Delta,
    access: &mut dyn InputAccess,
) -> StorageResult<Delta> {
    let all_cols: Vec<usize> = (0..arity).collect();
    let net = delta.net();
    // One batched query over the net delta's distinct tuples (sorted for a
    // deterministic posing order).
    let mut keys: Vec<Vec<Value>> = net.keys().map(|t| t.values().to_vec()).collect();
    keys.sort();
    let counts = access.matching_all(0, &all_cols, &keys)?;
    let mut out = Delta::new();
    for (t, signed) in net {
        let key: Vec<Value> = t.values().to_vec();
        let old_count = counts.get(&key).map_or(0, |b| b.len()) as i64;
        let new_count = old_count + signed;
        if new_count < 0 {
            return Err(StorageError::TupleNotFound {
                relation: "<distinct input>".into(),
            });
        }
        match (old_count > 0, new_count > 0) {
            (false, true) => out.inserts.insert(t, 1),
            (true, false) => out.deletes.insert(t, 1),
            _ => {}
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacetime_algebra::eval::eval_uncharged;
    use spacetime_algebra::scalar::CmpOp;
    use spacetime_storage::{tuple, Catalog, DataType, Schema};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "Emp",
            Schema::of_table(
                "Emp",
                &[
                    ("EName", DataType::Str),
                    ("DName", DataType::Str),
                    ("Salary", DataType::Int),
                ],
            ),
        )
        .unwrap();
        cat.create_table(
            "Dept",
            Schema::of_table(
                "Dept",
                &[
                    ("DName", DataType::Str),
                    ("MName", DataType::Str),
                    ("Budget", DataType::Int),
                ],
            ),
        )
        .unwrap();
        cat
    }

    fn emp_bag() -> Bag {
        [
            (tuple!["alice", "Sales", 100], 1),
            (tuple!["bob", "Sales", 80], 1),
            (tuple!["carol", "Eng", 120], 1),
        ]
        .into_iter()
        .collect()
    }

    fn dept_bag() -> Bag {
        [
            (tuple!["Sales", "mary", 150], 1),
            (tuple!["Eng", "nick", 200], 1),
        ]
        .into_iter()
        .collect()
    }

    /// Oracle check: new_output(op over updated inputs) ==
    /// old_output + propagated delta.
    fn check_against_recompute(
        node: &ExprNode,
        cat: &Catalog,
        child_bags: Vec<Bag>,
        delta_child: usize,
        delta: &Delta,
        materialized_self: bool,
    ) {
        // Load old states into a fresh catalog so eval sees them.
        let mut cat2 = cat.clone();
        for (i, name) in node.leaf_tables().iter().enumerate() {
            cat2.table_mut(name)
                .unwrap()
                .relation
                .load(child_bags[i].clone())
                .unwrap();
        }
        let old_out = eval_uncharged(node, &cat2).unwrap();

        let mut access = if materialized_self {
            BagAccess::materialized(child_bags.clone(), old_out.clone())
        } else {
            BagAccess::new(child_bags.clone())
        };
        let d_out = propagate(node, delta_child, delta, &mut access).unwrap();

        // Apply the child delta and recompute.
        let mut new_children = child_bags;
        delta.apply_to(&mut new_children[delta_child]).unwrap();
        for (i, name) in node.leaf_tables().iter().enumerate() {
            cat2.table_mut(name)
                .unwrap()
                .relation
                .load(new_children[i].clone())
                .unwrap();
        }
        let expect = eval_uncharged(node, &cat2).unwrap();

        let mut got = old_out;
        d_out.apply_to(&mut got).unwrap();
        assert_eq!(got, expect, "incremental != recomputed for {node}");
    }

    #[test]
    fn select_splits_modifies_by_predicate() {
        let p = ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(2), ScalarExpr::lit(100));
        let mut d = Delta::new();
        d.push_modify(tuple!["a", "S", 90], tuple!["a", "S", 120], 1); // enters
        d.push_modify(tuple!["b", "S", 120], tuple!["b", "S", 90], 1); // leaves
        d.push_modify(tuple!["c", "S", 110], tuple!["c", "S", 130], 1); // stays
        d.push_modify(tuple!["d", "S", 50], tuple!["d", "S", 60], 1); // never in
        let out = propagate_select(&p, &d).unwrap();
        assert_eq!(out.inserts.count(&tuple!["a", "S", 120]), 1);
        assert_eq!(out.deletes.count(&tuple!["b", "S", 120]), 1);
        assert_eq!(out.modifies.len(), 1);
        assert_eq!(out.modifies[0].new, tuple!["c", "S", 130]);
    }

    #[test]
    fn join_preserves_same_key_modify_pairs() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let dept = ExprNode::scan(&cat, "Dept").unwrap();
        let j = ExprNode::join_on(emp, dept, &[("Emp.DName", "Dept.DName")]).unwrap();
        // Salary modification: join key unchanged.
        let d = Delta::modify(
            tuple!["alice", "Sales", 100],
            tuple!["alice", "Sales", 130],
            1,
        );
        let mut access = BagAccess::new(vec![emp_bag(), dept_bag()]);
        let out = propagate(&j, 0, &d, &mut access).unwrap();
        assert_eq!(out.modifies.len(), 1);
        assert!(out.inserts.is_empty() && out.deletes.is_empty());
        assert_eq!(
            out.modifies[0].new,
            tuple!["alice", "Sales", 130, "Sales", "mary", 150]
        );
        assert_eq!(access.queries_posed, 1, "one lookup for one key");
    }

    #[test]
    fn join_delta_on_right_side() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let dept = ExprNode::scan(&cat, "Dept").unwrap();
        let j = ExprNode::join_on(emp, dept, &[("Emp.DName", "Dept.DName")]).unwrap();
        // Budget modification joins with the 2 Sales employees.
        let d = Delta::modify(
            tuple!["Sales", "mary", 150],
            tuple!["Sales", "mary", 170],
            1,
        );
        let mut access = BagAccess::new(vec![emp_bag(), dept_bag()]);
        let out = propagate(&j, 1, &d, &mut access).unwrap();
        assert_eq!(out.modifies.len(), 2);
        check_against_recompute(&j, &cat, vec![emp_bag(), dept_bag()], 1, &d, false);
    }

    #[test]
    fn join_key_change_becomes_delete_insert() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let dept = ExprNode::scan(&cat, "Dept").unwrap();
        let j = ExprNode::join_on(emp, dept, &[("Emp.DName", "Dept.DName")]).unwrap();
        let d = Delta::modify(
            tuple!["alice", "Sales", 100],
            tuple!["alice", "Eng", 100],
            1,
        );
        let mut access = BagAccess::new(vec![emp_bag(), dept_bag()]);
        let out = propagate(&j, 0, &d, &mut access).unwrap();
        assert!(out.modifies.is_empty());
        assert_eq!(out.deletes.len(), 1);
        assert_eq!(out.inserts.len(), 1);
        check_against_recompute(&j, &cat, vec![emp_bag(), dept_bag()], 0, &d, false);
    }

    #[test]
    fn join_insert_delete_against_recompute() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let dept = ExprNode::scan(&cat, "Dept").unwrap();
        let j = ExprNode::join_on(emp, dept, &[("Emp.DName", "Dept.DName")]).unwrap();
        let mut d = Delta::insert(tuple!["dave", "Eng", 70], 1);
        d.deletes.insert(tuple!["bob", "Sales", 80], 1);
        check_against_recompute(&j, &cat, vec![emp_bag(), dept_bag()], 0, &d, false);
    }

    fn sum_of_sals(cat: &Catalog) -> ExprTreeAlias {
        let emp = ExprNode::scan(cat, "Emp").unwrap();
        ExprNode::aggregate(
            emp,
            vec![1],
            vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum")],
        )
        .unwrap()
    }
    type ExprTreeAlias = std::sync::Arc<ExprNode>;

    #[test]
    fn aggregate_self_maintainable_poses_no_input_query() {
        let cat = catalog();
        let agg = sum_of_sals(&cat);
        let old_out: Bag = [(tuple!["Sales", 180], 1), (tuple!["Eng", 120], 1)]
            .into_iter()
            .collect();
        let d = Delta::modify(
            tuple!["alice", "Sales", 100],
            tuple!["alice", "Sales", 130],
            1,
        );
        let mut access = BagAccess::materialized(vec![emp_bag()], old_out);
        let out = propagate(&agg, 0, &d, &mut access).unwrap();
        assert_eq!(access.queries_posed, 0, "the paper: Q4e is not posed");
        assert_eq!(out.modifies.len(), 1);
        assert_eq!(out.modifies[0].old, tuple!["Sales", 180]);
        assert_eq!(out.modifies[0].new, tuple!["Sales", 210]);
    }

    #[test]
    fn aggregate_not_materialized_queries_input() {
        let cat = catalog();
        let agg = sum_of_sals(&cat);
        let d = Delta::modify(
            tuple!["alice", "Sales", 100],
            tuple!["alice", "Sales", 130],
            1,
        );
        let mut access = BagAccess::new(vec![emp_bag()]);
        let out = propagate(&agg, 0, &d, &mut access).unwrap();
        assert_eq!(access.queries_posed, 1, "the paper: Q4e is posed");
        assert_eq!(out.modifies.len(), 1);
        assert_eq!(out.modifies[0].new, tuple!["Sales", 210]);
    }

    #[test]
    fn aggregate_group_complete_poses_no_query() {
        let cat = catalog();
        let agg = sum_of_sals(&cat);
        // Delta contains the entire Sales group (key analysis proved it).
        let mut d = Delta::new();
        d.push_modify(
            tuple!["alice", "Sales", 100],
            tuple!["alice", "Sales", 130],
            1,
        );
        d.push_modify(tuple!["bob", "Sales", 80], tuple!["bob", "Sales", 90], 1);
        let mut access = BagAccess::new(vec![emp_bag()]);
        access.complete = true;
        let out = propagate(&agg, 0, &d, &mut access).unwrap();
        assert_eq!(access.queries_posed, 0, "the paper: Q3d generates no I/O");
        assert_eq!(out.modifies.len(), 1);
        assert_eq!(out.modifies[0].old, tuple!["Sales", 180]);
        assert_eq!(out.modifies[0].new, tuple!["Sales", 220]);
    }

    #[test]
    fn aggregate_group_appears_and_disappears() {
        let cat = catalog();
        let agg = sum_of_sals(&cat);
        // New department appears.
        let d = Delta::insert(tuple!["zoe", "HR", 90], 1);
        check_against_recompute(&agg, &cat, vec![emp_bag()], 0, &d, false);
        // Last member of Eng leaves: group disappears.
        let d = Delta::delete(tuple!["carol", "Eng", 120], 1);
        let mut access = BagAccess::new(vec![emp_bag()]);
        let out = propagate(&agg, 0, &d, &mut access).unwrap();
        assert_eq!(out.deletes.count(&tuple!["Eng", 120]), 1);
        assert!(out.inserts.is_empty() && out.modifies.is_empty());
        check_against_recompute(&agg, &cat, vec![emp_bag()], 0, &d, false);
    }

    #[test]
    fn aggregate_transfer_between_groups() {
        let cat = catalog();
        let agg = sum_of_sals(&cat);
        let d = Delta::modify(tuple!["bob", "Sales", 80], tuple!["bob", "Eng", 80], 1);
        check_against_recompute(&agg, &cat, vec![emp_bag()], 0, &d, false);
        check_against_recompute(&agg, &cat, vec![emp_bag()], 0, &d, true);
    }

    #[test]
    fn aggregate_min_max_deletion_requeries() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let agg = ExprNode::aggregate(
            emp,
            vec![1],
            vec![
                AggExpr::new(AggFunc::Max, ScalarExpr::col(2), "TopSal"),
                AggExpr::new(AggFunc::Min, ScalarExpr::col(2), "LowSal"),
            ],
        )
        .unwrap();
        // Delete the Sales maximum: must re-query even when materialized.
        let d = Delta::delete(tuple!["alice", "Sales", 100], 1);
        let old_out: Bag = [(tuple!["Sales", 100, 80], 1), (tuple!["Eng", 120, 120], 1)]
            .into_iter()
            .collect();
        let mut access = BagAccess::materialized(vec![emp_bag()], old_out);
        let out = propagate(&agg, 0, &d, &mut access).unwrap();
        assert!(access.queries_posed > 0);
        assert_eq!(out.modifies.len(), 1);
        assert_eq!(out.modifies[0].new, tuple!["Sales", 80, 80]);
        check_against_recompute(&agg, &cat, vec![emp_bag()], 0, &d, true);
    }

    #[test]
    fn aggregate_min_max_insert_only_is_self_maintainable() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let agg = ExprNode::aggregate(
            emp,
            vec![1],
            vec![AggExpr::new(AggFunc::Max, ScalarExpr::col(2), "TopSal")],
        )
        .unwrap();
        let d = Delta::insert(tuple!["zed", "Sales", 500], 1);
        let old_out: Bag = [(tuple!["Sales", 100], 1), (tuple!["Eng", 120], 1)]
            .into_iter()
            .collect();
        let mut access = BagAccess::materialized(vec![emp_bag()], old_out);
        let out = propagate(&agg, 0, &d, &mut access).unwrap();
        assert_eq!(access.queries_posed, 0);
        assert_eq!(out.modifies[0].new, tuple!["Sales", 500]);
    }

    #[test]
    fn aggregate_avg_never_self_maintains() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let agg = ExprNode::aggregate(
            emp,
            vec![1],
            vec![AggExpr::new(AggFunc::Avg, ScalarExpr::col(2), "AvgSal")],
        )
        .unwrap();
        let d = Delta::insert(tuple!["zed", "Sales", 90], 1);
        let old_out: Bag = [(tuple!["Sales", 90.0], 1), (tuple!["Eng", 120.0], 1)]
            .into_iter()
            .collect();
        let mut access = BagAccess::materialized(vec![emp_bag()], old_out);
        let _ = propagate(&agg, 0, &d, &mut access).unwrap();
        assert!(access.queries_posed > 0, "AVG requires the input query");
        check_against_recompute(&agg, &cat, vec![emp_bag()], 0, &d, true);
    }

    #[test]
    fn distinct_emits_only_threshold_crossings() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let proj = ExprNode::project_cols(emp, &[1]).unwrap();
        let dist = ExprNode::distinct(proj).unwrap();
        // Child (projection output) old state: Sales x2, Eng x1.
        let child: Bag = [(tuple!["Sales"], 2), (tuple!["Eng"], 1)]
            .into_iter()
            .collect();
        // Insert another Sales (no output change), delete the only Eng.
        let mut d = Delta::insert(tuple!["Sales"], 1);
        d.deletes.insert(tuple!["Eng"], 1);
        let mut access = BagAccess::new(vec![child]);
        let out = propagate(&dist, 0, &d, &mut access).unwrap();
        assert!(out.inserts.is_empty());
        assert_eq!(out.deletes.count(&tuple!["Eng"]), 1);
    }

    #[test]
    fn project_drops_invisible_modifies() {
        let exprs = vec![(ScalarExpr::col(1), "DName".to_string())];
        let d = Delta::modify(tuple!["a", "Sales", 100], tuple!["a", "Sales", 130], 1);
        let out = propagate_project(&exprs, &d).unwrap();
        assert!(
            out.is_empty(),
            "salary change invisible after projecting DName"
        );
    }

    #[test]
    fn fused_chain_matches_stepwise_propagation() {
        // Emp → σ(Salary>90) → π(DName, Salary+1) → σ(col1>95)
        let ops = [
            OpKind::Select {
                predicate: ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(2), ScalarExpr::lit(90)),
            },
            OpKind::Project {
                exprs: vec![
                    (ScalarExpr::col(1), "DName".into()),
                    (
                        ScalarExpr::bin(
                            spacetime_algebra::BinOp::Add,
                            ScalarExpr::col(2),
                            ScalarExpr::lit(1),
                        ),
                        "SalPlus".into(),
                    ),
                ],
            },
            OpKind::Select {
                predicate: ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(1), ScalarExpr::lit(95)),
            },
        ];
        let prog = FusedProgram::compile(&ops).unwrap();
        let mut d = Delta::new();
        d.inserts.insert(tuple!["zoe", "HR", 120], 2);
        d.inserts.insert(tuple!["ann", "HR", 40], 1);
        d.deletes.insert(tuple!["bob", "Sales", 100], 1);
        d.push_modify(tuple!["cat", "Eng", 80], tuple!["cat", "Eng", 130], 1); // enters
        d.push_modify(tuple!["dan", "Eng", 130], tuple!["dan", "Eng", 80], 1); // leaves
        d.push_modify(tuple!["eve", "Eng", 120], tuple!["eve", "Eng", 140], 1); // stays
        d.push_modify(tuple!["fay", "Ops", 91], tuple!["fay", "Ops", 92], 3); // dropped late
        // Stepwise: fold the per-operator rules over the chain.
        let mut stepwise = d.clone();
        for op in &ops {
            stepwise = match op {
                OpKind::Select { predicate } => propagate_select(predicate, &stepwise).unwrap(),
                OpKind::Project { exprs } => propagate_project(exprs, &stepwise).unwrap(),
                _ => unreachable!(),
            };
        }
        let fused = propagate_chain(&prog, &d).unwrap();
        assert_eq!(fused.inserts, stepwise.inserts);
        assert_eq!(fused.deletes, stepwise.deletes);
        assert_eq!(fused.modifies, stepwise.modifies);
    }

    #[test]
    fn empty_delta_short_circuits() {
        let cat = catalog();
        let agg = sum_of_sals(&cat);
        let mut access = BagAccess::new(vec![emp_bag()]);
        let out = propagate(&agg, 0, &Delta::new(), &mut access).unwrap();
        assert!(out.is_empty());
        assert_eq!(access.queries_posed, 0);
    }

    #[test]
    fn inconsistent_delete_is_detected() {
        let cat = catalog();
        let agg = sum_of_sals(&cat);
        let d = Delta::delete(tuple!["ghost", "Sales", 1], 1);
        let mut access = BagAccess::new(vec![emp_bag()]);
        assert!(propagate(&agg, 0, &d, &mut access).is_err());
    }
}

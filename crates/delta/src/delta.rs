//! The delta type: inserts, deletes, and paired modifications.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use spacetime_storage::{Bag, StorageResult, Tuple, Value};

/// A modification of `count` copies of `old` into `new`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Modify {
    /// The tuple's previous value.
    pub old: Tuple,
    /// The tuple's new value.
    pub new: Tuple,
    /// How many copies change.
    pub count: u64,
}

impl Modify {
    /// A single-copy modification.
    pub fn one(old: Tuple, new: Tuple) -> Self {
        Modify { old, new, count: 1 }
    }
}

/// A differential on a relation or view: the paper's "differentials that
/// include inserted tuples, deleted tuples, and modified tuples" (§2.2).
///
/// Invariant maintained by constructors: `count > 0` everywhere and no
/// modify pair with `old == new`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta {
    /// Tuples inserted.
    pub inserts: Bag,
    /// Tuples deleted.
    pub deletes: Bag,
    /// Tuples modified in place.
    pub modifies: Vec<Modify>,
}

impl Delta {
    /// The empty delta.
    pub fn new() -> Self {
        Delta::default()
    }

    /// A pure-insert delta.
    pub fn insert(t: Tuple, n: u64) -> Self {
        let mut d = Delta::new();
        d.inserts.insert(t, n);
        d
    }

    /// A pure-delete delta.
    pub fn delete(t: Tuple, n: u64) -> Self {
        let mut d = Delta::new();
        d.deletes.insert(t, n);
        d
    }

    /// A single modification delta.
    pub fn modify(old: Tuple, new: Tuple, n: u64) -> Self {
        let mut d = Delta::new();
        d.push_modify(old, new, n);
        d
    }

    /// Add a modification, dropping no-ops.
    pub fn push_modify(&mut self, old: Tuple, new: Tuple, n: u64) {
        if n == 0 || old == new {
            return;
        }
        self.modifies.push(Modify { old, new, count: n });
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty() && self.modifies.is_empty()
    }

    /// Total touched tuple count (inserts + deletes + modified pairs) — the
    /// paper's "size of the delta" statistic.
    pub fn size(&self) -> u64 {
        self.inserts.len() + self.deletes.len() + self.modifies.iter().map(|m| m.count).sum::<u64>()
    }

    /// Fold modifications into inserts+deletes (loses pairing).
    pub fn normalized(&self) -> Delta {
        let mut d = Delta {
            inserts: self.inserts.clone(),
            deletes: self.deletes.clone(),
            modifies: Vec::new(),
        };
        for m in &self.modifies {
            d.deletes.insert(m.old.clone(), m.count);
            d.inserts.insert(m.new.clone(), m.count);
        }
        d.cancel();
        d
    }

    /// Cancel tuples appearing in both inserts and deletes.
    fn cancel(&mut self) {
        let common: Vec<(Tuple, u64)> = self
            .inserts
            .iter()
            .filter_map(|(t, c)| {
                let d = self.deletes.count(t);
                if d > 0 {
                    Some((t.clone(), c.min(d)))
                } else {
                    None
                }
            })
            .collect();
        for (t, n) in common {
            self.inserts.remove(&t, n).expect("count checked");
            self.deletes.remove(&t, n).expect("count checked");
        }
    }

    /// Net signed multiplicities: tuple → (inserted − deleted), with
    /// modifications folded in. Zero-net tuples are omitted.
    pub fn net(&self) -> HashMap<Tuple, i64> {
        let mut out: HashMap<Tuple, i64> = HashMap::new();
        let norm = self.normalized();
        for (t, c) in norm.inserts.iter() {
            *out.entry(t.clone()).or_insert(0) += c as i64;
        }
        for (t, c) in norm.deletes.iter() {
            *out.entry(t.clone()).or_insert(0) -= c as i64;
        }
        out.retain(|_, v| *v != 0);
        out
    }

    /// Merge another delta after this one (simple concatenation; no
    /// cross-cancellation of modify chains).
    pub fn merge(&mut self, other: Delta) {
        for (t, c) in other.inserts.iter() {
            self.inserts.insert(t.clone(), c);
        }
        for (t, c) in other.deletes.iter() {
            self.deletes.insert(t.clone(), c);
        }
        self.modifies.extend(other.modifies);
    }

    /// Partition this delta across `n` shard domains by routing every
    /// tuple through `route`. Modifications whose old and new sides route
    /// to the same shard stay paired there; a shard-crossing modification
    /// degrades to a delete in the old shard plus an insert in the new one
    /// (the same group-migration logic as [`Delta::split_modifies_on`],
    /// applied to shard domains). The concatenation of the returned deltas
    /// is therefore equivalent to `self` up to modify pairing. Routing
    /// errors (e.g. an undeclared shard key) abort the split.
    pub fn split_by<F>(&self, n: usize, mut route: F) -> StorageResult<Vec<Delta>>
    where
        F: FnMut(&Tuple) -> StorageResult<usize>,
    {
        let mut parts = vec![Delta::new(); n.max(1)];
        for (t, c) in self.inserts.iter() {
            parts[route(t)?].inserts.insert(t.clone(), c);
        }
        for (t, c) in self.deletes.iter() {
            parts[route(t)?].deletes.insert(t.clone(), c);
        }
        for m in &self.modifies {
            let from = route(&m.old)?;
            let to = route(&m.new)?;
            if from == to {
                parts[from].modifies.push(m.clone());
            } else {
                parts[from].deletes.insert(m.old.clone(), m.count);
                parts[to].inserts.insert(m.new.clone(), m.count);
            }
        }
        Ok(parts)
    }

    /// Split modifications whose projection onto `cols` changed into
    /// delete+insert pairs, keeping same-key modifications paired. Used by
    /// the aggregate rule (a salary change stays a modification within its
    /// department's group; a department transfer becomes a delete from one
    /// group and an insert into another) and by the join rule (same logic
    /// on the join columns).
    pub fn split_modifies_on(&self, cols: &[usize]) -> Delta {
        let mut d = Delta {
            inserts: self.inserts.clone(),
            deletes: self.deletes.clone(),
            modifies: Vec::new(),
        };
        for m in &self.modifies {
            if m.old.project(cols) == m.new.project(cols) {
                d.modifies.push(m.clone());
            } else {
                d.deletes.insert(m.old.clone(), m.count);
                d.inserts.insert(m.new.clone(), m.count);
            }
        }
        d
    }

    /// The distinct values of `cols` touched by this delta (both old and
    /// new sides) — the paper's "affected groups" / probe keys.
    pub fn touched_keys(&self, cols: &[usize]) -> BTreeSet<Vec<Value>> {
        let mut keys = BTreeSet::new();
        let project = |t: &Tuple| -> Vec<Value> {
            cols.iter()
                .map(|&c| t.get(c).cloned().unwrap_or(Value::Null))
                .collect()
        };
        for (t, _) in self.inserts.iter() {
            keys.insert(project(t));
        }
        for (t, _) in self.deletes.iter() {
            keys.insert(project(t));
        }
        for m in &self.modifies {
            keys.insert(project(&m.old));
            keys.insert(project(&m.new));
        }
        keys
    }

    /// Apply to an in-memory bag (the verification oracle's state
    /// transition). Errors if a delete or modify refers to absent tuples.
    pub fn apply_to(&self, bag: &mut Bag) -> StorageResult<()> {
        for (t, c) in self.deletes.iter() {
            bag.remove(t, c)?;
        }
        for m in &self.modifies {
            bag.remove(&m.old, m.count)?;
        }
        for m in &self.modifies {
            bag.insert(m.new.clone(), m.count);
        }
        for (t, c) in self.inserts.iter() {
            bag.insert(t.clone(), c);
        }
        Ok(())
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Delta {{")?;
        for (t, c) in self.inserts.sorted() {
            writeln!(f, "  +{t} x{c}")?;
        }
        for (t, c) in self.deletes.sorted() {
            writeln!(f, "  -{t} x{c}")?;
        }
        for m in &self.modifies {
            writeln!(f, "  {} -> {} x{}", m.old, m.new, m.count)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacetime_storage::tuple;

    #[test]
    fn split_by_keeps_same_shard_modifies_paired() {
        // Route by the first column. Old and new agree on it, so the
        // modification stays a modification — in its own shard, with
        // the multiplicity preserved.
        let d = Delta::modify(tuple![1, "a"], tuple![1, "b"], 3);
        let parts = d.split_by(4, |t| match t.get(0) {
            Some(Value::Int(k)) => Ok(*k as usize % 4),
            _ => unreachable!(),
        })
        .unwrap();
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[1].modifies.len(), 1);
        assert_eq!(parts[1].modifies[0].old, tuple![1, "a"]);
        assert_eq!(parts[1].modifies[0].new, tuple![1, "b"]);
        assert_eq!(parts[1].modifies[0].count, 3);
        assert!(parts[1].inserts.is_empty() && parts[1].deletes.is_empty());
        for (s, p) in parts.iter().enumerate() {
            if s != 1 {
                assert!(p.is_empty(), "shard {s} should be untouched");
            }
        }
    }

    #[test]
    fn split_by_degrades_cross_shard_modify_to_delete_insert() {
        // The key column changes, so the old and new sides route to
        // different shards: a delete where the tuple was, an insert
        // where it moved to, counts > 1 preserved on both sides, and no
        // modify survives anywhere.
        let d = Delta::modify(tuple![2, "a"], tuple![5, "a"], 7);
        let parts = d.split_by(4, |t| match t.get(0) {
            Some(Value::Int(k)) => Ok(*k as usize % 4),
            _ => unreachable!(),
        })
        .unwrap();
        assert!(parts.iter().all(|p| p.modifies.is_empty()));
        assert_eq!(parts[2].deletes.count(&tuple![2, "a"]), 7);
        assert!(parts[2].inserts.is_empty());
        assert_eq!(parts[1].inserts.count(&tuple![5, "a"]), 7);
        assert!(parts[1].deletes.is_empty());
        // Net effect is preserved: concatenating the parts equals the
        // normalized original.
        let mut merged = Delta::new();
        for p in parts {
            merged.merge(p);
        }
        assert_eq!(merged, d.normalized());
    }

    #[test]
    fn split_by_mixed_modifies_route_independently() {
        // One same-shard and one cross-shard modification in a single
        // delta: the first stays paired, the second degrades; inserts
        // and deletes route alongside untouched.
        let mut d = Delta::insert(tuple![4, "i"], 2);
        d.deletes.insert(tuple![8, "d"], 1);
        d.push_modify(tuple![0, "x"], tuple![0, "y"], 2); // same shard 0
        d.push_modify(tuple![1, "x"], tuple![2, "x"], 5); // shard 1 -> 2
        let parts = d.split_by(3, |t| match t.get(0) {
            Some(Value::Int(k)) => Ok(*k as usize % 3),
            _ => unreachable!(),
        })
        .unwrap();
        assert_eq!(parts[0].modifies.len(), 1, "same-shard modify stays");
        assert_eq!(parts[0].modifies[0].count, 2);
        assert_eq!(parts[1].deletes.count(&tuple![1, "x"]), 5);
        assert_eq!(parts[2].inserts.count(&tuple![2, "x"]), 5);
        assert!(parts[1].modifies.is_empty() && parts[2].modifies.is_empty());
        // The plain inserts/deletes landed on their own shards (4 % 3 =
        // 1, 8 % 3 = 2).
        assert_eq!(parts[1].inserts.count(&tuple![4, "i"]), 2);
        assert_eq!(parts[2].deletes.count(&tuple![8, "d"]), 1);
    }

    #[test]
    fn split_by_routing_error_aborts() {
        let d = Delta::modify(tuple![1, "a"], tuple![2, "a"], 1);
        let r = d.split_by(2, |_| {
            Err(spacetime_storage::StorageError::BadIndexColumns(
                "no shard key".into(),
            ))
        });
        assert!(r.is_err());
    }

    #[test]
    fn noop_modifies_dropped() {
        let d = Delta::modify(tuple![1, 2], tuple![1, 2], 1);
        assert!(d.is_empty());
        let d = Delta::modify(tuple![1, 2], tuple![1, 3], 0);
        assert!(d.is_empty());
    }

    #[test]
    fn normalize_folds_modifies() {
        let d = Delta::modify(tuple!["a", 1], tuple!["a", 2], 3);
        let n = d.normalized();
        assert_eq!(n.deletes.count(&tuple!["a", 1]), 3);
        assert_eq!(n.inserts.count(&tuple!["a", 2]), 3);
        assert!(n.modifies.is_empty());
    }

    #[test]
    fn normalize_cancels_churn() {
        let mut d = Delta::insert(tuple![1], 2);
        d.deletes.insert(tuple![1], 1);
        let n = d.normalized();
        assert_eq!(n.inserts.count(&tuple![1]), 1);
        assert_eq!(n.deletes.count(&tuple![1]), 0);
    }

    #[test]
    fn net_is_signed() {
        let mut d = Delta::insert(tuple![1], 1);
        d.deletes.insert(tuple![2], 2);
        d.push_modify(tuple![3], tuple![4], 1);
        let net = d.net();
        assert_eq!(net[&tuple![1]], 1);
        assert_eq!(net[&tuple![2]], -2);
        assert_eq!(net[&tuple![3]], -1);
        assert_eq!(net[&tuple![4]], 1);
    }

    #[test]
    fn split_modifies_by_group_key() {
        let mut d = Delta::new();
        // Salary change within Sales: stays paired.
        d.push_modify(
            tuple!["alice", "Sales", 100],
            tuple!["alice", "Sales", 120],
            1,
        );
        // Department transfer: becomes delete+insert.
        d.push_modify(tuple!["bob", "Sales", 80], tuple!["bob", "Eng", 80], 1);
        let s = d.split_modifies_on(&[1]);
        assert_eq!(s.modifies.len(), 1);
        assert_eq!(s.deletes.count(&tuple!["bob", "Sales", 80]), 1);
        assert_eq!(s.inserts.count(&tuple!["bob", "Eng", 80]), 1);
    }

    #[test]
    fn touched_keys_covers_old_and_new() {
        let d = Delta::modify(tuple!["bob", "Sales", 80], tuple!["bob", "Eng", 80], 1);
        let keys = d.touched_keys(&[1]);
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&vec![Value::str("Sales")]));
        assert!(keys.contains(&vec![Value::str("Eng")]));
    }

    #[test]
    fn apply_to_bag_roundtrip() {
        let mut bag: Bag = [(tuple!["a"], 2), (tuple!["b"], 1)].into_iter().collect();
        let mut d = Delta::insert(tuple!["c"], 1);
        d.deletes.insert(tuple!["a"], 1);
        d.push_modify(tuple!["b"], tuple!["b2"], 1);
        d.apply_to(&mut bag).unwrap();
        assert_eq!(bag.count(&tuple!["a"]), 1);
        assert_eq!(bag.count(&tuple!["b"]), 0);
        assert_eq!(bag.count(&tuple!["b2"]), 1);
        assert_eq!(bag.count(&tuple!["c"]), 1);
    }

    #[test]
    fn apply_to_bag_rejects_missing() {
        let mut bag = Bag::new();
        let d = Delta::delete(tuple!["x"], 1);
        assert!(d.apply_to(&mut bag).is_err());
    }

    #[test]
    fn size_counts_all_kinds() {
        let mut d = Delta::insert(tuple![1], 2);
        d.deletes.insert(tuple![2], 1);
        d.push_modify(tuple![3], tuple![4], 5);
        assert_eq!(d.size(), 8);
    }

    #[test]
    fn split_by_routes_and_degrades_crossings() {
        let mut d = Delta::insert(tuple!["a", 0], 1);
        d.deletes.insert(tuple!["b", 1], 2);
        // Same-shard modify stays paired; cross-shard one degrades.
        d.push_modify(tuple!["c", 1, 10], tuple!["c", 1, 20], 1);
        d.push_modify(tuple!["m", 0, 5], tuple!["m", 1, 5], 3);
        let route = |t: &Tuple| -> spacetime_storage::StorageResult<usize> {
            Ok(match t.get(1).unwrap() {
                Value::Int(i) => (*i as usize) % 2,
                _ => 0,
            })
        };
        let parts = d.split_by(2, route).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].inserts.count(&tuple!["a", 0]), 1);
        assert_eq!(parts[1].deletes.count(&tuple!["b", 1]), 2);
        assert_eq!(parts[1].modifies.len(), 1);
        assert_eq!(parts[0].deletes.count(&tuple!["m", 0, 5]), 3);
        assert_eq!(parts[1].inserts.count(&tuple!["m", 1, 5]), 3);
        // The concatenation preserves net effect.
        let mut merged = Delta::new();
        for p in parts {
            merged.merge(p);
        }
        assert_eq!(merged.net(), d.net());
    }

    #[test]
    fn split_by_propagates_route_errors() {
        let d = Delta::insert(tuple!["a"], 1);
        let res = d.split_by(2, |_| {
            Err(spacetime_storage::StorageError::Internal("boom".into()))
        });
        assert!(res.is_err());
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Delta::insert(tuple![1], 1);
        a.merge(Delta::delete(tuple![2], 1));
        assert_eq!(a.inserts.len(), 1);
        assert_eq!(a.deletes.len(), 1);
    }
}

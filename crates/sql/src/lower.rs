//! Lowering parsed `SELECT`s to relational algebra.
//!
//! The shape matches the paper's canonical reading of its SQL examples:
//! cross-product `FROM` + `WHERE` equalities become equi-joins (left-deep,
//! in `FROM` order), residual conjuncts become a selection, `GROUP
//! BY`/aggregates become a grouping node, `HAVING` a selection above it,
//! and the `SELECT` list a final projection (omitted when it is the
//! identity — e.g. the Figure 1 trees, whose root is the HAVING
//! selection).

use spacetime_algebra::{
    AggExpr, AggFunc, BinOp, CmpOp, ExprNode, ExprTree, JoinCondition, ScalarExpr,
};
use spacetime_storage::{Catalog, Schema, StorageError, Value};

use crate::ast::{AggName, Expr, Select, SelectItem};
use crate::{SqlError, SqlResult};

/// Lower a `SELECT` to an expression tree against the catalog.
pub fn lower_select(select: &Select, catalog: &Catalog) -> SqlResult<ExprTree> {
    if select.from.is_empty() {
        return Err(SqlError::Parse {
            offset: 0,
            message: "FROM clause is required".into(),
        });
    }

    // FROM: scans (aliased scans re-qualify their schema).
    let mut sources: Vec<ExprTree> = Vec::new();
    for tref in &select.from {
        let scan = ExprNode::scan(catalog, &tref.table)?;
        let scan = match &tref.alias {
            Some(alias) => {
                // Requalify by projecting identity with a renamed schema —
                // cheapest is to rebuild the node with a requalified schema.
                std::sync::Arc::new(ExprNode {
                    op: scan.op.clone(),
                    children: vec![],
                    schema: scan.schema.requalify(alias),
                })
            }
            None => scan,
        };
        sources.push(scan);
    }

    // WHERE: split conjuncts into join pairs and residual predicates.
    let conjuncts = flatten_and(select.where_clause.as_ref());

    // Fold joins left-deep in FROM order, consuming join conjuncts whose
    // two sides resolve to the current tree and the incoming table.
    let mut used = vec![false; conjuncts.len()];
    let mut current = sources[0].clone();
    for next in &sources[1..] {
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for (ci, c) in conjuncts.iter().enumerate() {
            if used[ci] {
                continue;
            }
            if let Expr::Binary { op, left, right } = c {
                if op == "=" {
                    if let (Expr::Column { .. }, Expr::Column { .. }) = (&**left, &**right) {
                        let l_cur = resolve_col(left, &current.schema).ok();
                        let r_next = resolve_col(right, &next.schema).ok();
                        let l_next = resolve_col(left, &next.schema).ok();
                        let r_cur = resolve_col(right, &current.schema).ok();
                        if let (Some(lc), Some(rn)) = (l_cur, r_next) {
                            pairs.push((lc, rn));
                            used[ci] = true;
                            continue;
                        }
                        if let (Some(ln), Some(rc)) = (l_next, r_cur) {
                            pairs.push((rc, ln));
                            used[ci] = true;
                        }
                    }
                }
            }
        }
        current = ExprNode::join(current, next.clone(), JoinCondition::on(pairs))?;
    }

    // Residual WHERE conjuncts become one selection.
    let residual: Vec<&Expr> = conjuncts
        .iter()
        .enumerate()
        .filter(|(i, _)| !used[*i])
        .map(|(_, c)| c)
        .collect();
    if !residual.is_empty() {
        let mut pred = lower_scalar(residual[0], &current.schema)?;
        for c in &residual[1..] {
            pred = pred.and(lower_scalar(c, &current.schema)?);
        }
        current = ExprNode::select(current, pred)?;
    }

    // Aggregation.
    let has_agg = !select.group_by.is_empty()
        || select
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr, .. } if contains_agg(expr)))
        || select.having.as_ref().is_some_and(contains_agg);

    if has_agg {
        current = lower_aggregate(select, current)?;
    } else {
        if select.having.is_some() {
            return Err(SqlError::Parse {
                offset: 0,
                message: "HAVING requires GROUP BY or aggregates".into(),
            });
        }
        // Plain projection (skipped when the select list is `*`).
        let is_wildcard =
            select.items.len() == 1 && matches!(select.items[0], SelectItem::Wildcard);
        if !is_wildcard {
            let mut exprs = Vec::new();
            for (i, item) in select.items.iter().enumerate() {
                match item {
                    SelectItem::Wildcard => {
                        for (p, col) in current.schema.columns().iter().enumerate() {
                            exprs.push((ScalarExpr::col(p), col.name.clone()));
                        }
                    }
                    SelectItem::Expr { expr, alias } => {
                        let lowered = lower_scalar(expr, &current.schema)?;
                        exprs.push((lowered, output_name(expr, alias, i)));
                    }
                }
            }
            current = ExprNode::project(current, exprs)?;
        }
    }

    if select.distinct {
        current = ExprNode::distinct(current)?;
    }
    Ok(current)
}

/// Aggregation lowering: grouping node, HAVING selection, final projection.
fn lower_aggregate(select: &Select, input: ExprTree) -> SqlResult<ExprTree> {
    // Group columns must be plain column references.
    let mut group_by: Vec<usize> = Vec::new();
    for g in &select.group_by {
        match resolve_col(g, &input.schema) {
            Ok(pos) => group_by.push(pos),
            Err(e) => return Err(e),
        }
    }

    // Collect every distinct aggregate appearing in the SELECT list and
    // HAVING.
    let mut aggs: Vec<(AggName, Option<Expr>)> = Vec::new();
    let mut collect = |e: &Expr| collect_aggs(e, &mut aggs);
    for item in &select.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect(expr);
        }
    }
    if let Some(h) = &select.having {
        collect_aggs(h, &mut aggs);
    }

    let mut agg_exprs: Vec<AggExpr> = Vec::new();
    for (i, (func, arg)) in aggs.iter().enumerate() {
        // Output name: the alias when a SELECT item is exactly this
        // aggregate, else synthesized.
        let mut name = format!("agg{i}");
        for item in &select.items {
            if let SelectItem::Expr {
                expr: Expr::Agg { func: f, arg: a },
                alias: Some(alias),
            } = item
            {
                if f_matches(*f, a.as_deref(), *func, arg.as_ref()) {
                    name = alias.clone();
                }
            }
        }
        let lowered_arg = arg
            .as_ref()
            .map(|a| lower_scalar(a, &input.schema))
            .transpose()?;
        agg_exprs.push(AggExpr {
            func: match func {
                AggName::Count => AggFunc::Count,
                AggName::Sum => AggFunc::Sum,
                AggName::Min => AggFunc::Min,
                AggName::Max => AggFunc::Max,
                AggName::Avg => AggFunc::Avg,
            },
            arg: lowered_arg,
            name,
        });
    }

    let input_schema = input.schema.clone();
    let mut current = ExprNode::aggregate(input, group_by.clone(), agg_exprs)?;

    // HAVING over the aggregate output.
    if let Some(h) = &select.having {
        let pred = lower_post_agg(h, &input_schema, &group_by, &aggs, &current.schema)?;
        current = ExprNode::select(current, pred)?;
    }

    // Final projection from the SELECT list (skipped when identity).
    let mut exprs = Vec::new();
    for (i, item) in select.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for (p, col) in current.schema.columns().iter().enumerate() {
                    exprs.push((ScalarExpr::col(p), col.name.clone()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let lowered =
                    lower_post_agg(expr, &input_schema, &group_by, &aggs, &current.schema)?;
                exprs.push((lowered, output_name(expr, alias, i)));
            }
        }
    }
    let identity = exprs.len() == current.schema.arity()
        && exprs
            .iter()
            .enumerate()
            .all(|(i, (e, _))| matches!(e, ScalarExpr::Col(c) if *c == i));
    if !identity {
        current = ExprNode::project(current, exprs)?;
    }
    Ok(current)
}

fn f_matches(f1: AggName, a1: Option<&Expr>, f2: AggName, a2: Option<&Expr>) -> bool {
    f1 == f2 && a1 == a2
}

fn collect_aggs(e: &Expr, out: &mut Vec<(AggName, Option<Expr>)>) {
    match e {
        Expr::Agg { func, arg } => {
            let entry = (*func, arg.as_deref().cloned());
            if !out.contains(&entry) {
                out.push(entry);
            }
        }
        Expr::Binary { left, right, .. } => {
            collect_aggs(left, out);
            collect_aggs(right, out);
        }
        Expr::Not(x) => collect_aggs(x, out),
        Expr::IsNull { expr, .. } => collect_aggs(expr, out),
        _ => {}
    }
}

fn contains_agg(e: &Expr) -> bool {
    let mut v = Vec::new();
    collect_aggs(e, &mut v);
    !v.is_empty()
}

fn output_name(expr: &Expr, alias: &Option<String>, index: usize) -> String {
    if let Some(a) = alias {
        return a.clone();
    }
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Agg { func, .. } => format!(
            "{}{}",
            match func {
                AggName::Count => "Count",
                AggName::Sum => "Sum",
                AggName::Min => "Min",
                AggName::Max => "Max",
                AggName::Avg => "Avg",
            },
            index
        ),
        _ => format!("expr{index}"),
    }
}

fn flatten_and(e: Option<&Expr>) -> Vec<Expr> {
    let mut out = Vec::new();
    fn go(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::Binary { op, left, right } if op == "AND" => {
                go(left, out);
                go(right, out);
            }
            other => out.push(other.clone()),
        }
    }
    if let Some(e) = e {
        go(e, &mut out);
    }
    out
}

fn resolve_col(e: &Expr, schema: &Schema) -> SqlResult<usize> {
    match e {
        Expr::Column { qualifier, name } => Ok(schema.resolve(qualifier.as_deref(), name)?),
        other => Err(SqlError::Semantic(StorageError::TypeError(format!(
            "expected a column reference, found {other:?}"
        )))),
    }
}

/// Lower a scalar expression (no aggregates allowed) against a schema.
pub fn lower_scalar(e: &Expr, schema: &Schema) -> SqlResult<ScalarExpr> {
    Ok(match e {
        Expr::Column { qualifier, name } => {
            ScalarExpr::col(schema.resolve(qualifier.as_deref(), name)?)
        }
        Expr::Int(v) => ScalarExpr::lit(*v),
        Expr::Float(v) => ScalarExpr::lit(*v),
        Expr::Str(s) => ScalarExpr::Lit(Value::str(s.clone())),
        Expr::Bool(b) => ScalarExpr::lit(*b),
        Expr::Null => ScalarExpr::Lit(Value::Null),
        Expr::Not(x) => ScalarExpr::Not(Box::new(lower_scalar(x, schema)?)),
        Expr::IsNull { expr, negated } => {
            let inner = ScalarExpr::IsNull(Box::new(lower_scalar(expr, schema)?));
            if *negated {
                ScalarExpr::Not(Box::new(inner))
            } else {
                inner
            }
        }
        Expr::Binary { op, left, right } => {
            let l = lower_scalar(left, schema)?;
            let r = lower_scalar(right, schema)?;
            lower_binop(op, l, r)?
        }
        Expr::Agg { .. } => {
            return Err(SqlError::Semantic(StorageError::TypeError(
                "aggregate used outside GROUP BY context".into(),
            )))
        }
    })
}

/// Lower an expression over an aggregate's output: plain columns resolve
/// to group columns, aggregate calls resolve to aggregate outputs.
fn lower_post_agg(
    e: &Expr,
    input_schema: &Schema,
    group_by: &[usize],
    aggs: &[(AggName, Option<Expr>)],
    out_schema: &Schema,
) -> SqlResult<ScalarExpr> {
    Ok(match e {
        Expr::Agg { func, arg } => {
            let pos = aggs
                .iter()
                .position(|(f, a)| {
                    f_matches(*f, arg.as_deref(), *f, a.as_ref())
                        && f == func
                        && a.as_ref() == arg.as_deref()
                })
                .ok_or_else(|| {
                    SqlError::Semantic(StorageError::TypeError("aggregate not collected".into()))
                })?;
            ScalarExpr::col(group_by.len() + pos)
        }
        Expr::Column { qualifier, name } => {
            // A grouped column: find its input position, then its output
            // slot.
            let input_pos = input_schema.resolve(qualifier.as_deref(), name)?;
            match group_by.iter().position(|&g| g == input_pos) {
                Some(out_pos) => ScalarExpr::col(out_pos),
                None => {
                    // Maybe it names an aggregate output directly (alias).
                    ScalarExpr::col(out_schema.resolve(qualifier.as_deref(), name)?)
                }
            }
        }
        Expr::Int(v) => ScalarExpr::lit(*v),
        Expr::Float(v) => ScalarExpr::lit(*v),
        Expr::Str(s) => ScalarExpr::Lit(Value::str(s.clone())),
        Expr::Bool(b) => ScalarExpr::lit(*b),
        Expr::Null => ScalarExpr::Lit(Value::Null),
        Expr::Not(x) => ScalarExpr::Not(Box::new(lower_post_agg(
            x,
            input_schema,
            group_by,
            aggs,
            out_schema,
        )?)),
        Expr::IsNull { expr, negated } => {
            let inner = ScalarExpr::IsNull(Box::new(lower_post_agg(
                expr,
                input_schema,
                group_by,
                aggs,
                out_schema,
            )?));
            if *negated {
                ScalarExpr::Not(Box::new(inner))
            } else {
                inner
            }
        }
        Expr::Binary { op, left, right } => {
            let l = lower_post_agg(left, input_schema, group_by, aggs, out_schema)?;
            let r = lower_post_agg(right, input_schema, group_by, aggs, out_schema)?;
            lower_binop(op, l, r)?
        }
    })
}

fn lower_binop(op: &str, l: ScalarExpr, r: ScalarExpr) -> SqlResult<ScalarExpr> {
    Ok(match op {
        "+" => ScalarExpr::bin(BinOp::Add, l, r),
        "-" => ScalarExpr::bin(BinOp::Sub, l, r),
        "*" => ScalarExpr::bin(BinOp::Mul, l, r),
        "/" => ScalarExpr::bin(BinOp::Div, l, r),
        "=" => ScalarExpr::cmp(CmpOp::Eq, l, r),
        "<>" => ScalarExpr::cmp(CmpOp::Ne, l, r),
        "<" => ScalarExpr::cmp(CmpOp::Lt, l, r),
        "<=" => ScalarExpr::cmp(CmpOp::Le, l, r),
        ">" => ScalarExpr::cmp(CmpOp::Gt, l, r),
        ">=" => ScalarExpr::cmp(CmpOp::Ge, l, r),
        "AND" => l.and(r),
        "OR" => ScalarExpr::Or(vec![l, r]),
        other => {
            return Err(SqlError::Parse {
                offset: 0,
                message: format!("unsupported operator `{other}`"),
            })
        }
    })
}

/// Lower a literal row (INSERT VALUES) to concrete values.
pub fn lower_literal_row(row: &[Expr]) -> SqlResult<Vec<Value>> {
    row.iter()
        .map(|e| match e {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float(v) => Ok(Value::Double(*v)),
            Expr::Str(s) => Ok(Value::str(s.clone())),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Null => Ok(Value::Null),
            Expr::Binary { op, left, right } if op == "-" => {
                // Negative literals parse as 0 - x.
                match (&**left, &**right) {
                    (Expr::Int(0), Expr::Int(v)) => Ok(Value::Int(-v)),
                    (Expr::Int(0), Expr::Float(v)) => Ok(Value::Double(-v)),
                    _ => Err(SqlError::Semantic(StorageError::TypeError(
                        "VALUES rows must be literals".into(),
                    ))),
                }
            }
            _ => Err(SqlError::Semantic(StorageError::TypeError(
                "VALUES rows must be literals".into(),
            ))),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use crate::Statement;
    use spacetime_algebra::OpKind;
    use spacetime_storage::DataType;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "Emp",
            Schema::of_table(
                "Emp",
                &[
                    ("EName", DataType::Str),
                    ("DName", DataType::Str),
                    ("Salary", DataType::Int),
                ],
            ),
        )
        .unwrap();
        cat.create_table(
            "Dept",
            Schema::of_table(
                "Dept",
                &[
                    ("DName", DataType::Str),
                    ("MName", DataType::Str),
                    ("Budget", DataType::Int),
                ],
            ),
        )
        .unwrap();
        cat
    }

    fn lower(sql: &str) -> ExprTree {
        let cat = catalog();
        let Statement::Select(sel) = parse_statement(sql).unwrap() else {
            panic!("not a select")
        };
        lower_select(&sel, &cat).unwrap()
    }

    #[test]
    fn problem_dept_lowers_to_figure1_shape() {
        let tree = lower(
            "SELECT Dept.DName FROM Emp, Dept \
             WHERE Dept.DName = Emp.DName \
             GROUP BY Dept.DName, Budget \
             HAVING SUM(Salary) > Budget",
        );
        // Project(Select(Aggregate(Join(Emp, Dept)))).
        let rendered = tree.render();
        assert!(rendered.contains("Project"), "{rendered}");
        assert!(
            rendered.contains("Select (agg0 > Dept.Budget)"),
            "{rendered}"
        );
        assert!(
            rendered.contains("Aggregate (SUM(Emp.Salary) BY Dept.DName, Dept.Budget)"),
            "{rendered}"
        );
        assert!(
            rendered.contains("Join (Emp.DName = Dept.DName)"),
            "{rendered}"
        );
    }

    #[test]
    fn where_residual_becomes_selection() {
        let tree = lower(
            "SELECT * FROM Emp, Dept \
             WHERE Emp.DName = Dept.DName AND Salary > 100",
        );
        let rendered = tree.render();
        assert!(rendered.contains("Select (Emp.Salary > 100)"), "{rendered}");
        assert!(rendered.contains("Join"), "{rendered}");
    }

    #[test]
    fn wildcard_skips_projection() {
        let tree = lower("SELECT * FROM Emp");
        assert!(matches!(tree.op, OpKind::Scan { .. }));
    }

    #[test]
    fn sum_of_sals_view_shape() {
        let tree = lower("SELECT DName, SUM(Salary) AS SalSum FROM Emp GROUP BY DName");
        assert!(
            matches!(tree.op, OpKind::Aggregate { .. }),
            "projection elided (identity)"
        );
        assert_eq!(tree.schema.column(1).unwrap().name, "SalSum");
    }

    #[test]
    fn aliases_requalify() {
        let cat = catalog();
        let Statement::Select(sel) =
            parse_statement("SELECT e1.EName FROM Emp e1, Emp e2 WHERE e1.DName = e2.DName")
                .unwrap()
        else {
            panic!()
        };
        let tree = lower_select(&sel, &cat).unwrap();
        assert_eq!(tree.schema.arity(), 1);
        assert_eq!(
            tree.schema.column(0).unwrap().qualifier.as_deref(),
            Some("e1")
        );
    }

    #[test]
    fn distinct_lowered() {
        let tree = lower("SELECT DISTINCT DName FROM Emp");
        assert!(matches!(tree.op, OpKind::Distinct));
    }

    #[test]
    fn count_star_and_avg() {
        let tree = lower("SELECT DName, COUNT(*), AVG(Salary) FROM Emp GROUP BY DName");
        assert_eq!(tree.schema.arity(), 3);
        assert_eq!(tree.schema.column(2).unwrap().dtype, DataType::Double);
    }

    #[test]
    fn unknown_column_is_semantic_error() {
        let cat = catalog();
        let Statement::Select(sel) = parse_statement("SELECT Nope FROM Emp").unwrap() else {
            panic!()
        };
        assert!(matches!(
            lower_select(&sel, &cat),
            Err(SqlError::Semantic(_))
        ));
    }

    #[test]
    fn having_without_group_rejected() {
        let cat = catalog();
        let Statement::Select(sel) =
            parse_statement("SELECT EName FROM Emp HAVING EName = 'x'").unwrap()
        else {
            panic!()
        };
        assert!(lower_select(&sel, &cat).is_err());
    }

    #[test]
    fn literal_rows() {
        let row = vec![Expr::Str("a".into()), Expr::Int(5), Expr::Null];
        let vals = lower_literal_row(&row).unwrap();
        assert_eq!(vals, vec![Value::str("a"), Value::Int(5), Value::Null]);
        assert!(lower_literal_row(&[Expr::Column {
            qualifier: None,
            name: "x".into()
        }])
        .is_err());
    }
}

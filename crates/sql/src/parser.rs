//! Recursive-descent parser.

use spacetime_storage::DataType;

use crate::ast::*;
use crate::lexer::{tokenize, Token, TokenKind};
use crate::{SqlError, SqlResult};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parse a single statement (trailing `;` optional).
pub fn parse_statement(input: &str) -> SqlResult<Statement> {
    let mut p = Parser {
        tokens: tokenize(input)?,
        pos: 0,
    };
    let stmt = p.statement()?;
    p.eat_sym(";");
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated script.
pub fn parse_statements(input: &str) -> SqlResult<Vec<Statement>> {
    let mut p = Parser {
        tokens: tokenize(input)?,
        pos: 0,
    };
    let mut out = Vec::new();
    loop {
        while p.eat_sym(";") {}
        if p.peek().kind == TokenKind::Eof {
            return Ok(out);
        }
        out.push(p.statement()?);
        if !p.eat_sym(";") && p.peek().kind != TokenKind::Eof {
            return Err(p.error("expected `;` between statements"));
        }
    }
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> SqlError {
        SqlError::Parse {
            offset: self.peek().offset,
            message: message.into(),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> SqlResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`")))
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.peek().is_sym(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> SqlResult<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{s}`")))
        }
    }

    fn expect_eof(&self) -> SqlResult<()> {
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.error("unexpected trailing input"))
        }
    }

    fn ident(&mut self) -> SqlResult<String> {
        match &self.peek().kind {
            TokenKind::Word(w) if !is_reserved(w) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            _ => Err(self.error("expected identifier")),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn statement(&mut self) -> SqlResult<Statement> {
        if self.peek().is_kw("CREATE") {
            return self.create();
        }
        if self.peek().is_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("INSERT") {
            self.expect_kw("INTO")?;
            let table = self.ident()?;
            self.expect_kw("VALUES")?;
            let mut rows = Vec::new();
            loop {
                self.expect_sym("(")?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
                rows.push(row);
                if !self.eat_sym(",") {
                    break;
                }
            }
            return Ok(Statement::Insert { table, rows });
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let predicate = if self.eat_kw("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete { table, predicate });
        }
        if self.eat_kw("UPDATE") {
            let table = self.ident()?;
            self.expect_kw("SET")?;
            let mut sets = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect_sym("=")?;
                sets.push((col, self.expr()?));
                if !self.eat_sym(",") {
                    break;
                }
            }
            let predicate = if self.eat_kw("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Update {
                table,
                sets,
                predicate,
            });
        }
        Err(self.error("expected a statement"))
    }

    fn create(&mut self) -> SqlResult<Statement> {
        self.expect_kw("CREATE")?;
        if self.eat_kw("TABLE") {
            let name = self.ident()?;
            self.expect_sym("(")?;
            let mut columns = Vec::new();
            loop {
                let col = self.ident()?;
                let dtype = self.dtype()?;
                let primary_key = if self.eat_kw("PRIMARY") {
                    self.expect_kw("KEY")?;
                    true
                } else {
                    false
                };
                columns.push(ColumnDef {
                    name: col,
                    dtype,
                    primary_key,
                });
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(Statement::CreateTable { name, columns });
        }
        let materialized = self.eat_kw("MATERIALIZED");
        if self.eat_kw("VIEW") {
            let name = self.ident()?;
            let columns = if self.eat_sym("(") {
                let mut cols = Vec::new();
                loop {
                    cols.push(self.ident()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
                Some(cols)
            } else {
                None
            };
            self.expect_kw("AS")?;
            let select = self.select()?;
            return Ok(Statement::CreateView {
                name,
                columns,
                select,
                materialized,
            });
        }
        if materialized {
            return Err(self.error("expected `VIEW` after `MATERIALIZED`"));
        }
        if self.eat_kw("ASSERTION") {
            let name = self.ident()?;
            self.expect_kw("CHECK")?;
            self.expect_sym("(")?;
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            self.expect_sym("(")?;
            let select = self.select()?;
            self.expect_sym(")")?;
            self.expect_sym(")")?;
            return Ok(Statement::CreateAssertion { name, select });
        }
        if self.eat_kw("INDEX") {
            self.expect_kw("ON")?;
            let table = self.ident()?;
            self.expect_sym("(")?;
            let mut columns = Vec::new();
            loop {
                columns.push(self.ident()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(Statement::CreateIndex { table, columns });
        }
        Err(self.error("expected TABLE, VIEW, ASSERTION or INDEX"))
    }

    fn dtype(&mut self) -> SqlResult<DataType> {
        let word = match &self.peek().kind {
            TokenKind::Word(w) => w.to_ascii_uppercase(),
            _ => return Err(self.error("expected a type name")),
        };
        self.pos += 1;
        match word.as_str() {
            "INTEGER" | "INT" | "BIGINT" => Ok(DataType::Int),
            "DOUBLE" | "FLOAT" | "REAL" | "DECIMAL" | "NUMERIC" => Ok(DataType::Double),
            "VARCHAR" | "TEXT" | "CHAR" | "STRING" => {
                // Optional length spec: VARCHAR(20).
                if self.eat_sym("(") {
                    match self.bump().kind {
                        TokenKind::Int(_) => {}
                        _ => return Err(self.error("expected a length")),
                    }
                    self.expect_sym(")")?;
                }
                Ok(DataType::Str)
            }
            "BOOLEAN" | "BOOL" => Ok(DataType::Bool),
            other => Err(self.error(format!("unknown type `{other}`"))),
        }
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    fn select(&mut self) -> SqlResult<Select> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            if self.eat_sym("*") {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let mut from = Vec::new();
        loop {
            let table = self.ident()?;
            let alias = match &self.peek().kind {
                TokenKind::Word(w) if !is_reserved(w) => {
                    let a = w.clone();
                    self.pos += 1;
                    Some(a)
                }
                _ => None,
            };
            from.push(TableRef { table, alias });
            if !self.eat_sym(",") {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        } else if self.eat_kw("GROUPBY") {
            // The paper writes `GROUPBY` as one word; accept both.
            loop {
                group_by.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
        })
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> SqlResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> SqlResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: "OR".into(),
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> SqlResult<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: "AND".into(),
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> SqlResult<Expr> {
        if self.eat_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> SqlResult<Expr> {
        let left = self.add_expr()?;
        for op in ["<=", ">=", "<>", "=", "<", ">"] {
            if self.eat_sym(op) {
                let right = self.add_expr()?;
                return Ok(Expr::Binary {
                    op: op.to_string(),
                    left: Box::new(left),
                    right: Box::new(right),
                });
            }
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        Ok(left)
    }

    fn add_expr(&mut self) -> SqlResult<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = if self.eat_sym("+") {
                "+"
            } else if self.eat_sym("-") {
                "-"
            } else {
                break;
            };
            let right = self.mul_expr()?;
            left = Expr::Binary {
                op: op.to_string(),
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> SqlResult<Expr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = if self.eat_sym("*") {
                "*"
            } else if self.eat_sym("/") {
                "/"
            } else {
                break;
            };
            let right = self.unary_expr()?;
            left = Expr::Binary {
                op: op.to_string(),
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> SqlResult<Expr> {
        if self.eat_sym("-") {
            let inner = self.unary_expr()?;
            return Ok(Expr::Binary {
                op: "-".into(),
                left: Box::new(Expr::Int(0)),
                right: Box::new(inner),
            });
        }
        self.atom()
    }

    fn atom(&mut self) -> SqlResult<Expr> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Int(v) => {
                self.pos += 1;
                Ok(Expr::Int(v))
            }
            TokenKind::Float(v) => {
                self.pos += 1;
                Ok(Expr::Float(v))
            }
            TokenKind::Str(s) => {
                self.pos += 1;
                Ok(Expr::Str(s))
            }
            TokenKind::Sym("(") => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            TokenKind::Word(w) => {
                let upper = w.to_ascii_uppercase();
                match upper.as_str() {
                    "TRUE" => {
                        self.pos += 1;
                        Ok(Expr::Bool(true))
                    }
                    "FALSE" => {
                        self.pos += 1;
                        Ok(Expr::Bool(false))
                    }
                    "NULL" => {
                        self.pos += 1;
                        Ok(Expr::Null)
                    }
                    "COUNT" | "SUM" | "MIN" | "MAX" | "AVG" => {
                        self.pos += 1;
                        self.expect_sym("(")?;
                        let func = match upper.as_str() {
                            "COUNT" => AggName::Count,
                            "SUM" => AggName::Sum,
                            "MIN" => AggName::Min,
                            "MAX" => AggName::Max,
                            _ => AggName::Avg,
                        };
                        let arg = if self.eat_sym("*") {
                            if func != AggName::Count {
                                return Err(self.error("only COUNT(*) may take `*`"));
                            }
                            None
                        } else {
                            Some(Box::new(self.expr()?))
                        };
                        self.expect_sym(")")?;
                        Ok(Expr::Agg { func, arg })
                    }
                    _ => {
                        self.pos += 1;
                        if self.eat_sym(".") {
                            let name = self.ident()?;
                            Ok(Expr::Column {
                                qualifier: Some(w),
                                name,
                            })
                        } else {
                            Ok(Expr::Column {
                                qualifier: None,
                                name: w,
                            })
                        }
                    }
                }
            }
            _ => Err(self.error("expected an expression")),
        }
    }
}

fn is_reserved(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "GROUPBY",
        "BY",
        "HAVING",
        "AS",
        "AND",
        "OR",
        "NOT",
        "CREATE",
        "TABLE",
        "VIEW",
        "MATERIALIZED",
        "ASSERTION",
        "CHECK",
        "EXISTS",
        "INDEX",
        "ON",
        "INSERT",
        "INTO",
        "VALUES",
        "DELETE",
        "UPDATE",
        "SET",
        "DISTINCT",
        "IS",
        "NULL",
        "TRUE",
        "FALSE",
        "PRIMARY",
        "KEY",
        "JOIN",
        "INNER",
        "ORDER",
    ];
    RESERVED.iter().any(|r| word.eq_ignore_ascii_case(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_view_definition() {
        // Verbatim from §1 (modulo GROUPBY spelling, which we accept).
        let sql = "CREATE VIEW ProblemDept (DName) AS \
                   SELECT Dept.DName FROM Emp, Dept \
                   WHERE Dept.DName = Emp.DName \
                   GROUPBY Dept.DName, Budget \
                   HAVING SUM(Salary) > Budget";
        let stmt = parse_statement(sql).unwrap();
        match stmt {
            Statement::CreateView {
                name,
                columns,
                select,
                materialized,
            } => {
                assert_eq!(name, "ProblemDept");
                assert_eq!(columns, Some(vec!["DName".to_string()]));
                assert!(!materialized);
                assert_eq!(select.from.len(), 2);
                assert_eq!(select.group_by.len(), 2);
                assert!(select.having.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_paper_assertion() {
        let sql = "CREATE ASSERTION DeptConstraint \
                   CHECK (NOT EXISTS (SELECT * FROM ProblemDept))";
        let stmt = parse_statement(sql).unwrap();
        match stmt {
            Statement::CreateAssertion { name, select } => {
                assert_eq!(name, "DeptConstraint");
                assert_eq!(select.items, vec![SelectItem::Wildcard]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_create_table_with_key() {
        let stmt = parse_statement(
            "CREATE TABLE Dept (DName VARCHAR(30) PRIMARY KEY, MName VARCHAR, Budget INTEGER)",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "Dept");
                assert_eq!(columns.len(), 3);
                assert!(columns[0].primary_key);
                assert_eq!(columns[2].dtype, DataType::Int);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_dml() {
        let stmt =
            parse_statement("INSERT INTO Emp VALUES ('alice', 'Sales', 100), ('bob', 'Eng', 90)")
                .unwrap();
        match stmt {
            Statement::Insert { rows, .. } => assert_eq!(rows.len(), 2),
            other => panic!("{other:?}"),
        }
        let stmt =
            parse_statement("UPDATE Emp SET Salary = Salary + 10 WHERE EName = 'alice'").unwrap();
        match stmt {
            Statement::Update {
                sets, predicate, ..
            } => {
                assert_eq!(sets.len(), 1);
                assert!(predicate.is_some());
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_statement("DELETE FROM Emp WHERE Salary < 0").is_ok());
    }

    #[test]
    fn expression_precedence() {
        let stmt = parse_statement("SELECT a + b * c FROM T").unwrap();
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else {
            panic!()
        };
        // a + (b * c)
        match expr {
            Expr::Binary { op, right, .. } => {
                assert_eq!(op, "+");
                assert!(matches!(&**right, Expr::Binary { op, .. } if op == "*"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let stmt = parse_statement("SELECT * FROM T WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        match sel.where_clause.unwrap() {
            Expr::Binary { op, .. } => assert_eq!(op, "OR"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn script_parsing_and_errors() {
        let stmts =
            parse_statements("CREATE TABLE A (x INT); INSERT INTO A VALUES (1); SELECT * FROM A;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("CREATE NONSENSE x").is_err());
        assert!(parse_statement("SELECT * FROM T trailing garbage ,").is_err());
        assert!(parse_statement("SELECT SUM(*) FROM T").is_err());
    }

    #[test]
    fn aliases_and_aggregates() {
        let stmt =
            parse_statement("SELECT DName, SUM(Salary) AS SalSum FROM Emp GROUP BY DName").unwrap();
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        assert_eq!(sel.items.len(), 2);
        match &sel.items[1] {
            SelectItem::Expr {
                expr: Expr::Agg { func, arg },
                alias,
            } => {
                assert_eq!(*func, AggName::Sum);
                assert!(arg.is_some());
                assert_eq!(alias.as_deref(), Some("SalSum"));
            }
            other => panic!("{other:?}"),
        }
    }
}

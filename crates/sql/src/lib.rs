//! # spacetime-sql
//!
//! A SQL front end for the subset the paper's examples are written in:
//! `CREATE TABLE`, `CREATE [MATERIALIZED] VIEW … AS SELECT`,
//! `CREATE ASSERTION … CHECK (NOT EXISTS (…))` (the SQL-92 integrity
//! constraints of §1/§6), `CREATE INDEX`, `SELECT`–`FROM`–`WHERE`–
//! `GROUP BY`–`HAVING` with aggregates, and the DML statements
//! (`INSERT`/`DELETE`/`UPDATE`) that drive incremental maintenance.
//!
//! * [`lexer`] — tokenization with positions.
//! * [`ast`] — the statement/expression AST.
//! * [`parser`] — recursive-descent parser.
//! * [`lower`] — lowering a parsed `SELECT` to a `spacetime-algebra`
//!   expression tree against a catalog.

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::{Statement, *};
pub use lower::lower_select;
pub use parser::{parse_statement, parse_statements};

/// SQL errors reuse the storage error vocabulary plus a parse variant.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexing/parsing failure with position and message.
    Parse {
        /// Byte offset in the input.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// Resolution/typing failure during lowering.
    Semantic(spacetime_storage::StorageError),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            SqlError::Semantic(e) => write!(f, "semantic error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<spacetime_storage::StorageError> for SqlError {
    fn from(e: spacetime_storage::StorageError) -> Self {
        SqlError::Semantic(e)
    }
}

/// Result alias for SQL operations.
pub type SqlResult<T> = Result<T, SqlError>;

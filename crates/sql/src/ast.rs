//! The SQL AST.

use spacetime_storage::DataType;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE [PRIMARY KEY], …)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
    },
    /// `CREATE [MATERIALIZED] VIEW name [(out_cols)] AS select`.
    CreateView {
        /// View name.
        name: String,
        /// Optional output column names.
        columns: Option<Vec<String>>,
        /// The defining query.
        select: Select,
        /// Whether `MATERIALIZED` was given (plain views are also
        /// materialized in this system — the paper's setting — but the
        /// flag is preserved for reporting).
        materialized: bool,
    },
    /// `CREATE ASSERTION name CHECK (NOT EXISTS (select))` (SQL-92).
    CreateAssertion {
        /// Assertion name.
        name: String,
        /// The query that must stay empty.
        select: Select,
    },
    /// `CREATE INDEX ON table (cols)`.
    CreateIndex {
        /// Indexed table.
        table: String,
        /// Indexed columns.
        columns: Vec<String>,
    },
    /// `INSERT INTO table VALUES (…), (…)`.
    Insert {
        /// Target table.
        table: String,
        /// Literal rows.
        rows: Vec<Vec<Expr>>,
    },
    /// `DELETE FROM table [WHERE pred]`.
    Delete {
        /// Target table.
        table: String,
        /// Row filter.
        predicate: Option<Expr>,
    },
    /// `UPDATE table SET col = expr, … [WHERE pred]`.
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        sets: Vec<(String, Expr)>,
        /// Row filter.
        predicate: Option<Expr>,
    },
    /// A bare query.
    Select(Select),
}

/// One column in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
    /// `PRIMARY KEY` marker.
    pub primary_key: bool,
}

/// A `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Output items.
    pub items: Vec<SelectItem>,
    /// `FROM` tables (cross-product style, joined via `WHERE` equalities —
    /// the paper's examples' style).
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` columns.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
}

/// A `FROM` entry: table name with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Catalog table name.
    pub table: String,
    /// Alias (`FROM Emp e`).
    pub alias: Option<String>,
}

/// One output item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// Expression with optional `AS name`.
    Expr {
        /// The expression.
        expr: Expr,
        /// The alias.
        alias: Option<String>,
    },
}

/// Aggregate function names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggName {
    /// `COUNT`.
    Count,
    /// `SUM`.
    Sum,
    /// `MIN`.
    Min,
    /// `MAX`.
    Max,
    /// `AVG`.
    Avg,
}

/// A scalar/aggregate expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Possibly-qualified column reference.
    Column {
        /// Qualifier (`Dept` in `Dept.DName`).
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `TRUE`/`FALSE`.
    Bool(bool),
    /// `NULL`.
    Null,
    /// Binary operation (`+ - * / = <> < <= > >= AND OR`).
    Binary {
        /// Operator lexeme.
        op: String,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `NOT e`.
    Not(Box<Expr>),
    /// `e IS [NOT] NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// Whether `NOT` was present.
        negated: bool,
    },
    /// Aggregate call; `arg = None` is `COUNT(*)`.
    Agg {
        /// The function.
        func: AggName,
        /// The argument.
        arg: Option<Box<Expr>>,
    },
}

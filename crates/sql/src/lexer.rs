//! Tokenizer.

use crate::{SqlError, SqlResult};

/// A token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset in the source.
    pub offset: usize,
    /// The token kind/value.
    pub kind: TokenKind,
}

/// Token kinds. Keywords are recognized case-insensitively and normalized
/// to uppercase in [`TokenKind::Word`].
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (uppercased keyword check via [`Token::is_kw`]).
    Word(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (unescaped).
    Str(String),
    /// Punctuation / operator.
    Sym(&'static str),
    /// End of input.
    Eof,
}

impl Token {
    /// Whether the token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(&self.kind, TokenKind::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    /// Whether the token is the given symbol.
    pub fn is_sym(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Sym(x) if *x == s)
    }
}

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> SqlResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == '_' {
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push(Token {
                offset: start,
                kind: TokenKind::Word(input[start..i].to_string()),
            });
        } else if c.is_ascii_digit() {
            let mut is_float = false;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_digit()
                    || (bytes[i] == b'.'
                        && bytes
                            .get(i + 1)
                            .is_some_and(|b| (*b as char).is_ascii_digit())))
            {
                if bytes[i] == b'.' {
                    is_float = true;
                }
                i += 1;
            }
            let text = &input[start..i];
            let kind = if is_float {
                TokenKind::Float(text.parse().map_err(|_| SqlError::Parse {
                    offset: start,
                    message: format!("bad float literal `{text}`"),
                })?)
            } else {
                TokenKind::Int(text.parse().map_err(|_| SqlError::Parse {
                    offset: start,
                    message: format!("bad integer literal `{text}`"),
                })?)
            };
            out.push(Token {
                offset: start,
                kind,
            });
        } else if c == '\'' {
            i += 1;
            let mut s = String::new();
            loop {
                match bytes.get(i) {
                    None => {
                        return Err(SqlError::Parse {
                            offset: start,
                            message: "unterminated string literal".into(),
                        })
                    }
                    Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                        s.push('\'');
                        i += 2;
                    }
                    Some(b'\'') => {
                        i += 1;
                        break;
                    }
                    Some(&b) => {
                        s.push(b as char);
                        i += 1;
                    }
                }
            }
            out.push(Token {
                offset: start,
                kind: TokenKind::Str(s),
            });
        } else {
            let two: Option<&'static str> = match (c, bytes.get(i + 1).map(|&b| b as char)) {
                ('<', Some('=')) => Some("<="),
                ('>', Some('=')) => Some(">="),
                ('<', Some('>')) => Some("<>"),
                ('!', Some('=')) => Some("<>"),
                _ => None,
            };
            if let Some(sym) = two {
                out.push(Token {
                    offset: start,
                    kind: TokenKind::Sym(sym),
                });
                i += 2;
                continue;
            }
            let one: &'static str = match c {
                '(' => "(",
                ')' => ")",
                ',' => ",",
                ';' => ";",
                '.' => ".",
                '*' => "*",
                '+' => "+",
                '-' => "-",
                '/' => "/",
                '=' => "=",
                '<' => "<",
                '>' => ">",
                other => {
                    return Err(SqlError::Parse {
                        offset: start,
                        message: format!("unexpected character `{other}`"),
                    })
                }
            };
            out.push(Token {
                offset: start,
                kind: TokenKind::Sym(one),
            });
            i += 1;
        }
    }
    out.push(Token {
        offset: input.len(),
        kind: TokenKind::Eof,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        tokenize(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_numbers_strings() {
        assert_eq!(
            kinds("SELECT x, 42, 1.5, 'it''s'"),
            vec![
                TokenKind::Word("SELECT".into()),
                TokenKind::Word("x".into()),
                TokenKind::Sym(","),
                TokenKind::Int(42),
                TokenKind::Sym(","),
                TokenKind::Float(1.5),
                TokenKind::Sym(","),
                TokenKind::Str("it's".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("a <= b <> c != d >= e"),
            vec![
                TokenKind::Word("a".into()),
                TokenKind::Sym("<="),
                TokenKind::Word("b".into()),
                TokenKind::Sym("<>"),
                TokenKind::Word("c".into()),
                TokenKind::Sym("<>"),
                TokenKind::Word("d".into()),
                TokenKind::Sym(">="),
                TokenKind::Word("e".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a -- comment\n b"),
            vec![
                TokenKind::Word("a".into()),
                TokenKind::Word("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let err = tokenize("abc $").unwrap_err();
        match err {
            SqlError::Parse { offset, .. } => assert_eq!(offset, 4),
            other => panic!("{other:?}"),
        }
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn dotted_names_tokenize_as_parts() {
        assert_eq!(
            kinds("Dept.DName"),
            vec![
                TokenKind::Word("Dept".into()),
                TokenKind::Sym("."),
                TokenKind::Word("DName".into()),
                TokenKind::Eof
            ]
        );
    }
}

//! Key-based query elimination: group-complete deltas.
//!
//! §3.6's Q3d observation:
//!
//! > *"Query Q3d can be evaluated particularly efficiently on the update
//! > track N1,E1,N2,E3,N4,E5,N6: Since DName is a key for the Dept
//! > relation, the result propagated up along E5 and N4 contains all the
//! > tuples in the group. Thus no I/O is generated for Q3d."*
//!
//! [`delta_group_complete`] decides, for a node on an update track and a
//! grouping column set `C`, whether the delta arriving at that node is
//! guaranteed to contain **every** tuple of each `C`-group it touches. The
//! sufficient conditions, applied down the track toward the updated leaf:
//!
//! * at the updated **leaf**: `C` covers a candidate key (each touched
//!   group holds exactly the updated tuples);
//! * through a **select**: completeness is preserved (a whole group passes
//!   or is filtered consistently tuple-by-tuple — tuples outside the
//!   selection are not in the node's output at all);
//! * through a **project**: `C` must map to plain column references;
//! * through a **join** where the delta arrives on side `s`: all of `C`
//!   must come from side `s`, the mapped set must determine `s`'s join key
//!   (contain a key of `s`), and `s`'s delta must be complete w.r.t. the
//!   mapped set — the join rule then pairs the delta with *all* matching
//!   tuples of the other side, keeping groups whole.

use std::collections::BTreeSet;

use spacetime_algebra::{cols_contain_key, OpKind, ScalarExpr};
use spacetime_memo::{GroupId, Memo, OpId};
use spacetime_storage::Catalog;

use crate::tracks::UpdateTrack;

/// Whether the delta arriving at `group` (on `track`, originating from
/// `updated_table`) is complete w.r.t. the column set `cols` of `group`'s
/// output.
pub fn delta_group_complete(
    memo: &Memo,
    catalog: &Catalog,
    track: &UpdateTrack,
    group: GroupId,
    cols: &[usize],
    updated_table: &str,
) -> bool {
    let cols: BTreeSet<usize> = cols.iter().copied().collect();
    complete_at(
        memo,
        catalog,
        track,
        memo.find(group),
        &cols,
        updated_table,
        0,
    )
}

fn complete_at(
    memo: &Memo,
    catalog: &Catalog,
    track: &UpdateTrack,
    group: GroupId,
    cols: &BTreeSet<usize>,
    updated_table: &str,
    depth: usize,
) -> bool {
    if depth > 64 {
        return false; // degenerate DAG; be conservative
    }
    let group = memo.find(group);
    // Leaf: complete iff the columns cover a key of the (updated) table.
    if memo.is_leaf(group) {
        return leaf_complete(memo, catalog, group, cols, updated_table);
    }
    let Some(&op) = track.choices.get(&group) else {
        // Not on the track: no delta arrives here at all.
        return false;
    };
    op_complete(memo, catalog, track, op, cols, updated_table, depth)
}

fn leaf_complete(
    memo: &Memo,
    catalog: &Catalog,
    group: GroupId,
    cols: &BTreeSet<usize>,
    updated_table: &str,
) -> bool {
    for op in memo.group_ops(group) {
        if let OpKind::Scan { table } = &memo.op(op).op {
            if table == updated_table {
                let tree = memo.extract_one(group);
                let cols_vec: Vec<usize> = cols.iter().copied().collect();
                return cols_contain_key(&tree, catalog, &cols_vec);
            }
        }
    }
    false
}

fn op_complete(
    memo: &Memo,
    catalog: &Catalog,
    track: &UpdateTrack,
    op: OpId,
    cols: &BTreeSet<usize>,
    updated_table: &str,
    depth: usize,
) -> bool {
    let node = memo.op(op);
    let children = memo.op_children(op);
    match &node.op {
        OpKind::Scan { table } => {
            table == updated_table && {
                let g = memo.op_group(op);
                leaf_complete(memo, catalog, g, cols, updated_table)
            }
        }
        OpKind::Select { .. } | OpKind::Distinct => complete_at(
            memo,
            catalog,
            track,
            children[0],
            cols,
            updated_table,
            depth + 1,
        ),
        OpKind::Project { exprs } => {
            let mapped: Option<BTreeSet<usize>> = cols
                .iter()
                .map(|&c| match exprs.get(c) {
                    Some((ScalarExpr::Col(i), _)) => Some(*i),
                    _ => None,
                })
                .collect();
            match mapped {
                Some(m) => complete_at(
                    memo,
                    catalog,
                    track,
                    children[0],
                    &m,
                    updated_table,
                    depth + 1,
                ),
                None => false,
            }
        }
        OpKind::Join { condition } => {
            let (a, b) = (children[0], children[1]);
            let la = memo.schema(a).arity();
            let a_affected = track.affected.contains(&memo.find(a));
            let b_affected = track.affected.contains(&memo.find(b));
            if a_affected && b_affected {
                // Both sides carry deltas: the pairing argument breaks.
                return false;
            }
            // Columns equated by the join condition are interchangeable:
            // canonicalize C onto the delta side where possible (a pulled
            // aggregate may group on Emp.DName ≡ Dept.DName).
            let mut cols = cols.clone();
            for &(l, r) in &condition.equi {
                if a_affected && cols.contains(&(r + la)) {
                    cols.remove(&(r + la));
                    cols.insert(l);
                }
                if b_affected && cols.contains(&l) {
                    cols.remove(&l);
                    cols.insert(r + la);
                }
            }
            let cols = &cols;
            if a_affected {
                // All of C must come from the delta side and cover a key
                // of it (so the group determines the join key, and the
                // other side contributes all matches).
                if !cols.iter().all(|&c| c < la) {
                    return false;
                }
                let mapped: BTreeSet<usize> = cols.clone();
                let side_tree = memo.extract_one(a);
                let cols_vec: Vec<usize> = mapped.iter().copied().collect();
                cols_contain_key(&side_tree, catalog, &cols_vec)
                    && complete_at(memo, catalog, track, a, &mapped, updated_table, depth + 1)
            } else if b_affected {
                if !cols.iter().all(|&c| c >= la) {
                    return false;
                }
                let mapped: BTreeSet<usize> = cols.iter().map(|&c| c - la).collect();
                let side_tree = memo.extract_one(b);
                let cols_vec: Vec<usize> = mapped.iter().copied().collect();
                cols_contain_key(&side_tree, catalog, &cols_vec)
                    && complete_at(memo, catalog, track, b, &mapped, updated_table, depth + 1)
            } else {
                false
            }
        }
        OpKind::Aggregate { group_by, .. } => {
            // Completeness through an aggregate: each output row *is* its
            // group; the delta contains whole output groups iff the mapped
            // grouping columns are complete below.
            let mapped: Option<BTreeSet<usize>> =
                cols.iter().map(|&c| group_by.get(c).copied()).collect();
            match mapped {
                Some(m) => complete_at(
                    memo,
                    catalog,
                    track,
                    children[0],
                    &m,
                    updated_table,
                    depth + 1,
                ),
                None => false,
            }
        }
    }
}

//! Heuristic pruning of the search space (§5).
//!
//! When the exhaustive search (even with shielding) is too expensive, the
//! paper proposes a systematic space of heuristics:
//!
//! * [`single_tree_optimize`] — *"Using a single expression tree equivalent
//!   to V … can dramatically reduce the search space"*: candidates are
//!   restricted to the equivalence nodes of one expression tree.
//! * [`rule_of_thumb_set`] — *"Choosing a single view set"*: mark the
//!   parent of every join or grouping/aggregation operator and the child
//!   of every duplicate-elimination operator, never selections; keep it
//!   only if it beats materializing nothing.
//! * [`greedy_add`] — greedy/approximate costing: hill-climb from the
//!   empty set, adding the single view with the largest cost reduction
//!   until no addition helps.

use spacetime_algebra::{ExprNode, OpKind};
use spacetime_cost::{CostCtx, CostModel, TransactionType};
use spacetime_memo::{GroupId, Memo};
use spacetime_storage::Catalog;

use crate::candidates::{candidate_groups, ViewSet};
use crate::evaluate::{evaluate_view_set, EvalConfig};
use crate::exhaustive::{optimal_view_set_over, OptimizeOutcome};
use crate::search::search_view_sets;

/// §5 "Using a Single Expression Tree": exhaustive search restricted to
/// the equivalence nodes of `tree` (which must already be represented in
/// the memo — typically the user's original view definition).
pub fn single_tree_optimize(
    memo: &Memo,
    catalog: &Catalog,
    model: &dyn CostModel,
    root: GroupId,
    tree: &ExprNode,
    txns: &[TransactionType],
    config: &EvalConfig,
) -> OptimizeOutcome {
    let root = memo.find(root);
    let mut candidates = Vec::new();
    collect_tree_groups(memo, tree, &mut candidates);
    candidates.retain(|&g| g != root && !memo.is_leaf(g));
    candidates.sort();
    candidates.dedup();
    optimal_view_set_over(memo, catalog, model, root, &candidates, txns, config, None)
}

fn collect_tree_groups(memo: &Memo, tree: &ExprNode, out: &mut Vec<GroupId>) {
    if let Some(g) = memo.find_tree(tree) {
        out.push(memo.find(g));
    }
    for c in &tree.children {
        collect_tree_groups(memo, c, out);
    }
}

/// §5 "Choosing a Single View Set": the rule-of-thumb marking over one
/// expression tree — materialize the (unique) parent of each join or
/// grouping/aggregation operator and the child of each duplicate
/// elimination operator; never materialize selections ("indices can be
/// used to efficiently obtain the tuples satisfying the desired
/// conditions").
pub fn rule_of_thumb_set(memo: &Memo, root: GroupId, tree: &ExprNode) -> ViewSet {
    let root = memo.find(root);
    let mut set = ViewSet::new();
    set.insert(root);
    mark_rule_of_thumb(memo, tree, &mut set);
    set.retain(|&g| g == root || !memo.is_leaf(g));
    set
}

fn mark_rule_of_thumb(memo: &Memo, tree: &ExprNode, set: &mut ViewSet) {
    match &tree.op {
        OpKind::Join { .. } | OpKind::Aggregate { .. } => {
            if let Some(g) = memo.find_tree(tree) {
                set.insert(memo.find(g));
            }
        }
        OpKind::Distinct => {
            if let Some(g) = memo.find_tree(&tree.children[0]) {
                set.insert(memo.find(g));
            }
        }
        OpKind::Scan { .. } | OpKind::Select { .. } | OpKind::Project { .. } => {}
    }
    for c in &tree.children {
        mark_rule_of_thumb(memo, c, set);
    }
}

/// Evaluate the rule-of-thumb marking, "provided that the cost of this
/// option is cheaper than the cost of not materializing any additional
/// views" — returns whichever of {marking, ∅} is cheaper.
pub fn rule_of_thumb_optimize(
    memo: &Memo,
    catalog: &Catalog,
    model: &dyn CostModel,
    root: GroupId,
    tree: &ExprNode,
    txns: &[TransactionType],
    config: &EvalConfig,
) -> OptimizeOutcome {
    let root = memo.find(root);
    let mut ctx = CostCtx::new(memo, catalog, model);
    let marked = rule_of_thumb_set(memo, root, tree);
    let empty: ViewSet = [root].into_iter().collect();
    let e_marked = evaluate_view_set(&mut ctx, catalog, root, &marked, txns, config);
    let e_empty = evaluate_view_set(&mut ctx, catalog, root, &empty, txns, config);
    let tracks_truncated = e_marked.tracks_truncated + e_empty.tracks_truncated;
    let (best, other) = if e_marked.weighted <= e_empty.weighted {
        (e_marked, e_empty)
    } else {
        (e_empty, e_marked)
    };
    OptimizeOutcome {
        best: best.clone(),
        evaluated: vec![best, other],
        sets_considered: 2,
        sets_pruned: 0,
        tracks_truncated,
        // Prices through a plain per-ctx CostCtx; no shared cache in play.
        query_cache_hits: 0,
        query_cache_misses: 0,
    }
}

/// Greedy hill-climbing: start from ∅ and repeatedly add the single
/// candidate view with the largest weighted-cost reduction; stop when no
/// addition improves. Evaluates O(n²) sets instead of 2ⁿ. Each round's
/// trial sets are priced in one [`search_view_sets`] engine run (parallel
/// workers, shared caches); the round winner under the engine's total
/// order — weighted cost, then size, then the set — matches the serial
/// first-strict-minimum rule, since all trials in a round have equal size
/// and candidate order is ascending.
pub fn greedy_add(
    memo: &Memo,
    catalog: &Catalog,
    model: &dyn CostModel,
    root: GroupId,
    txns: &[TransactionType],
    config: &EvalConfig,
) -> OptimizeOutcome {
    let root = memo.find(root);
    let candidates = candidate_groups(memo, root);
    let mut current: ViewSet = [root].into_iter().collect();
    let base = search_view_sets(
        memo,
        catalog,
        model,
        &[root],
        std::slice::from_ref(&current),
        txns,
        config,
    );
    let mut sets_considered = base.sets_considered;
    let mut sets_pruned = base.sets_pruned;
    let mut tracks_truncated = base.tracks_truncated;
    let mut query_cache_hits = base.query_cache_hits;
    let mut query_cache_misses = base.query_cache_misses;
    let mut current_eval = base.best;
    let mut evaluated = vec![current_eval.clone()];
    loop {
        let trials: Vec<ViewSet> = candidates
            .iter()
            .filter(|g| !current.contains(g))
            .map(|&g| {
                let mut trial = current.clone();
                trial.insert(g);
                trial
            })
            .collect();
        if trials.is_empty() {
            break;
        }
        let round = search_view_sets(memo, catalog, model, &[root], &trials, txns, config);
        sets_considered += round.sets_considered;
        sets_pruned += round.sets_pruned;
        tracks_truncated += round.tracks_truncated;
        query_cache_hits += round.query_cache_hits;
        query_cache_misses += round.query_cache_misses;
        if round.best.weighted < current_eval.weighted {
            current = round.best.view_set.clone();
            evaluated.push(round.best.clone());
            current_eval = round.best;
        } else {
            break;
        }
    }
    evaluated.sort_by(|a, b| a.weighted.total_cmp(&b.weighted));
    OptimizeOutcome {
        best: current_eval,
        evaluated,
        sets_considered,
        sets_pruned,
        tracks_truncated,
        query_cache_hits,
        query_cache_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::optimal_view_set;
    use crate::exhaustive::tests::{paper_setup, problem_dept_tree};
    use spacetime_cost::PageIoCostModel;

    #[test]
    fn single_tree_restricts_but_finds_good_sets() {
        let s = paper_setup();
        let model = PageIoCostModel::default();
        let config = EvalConfig::default();
        let tree = problem_dept_tree(&s.cat);
        let st = single_tree_optimize(&s.memo, &s.cat, &model, s.root, &tree, &s.txns, &config);
        let ex = optimal_view_set(&s.memo, &s.cat, &model, s.root, &s.txns, &config);
        assert!(st.sets_considered < ex.sets_considered);
        // The Figure-1-right tree contains N2 and N4 but *not* N3 — the
        // single-tree heuristic over this tree cannot find {N3}, which is
        // exactly the paper's warning about choosing the tree carefully.
        assert!(st.best.weighted >= ex.best.weighted);
    }

    #[test]
    fn single_tree_on_the_good_tree_finds_n3() {
        use spacetime_algebra::{AggExpr, AggFunc, ScalarExpr};
        let s = paper_setup();
        let model = PageIoCostModel::default();
        let config = EvalConfig::default();
        // Build Figure 1 (left): Select(Join(Agg(Emp), Dept)) — the tree
        // whose subviews include SumOfSals.
        let emp = spacetime_algebra::ExprNode::scan(&s.cat, "Emp").unwrap();
        let agg = spacetime_algebra::ExprNode::aggregate(
            emp,
            vec![1],
            vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum")],
        )
        .unwrap();
        // The memo stores this shape inside a projection wrapper produced
        // by the eager-aggregation rule; locate the aggregate group and
        // check the restricted search finds it.
        let n3 = s.memo.find_tree(&agg).expect("N3 must be in the DAG");
        let candidates = vec![s.memo.find(n3)];
        let out = optimal_view_set_over(
            &s.memo,
            &s.cat,
            &model,
            s.root,
            &candidates,
            &s.txns,
            &config,
            None,
        );
        assert_eq!(out.best.weighted, 3.5);
        assert!(out.best.view_set.contains(&s.memo.find(n3)));
    }

    #[test]
    fn rule_of_thumb_marks_joins_and_aggregates_not_selects() {
        let s = paper_setup();
        let tree = problem_dept_tree(&s.cat);
        let set = rule_of_thumb_set(&s.memo, s.root, &tree);
        // Tree: Select(Agg(Join(Emp, Dept))). Marks: N2 (parent of the
        // aggregate), N4 (parent of the join) — plus the root. The select
        // node itself (the root here) is the root anyway.
        assert!(set.contains(&s.memo.find(s.n4)));
        assert_eq!(set.len(), 3, "root + N2 + N4: {set:?}");
    }

    #[test]
    fn rule_of_thumb_optimize_never_loses_to_empty() {
        let s = paper_setup();
        let model = PageIoCostModel::default();
        let config = EvalConfig::default();
        let tree = problem_dept_tree(&s.cat);
        let out = rule_of_thumb_optimize(&s.memo, &s.cat, &model, s.root, &tree, &s.txns, &config);
        let mut ctx = CostCtx::new(&s.memo, &s.cat, &model);
        let empty: ViewSet = [s.root].into_iter().collect();
        let e = evaluate_view_set(&mut ctx, &s.cat, s.root, &empty, &s.txns, &config);
        assert!(out.best.weighted <= e.weighted);
        assert_eq!(out.sets_considered, 2);
    }

    #[test]
    fn greedy_finds_the_paper_optimum() {
        let s = paper_setup();
        let model = PageIoCostModel::default();
        let config = EvalConfig::default();
        let greedy = greedy_add(&s.memo, &s.cat, &model, s.root, &s.txns, &config);
        let ex = optimal_view_set(&s.memo, &s.cat, &model, s.root, &s.txns, &config);
        // On this example the benefit structure is submodular enough for
        // greedy to reach the optimum with far fewer evaluations.
        assert_eq!(greedy.best.weighted, ex.best.weighted);
        assert!(greedy.sets_considered < ex.sets_considered);
    }
}

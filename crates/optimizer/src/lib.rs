//! # spacetime-optimizer
//!
//! The paper's contribution: **choosing the optimal set of additional views
//! to materialize for the incremental maintenance of a materialized view
//! V** (Ross, Srivastava & Sudarshan, SIGMOD 1996).
//!
//! Pipeline: build `V`'s expression DAG (`spacetime-memo`), declare the
//! workload as weighted [`TransactionType`]s, then:
//!
//! * [`candidates`] — the space of view sets (§3.1): subsets of non-leaf
//!   equivalence nodes containing the root.
//! * [`tracks`] — subdags (Def. 3.2) and update tracks (Def. 3.3): the
//!   minimal ways of propagating a transaction's updates up the DAG to all
//!   materialized nodes, and the queries each track poses (§3.2),
//!   including the key-based query elimination of §3.6 ([`complete`]).
//! * [`evaluate`] — the cost of maintaining one view set for one
//!   transaction type: cheapest track's (multi-query-optimized) query cost
//!   plus the cost of applying updates to every materialized view (§3.4).
//! * [`exhaustive`] — Algorithm `OptimalViewSet` (Figure 4, Theorem 3.1).
//! * [`shielding`] — the Shielding Principle (Theorem 4.1): local
//!   optimization below articulation nodes restricts the search space
//!   without losing optimality.
//! * [`heuristics`] — the §5 pruning strategies: single expression tree,
//!   rule-of-thumb marking, and greedy hill-climbing.

pub mod candidates;
pub mod complete;
pub mod evaluate;
pub mod exhaustive;
pub mod heuristics;
pub mod multi;
pub mod search;
pub mod shielding;
pub mod track_catalog;
pub mod tracks;

pub use candidates::{candidate_groups, enumerate_view_sets, ViewSet};
pub use complete::delta_group_complete;
pub use evaluate::{
    evaluate_view_set, evaluate_with_catalog, EvalConfig, TxnEvaluation, ViewSetEvaluation,
};
pub use exhaustive::{optimal_view_set, optimal_view_set_over, OptimizeOutcome};
pub use heuristics::{greedy_add, rule_of_thumb_set, single_tree_optimize};
pub use multi::{evaluate_multi, optimal_view_set_multi};
pub use search::search_view_sets;
pub use shielding::shielding_optimize;
pub use track_catalog::{PreparedTrack, PreparedTracks, TrackCatalog};
pub use tracks::{
    enumerate_tracks, enumerate_tracks_multi, enumerate_tracks_multi_counted, track_queries,
    PosedQuery, PreparedQuery, TrackEnumeration, UpdateTrack,
};

pub use spacetime_cost::{Cost, CostModel, PageIoCostModel, TransactionType, UpdateKind};

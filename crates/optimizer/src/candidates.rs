//! The space of view sets (§3.1).
//!
//! > *"Given a view V, let E_V denote the set of all equivalence nodes in
//! > D_V, other than the leaf nodes. A view set is a subset of E_V. The
//! > space of possible views to materialize is the set of all subsets of
//! > E_V that include the equivalence node corresponding to V."*

use std::collections::BTreeSet;

use spacetime_memo::{descendant_groups, GroupId, Memo};

/// A set of materialized equivalence nodes (canonical group ids). Always
/// includes the root; leaves (base relations) are implicitly materialized
/// and never listed.
pub type ViewSet = BTreeSet<GroupId>;

/// The candidate equivalence nodes for additional materialization: every
/// non-leaf descendant of the root, excluding the root itself (which is
/// always materialized).
pub fn candidate_groups(memo: &Memo, root: GroupId) -> Vec<GroupId> {
    let root = memo.find(root);
    descendant_groups(memo, root)
        .into_iter()
        .filter(|&g| g != root && !memo.is_leaf(g))
        .collect()
}

/// Enumerate all view sets over the given candidates (the root is added to
/// each). `max_extra` caps the number of *additional* views per set
/// (`None` = unbounded, the full 2^n space).
pub fn enumerate_view_sets(
    root: GroupId,
    candidates: &[GroupId],
    max_extra: Option<usize>,
) -> Vec<ViewSet> {
    let n = candidates.len();
    assert!(
        n < 63,
        "view-set space 2^{n} is too large to enumerate exhaustively"
    );
    let mut out = Vec::with_capacity(1 << n);
    for mask in 0u64..(1u64 << n) {
        if let Some(cap) = max_extra {
            if mask.count_ones() as usize > cap {
                continue;
            }
        }
        let mut set = ViewSet::new();
        set.insert(root);
        for (i, &g) in candidates.iter().enumerate() {
            if mask & (1 << i) != 0 {
                set.insert(g);
            }
        }
        out.push(set);
    }
    out
}

/// Render a view set with the given namer (used by reports).
pub fn render_view_set(set: &ViewSet, root: GroupId, name: impl Fn(GroupId) -> String) -> String {
    let extras: Vec<String> = set
        .iter()
        .filter(|&&g| g != root)
        .map(|&g| name(g))
        .collect();
    if extras.is_empty() {
        "∅".to_string()
    } else {
        format!("{{{}}}", extras.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacetime_algebra::{ExprNode, JoinCondition, OpKind};
    use spacetime_memo::{explore, Memo};
    use spacetime_storage::{Catalog, DataType, Schema};

    fn chain_memo() -> (Catalog, Memo, GroupId) {
        let mut cat = Catalog::new();
        for (name, c1, c2) in [("R1", "a", "x"), ("R2", "x", "y"), ("R3", "y", "b")] {
            cat.create_table(
                name,
                Schema::of_table(name, &[(c1, DataType::Int), (c2, DataType::Int)]),
            )
            .unwrap();
        }
        let r1 = ExprNode::scan(&cat, "R1").unwrap();
        let r2 = ExprNode::scan(&cat, "R2").unwrap();
        let r3 = ExprNode::scan(&cat, "R3").unwrap();
        let j12 = ExprNode::join_on(r1, r2, &[("x", "R2.x")]).unwrap();
        let j = ExprNode::join_on(j12, r3, &[("y", "R3.y")]).unwrap();
        let mut memo = Memo::new();
        let root = memo.insert_tree(&j);
        memo.set_root(root);
        explore(&mut memo, &cat).unwrap();
        let root = memo.find(root);
        (cat, memo, root)
    }

    #[test]
    fn candidates_exclude_root_and_leaves() {
        let (_, memo, root) = chain_memo();
        let cands = candidate_groups(&memo, root);
        assert!(!cands.contains(&root));
        for &c in &cands {
            assert!(!memo.is_leaf(c));
        }
        // §3's example: for R1⋈R2⋈R3 the candidate *join* subviews are
        // R1⋈R2, R2⋈R3 and (via exploration) R1⋈R3-style intermediates.
        let join_cands = cands
            .iter()
            .filter(|&&g| {
                memo.group_ops(g)
                    .iter()
                    .any(|&o| matches!(memo.op(o).op, OpKind::Join { .. }))
            })
            .count();
        assert!(join_cands >= 2, "at least R1⋈R2 and R2⋈R3: {join_cands}");
    }

    #[test]
    fn enumeration_counts_match() {
        let root = GroupId(99);
        let cands = [GroupId(1), GroupId(2), GroupId(3)];
        let all = enumerate_view_sets(root, &cands, None);
        assert_eq!(all.len(), 8);
        assert!(all.iter().all(|s| s.contains(&root)));
        let capped = enumerate_view_sets(root, &cands, Some(1));
        assert_eq!(capped.len(), 4, "∅ plus three singletons");
    }

    #[test]
    fn paper_spj_example_lists_seven_nonempty_choices() {
        // "There are several choices of sets of additional views to
        // maintain, namely, {}, {R1⋈R2}, {R2⋈R3}, {R1⋈R3}, {R1⋈R2, R2⋈R3},
        // {R2⋈R3, R1⋈R3}, {R1⋈R2, R1⋈R3}" — with 3 join intermediates the
        // enumeration covers all of these (2³ = 8 sets including both-pairs
        // combinations).
        let root = GroupId(0);
        let joins = [GroupId(1), GroupId(2), GroupId(3)];
        let sets = enumerate_view_sets(root, &joins, Some(2));
        // ∅ + 3 singletons + 3 pairs = 7.
        assert_eq!(sets.len(), 7);
    }

    #[test]
    fn render_view_set_formats() {
        let root = GroupId(0);
        let mut s = ViewSet::new();
        s.insert(root);
        assert_eq!(render_view_set(&s, root, |g| format!("N{}", g.0)), "∅");
        s.insert(GroupId(3));
        assert_eq!(render_view_set(&s, root, |g| format!("N{}", g.0)), "{N3}");
    }

    #[test]
    fn join_condition_helper_compiles() {
        // Silence unused-import pedantry while documenting intent: the
        // candidate space is operator-agnostic.
        let _ = JoinCondition::on(vec![(0, 0)]);
    }
}

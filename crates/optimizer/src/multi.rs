//! Maintaining a *set* of views (§6).
//!
//! > *"Our results can be applied in a straightforward fashion to the
//! > problem of determining what views to additionally materialize for
//! > efficiently maintaining a set of materialized views. The key … is
//! > that the expression DAG representation can also be used to compactly
//! > represent the expression trees for a set of queries … the expression
//! > DAG … may therefore have multiple roots, and every view that must be
//! > materialized will be marked in the expression DAG. Other details of
//! > our algorithms remain unchanged."*
//!
//! [`optimal_view_set_multi`] does exactly that: all roots are forced into
//! every candidate marking, candidates are the union of the roots'
//! descendants, and — the §6 payoff — an auxiliary view shared by several
//! roots is paid for once but helps all of them. Update tracks
//! generalize for free because [`crate::tracks::enumerate_tracks`] already
//! seeds from *every* marked affected node.

use std::collections::BTreeSet;

use spacetime_cost::{CostCtx, CostModel, TransactionType};
use spacetime_memo::{GroupId, Memo};
use spacetime_storage::Catalog;

use crate::candidates::{candidate_groups, ViewSet};
use crate::evaluate::{evaluate_with_catalog, EvalConfig, ViewSetEvaluation};
use crate::exhaustive::OptimizeOutcome;
use crate::search::search_view_sets;
use crate::track_catalog::TrackCatalog;

/// Evaluate a marking that must cover several roots. Mirrors
/// [`crate::evaluate::evaluate_view_set`], with all roots' update costs
/// excluded under the default accounting (they are view outputs, not
/// auxiliaries).
pub fn evaluate_multi(
    ctx: &mut CostCtx<'_>,
    catalog: &Catalog,
    roots: &[GroupId],
    view_set: &ViewSet,
    txns: &[TransactionType],
    config: &EvalConfig,
) -> ViewSetEvaluation {
    // A synthetic super-root is unnecessary: tracks seed from every marked
    // affected node, with affectedness the union over all roots' scopes.
    let tcat = TrackCatalog::new(ctx.memo, catalog, roots, txns, config.max_tracks);
    evaluate_with_catalog(ctx, &tcat, view_set, config, None).expect("no abort threshold")
}

/// Exhaustive `OptimalViewSet` over a multi-rooted DAG: every root is
/// always marked; candidates are the union of non-root, non-leaf
/// descendants. `max_extra` caps additional views per set.
pub fn optimal_view_set_multi(
    memo: &Memo,
    catalog: &Catalog,
    model: &dyn CostModel,
    roots: &[GroupId],
    txns: &[TransactionType],
    config: &EvalConfig,
    max_extra: Option<usize>,
) -> OptimizeOutcome {
    let roots: Vec<GroupId> = roots.iter().map(|&r| memo.find(r)).collect();
    let root_set: BTreeSet<GroupId> = roots.iter().copied().collect();
    let mut candidates: Vec<GroupId> = Vec::new();
    for &r in &roots {
        for g in candidate_groups(memo, r) {
            if !root_set.contains(&g) && !candidates.contains(&g) {
                candidates.push(g);
            }
        }
    }
    let n = candidates.len();
    assert!(n < 63, "candidate space too large to enumerate");
    let mut sets: Vec<ViewSet> = Vec::new();
    for mask in 0u64..(1u64 << n) {
        if let Some(cap) = max_extra {
            if mask.count_ones() as usize > cap {
                continue;
            }
        }
        let mut set: ViewSet = root_set.clone();
        for (i, &g) in candidates.iter().enumerate() {
            if mask & (1 << i) != 0 {
                set.insert(g);
            }
        }
        sets.push(set);
    }
    search_view_sets(memo, catalog, model, &roots, &sets, txns, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::tests::{paper_catalog, problem_dept_tree};
    use spacetime_algebra::{AggExpr, AggFunc, ExprNode, ScalarExpr};
    use spacetime_cost::PageIoCostModel;
    use spacetime_memo::explore;

    /// Two views sharing the SumOfSals subexpression: ProblemDept plus a
    /// per-department salary report. One shared auxiliary (N3) should
    /// serve both — §6's "expression DAG … may therefore have multiple
    /// roots".
    #[test]
    fn shared_auxiliary_serves_two_roots() {
        let cat = paper_catalog();
        let mut memo = Memo::new();
        let v1 = memo.insert_tree(&problem_dept_tree(&cat));
        // V2: SELECT DName, SUM(Salary) ... GROUP BY DName over Emp, with
        // a projection so it is a *different* root than bare N3.
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let agg = ExprNode::aggregate(
            emp,
            vec![1],
            vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum")],
        )
        .unwrap();
        let v2_tree = ExprNode::select(
            agg,
            ScalarExpr::cmp(
                spacetime_algebra::CmpOp::Gt,
                ScalarExpr::col(1),
                ScalarExpr::lit(0),
            ),
        )
        .unwrap();
        let v2 = memo.insert_tree(&v2_tree);
        memo.set_root(v1);
        explore(&mut memo, &cat).unwrap();
        let (v1, v2) = (memo.find(v1), memo.find(v2));
        assert_ne!(v1, v2);

        let model = PageIoCostModel::default();
        let config = EvalConfig::default();
        let txns = vec![
            TransactionType::modify(">Emp", "Emp", 1.0),
            TransactionType::modify(">Dept", "Dept", 1.0),
        ];
        let outcome =
            optimal_view_set_multi(&memo, &cat, &model, &[v1, v2], &txns, &config, Some(2));
        // The optimum shares one auxiliary (N3) across both roots.
        let extras: Vec<GroupId> = outcome
            .best
            .view_set
            .iter()
            .copied()
            .filter(|&g| g != v1 && g != v2)
            .collect();
        assert_eq!(
            extras.len(),
            1,
            "one shared auxiliary: {:?}",
            outcome.best.view_set
        );
        // And it is the SumOfSals group: an aggregate over the Emp leaf.
        let n3 = extras[0];
        let is_sum_of_sals = memo
            .group_ops(n3)
            .iter()
            .any(|&o| matches!(memo.op(o).op, spacetime_algebra::OpKind::Aggregate { .. }));
        assert!(is_sum_of_sals);
        // Shared beats unshared: the multi optimum is no worse than
        // maintaining each root's local optimum separately *with two
        // copies of the auxiliary` (here: identical, since V2's query cost
        // through N3 is what the sharing saves).
        let empty: ViewSet = [v1, v2].into_iter().collect();
        let mut ctx = CostCtx::new(&memo, &cat, &model);
        let base = evaluate_multi(&mut ctx, &cat, &[v1, v2], &empty, &txns, &config);
        assert!(outcome.best.weighted < base.weighted);
    }

    #[test]
    fn multi_with_single_root_matches_single() {
        let cat = paper_catalog();
        let mut memo = Memo::new();
        let root = memo.insert_tree(&problem_dept_tree(&cat));
        memo.set_root(root);
        explore(&mut memo, &cat).unwrap();
        let root = memo.find(root);
        let model = PageIoCostModel::default();
        let config = EvalConfig::default();
        let txns = vec![
            TransactionType::modify(">Emp", "Emp", 1.0),
            TransactionType::modify(">Dept", "Dept", 1.0),
        ];
        let single = crate::exhaustive::optimal_view_set(&memo, &cat, &model, root, &txns, &config);
        let multi = optimal_view_set_multi(&memo, &cat, &model, &[root], &txns, &config, None);
        assert_eq!(single.best.weighted, multi.best.weighted);
        assert_eq!(single.sets_considered, multi.sets_considered);
    }
}

//! Algorithm `OptimalViewSet` (Figure 4, Theorem 3.1).
//!
//! Enumerate every view set (every subset of non-leaf equivalence nodes
//! containing the root), price each with [`evaluate_view_set`], and return
//! the one with the lowest workload-weighted maintenance cost. Valid under
//! any monotonic cost model.

use spacetime_cost::{CostModel, TransactionType};
use spacetime_memo::{GroupId, Memo};
use spacetime_storage::Catalog;

use crate::candidates::{candidate_groups, enumerate_view_sets, ViewSet};
use crate::evaluate::{EvalConfig, ViewSetEvaluation};
use crate::search::search_view_sets;

/// The result of an optimization run.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// The winning view set's full evaluation.
    pub best: ViewSetEvaluation,
    /// The best evaluations (at most [`EvalConfig::top_k`]), sorted by
    /// weighted cost (ascending).
    pub evaluated: Vec<ViewSetEvaluation>,
    /// Number of view sets considered (enumerated for evaluation).
    pub sets_considered: usize,
    /// Of those, how many were abandoned early by branch-and-bound
    /// pruning (their weighted cost provably exceeded the top-K
    /// threshold). Pruning never affects `best` or `evaluated`.
    pub sets_pruned: usize,
    /// Track-enumeration branches discarded by `max_tracks` across the
    /// run. Non-zero means some track spaces were not fully explored and
    /// the reported costs are upper bounds.
    pub tracks_truncated: usize,
    /// Probes of the cross-worker [`spacetime_cost::SharedQueryCache`]
    /// answered from the cache. Zero for entry points that price without
    /// the shared cache (e.g. `rule_of_thumb_optimize`).
    pub query_cache_hits: u64,
    /// Probes of the shared query-cost cache that missed and had to be
    /// priced. Lookups are `query_cache_hits + query_cache_misses`.
    pub query_cache_misses: u64,
}

impl OptimizeOutcome {
    /// The winning view set.
    pub fn best_set(&self) -> &ViewSet {
        &self.best.view_set
    }

    /// The additional views (best set minus the root).
    pub fn additional_views(&self, memo: &Memo, root: GroupId) -> Vec<GroupId> {
        let root = memo.find(root);
        self.best
            .view_set
            .iter()
            .copied()
            .filter(|&g| memo.find(g) != root)
            .collect()
    }
}

/// Exhaustive `OptimalViewSet` over the full candidate space.
pub fn optimal_view_set(
    memo: &Memo,
    catalog: &Catalog,
    model: &dyn CostModel,
    root: GroupId,
    txns: &[TransactionType],
    config: &EvalConfig,
) -> OptimizeOutcome {
    let candidates = candidate_groups(memo, root);
    optimal_view_set_over(memo, catalog, model, root, &candidates, txns, config, None)
}

/// Exhaustive search over an explicit candidate list (used by the
/// single-tree heuristic and the shielding decomposition), optionally
/// capping the number of additional views per set.
#[allow(clippy::too_many_arguments)]
pub fn optimal_view_set_over(
    memo: &Memo,
    catalog: &Catalog,
    model: &dyn CostModel,
    root: GroupId,
    candidates: &[GroupId],
    txns: &[TransactionType],
    config: &EvalConfig,
    max_extra: Option<usize>,
) -> OptimizeOutcome {
    let root = memo.find(root);
    let sets = enumerate_view_sets(root, candidates, max_extra);
    search_view_sets(memo, catalog, model, &[root], &sets, txns, config)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::candidates::render_view_set;
    use crate::evaluate::evaluate_view_set;
    use spacetime_algebra::{AggExpr, AggFunc, CmpOp, ExprNode, ExprTree, OpKind, ScalarExpr};
    use spacetime_cost::{Cost, CostCtx, PageIoCostModel};
    use spacetime_storage::{DataType, Schema, TableStats};

    /// The paper's sample database (§3.6): 1000 departments, 10000
    /// employees, uniform distribution, hash index on DName everywhere.
    pub fn paper_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "Emp",
            Schema::of_table(
                "Emp",
                &[
                    ("EName", DataType::Str),
                    ("DName", DataType::Str),
                    ("Salary", DataType::Int),
                ],
            ),
        )
        .unwrap();
        cat.declare_key("Emp", &["EName"]).unwrap();
        cat.create_index("Emp", &["DName"]).unwrap();
        cat.table_mut("Emp").unwrap().stats =
            TableStats::declared(10_000, [(0, 10_000), (1, 1_000), (2, 2_000)]);
        cat.create_table(
            "Dept",
            Schema::of_table(
                "Dept",
                &[
                    ("DName", DataType::Str),
                    ("MName", DataType::Str),
                    ("Budget", DataType::Int),
                ],
            ),
        )
        .unwrap();
        cat.declare_key("Dept", &["DName"]).unwrap();
        cat.table_mut("Dept").unwrap().stats =
            TableStats::declared(1_000, [(0, 1_000), (1, 950), (2, 600)]);
        cat
    }

    /// Figure 1 (right) tree for ProblemDept.
    pub fn problem_dept_tree(cat: &Catalog) -> ExprTree {
        let emp = ExprNode::scan(cat, "Emp").unwrap();
        let dept = ExprNode::scan(cat, "Dept").unwrap();
        let join = ExprNode::join_on(emp, dept, &[("Emp.DName", "Dept.DName")]).unwrap();
        let agg = ExprNode::aggregate(
            join,
            vec![3, 5],
            vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum")],
        )
        .unwrap();
        ExprNode::select(
            agg,
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(2), ScalarExpr::col(1)),
        )
        .unwrap()
    }

    pub struct PaperSetup {
        pub cat: Catalog,
        pub memo: Memo,
        pub root: GroupId,
        pub n3: GroupId,
        pub n4: GroupId,
        pub txns: Vec<TransactionType>,
    }

    pub fn paper_setup() -> PaperSetup {
        let cat = paper_catalog();
        let mut memo = Memo::new();
        let root = memo.insert_tree(&problem_dept_tree(&cat));
        memo.set_root(root);
        spacetime_memo::explore(&mut memo, &cat).unwrap();
        let root = memo.find(root);
        let n3 = find_group(&memo, |op, m, o| {
            matches!(op, OpKind::Aggregate { .. })
                && m.group_ops(m.op_children(o)[0])
                    .iter()
                    .any(|&c| matches!(&m.op(c).op, OpKind::Scan { table } if table == "Emp"))
        });
        let n4 = find_group(&memo, |op, m, o| {
            matches!(op, OpKind::Join { .. }) && m.op_children(o).iter().all(|&c| m.is_leaf(c))
        });
        let txns = vec![
            TransactionType::modify(">Emp", "Emp", 1.0),
            TransactionType::modify(">Dept", "Dept", 1.0),
        ];
        PaperSetup {
            cat,
            memo,
            root,
            n3,
            n4,
            txns,
        }
    }

    fn find_group(
        memo: &Memo,
        pred: impl Fn(&OpKind, &Memo, spacetime_memo::OpId) -> bool,
    ) -> GroupId {
        for g in memo.groups() {
            for op in memo.group_ops(g) {
                if pred(&memo.op(op).op, memo, op) {
                    return memo.find(g);
                }
            }
        }
        panic!("group not found");
    }

    fn eval_set(s: &PaperSetup, extras: &[GroupId]) -> ViewSetEvaluation {
        let model = PageIoCostModel::default();
        let mut set = ViewSet::new();
        set.insert(s.root);
        for &g in extras {
            set.insert(s.memo.find(g));
        }
        let mut ctx = CostCtx::new(&s.memo, &s.cat, &model);
        evaluate_view_set(
            &mut ctx,
            &s.cat,
            s.root,
            &set,
            &s.txns,
            &EvalConfig::default(),
        )
    }

    /// Reproduces the paper's combined-cost table (T4) exactly:
    ///
    /// |        |  ∅  | {N3} | {N4} |
    /// |--------|-----|------|------|
    /// | >Emp   | 13  |  5   |  16  |
    /// | >Dept  | 11  |  2   |  32  |
    #[test]
    fn paper_combined_cost_table_t4() {
        let s = paper_setup();
        let none = eval_set(&s, &[]);
        assert_eq!(none.txn_total(">Emp").unwrap(), Cost(13.0));
        assert_eq!(none.txn_total(">Dept").unwrap(), Cost(11.0));
        assert_eq!(none.weighted, 12.0, "paper: 12 page I/Os for strategy (a)");

        let with_n3 = eval_set(&s, &[s.n3]);
        assert_eq!(with_n3.txn_total(">Emp").unwrap(), Cost(5.0));
        assert_eq!(with_n3.txn_total(">Dept").unwrap(), Cost(2.0));
        assert_eq!(
            with_n3.weighted, 3.5,
            "paper: an average of 3.5 page I/Os per transaction"
        );

        let with_n4 = eval_set(&s, &[s.n4]);
        assert_eq!(with_n4.txn_total(">Emp").unwrap(), Cost(16.0));
        assert_eq!(with_n4.txn_total(">Dept").unwrap(), Cost(32.0));
        // "by making a wrong choice … the cost of view maintenance can be
        // worse than not materializing any additional views."
        assert!(with_n4.weighted > none.weighted);
    }

    /// The headline claim: strategy (b) ≈ 30% of strategy (a)'s cost.
    #[test]
    fn paper_headline_reduction() {
        let s = paper_setup();
        let none = eval_set(&s, &[]);
        let with_n3 = eval_set(&s, &[s.n3]);
        let ratio = with_n3.weighted / none.weighted;
        assert!(
            (ratio - 0.2917).abs() < 0.01,
            "3.5/12 ≈ 29% (\"about 30% of the cost\"); got {ratio}"
        );
    }

    /// {N3} wins "independent of the weighting for each transaction type".
    #[test]
    fn n3_dominates_for_every_weighting() {
        let s = paper_setup();
        let none = eval_set(&s, &[]);
        let with_n3 = eval_set(&s, &[s.n3]);
        let with_n4 = eval_set(&s, &[s.n4]);
        for (a, b) in [(">Emp", ">Dept")] {
            for (x, y) in [(&none, &with_n3), (&with_n4, &with_n3), (&with_n4, &none)] {
                assert!(x.txn_total(a).unwrap() >= y.txn_total(a).unwrap());
                assert!(x.txn_total(b).unwrap() >= y.txn_total(b).unwrap());
            }
        }
    }

    /// The full exhaustive run picks a set containing N3 (and achieving
    /// the {N3} cost) over the whole 2^n space.
    #[test]
    fn exhaustive_selects_n3() {
        let s = paper_setup();
        let model = PageIoCostModel::default();
        let outcome = optimal_view_set(
            &s.memo,
            &s.cat,
            &model,
            s.root,
            &s.txns,
            &EvalConfig::default(),
        );
        assert!(outcome.sets_considered >= 8);
        assert!(
            outcome.best.weighted <= 3.5,
            "at least as good as the paper's {{N3}}: {}",
            outcome.best.weighted
        );
        assert!(
            outcome.best_set().contains(&s.memo.find(s.n3)),
            "best = {}",
            render_view_set(outcome.best_set(), s.root, |g| format!("N{}", g.0))
        );
        // Sorted ascending.
        for w in outcome.evaluated.windows(2) {
            assert!(w[0].weighted <= w[1].weighted);
        }
    }

    /// Theorem 3.1 sanity: the exhaustive optimum is no worse than every
    /// singleton and the empty set (brute-force spot check).
    #[test]
    fn optimum_dominates_all_singletons() {
        let s = paper_setup();
        let model = PageIoCostModel::default();
        let outcome = optimal_view_set(
            &s.memo,
            &s.cat,
            &model,
            s.root,
            &s.txns,
            &EvalConfig::default(),
        );
        for g in candidate_groups(&s.memo, s.root) {
            let e = eval_set(&s, &[g]);
            assert!(outcome.best.weighted <= e.weighted + 1e-9);
        }
        let empty = eval_set(&s, &[]);
        assert!(outcome.best.weighted <= empty.weighted + 1e-9);
    }
}

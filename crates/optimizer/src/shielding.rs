//! The Shielding Principle (§4, Theorem 4.1).
//!
//! > *"If V1 ∈ Opt(V), and the equivalence node corresponding to V1 is an
//! > articulation node of D_V, then Opt(V1) = Opt(V) ∩ E_V1."*
//!
//! In general "suboptimal + suboptimal = optimal": common subexpressions
//! let locally-suboptimal plans combine into a globally optimal one, so
//! local optimization is unsound — *except* at articulation nodes, where
//! every path between the regions passes through the node.
//!
//! The search procedure exploits the theorem exactly as stated: when an
//! articulation node `N` **is** materialized, the choice below it is fixed
//! to the locally-computed optimum `Opt(N)` (collapsing `2^m` descendant
//! combinations to one — and `Opt(N)` is itself computed with shielding,
//! so nested articulation nodes compound the pruning); when `N` is **not**
//! materialized the theorem says nothing and its descendants are
//! enumerated freely — which matters: in the paper's own example the
//! winning set `{N3}` lies below the unmaterialized articulation node N2.

use std::collections::BTreeSet;

use spacetime_cost::{CostModel, TransactionType};
use spacetime_memo::{articulation_groups, descendant_groups, GroupId, Memo};
use spacetime_storage::Catalog;

use crate::candidates::{candidate_groups, ViewSet};
use crate::evaluate::EvalConfig;
use crate::exhaustive::OptimizeOutcome;
use crate::search::search_view_sets;

/// Optimize using the Shielding-Principle decomposition. Produces the same
/// optimum as [`crate::exhaustive::optimal_view_set`] (Theorem 4.1) while
/// evaluating fewer view sets when articulation nodes shield nontrivial
/// subdags. `sets_considered` includes the recursive local solves.
pub fn shielding_optimize(
    memo: &Memo,
    catalog: &Catalog,
    model: &dyn CostModel,
    root: GroupId,
    txns: &[TransactionType],
    config: &EvalConfig,
) -> OptimizeOutcome {
    solve(memo, catalog, model, memo.find(root), txns, config)
}

fn solve(
    memo: &Memo,
    catalog: &Catalog,
    model: &dyn CostModel,
    root: GroupId,
    txns: &[TransactionType],
    config: &EvalConfig,
) -> OptimizeOutcome {
    let candidates = candidate_groups(memo, root);
    let cand_set: BTreeSet<GroupId> = candidates.iter().copied().collect();
    let arts: Vec<GroupId> = articulation_groups(memo, root)
        .into_iter()
        .filter(|g| cand_set.contains(g))
        .collect();

    // Maximal articulation nodes (not strictly below another one).
    let top_arts: Vec<GroupId> = arts
        .iter()
        .copied()
        .filter(|&n| {
            !arts
                .iter()
                .any(|&m| m != n && descendant_groups(memo, m).contains(&n))
        })
        .collect();

    let mut sets_considered = 0usize;
    let mut query_cache_hits = 0u64;
    let mut query_cache_misses = 0u64;

    // Opt(N) for each shield, computed recursively (maintaining N as the
    // local root under the same workload).
    let mut art_regions: Vec<(GroupId, Vec<GroupId>, Vec<GroupId>)> = Vec::new();
    let mut shielded: BTreeSet<GroupId> = BTreeSet::new();
    for &n in &top_arts {
        let below = candidate_groups(memo, n);
        let local = solve(memo, catalog, model, n, txns, config);
        sets_considered += local.sets_considered;
        query_cache_hits += local.query_cache_hits;
        query_cache_misses += local.query_cache_misses;
        let extras: Vec<GroupId> = local
            .best
            .view_set
            .iter()
            .copied()
            .filter(|&g| memo.find(g) != memo.find(n))
            .collect();
        shielded.extend(below.iter().copied());
        art_regions.push((n, below, extras));
    }

    // Upper candidates: neither shielded nor shields themselves.
    let upper: Vec<GroupId> = candidates
        .iter()
        .copied()
        .filter(|g| !shielded.contains(g) && !top_arts.contains(g))
        .collect();
    assert!(upper.len() < 63, "upper region too large to enumerate");

    // Per-shield options: marked-with-Opt(N), or unmarked with every free
    // descendant combination.
    let art_options: Vec<Vec<(bool, Vec<GroupId>)>> = art_regions
        .iter()
        .map(|(_, below, local_extras)| {
            assert!(below.len() < 63, "shielded region too large to enumerate");
            let mut options = vec![(true, local_extras.clone())];
            for mask in 0u64..(1u64 << below.len()) {
                let extras: Vec<GroupId> = below
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &g)| g)
                    .collect();
                options.push((false, extras));
            }
            options
        })
        .collect();

    // Collect every combination set, then price them all in one engine
    // run (shared track catalog + query cache, parallel workers, pruning).
    let mut sets: Vec<ViewSet> = Vec::new();
    let mut idx = vec![0usize; art_options.len()];
    'outer: loop {
        for upper_mask in 0u64..(1u64 << upper.len()) {
            let mut set = ViewSet::new();
            set.insert(root);
            for (i, &g) in upper.iter().enumerate() {
                if upper_mask & (1 << i) != 0 {
                    set.insert(memo.find(g));
                }
            }
            for (k, options) in art_options.iter().enumerate() {
                let (marked, extras) = &options[idx[k]];
                if *marked {
                    set.insert(memo.find(art_regions[k].0));
                }
                for &g in extras {
                    set.insert(memo.find(g));
                }
            }
            sets.push(set);
        }
        // Odometer over the per-shield options.
        let mut pos = 0;
        loop {
            if pos == idx.len() {
                break 'outer;
            }
            idx[pos] += 1;
            if idx[pos] < art_options[pos].len() {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
        if idx.is_empty() {
            break;
        }
    }

    let mut outcome = search_view_sets(memo, catalog, model, &[root], &sets, txns, config);
    outcome.sets_considered += sets_considered;
    outcome.query_cache_hits += query_cache_hits;
    outcome.query_cache_misses += query_cache_misses;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::optimal_view_set;
    use crate::exhaustive::tests::paper_setup;
    use spacetime_algebra::{AggExpr, AggFunc, BinOp, CmpOp, ExprNode, ScalarExpr};
    use spacetime_cost::PageIoCostModel;
    use spacetime_memo::explore;
    use spacetime_storage::{DataType, Schema, TableStats};

    #[test]
    fn shielding_matches_exhaustive_on_paper_example() {
        let s = paper_setup();
        let model = PageIoCostModel::default();
        let config = EvalConfig::default();
        let ex = optimal_view_set(&s.memo, &s.cat, &model, s.root, &s.txns, &config);
        let sh = shielding_optimize(&s.memo, &s.cat, &model, s.root, &s.txns, &config);
        assert_eq!(
            sh.best.weighted, ex.best.weighted,
            "Theorem 4.1: same optimum"
        );
    }

    /// A stacked view (Figure-5 style, where aggregation can be neither
    /// pushed nor pulled) has articulation nodes at every level; shielding
    /// must agree with exhaustive while evaluating fewer sets.
    fn stacked_setup() -> (Catalog, Memo, GroupId, Vec<TransactionType>) {
        let mut cat = Catalog::new();
        for (name, cols) in [
            (
                "R",
                vec![("item", DataType::Str), ("region", DataType::Str)],
            ),
            (
                "S",
                vec![("item", DataType::Str), ("quantity", DataType::Int)],
            ),
            ("T", vec![("item", DataType::Str), ("price", DataType::Int)]),
        ] {
            cat.create_table(name, Schema::of_table(name, &cols))
                .unwrap();
        }
        cat.declare_key("T", &["item"]).unwrap();
        cat.create_index("S", &["item"]).unwrap();
        cat.create_index("R", &["item"]).unwrap();
        cat.table_mut("R").unwrap().stats = TableStats::declared(1_000, [(0, 500), (1, 10)]);
        cat.table_mut("S").unwrap().stats = TableStats::declared(5_000, [(0, 500), (1, 100)]);
        cat.table_mut("T").unwrap().stats = TableStats::declared(500, [(0, 500), (1, 200)]);

        // Select(Total > 100)(R ⋈ γ_{T.item; SUM(S.q * T.p)}(S ⋈ T))
        let s = ExprNode::scan(&cat, "S").unwrap();
        let t = ExprNode::scan(&cat, "T").unwrap();
        let st = ExprNode::join_on(s, t, &[("S.item", "T.item")]).unwrap();
        let agg = ExprNode::aggregate(
            st,
            vec![2],
            vec![AggExpr::new(
                AggFunc::Sum,
                ScalarExpr::bin(BinOp::Mul, ScalarExpr::col(1), ScalarExpr::col(3)),
                "Total",
            )],
        )
        .unwrap();
        let r = ExprNode::scan(&cat, "R").unwrap();
        let rj = ExprNode::join_on(r, agg, &[("R.item", "item")]).unwrap();
        let top = ExprNode::select(
            rj.clone(),
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(3), ScalarExpr::lit(100)),
        )
        .unwrap();
        let mut memo = Memo::new();
        let root = memo.insert_tree(&top);
        memo.set_root(root);
        explore(&mut memo, &cat).unwrap();
        let root = memo.find(root);
        let txns = vec![
            TransactionType::modify(">S", "S", 1.0),
            TransactionType::modify(">T", "T", 1.0).with_weight(2.0),
            TransactionType::insert("+R", "R", 1.0),
        ];
        (cat, memo, root, txns)
    }

    #[test]
    fn shielding_matches_exhaustive_on_stacked_view() {
        let (cat, memo, root, txns) = stacked_setup();
        let model = PageIoCostModel::default();
        let config = EvalConfig::default();
        let ex = optimal_view_set(&memo, &cat, &model, root, &txns, &config);
        let sh = shielding_optimize(&memo, &cat, &model, root, &txns, &config);
        assert_eq!(sh.best.weighted, ex.best.weighted);
        assert!(
            sh.sets_considered < ex.sets_considered,
            "shielding: {} vs exhaustive: {}",
            sh.sets_considered,
            ex.sets_considered
        );
    }
}

//! The parallel, cache-sharing, branch-and-bound view-set search engine.
//!
//! Every optimizer entry point (exhaustive, multi-root, shielding regions,
//! greedy rounds) reduces to the same job: price a list of candidate view
//! sets and keep the best (plus a top-K tail). This module does that job
//! once, well:
//!
//! * **Shared track catalog** — track enumeration and query preparation
//!   are hoisted out of the per-set loop into a [`TrackCatalog`] keyed by
//!   `(transaction, seed list)`, shared by every worker.
//! * **Parallel workers** — `std::thread::scope` workers claim set indices
//!   from an atomic counter; each holds its own `CostCtx` whose query-cost
//!   lookups go through one [`SharedQueryCache`], so pricing work done by
//!   any worker benefits all.
//! * **Branch-and-bound** — an atomic incumbent holds the current K-th
//!   best weighted cost; a set's evaluation is abandoned as soon as its
//!   monotone weighted partial sum exceeds it (see
//!   [`evaluate_with_catalog`]). The threshold only ever decreases, and
//!   pruning fires strictly above it, so the retained top-K — and in
//!   particular the winner — is identical with pruning on or off, and
//!   identical between serial and parallel runs.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use spacetime_cost::{CostCtx, CostModel, SharedQueryCache, TransactionType};
use spacetime_memo::{GroupId, Memo};
use spacetime_obs::{self as obs, names as metric};
use spacetime_storage::Catalog;

use crate::candidates::ViewSet;
use crate::evaluate::{evaluate_with_catalog, EvalConfig, ViewSetEvaluation};
use crate::exhaustive::OptimizeOutcome;
use crate::track_catalog::TrackCatalog;

/// Total order on evaluations: weighted cost, then set size, then the set
/// itself — a strict order, so sorting and top-K truncation are
/// deterministic regardless of evaluation order.
fn rank(a: &ViewSetEvaluation, b: &ViewSetEvaluation) -> std::cmp::Ordering {
    a.weighted
        .total_cmp(&b.weighted)
        .then_with(|| a.view_set.len().cmp(&b.view_set.len()))
        .then_with(|| a.view_set.cmp(&b.view_set))
}

/// The top-K accumulator plus the pruning threshold. The threshold is the
/// K-th best weighted cost seen so far (`+∞` until K sets have survived),
/// published as ordered `f64` bits for lock-free reads; it is monotone
/// non-increasing, and [`evaluate_with_catalog`] abandons a set only when
/// its lower bound strictly exceeds it — so no set that could enter the
/// final top-K is ever pruned.
struct TopK {
    k: usize,
    entries: Mutex<Vec<ViewSetEvaluation>>,
    threshold_bits: AtomicU64,
}

impl TopK {
    fn new(k: usize) -> Self {
        TopK {
            k: k.max(1),
            entries: Mutex::new(Vec::new()),
            threshold_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }

    fn threshold(&self) -> f64 {
        f64::from_bits(self.threshold_bits.load(Ordering::Acquire))
    }

    fn insert(&self, eval: ViewSetEvaluation) {
        let mut entries = self.entries.lock().expect("top-K lock");
        let pos = entries
            .binary_search_by(|e| rank(e, &eval))
            .unwrap_or_else(|p| p);
        entries.insert(pos, eval);
        entries.truncate(self.k);
        if entries.len() == self.k {
            self.threshold_bits
                .store(entries[self.k - 1].weighted.to_bits(), Ordering::Release);
        }
        // Live search progress: the current best weighted cost.
        obs::gauge_set(metric::OPT_INCUMBENT_COST, entries[0].weighted);
    }

    fn into_sorted(self) -> Vec<ViewSetEvaluation> {
        self.entries.into_inner().expect("top-K lock")
    }
}

/// Price every view set in `sets` under the workload and return the best
/// (with the top-K tail in `evaluated`, ascending). This is the engine
/// behind [`crate::exhaustive::optimal_view_set`],
/// [`crate::multi::optimal_view_set_multi`], the shielding combination
/// step and the greedy rounds.
pub fn search_view_sets(
    memo: &Memo,
    catalog: &Catalog,
    model: &dyn CostModel,
    roots: &[GroupId],
    sets: &[ViewSet],
    txns: &[TransactionType],
    config: &EvalConfig,
) -> OptimizeOutcome {
    let tcat = TrackCatalog::new(memo, catalog, roots, txns, config.max_tracks);
    let shared = SharedQueryCache::new();
    let top = TopK::new(config.top_k);
    let next = AtomicUsize::new(0);
    let pruned = AtomicUsize::new(0);

    let workers = match config.parallelism {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
    .min(sets.len().max(1));

    let run_worker = || {
        let mut ctx = CostCtx::with_shared_cache(memo, catalog, model, shared.clone());
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(set) = sets.get(i) else { break };
            let abort_above = if config.prune {
                let t = top.threshold();
                t.is_finite().then_some(t)
            } else {
                None
            };
            match evaluate_with_catalog(&mut ctx, &tcat, set, config, abort_above) {
                Some(mut eval) => {
                    eval.slim();
                    top.insert(eval);
                }
                None => {
                    pruned.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    };

    if workers <= 1 {
        run_worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(run_worker);
            }
        });
    }

    let evaluated = top.into_sorted();
    let best = evaluated.first().cloned().expect("at least one view set");
    let (query_cache_hits, query_cache_misses) = shared.stats();
    let outcome = OptimizeOutcome {
        best,
        evaluated,
        sets_considered: sets.len(),
        sets_pruned: pruned.into_inner(),
        tracks_truncated: tcat.tracks_truncated(),
        query_cache_hits,
        query_cache_misses,
    };
    obs::counter_add(metric::OPT_SETS_CONSIDERED, outcome.sets_considered as u64);
    obs::counter_add(metric::OPT_SETS_PRUNED, outcome.sets_pruned as u64);
    obs::counter_add(metric::OPT_TRACKS_TRUNCATED, outcome.tracks_truncated as u64);
    obs::gauge_set(metric::OPT_INCUMBENT_COST, outcome.best.weighted);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{candidate_groups, enumerate_view_sets};
    use crate::exhaustive::tests::paper_setup;
    use spacetime_cost::PageIoCostModel;

    fn paper_sets(s: &crate::exhaustive::tests::PaperSetup) -> Vec<ViewSet> {
        let candidates = candidate_groups(&s.memo, s.root);
        enumerate_view_sets(s.root, &candidates, None)
    }

    #[test]
    fn serial_and_parallel_agree_exactly() {
        let s = paper_setup();
        let model = PageIoCostModel::default();
        let sets = paper_sets(&s);
        let serial = EvalConfig {
            parallelism: 1,
            prune: false,
            ..EvalConfig::default()
        };
        let parallel = EvalConfig {
            parallelism: 4,
            prune: true,
            ..EvalConfig::default()
        };
        let a = search_view_sets(&s.memo, &s.cat, &model, &[s.root], &sets, &s.txns, &serial);
        let b = search_view_sets(
            &s.memo, &s.cat, &model, &[s.root], &sets, &s.txns, &parallel,
        );
        assert_eq!(a.best.view_set, b.best.view_set);
        assert_eq!(a.best.weighted.to_bits(), b.best.weighted.to_bits());
        assert_eq!(a.evaluated.len(), b.evaluated.len());
        for (x, y) in a.evaluated.iter().zip(&b.evaluated) {
            assert_eq!(x.view_set, y.view_set);
            assert_eq!(x.weighted.to_bits(), y.weighted.to_bits());
        }
    }

    #[test]
    fn top_k_truncates_and_stays_sorted() {
        let s = paper_setup();
        let model = PageIoCostModel::default();
        let sets = paper_sets(&s);
        assert!(sets.len() > 3);
        let config = EvalConfig {
            top_k: 3,
            parallelism: 1,
            ..EvalConfig::default()
        };
        let out = search_view_sets(&s.memo, &s.cat, &model, &[s.root], &sets, &s.txns, &config);
        assert_eq!(out.evaluated.len(), 3);
        assert_eq!(out.sets_considered, sets.len());
        for w in out.evaluated.windows(2) {
            assert!(rank(&w[0], &w[1]).is_lt());
        }
        assert_eq!(out.best.view_set, out.evaluated[0].view_set);
    }

    #[test]
    fn pruning_never_changes_the_top_k() {
        let s = paper_setup();
        let model = PageIoCostModel::default();
        let sets = paper_sets(&s);
        for top_k in [1, 2, 4] {
            let plain = EvalConfig {
                top_k,
                parallelism: 1,
                prune: false,
                ..EvalConfig::default()
            };
            let pruned = EvalConfig {
                prune: true,
                ..plain
            };
            let a = search_view_sets(&s.memo, &s.cat, &model, &[s.root], &sets, &s.txns, &plain);
            let b = search_view_sets(&s.memo, &s.cat, &model, &[s.root], &sets, &s.txns, &pruned);
            assert_eq!(a.evaluated.len(), b.evaluated.len());
            for (x, y) in a.evaluated.iter().zip(&b.evaluated) {
                assert_eq!(x.view_set, y.view_set, "top_k={top_k}");
                assert_eq!(x.weighted.to_bits(), y.weighted.to_bits());
            }
        }
    }
}

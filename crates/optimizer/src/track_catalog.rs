//! A cross-view-set catalog of prepared update tracks.
//!
//! The exhaustive search evaluates up to `2^n` view sets, and the seed
//! version re-enumerated every transaction's update tracks — and re-derived
//! every track's posed queries — once *per set*. But a track enumeration
//! depends on the marking only through its **seeds** (the marked affected
//! non-leaf nodes), and a track's query set depends on the marking only
//! through regime-2 aggregate suppression, which
//! [`crate::tracks::prepare_track_queries`] records as a condition instead
//! of resolving. So the expensive work keys on `(transaction, seed list)`
//! — a space that is usually far smaller than the set space — and can be
//! computed once and shared by every view set (and every worker thread)
//! that lands on the same key.
//!
//! The catalog also memoizes per-`(transaction, group)` update-application
//! costs, which never depend on the marking at all.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, RwLock};

use spacetime_cost::{Cost, CostCtx, TransactionType};
use spacetime_memo::{affected_groups, GroupId, Memo};
use spacetime_storage::Catalog;

use crate::candidates::ViewSet;
use crate::tracks::{
    enumerate_tracks_multi_counted, prepare_track_queries, PreparedQuery, UpdateTrack,
};

/// One track with its prepared (marking-independent) query lists, one list
/// per table update of the owning transaction.
#[derive(Debug, Clone)]
pub struct PreparedTrack {
    /// The track.
    pub track: UpdateTrack,
    /// Prepared queries, indexed like the transaction's `updates`.
    pub queries: Vec<Vec<PreparedQuery>>,
}

/// All prepared tracks for one `(transaction, seed list)` key.
#[derive(Debug, Clone)]
pub struct PreparedTracks {
    /// The tracks, in enumeration order.
    pub tracks: Vec<PreparedTrack>,
    /// Branches the `max_tracks` cap discarded (`0` = exhaustive).
    pub truncated: usize,
}

struct TxnCache {
    /// Groups affected by this transaction (union over all roots).
    affected: BTreeSet<GroupId>,
    /// Prepared tracks keyed by the seed list exactly as the enumerator
    /// derives it from a marking (order matters: it fixes track order).
    tracks_by_seeds: RwLock<HashMap<Vec<GroupId>, Arc<PreparedTracks>>>,
    /// Marking-independent update-application cost per materialized group.
    apply_cost: RwLock<HashMap<GroupId, Cost>>,
}

/// Shared, thread-safe catalog of prepared tracks for one optimization run
/// (fixed memo, roots, workload and track cap).
pub struct TrackCatalog<'a> {
    memo: &'a Memo,
    catalog: &'a Catalog,
    roots: Vec<GroupId>,
    txns: &'a [TransactionType],
    max_tracks: usize,
    per_txn: Vec<TxnCache>,
}

impl<'a> TrackCatalog<'a> {
    /// Build a catalog. `roots` are canonicalized, deduplicated and
    /// sorted; per-transaction affected sets are precomputed.
    pub fn new(
        memo: &'a Memo,
        catalog: &'a Catalog,
        roots: &[GroupId],
        txns: &'a [TransactionType],
        max_tracks: usize,
    ) -> Self {
        let root_set: BTreeSet<GroupId> = roots.iter().map(|&r| memo.find(r)).collect();
        let roots: Vec<GroupId> = root_set.into_iter().collect();
        let per_txn = txns
            .iter()
            .map(|txn| {
                let updated = txn.updated_tables();
                let mut affected: BTreeSet<GroupId> = BTreeSet::new();
                for &root in &roots {
                    affected.extend(affected_groups(memo, root, &updated));
                }
                TxnCache {
                    affected,
                    tracks_by_seeds: RwLock::new(HashMap::new()),
                    apply_cost: RwLock::new(HashMap::new()),
                }
            })
            .collect();
        TrackCatalog {
            memo,
            catalog,
            roots,
            txns,
            max_tracks,
            per_txn,
        }
    }

    /// The canonical roots.
    pub fn roots(&self) -> &[GroupId] {
        &self.roots
    }

    /// Whether `g` (canonical) is one of the roots.
    pub fn is_root(&self, g: GroupId) -> bool {
        self.roots.binary_search(&g).is_ok()
    }

    /// The workload.
    pub fn txns(&self) -> &'a [TransactionType] {
        self.txns
    }

    /// The seed list a marking induces for one transaction — the cache
    /// key. Must mirror [`crate::tracks::enumerate_tracks_multi_counted`]
    /// exactly, including order.
    fn seeds(&self, txn_idx: usize, view_set: &ViewSet) -> Vec<GroupId> {
        let affected = &self.per_txn[txn_idx].affected;
        view_set
            .iter()
            .map(|&g| self.memo.find(g))
            .filter(|g| affected.contains(g) && !self.memo.is_leaf(*g))
            .collect()
    }

    /// The prepared tracks for `(transaction, marking)`, enumerating and
    /// preparing on first use of the induced seed list. Concurrent misses
    /// on the same key may both compute; they produce identical values and
    /// the first insert wins.
    pub fn prepared(
        &self,
        txn_idx: usize,
        view_set: &ViewSet,
        ctx: &mut CostCtx<'_>,
    ) -> Arc<PreparedTracks> {
        let seeds = self.seeds(txn_idx, view_set);
        let cache = &self.per_txn[txn_idx].tracks_by_seeds;
        if let Ok(map) = cache.read() {
            if let Some(hit) = map.get(&seeds) {
                return Arc::clone(hit);
            }
        }
        let txn = &self.txns[txn_idx];
        let updated = txn.updated_tables();
        let enumeration = enumerate_tracks_multi_counted(
            self.memo,
            &self.roots,
            view_set,
            &updated,
            self.max_tracks,
        );
        let tracks = enumeration
            .tracks
            .into_iter()
            .map(|track| {
                let queries = txn
                    .updates
                    .iter()
                    .map(|u| prepare_track_queries(ctx, self.catalog, &track, u))
                    .collect();
                PreparedTrack { track, queries }
            })
            .collect();
        let prepared = Arc::new(PreparedTracks {
            tracks,
            truncated: enumeration.truncated,
        });
        match cache.write() {
            Ok(mut map) => Arc::clone(map.entry(seeds).or_insert(prepared)),
            Err(_) => prepared,
        }
    }

    /// The (marking-independent) cost of applying one transaction's deltas
    /// to a materialized group, memoized across view sets and threads.
    pub fn apply_cost(&self, txn_idx: usize, g: GroupId, ctx: &mut CostCtx<'_>) -> Cost {
        let cache = &self.per_txn[txn_idx].apply_cost;
        if let Ok(map) = cache.read() {
            if let Some(&c) = map.get(&g) {
                return c;
            }
        }
        let c = ctx.update_apply_cost(g, &self.txns[txn_idx]);
        if let Ok(mut map) = cache.write() {
            map.insert(g, c);
        }
        c
    }

    /// Total branches discarded by the `max_tracks` cap across all cached
    /// enumerations (`0` = every enumeration was exhaustive).
    pub fn tracks_truncated(&self) -> usize {
        self.per_txn
            .iter()
            .map(|t| {
                t.tracks_by_seeds
                    .read()
                    .map(|m| m.values().map(|p| p.truncated).sum::<usize>())
                    .unwrap_or(0)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::tests::paper_setup;
    use crate::tracks::{enumerate_tracks, resolve_prepared, track_queries};
    use spacetime_cost::PageIoCostModel;

    #[test]
    fn prepared_tracks_match_direct_enumeration() {
        let s = paper_setup();
        let model = PageIoCostModel::default();
        let mut ctx = CostCtx::new(&s.memo, &s.cat, &model);
        let tcat = TrackCatalog::new(&s.memo, &s.cat, &[s.root], &s.txns, 4096);
        for extras in [vec![], vec![s.n3], vec![s.n4], vec![s.n3, s.n4]] {
            let mut set: ViewSet = extras.into_iter().collect();
            set.insert(s.root);
            for (ti, txn) in s.txns.iter().enumerate() {
                let updated = txn.updated_tables();
                let direct = enumerate_tracks(&s.memo, s.root, &set, &updated, 4096);
                let prepared = tcat.prepared(ti, &set, &mut ctx);
                assert_eq!(prepared.truncated, 0);
                assert_eq!(prepared.tracks.len(), direct.len());
                for (pt, dt) in prepared.tracks.iter().zip(&direct) {
                    assert_eq!(&pt.track, dt);
                    for (u, qs) in txn.updates.iter().zip(&pt.queries) {
                        let resolved = resolve_prepared(qs, &set);
                        let legacy = track_queries(&mut ctx, &s.cat, dt, &set, u);
                        assert_eq!(resolved, legacy);
                    }
                }
            }
        }
    }

    #[test]
    fn seed_sharing_collapses_equivalent_markings() {
        let s = paper_setup();
        let model = PageIoCostModel::default();
        let mut ctx = CostCtx::new(&s.memo, &s.cat, &model);
        let tcat = TrackCatalog::new(&s.memo, &s.cat, &[s.root], &s.txns, 4096);
        // Two markings that induce the same seeds for >Dept share one
        // enumeration (pointer-equal Arc).
        let base: ViewSet = [s.root].into_iter().collect();
        let a = tcat.prepared(0, &base, &mut ctx);
        let b = tcat.prepared(0, &base.clone(), &mut ctx);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn apply_cost_is_memoized_and_correct() {
        let s = paper_setup();
        let model = PageIoCostModel::default();
        let mut ctx = CostCtx::new(&s.memo, &s.cat, &model);
        let tcat = TrackCatalog::new(&s.memo, &s.cat, &[s.root], &s.txns, 4096);
        let n3 = s.memo.find(s.n3);
        let direct = {
            let mut fresh = CostCtx::new(&s.memo, &s.cat, &model);
            fresh.update_apply_cost(n3, &s.txns[0])
        };
        assert_eq!(tcat.apply_cost(0, n3, &mut ctx), direct);
        assert_eq!(tcat.apply_cost(0, n3, &mut ctx), direct);
    }
}

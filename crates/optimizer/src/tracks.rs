//! Subdags and update tracks (Defs. 3.2–3.3), and the queries a track
//! poses.
//!
//! A *subdag* picks one operation node per needed equivalence node — "it
//! suffices for each equivalence node to compute its update using one of
//! its child operation nodes". An *update track* is the restriction of a
//! subdag to the nodes affected by a transaction type; it is the unit the
//! optimizer prices: propagating a transaction's deltas along the track
//! poses queries on the non-delta inputs of each operation node, and those
//! queries' cost depends on which views are materialized.

use std::collections::{BTreeMap, BTreeSet};

use spacetime_cost::{CostCtx, TableUpdate, TransactionType, UpdateKind};
use spacetime_memo::{affected_groups, GroupId, Memo, OpId};
use spacetime_storage::Catalog;

use spacetime_algebra::{AggFunc, OpKind};

use crate::candidates::ViewSet;
use crate::complete::delta_group_complete;

/// One way of propagating a transaction's updates to every materialized
/// view: the affected groups with their chosen operation nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateTrack {
    /// Chosen operation node per affected non-leaf group on the track.
    pub choices: BTreeMap<GroupId, OpId>,
    /// All groups affected by the transaction (leaves included).
    pub affected: BTreeSet<GroupId>,
}

impl UpdateTrack {
    /// Groups on the track (in deterministic order).
    pub fn groups(&self) -> impl Iterator<Item = GroupId> + '_ {
        self.choices.keys().copied()
    }

    /// Render as the paper's node lists (e.g. `N1,E1,N2,E2,N3,E4,N5`),
    /// using a naming function.
    pub fn render(
        &self,
        memo: &Memo,
        group_name: impl Fn(GroupId) -> String,
        op_name: impl Fn(OpId) -> String,
    ) -> String {
        // Roots of the track (groups nobody on the track feeds) first,
        // then depth-first toward the leaves — the paper's ordering.
        let fed: BTreeSet<GroupId> = self
            .choices
            .values()
            .flat_map(|&op| memo.op_children(op))
            .collect();
        let mut parts = Vec::new();
        let mut visited = BTreeSet::new();
        let mut stack: Vec<GroupId> = self
            .choices
            .keys()
            .copied()
            .filter(|g| !fed.contains(g))
            .rev()
            .collect();
        while let Some(g) = stack.pop() {
            if !visited.insert(g) {
                continue;
            }
            parts.push(group_name(g));
            if let Some(&op) = self.choices.get(&g) {
                parts.push(op_name(op));
                for c in memo.op_children(op).into_iter().rev() {
                    if self.affected.contains(&c) {
                        stack.push(c);
                    }
                }
            }
        }
        parts.dedup();
        parts.join(",")
    }
}

/// The result of a (possibly capped) track enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackEnumeration {
    /// The enumerated tracks (at most `max_tracks` of them).
    pub tracks: Vec<UpdateTrack>,
    /// How many search branches were abandoned because the cap was hit.
    /// `0` means the enumeration was exhaustive.
    pub truncated: usize,
}

/// Enumerate the update tracks for a transaction that updates
/// `updated_tables`, given the marked view set. Deltas must reach every
/// affected marked node; each affected non-leaf node on the way picks one
/// operation node.
pub fn enumerate_tracks(
    memo: &Memo,
    root: GroupId,
    marked: &ViewSet,
    updated_tables: &[&str],
    max_tracks: usize,
) -> Vec<UpdateTrack> {
    enumerate_tracks_multi(memo, &[root], marked, updated_tables, max_tracks)
}

/// Multi-rooted variant (§6): deltas must reach the marked affected nodes
/// under *any* of the roots, so affectedness is the union over the roots'
/// scopes and one track covers every root at once.
pub fn enumerate_tracks_multi(
    memo: &Memo,
    roots: &[GroupId],
    marked: &ViewSet,
    updated_tables: &[&str],
    max_tracks: usize,
) -> Vec<UpdateTrack> {
    enumerate_tracks_multi_counted(memo, roots, marked, updated_tables, max_tracks).tracks
}

/// Like [`enumerate_tracks_multi`], but reports how many branches the
/// `max_tracks` cap discarded instead of truncating silently.
pub fn enumerate_tracks_multi_counted(
    memo: &Memo,
    roots: &[GroupId],
    marked: &ViewSet,
    updated_tables: &[&str],
    max_tracks: usize,
) -> TrackEnumeration {
    let mut affected: BTreeSet<GroupId> = BTreeSet::new();
    for &root in roots {
        affected.extend(affected_groups(memo, memo.find(root), updated_tables));
    }
    // Seeds: affected materialized nodes (the root is always materialized).
    let seeds: Vec<GroupId> = marked
        .iter()
        .map(|&g| memo.find(g))
        .filter(|g| affected.contains(g) && !memo.is_leaf(*g))
        .collect();
    if seeds.is_empty() {
        return TrackEnumeration {
            tracks: vec![UpdateTrack {
                choices: BTreeMap::new(),
                affected,
            }],
            truncated: 0,
        };
    }
    let mut out = Vec::new();
    let mut truncated = 0usize;
    let mut choices = BTreeMap::new();
    recurse(
        memo,
        &affected,
        seeds,
        &mut choices,
        &mut out,
        max_tracks,
        &mut truncated,
    );
    TrackEnumeration {
        tracks: out,
        truncated,
    }
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    memo: &Memo,
    affected: &BTreeSet<GroupId>,
    mut pending: Vec<GroupId>,
    choices: &mut BTreeMap<GroupId, OpId>,
    out: &mut Vec<UpdateTrack>,
    max_tracks: usize,
    truncated: &mut usize,
) {
    if out.len() >= max_tracks {
        *truncated += 1;
        return;
    }
    // Next group that still needs an operation choice.
    let next = loop {
        match pending.pop() {
            Some(g) => {
                let g = memo.find(g);
                if choices.contains_key(&g) || memo.is_leaf(g) {
                    continue;
                }
                break Some(g);
            }
            None => break None,
        }
    };
    let Some(g) = next else {
        if is_acyclic(memo, choices) {
            out.push(UpdateTrack {
                choices: choices.clone(),
                affected: affected.clone(),
            });
        }
        return;
    };
    for op in memo.group_ops(g) {
        let children = memo.op_children(op);
        let mut new_pending = pending.clone();
        for c in children {
            if affected.contains(&c) && !memo.is_leaf(c) && !choices.contains_key(&c) {
                new_pending.push(c);
            }
        }
        choices.insert(g, op);
        recurse(memo, affected, new_pending, choices, out, max_tracks, truncated);
        choices.remove(&g);
    }
}

/// Reject assignments whose chosen-op graph contains a cycle (possible
/// only through exotic merges; such an assignment admits no evaluation
/// order).
fn is_acyclic(memo: &Memo, choices: &BTreeMap<GroupId, OpId>) -> bool {
    let mut state: BTreeMap<GroupId, u8> = BTreeMap::new(); // 1=visiting, 2=done
    fn dfs(
        memo: &Memo,
        choices: &BTreeMap<GroupId, OpId>,
        g: GroupId,
        state: &mut BTreeMap<GroupId, u8>,
    ) -> bool {
        match state.get(&g) {
            Some(1) => return false,
            Some(2) => return true,
            _ => {}
        }
        state.insert(g, 1);
        if let Some(&op) = choices.get(&g) {
            for c in memo.op_children(op) {
                if !dfs(memo, choices, c, state) {
                    return false;
                }
            }
        }
        state.insert(g, 2);
        true
    }
    choices.keys().all(|&g| dfs(memo, choices, g, &mut state))
}

/// One query posed while propagating a delta along a track (§3.2's
/// Q2Ld/Q5Re objects).
#[derive(Debug, Clone, PartialEq)]
pub struct PosedQuery {
    /// The operation node that generates the query.
    pub at_op: OpId,
    /// The equivalence node the query is posed on.
    pub queried: GroupId,
    /// Binding columns of the queried node.
    pub cols: Vec<usize>,
    /// Expected distinct probe keys per transaction.
    pub probes: f64,
    /// Which input of the operation the query is on (`L`/`R`/`-`).
    pub side: char,
    /// The updated base table that generated this query.
    pub source_table: String,
}

/// A posed query prepared independently of the marking. Everything about a
/// track's query set except one thing is a function of the memo, the
/// catalog and the transaction alone; the one marking-dependent piece —
/// regime-2 suppression of invertible aggregates whose *output* node is
/// materialized — is recorded as a condition instead of being resolved, so
/// the prepared list can be computed once and shared across every view set
/// that uses the track.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedQuery {
    /// The query, fully resolved (probes, binding, source).
    pub query: PosedQuery,
    /// If `Some(g)`: drop this query whenever `g` (canonical) is in the
    /// marking — the aggregate at `g` is self-maintainable from its own
    /// materialized output.
    pub suppress_if_marked: Option<GroupId>,
}

/// Derive the marking-independent prepared queries for propagating one
/// table's update along a track. Implements the three costing regimes at
/// aggregates: key-based elimination (Q3d) and the input re-query are
/// resolved here; self-maintainable suppression (Q4e under {N3}) becomes a
/// [`PreparedQuery::suppress_if_marked`] condition.
pub fn prepare_track_queries(
    ctx: &mut CostCtx<'_>,
    catalog: &Catalog,
    track: &UpdateTrack,
    update: &TableUpdate,
) -> Vec<PreparedQuery> {
    let memo = ctx.memo;
    let mut out = Vec::new();
    for (&g, &op) in &track.choices {
        let node = memo.op(op);
        let children = memo.op_children(op);
        match &node.op {
            OpKind::Join { condition } => {
                for (side_idx, &child) in children.iter().enumerate() {
                    // The child carries a delta if it is affected by this
                    // particular table update.
                    let d = ctx.delta_for(child, update);
                    if d.is_zero() {
                        continue;
                    }
                    let other = children[1 - side_idx];
                    let other_cols = if side_idx == 0 {
                        condition.right_cols()
                    } else {
                        condition.left_cols()
                    };
                    out.push(PreparedQuery {
                        query: PosedQuery {
                            at_op: op,
                            queried: other,
                            cols: other_cols,
                            probes: d.size.max(1.0).min(ctx.card(child).max(1.0)),
                            side: if side_idx == 0 { 'R' } else { 'L' },
                            source_table: update.table.clone(),
                        },
                        suppress_if_marked: None,
                    });
                }
            }
            OpKind::Aggregate { group_by, aggs } => {
                let child = children[0];
                let d = ctx.delta_for(child, update);
                if d.is_zero() {
                    continue;
                }
                // Regime 1: key-eliminated (the delta holds whole groups).
                if delta_group_complete(memo, catalog, track, child, group_by, &update.table) {
                    continue;
                }
                // Regime 2: self-maintainable from the marked output —
                // marking-dependent, so deferred to filter time.
                let invertible = match d.kind {
                    UpdateKind::Insert => aggs.iter().all(|a| a.func != AggFunc::Avg),
                    UpdateKind::Modify => aggs.iter().all(|a| a.func.invertible()),
                    UpdateKind::Delete => false,
                };
                // Regime 3: re-query the input per affected group.
                let groups_touched = ctx.delta_for(g, update).size.max(1.0);
                out.push(PreparedQuery {
                    query: PosedQuery {
                        at_op: op,
                        queried: child,
                        cols: group_by.clone(),
                        probes: groups_touched,
                        side: '-',
                        source_table: update.table.clone(),
                    },
                    suppress_if_marked: invertible.then(|| memo.find(g)),
                });
            }
            OpKind::Distinct => {
                let child = children[0];
                let d = ctx.delta_for(child, update);
                if d.is_zero() {
                    continue;
                }
                let arity = memo.schema(child).arity();
                out.push(PreparedQuery {
                    query: PosedQuery {
                        at_op: op,
                        queried: child,
                        cols: (0..arity).collect(),
                        probes: d.size.max(1.0),
                        side: '-',
                        source_table: update.table.clone(),
                    },
                    suppress_if_marked: None,
                });
            }
            OpKind::Scan { .. } | OpKind::Select { .. } | OpKind::Project { .. } => {}
        }
        let _ = g;
    }
    out
}

/// Resolve a prepared query list against a concrete marking: keep every
/// query whose suppression condition does not fire.
pub fn resolve_prepared(prepared: &[PreparedQuery], marked: &ViewSet) -> Vec<PosedQuery> {
    prepared
        .iter()
        .filter(|p| match p.suppress_if_marked {
            Some(g) => !marked.contains(&g),
            None => true,
        })
        .map(|p| p.query.clone())
        .collect()
}

/// Derive the queries posed when propagating one table's update along a
/// track under a concrete marking. Equivalent to
/// [`prepare_track_queries`] followed by [`resolve_prepared`].
pub fn track_queries(
    ctx: &mut CostCtx<'_>,
    catalog: &Catalog,
    track: &UpdateTrack,
    marked: &ViewSet,
    update: &TableUpdate,
) -> Vec<PosedQuery> {
    let prepared = prepare_track_queries(ctx, catalog, track, update);
    resolve_prepared(&prepared, marked)
}

/// Derive all queries for a whole transaction (sequential propagation of
/// each table's update).
pub fn txn_queries(
    ctx: &mut CostCtx<'_>,
    catalog: &Catalog,
    track: &UpdateTrack,
    marked: &ViewSet,
    txn: &TransactionType,
) -> Vec<PosedQuery> {
    let mut out = Vec::new();
    for u in &txn.updates {
        out.extend(track_queries(ctx, catalog, track, marked, u));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::tests::{paper_setup, PaperSetup};
    use spacetime_cost::{CostCtx, PageIoCostModel};

    fn view_set(s: &PaperSetup, extras: &[GroupId]) -> ViewSet {
        let mut set: ViewSet = extras.iter().map(|&g| s.memo.find(g)).collect();
        set.insert(s.root);
        set
    }

    #[test]
    fn unaffected_transaction_yields_empty_track() {
        let s = paper_setup();
        let tracks = enumerate_tracks(&s.memo, s.root, &view_set(&s, &[]), &["Nope"], 64);
        assert_eq!(tracks.len(), 1);
        assert!(tracks[0].choices.is_empty());
    }

    #[test]
    fn every_track_reaches_all_marked_affected_nodes() {
        let s = paper_setup();
        for extras in [vec![], vec![s.n3], vec![s.n4], vec![s.n3, s.n4]] {
            let set = view_set(&s, &extras);
            for table in ["Emp", "Dept"] {
                let affected = spacetime_memo::affected_groups(&s.memo, s.root, &[table]);
                for track in enumerate_tracks(&s.memo, s.root, &set, &[table], 256) {
                    for &g in &set {
                        if affected.contains(&g) {
                            assert!(
                                track.choices.contains_key(&s.memo.find(g)),
                                "track misses marked affected node {g}"
                            );
                        }
                    }
                    // Every chosen op's affected children are also chosen
                    // (or leaves): the track is downward-closed.
                    for (&g, &op) in &track.choices {
                        let _ = g;
                        for c in s.memo.op_children(op) {
                            if affected.contains(&c) && !s.memo.is_leaf(c) {
                                assert!(track.choices.contains_key(&c));
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn q4e_suppressed_only_when_n3_marked() {
        let s = paper_setup();
        let model = PageIoCostModel::default();
        let mut ctx = CostCtx::new(&s.memo, &s.cat, &model);
        let update = spacetime_cost::TableUpdate {
            table: "Emp".into(),
            kind: UpdateKind::Modify,
            size: 1.0,
        };
        // Track through N3 exists under both markings; compare queries.
        for (extras, expect_agg_query) in [(vec![], true), (vec![s.n3], false)] {
            let set = view_set(&s, &extras);
            let tracks = enumerate_tracks(&s.memo, s.root, &set, &["Emp"], 256);
            let through_n3: Vec<_> = tracks
                .iter()
                .filter(|t| t.choices.contains_key(&s.memo.find(s.n3)))
                .collect();
            assert!(!through_n3.is_empty());
            let has_agg_query = through_n3.iter().any(|t| {
                track_queries(&mut ctx, &s.cat, t, &set, &update)
                    .iter()
                    .any(|q| {
                        q.queried
                            == s.memo.find(
                                s.memo
                                    .groups()
                                    .find(|&g| {
                                        s.memo.group_ops(g).iter().any(|&o| matches!(
                            &s.memo.op(o).op,
                            spacetime_algebra::OpKind::Scan { table } if table == "Emp"
                        ))
                                    })
                                    .unwrap(),
                            )
                            && q.side == '-'
                    })
            });
            assert_eq!(has_agg_query, expect_agg_query, "extras: {extras:?}");
        }
    }

    #[test]
    fn q3d_is_key_eliminated() {
        // On the >Dept track through the aggregate (E3/N4 path), the
        // aggregate poses no query: the delta is group-complete.
        let s = paper_setup();
        let model = PageIoCostModel::default();
        let mut ctx = CostCtx::new(&s.memo, &s.cat, &model);
        let update = spacetime_cost::TableUpdate {
            table: "Dept".into(),
            kind: UpdateKind::Modify,
            size: 1.0,
        };
        let set = view_set(&s, &[]);
        let tracks = enumerate_tracks(&s.memo, s.root, &set, &["Dept"], 256);
        // Some track routes through the raw join (N4 affected + chosen).
        let via_join: Vec<_> = tracks
            .iter()
            .filter(|t| t.choices.contains_key(&s.memo.find(s.n4)))
            .collect();
        assert!(!via_join.is_empty());
        for t in via_join {
            let queries = track_queries(&mut ctx, &s.cat, t, &set, &update);
            let agg_queries = queries.iter().filter(|q| q.side == '-').count();
            assert_eq!(agg_queries, 0, "Q3d must be eliminated: {queries:?}");
        }
    }

    #[test]
    fn render_is_root_first() {
        let s = paper_setup();
        let set = view_set(&s, &[]);
        let tracks = enumerate_tracks(&s.memo, s.root, &set, &["Emp"], 16);
        let rendered = tracks[0].render(
            &s.memo,
            |g| {
                if g == s.root {
                    "N1".into()
                } else {
                    format!("n{}", g.0)
                }
            },
            |o| format!("E{}", o.0),
        );
        assert!(rendered.starts_with("N1,"), "{rendered}");
    }

    #[test]
    fn without_key_q3d_is_posed() {
        // Strip Dept's key: the group-completeness argument fails and the
        // aggregate must re-query its input (the paper's "conditions under
        // which keys can be used to reduce the set of needed queries").
        let mut s = paper_setup();
        s.cat.table_mut("Dept").unwrap().keys.clear();
        let model = PageIoCostModel::default();
        let mut ctx = CostCtx::new(&s.memo, &s.cat, &model);
        let update = spacetime_cost::TableUpdate {
            table: "Dept".into(),
            kind: UpdateKind::Modify,
            size: 1.0,
        };
        let set = view_set(&s, &[]);
        let tracks = enumerate_tracks(&s.memo, s.root, &set, &["Dept"], 256);
        let via_join: Vec<_> = tracks
            .iter()
            .filter(|t| t.choices.contains_key(&s.memo.find(s.n4)))
            .collect();
        let some_agg_query = via_join.iter().any(|t| {
            track_queries(&mut ctx, &s.cat, t, &set, &update)
                .iter()
                .any(|q| q.side == '-')
        });
        assert!(some_agg_query, "without the key, Q3d must be posed");
    }
}

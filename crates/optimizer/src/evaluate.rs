//! Evaluating one view set (§3.4–§3.5 inner loop).
//!
//! For each transaction type: enumerate the update tracks, price each
//! track's query set (with multi-query optimization) under the view set's
//! marking, keep the cheapest, and add the cost of physically applying the
//! transaction's deltas to every materialized view. The view set's figure
//! of merit is the workload-weighted average.

use spacetime_cost::{BatchQuery, Cost, CostCtx, Marking, TransactionType};
use spacetime_memo::{GroupId, Memo};
use spacetime_storage::Catalog;

use crate::candidates::ViewSet;
use crate::tracks::{enumerate_tracks, track_queries, PosedQuery, UpdateTrack};

/// Evaluation knobs.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Whether the root view's own update-application cost is counted.
    /// The paper's §3.6 tables exclude it ("We do not count the cost of
    /// updating the database relations, or the top-level view
    /// ProblemDept"), and it is identical across view sets anyway.
    pub include_root_update_cost: bool,
    /// Cap on enumerated tracks per (view set, transaction).
    pub max_tracks: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            include_root_update_cost: false,
            max_tracks: 4096,
        }
    }
}

/// One priced update track.
#[derive(Debug, Clone)]
pub struct TrackEval {
    /// The track.
    pub track: UpdateTrack,
    /// Queries the track poses.
    pub queries: Vec<PosedQuery>,
    /// Multi-query-optimized query cost.
    pub query_cost: Cost,
}

/// One transaction type's evaluation under a view set.
#[derive(Debug, Clone)]
pub struct TxnEvaluation {
    /// The transaction's name.
    pub txn_name: String,
    /// Its workload weight.
    pub weight: f64,
    /// All candidate tracks with their query costs.
    pub tracks: Vec<TrackEval>,
    /// Index of the cheapest track.
    pub best_track: usize,
    /// Cost of applying updates to the materialized views.
    pub update_cost: Cost,
    /// `min_track(query) + update`.
    pub total: Cost,
}

/// A fully-priced view set.
#[derive(Debug, Clone)]
pub struct ViewSetEvaluation {
    /// The view set (root included).
    pub view_set: ViewSet,
    /// Per-transaction breakdown.
    pub per_txn: Vec<TxnEvaluation>,
    /// Weighted-average cost `C(V)` (§3.5).
    pub weighted: f64,
}

impl ViewSetEvaluation {
    /// Drop per-track details except each transaction's best track —
    /// exhaustive searches hold thousands of these, and the track lists
    /// (with their query objects) dominate memory.
    pub fn slim(&mut self) {
        for txn in &mut self.per_txn {
            if let Some(best) = txn.tracks.get(txn.best_track).cloned() {
                txn.tracks = vec![best];
                txn.best_track = 0;
            }
        }
    }

    /// The per-transaction total for a named transaction.
    pub fn txn_total(&self, name: &str) -> Option<Cost> {
        self.per_txn
            .iter()
            .find(|t| t.txn_name == name)
            .map(|t| t.total)
    }
}

/// Evaluate one view set under a workload.
pub fn evaluate_view_set(
    ctx: &mut CostCtx<'_>,
    catalog: &Catalog,
    root: GroupId,
    view_set: &ViewSet,
    txns: &[TransactionType],
    config: &EvalConfig,
) -> ViewSetEvaluation {
    let memo = ctx.memo;
    let root = memo.find(root);
    let marked: Marking = view_set.iter().map(|&g| memo.find(g)).collect();

    let mut per_txn = Vec::with_capacity(txns.len());
    for txn in txns {
        let updated: Vec<&str> = txn.updated_tables();
        let tracks = enumerate_tracks(memo, root, view_set, &updated, config.max_tracks);

        // Cost of performing updates to every materialized view (Figure
        // 4's m_j) — track-independent.
        let mut update_cost = Cost::ZERO;
        for &g in view_set {
            let g = memo.find(g);
            if g == root && !config.include_root_update_cost {
                continue;
            }
            update_cost += ctx.update_apply_cost(g, txn);
        }

        // Cheapest track (Figure 4's q_j).
        let mut evals: Vec<TrackEval> = Vec::with_capacity(tracks.len());
        for track in tracks {
            // Sequential propagation: MQO shares queries *within* one
            // table-update's propagation (same delta keys), then sums
            // across the transaction's updates.
            let mut query_cost = Cost::ZERO;
            let mut queries = Vec::new();
            for u in &txn.updates {
                let qs = track_queries(ctx, catalog, &track, view_set, u);
                let batch: Vec<BatchQuery> = qs
                    .iter()
                    .map(|q| BatchQuery {
                        group: q.queried,
                        cols: q.cols.clone(),
                        probes: q.probes,
                    })
                    .collect();
                query_cost += ctx.batch_query_cost(&batch, &marked);
                queries.extend(qs);
            }
            evals.push(TrackEval {
                track,
                queries,
                query_cost,
            });
        }
        let best_track = evals
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.query_cost)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let best_query_cost = evals
            .get(best_track)
            .map(|e| e.query_cost)
            .unwrap_or(Cost::ZERO);
        per_txn.push(TxnEvaluation {
            txn_name: txn.name.clone(),
            weight: txn.weight,
            tracks: evals,
            best_track,
            update_cost,
            total: best_query_cost + update_cost,
        });
    }

    let weighted = spacetime_cost::txn::weighted_average(
        &per_txn
            .iter()
            .map(|t| (t.total.value(), t.weight))
            .collect::<Vec<_>>(),
    );
    ViewSetEvaluation {
        view_set: view_set.clone(),
        per_txn,
        weighted,
    }
}

/// Convenience: evaluate with a fresh context.
pub fn evaluate_view_set_fresh(
    memo: &Memo,
    catalog: &Catalog,
    model: &dyn spacetime_cost::CostModel,
    root: GroupId,
    view_set: &ViewSet,
    txns: &[TransactionType],
    config: &EvalConfig,
) -> ViewSetEvaluation {
    let mut ctx = CostCtx::new(memo, catalog, model);
    evaluate_view_set(&mut ctx, catalog, root, view_set, txns, config)
}

//! Evaluating one view set (§3.4–§3.5 inner loop).
//!
//! For each transaction type: enumerate the update tracks, price each
//! track's query set (with multi-query optimization) under the view set's
//! marking, keep the cheapest, and add the cost of physically applying the
//! transaction's deltas to every materialized view. The view set's figure
//! of merit is the workload-weighted average.

use spacetime_cost::{BatchQuery, Cost, CostCtx, Marking, TransactionType};
use spacetime_memo::{GroupId, Memo};
use spacetime_storage::Catalog;

use crate::candidates::ViewSet;
use crate::track_catalog::TrackCatalog;
use crate::tracks::{resolve_prepared, PosedQuery, UpdateTrack};

/// Evaluation knobs.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Whether the root view's own update-application cost is counted.
    /// The paper's §3.6 tables exclude it ("We do not count the cost of
    /// updating the database relations, or the top-level view
    /// ProblemDept"), and it is identical across view sets anyway.
    pub include_root_update_cost: bool,
    /// Cap on enumerated tracks per (view set, transaction).
    pub max_tracks: usize,
    /// How many evaluations (beyond the best) searches keep in
    /// [`crate::exhaustive::OptimizeOutcome::evaluated`].
    pub top_k: usize,
    /// Worker threads for the parallel search: `0` = one per available
    /// core, `1` = serial.
    pub parallelism: usize,
    /// Branch-and-bound pruning: abort a view set's evaluation as soon as
    /// its weighted partial sum provably exceeds the current top-K
    /// threshold. Never changes the winner or the retained top-K.
    pub prune: bool,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            include_root_update_cost: false,
            max_tracks: 4096,
            top_k: 16,
            parallelism: 0,
            prune: true,
        }
    }
}

/// One priced update track.
#[derive(Debug, Clone)]
pub struct TrackEval {
    /// The track.
    pub track: UpdateTrack,
    /// Queries the track poses.
    pub queries: Vec<PosedQuery>,
    /// Multi-query-optimized query cost.
    pub query_cost: Cost,
}

/// One transaction type's evaluation under a view set.
#[derive(Debug, Clone)]
pub struct TxnEvaluation {
    /// The transaction's name.
    pub txn_name: String,
    /// Its workload weight.
    pub weight: f64,
    /// All candidate tracks with their query costs.
    pub tracks: Vec<TrackEval>,
    /// Index of the cheapest track.
    pub best_track: usize,
    /// Cost of applying updates to the materialized views.
    pub update_cost: Cost,
    /// `min_track(query) + update`.
    pub total: Cost,
}

/// A fully-priced view set.
#[derive(Debug, Clone)]
pub struct ViewSetEvaluation {
    /// The view set (root included).
    pub view_set: ViewSet,
    /// Per-transaction breakdown.
    pub per_txn: Vec<TxnEvaluation>,
    /// Weighted-average cost `C(V)` (§3.5).
    pub weighted: f64,
    /// Track-enumeration branches discarded by `max_tracks` across this
    /// set's transactions (`0` = the enumeration was exhaustive).
    pub tracks_truncated: usize,
}

impl ViewSetEvaluation {
    /// Drop per-track details except each transaction's best track —
    /// exhaustive searches hold thousands of these, and the track lists
    /// (with their query objects) dominate memory.
    pub fn slim(&mut self) {
        for txn in &mut self.per_txn {
            if let Some(best) = txn.tracks.get(txn.best_track).cloned() {
                txn.tracks = vec![best];
                txn.best_track = 0;
            }
        }
    }

    /// The per-transaction total for a named transaction.
    pub fn txn_total(&self, name: &str) -> Option<Cost> {
        self.per_txn
            .iter()
            .find(|t| t.txn_name == name)
            .map(|t| t.total)
    }
}

/// Evaluate one view set against a shared [`TrackCatalog`] (the search
/// engine's inner loop). Track enumeration and query preparation come from
/// the catalog; only marking-dependent pricing happens here.
///
/// With `abort_above = Some(t)`, the transactions are processed
/// heaviest-weight-first and the evaluation is abandoned (returning
/// `None`) as soon as the weighted partial sum provably exceeds `t`:
/// per-transaction costs are non-negative, so the running sum of
/// `weight · cost` divided by the total weight is a monotone lower bound
/// on the final weighted average. The comparison carries a `1e-9` relative
/// guard so float-summation reordering can never prune a set whose true
/// weighted cost ties the threshold; completed evaluations recompute the
/// weighted average in original transaction order, bit-identical to the
/// serial path.
pub fn evaluate_with_catalog(
    ctx: &mut CostCtx<'_>,
    tcat: &TrackCatalog<'_>,
    view_set: &ViewSet,
    config: &EvalConfig,
    abort_above: Option<f64>,
) -> Option<ViewSetEvaluation> {
    let memo = ctx.memo;
    let marked: Marking = view_set.iter().map(|&g| memo.find(g)).collect();
    let txns = tcat.txns();
    let total_weight: f64 = txns.iter().map(|t| t.weight).sum();

    let mut order: Vec<usize> = (0..txns.len()).collect();
    if abort_above.is_some() {
        // Heaviest transactions first: their weighted costs dominate the
        // partial sum, so bad sets are abandoned as early as possible.
        order.sort_by(|&a, &b| txns[b].weight.total_cmp(&txns[a].weight).then(a.cmp(&b)));
    }

    let mut slots: Vec<Option<TxnEvaluation>> = (0..txns.len()).map(|_| None).collect();
    let mut tracks_truncated = 0usize;
    let mut partial = 0.0f64;
    for &ti in &order {
        let txn = &txns[ti];
        let prepared = tcat.prepared(ti, view_set, ctx);
        tracks_truncated += prepared.truncated;

        // Cost of performing updates to every materialized view (Figure
        // 4's m_j) — track-independent.
        let mut update_cost = Cost::ZERO;
        for &g in view_set {
            let g = memo.find(g);
            if tcat.is_root(g) && !config.include_root_update_cost {
                continue;
            }
            update_cost += tcat.apply_cost(ti, g, ctx);
        }

        // Cheapest track (Figure 4's q_j). Sequential propagation: MQO
        // shares queries *within* one table-update's propagation (same
        // delta keys), then sums across the transaction's updates.
        let mut evals: Vec<TrackEval> = Vec::with_capacity(prepared.tracks.len());
        for pt in &prepared.tracks {
            let mut query_cost = Cost::ZERO;
            let mut queries = Vec::new();
            for qs_prepared in &pt.queries {
                let qs = resolve_prepared(qs_prepared, view_set);
                let batch: Vec<BatchQuery> = qs
                    .iter()
                    .map(|q| BatchQuery {
                        group: q.queried,
                        cols: q.cols.clone(),
                        probes: q.probes,
                    })
                    .collect();
                query_cost += ctx.batch_query_cost(&batch, &marked);
                queries.extend(qs);
            }
            evals.push(TrackEval {
                track: pt.track.clone(),
                queries,
                query_cost,
            });
        }
        let best_track = evals
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.query_cost)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let best_query_cost = evals
            .get(best_track)
            .map(|e| e.query_cost)
            .unwrap_or(Cost::ZERO);
        let total = best_query_cost + update_cost;
        partial += total.value() * txn.weight;
        slots[ti] = Some(TxnEvaluation {
            txn_name: txn.name.clone(),
            weight: txn.weight,
            tracks: evals,
            best_track,
            update_cost,
            total,
        });
        if let Some(threshold) = abort_above {
            if total_weight > 0.0 && partial / total_weight > threshold * (1.0 + 1e-9) {
                return None;
            }
        }
    }

    let per_txn: Vec<TxnEvaluation> = slots
        .into_iter()
        .map(|s| s.expect("every transaction evaluated"))
        .collect();
    let weighted = spacetime_cost::txn::weighted_average(
        &per_txn
            .iter()
            .map(|t| (t.total.value(), t.weight))
            .collect::<Vec<_>>(),
    );
    Some(ViewSetEvaluation {
        view_set: view_set.clone(),
        per_txn,
        weighted,
        tracks_truncated,
    })
}

/// Evaluate one view set under a workload.
pub fn evaluate_view_set(
    ctx: &mut CostCtx<'_>,
    catalog: &Catalog,
    root: GroupId,
    view_set: &ViewSet,
    txns: &[TransactionType],
    config: &EvalConfig,
) -> ViewSetEvaluation {
    let tcat = TrackCatalog::new(ctx.memo, catalog, &[root], txns, config.max_tracks);
    evaluate_with_catalog(ctx, &tcat, view_set, config, None).expect("no abort threshold")
}

/// Convenience: evaluate with a fresh context.
pub fn evaluate_view_set_fresh(
    memo: &Memo,
    catalog: &Catalog,
    model: &dyn spacetime_cost::CostModel,
    root: GroupId,
    view_set: &ViewSet,
    txns: &[TransactionType],
    config: &EvalConfig,
) -> ViewSetEvaluation {
    let mut ctx = CostCtx::new(memo, catalog, model);
    evaluate_view_set(&mut ctx, catalog, root, view_set, txns, config)
}

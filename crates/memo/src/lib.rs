//! # spacetime-memo
//!
//! The **expression DAG** of §2.1 — the Volcano-style memo structure [5,12]
//! the paper builds its view-selection search on:
//!
//! > *"An expression DAG is a bipartite directed acyclic graph with
//! > 'equivalence' nodes and 'operation' nodes. An equivalence node has
//! > edges to one or more operation nodes. An operation node contains an
//! > operator, either one or two children that are equivalence nodes, and
//! > only one parent equivalence node."*
//!
//! * [`memo`] — the DAG itself ([`Memo`]): hash-consed operation nodes,
//!   union-find group (equivalence-node) merging, tree extraction and
//!   counting.
//! * [`rules`] — equivalence rules ([`rules::Rule`]): join commutativity and
//!   associativity, selection push/pull/merge, projection merge and
//!   identity elimination, and the Yan–Larson-style **eager aggregation**
//!   rewrite that relates the two trees of the paper's Figure 1.
//! * [`explore`] — the exploration driver applying rules to fixpoint (with
//!   a budget), as rule-based optimizers do when "generating an expression
//!   DAG representation of the set of equivalent expression trees".
//! * [`analysis`] — graph analyses the optimizer needs: update-affected
//!   nodes (the `U_V` of Def. 3.3), descendant closures (the `D_N` of §4.2),
//!   and **articulation nodes** (Def. 4.1) for the Shielding Principle.
//! * [`dot`] — Graphviz and text renderings of the DAG (Figure 2 output).

pub mod analysis;
pub mod dot;
pub mod explore;
pub mod memo;
pub mod rules;

pub use analysis::{affected_groups, articulation_groups, descendant_groups};
pub use explore::{explore, explore_with, ExploreStats};
pub use memo::{GroupId, Memo, OpId, OperationNode};
pub use rules::{default_rules, NewExpr, Rule, RuleSet};

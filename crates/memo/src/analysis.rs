//! Graph analyses over the expression DAG.
//!
//! * [`descendant_groups`] — the `D_N` of §4.2: a node, its descendants,
//!   and the edges between them.
//! * [`affected_groups`] — the `U_V` of Def. 3.3: nodes whose results are
//!   affected by a transaction type (they have an updated relation as a
//!   descendant).
//! * [`articulation_groups`] — Def. 4.1: equivalence nodes whose removal
//!   disconnects the (undirected) DAG; at these the Shielding Principle
//!   (Theorem 4.1) allows local optimization.

use std::collections::{BTreeSet, HashMap};

use spacetime_algebra::OpKind;

use crate::memo::{GroupId, Memo, OpId};

/// All groups reachable downward from `g` (inclusive).
pub fn descendant_groups(memo: &Memo, g: GroupId) -> BTreeSet<GroupId> {
    let mut seen = BTreeSet::new();
    let mut stack = vec![memo.find(g)];
    while let Some(cur) = stack.pop() {
        if !seen.insert(cur) {
            continue;
        }
        for op in memo.group_ops(cur) {
            for child in memo.op_children(op) {
                if !seen.contains(&child) {
                    stack.push(child);
                }
            }
        }
    }
    seen
}

/// Groups (within the descendants of `root`) whose results are affected
/// when the given base tables are updated: the updated scan leaves and
/// every group above them.
///
/// Affectedness is semantic — all alternatives of a group compute the same
/// value — so a group is affected as soon as *any* of its operation nodes
/// has an affected child.
pub fn affected_groups(memo: &Memo, root: GroupId, updated_tables: &[&str]) -> BTreeSet<GroupId> {
    let scope = descendant_groups(memo, root);
    let mut affected: BTreeSet<GroupId> = BTreeSet::new();
    // Seed: leaves scanning an updated table.
    for &g in &scope {
        for op in memo.group_ops(g) {
            if let OpKind::Scan { table } = &memo.op(op).op {
                if updated_tables.iter().any(|t| *t == table) {
                    affected.insert(g);
                }
            }
        }
    }
    // Propagate upward to fixpoint (the scope is small; a simple loop is
    // clearer than a topological order and also handles any residual
    // non-tree sharing).
    loop {
        let mut changed = false;
        for &g in &scope {
            if affected.contains(&g) {
                continue;
            }
            let hit = memo
                .group_ops(g)
                .iter()
                .any(|&op| memo.op_children(op).iter().any(|c| affected.contains(c)));
            if hit {
                affected.insert(g);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    affected
}

/// Nodes of the bipartite DAG viewed as an undirected graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum DagNode {
    Group(GroupId),
    Op(OpId),
}

/// Equivalence nodes that are articulation points of the undirected DAG
/// restricted to the descendants of `root` (Def. 4.1). The root itself is
/// excluded — it is always materialized and never *shields* anything.
pub fn articulation_groups(memo: &Memo, root: GroupId) -> BTreeSet<GroupId> {
    let root = memo.find(root);
    let scope = descendant_groups(memo, root);

    // Build adjacency (undirected): group — member op, op — child group.
    let mut nodes: Vec<DagNode> = Vec::new();
    let mut index: HashMap<DagNode, usize> = HashMap::new();
    let mut adj: Vec<Vec<usize>> = Vec::new();
    let intern = |n: DagNode,
                  nodes: &mut Vec<DagNode>,
                  adj: &mut Vec<Vec<usize>>,
                  index: &mut HashMap<DagNode, usize>| {
        *index.entry(n).or_insert_with(|| {
            nodes.push(n);
            adj.push(Vec::new());
            nodes.len() - 1
        })
    };
    for &g in &scope {
        let gi = intern(DagNode::Group(g), &mut nodes, &mut adj, &mut index);
        for op in memo.group_ops(g) {
            // Scan operators are not operation nodes in the paper's DAG —
            // "the leaves of an expression DAG are equivalence nodes
            // corresponding to database relations" — so they contribute no
            // edges (otherwise every leaf would look like an articulation
            // point, separating its own scan).
            if matches!(memo.op(op).op, OpKind::Scan { .. }) {
                continue;
            }
            let oi = intern(DagNode::Op(op), &mut nodes, &mut adj, &mut index);
            adj[gi].push(oi);
            adj[oi].push(gi);
            for c in memo.op_children(op) {
                let ci = intern(DagNode::Group(c), &mut nodes, &mut adj, &mut index);
                adj[oi].push(ci);
                adj[ci].push(oi);
            }
        }
    }

    // Tarjan articulation points (iterative DFS to be safe on deep DAGs).
    let n = nodes.len();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut is_art = vec![false; n];
    let mut timer = 0usize;

    for start in 0..n {
        if disc[start] != usize::MAX {
            continue;
        }
        // Stack frames: (node, neighbor index).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        disc[start] = timer;
        low[start] = timer;
        timer += 1;
        let mut root_children = 0usize;
        while let Some(&mut (u, ref mut i)) = stack.last_mut() {
            if *i < adj[u].len() {
                let v = adj[u][*i];
                *i += 1;
                if disc[v] == usize::MAX {
                    parent[v] = u;
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    if u == start {
                        root_children += 1;
                    }
                    stack.push((v, 0));
                } else if v != parent[u] {
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p] = low[p].min(low[u]);
                    if parent[u] == p && p != start && low[u] >= disc[p] {
                        is_art[p] = true;
                    }
                }
            }
        }
        if root_children > 1 {
            is_art[start] = true;
        }
    }

    nodes
        .iter()
        .enumerate()
        .filter_map(|(i, n)| match n {
            DagNode::Group(g) if is_art[i] && *g != root => Some(*g),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacetime_algebra::{AggExpr, AggFunc, BinOp, ExprNode, ExprTree, ScalarExpr};
    use spacetime_storage::{Catalog, DataType, Schema};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for (name, cols) in [
            ("R", vec![("item", DataType::Str), ("r", DataType::Int)]),
            (
                "S",
                vec![("item", DataType::Str), ("quantity", DataType::Int)],
            ),
            ("T", vec![("item", DataType::Str), ("price", DataType::Int)]),
        ] {
            cat.create_table(name, Schema::of_table(name, &cols))
                .unwrap();
        }
        cat
    }

    /// The paper's Figure 5:
    /// R ⋈_item Aggregate(SUM(S.Quantity * T.Price) BY T.Item)(S ⋈_item T).
    fn figure5_tree(cat: &Catalog) -> ExprTree {
        let s = ExprNode::scan(cat, "S").unwrap();
        let t = ExprNode::scan(cat, "T").unwrap();
        let st = ExprNode::join_on(s, t, &[("S.item", "T.item")]).unwrap();
        let agg = ExprNode::aggregate(
            st,
            vec![2], // T.item
            vec![AggExpr::new(
                AggFunc::Sum,
                ScalarExpr::bin(BinOp::Mul, ScalarExpr::col(1), ScalarExpr::col(3)),
                "Total",
            )],
        )
        .unwrap();
        let r = ExprNode::scan(cat, "R").unwrap();
        ExprNode::join_on(r, agg, &[("R.item", "item")]).unwrap()
    }

    #[test]
    fn descendants_cover_all_reachable_groups() {
        let cat = catalog();
        let mut memo = Memo::new();
        let root = memo.insert_tree(&figure5_tree(&cat));
        let d = descendant_groups(&memo, root);
        // R, S, T, S⋈T, Agg, root = 6 groups.
        assert_eq!(d.len(), 6);
    }

    #[test]
    fn affected_groups_follow_updates() {
        let cat = catalog();
        let mut memo = Memo::new();
        let root = memo.insert_tree(&figure5_tree(&cat));
        // Updating R affects only R's leaf and the root join.
        let a = affected_groups(&memo, root, &["R"]);
        assert_eq!(a.len(), 2);
        assert!(a.contains(&root));
        // Updating S affects S, S⋈T, Agg, root.
        let a = affected_groups(&memo, root, &["S"]);
        assert_eq!(a.len(), 4);
        // Updating nothing affects nothing.
        assert!(affected_groups(&memo, root, &[]).is_empty());
    }

    #[test]
    fn figure5_aggregate_is_articulation_node() {
        // "the equivalence node that is the parent of the
        // grouping/aggregation node in the expression DAG is a natural
        // articulation point" (§4.2).
        let cat = catalog();
        let mut memo = Memo::new();
        let tree = figure5_tree(&cat);
        let root = memo.insert_tree(&tree);
        memo.set_root(root);
        let arts = articulation_groups(&memo, root);
        // Find the aggregate group.
        let agg_group = memo
            .groups()
            .find(|&g| {
                memo.group_ops(g)
                    .iter()
                    .any(|&o| matches!(memo.op(o).op, spacetime_algebra::OpKind::Aggregate { .. }))
            })
            .unwrap();
        assert!(
            arts.contains(&agg_group),
            "aggregate group must be an articulation node; got {arts:?}"
        );
        // In a pure tree every internal equivalence node is an articulation
        // node; the point is the *aggregate* stays one even after rules add
        // alternatives (tested in the optimizer's shielding tests).
    }

    #[test]
    fn leaf_only_dag_has_no_articulation_nodes() {
        let cat = catalog();
        let mut memo = Memo::new();
        let r = ExprNode::scan(&cat, "R").unwrap();
        let root = memo.insert_tree(&r);
        assert!(articulation_groups(&memo, root).is_empty());
    }

    #[test]
    fn brute_force_articulation_cross_check() {
        // Compare the Tarjan result against literal node-removal
        // disconnection on the Figure 5 DAG.
        let cat = catalog();
        let mut memo = Memo::new();
        let root = memo.insert_tree(&figure5_tree(&cat));
        let arts = articulation_groups(&memo, root);
        let scope = descendant_groups(&memo, root);
        for &g in &scope {
            if g == root {
                continue;
            }
            // Remove g: can we still reach every other group from the root
            // (treating the graph as undirected)?
            let connected = {
                let mut seen = std::collections::BTreeSet::new();
                let mut stack = vec![root];
                while let Some(cur) = stack.pop() {
                    if cur == g || !seen.insert(cur) {
                        continue;
                    }
                    for op in memo.group_ops(cur) {
                        for c in memo.op_children(op) {
                            stack.push(c);
                        }
                    }
                    // Undirected: also walk to parents.
                    for &other in &scope {
                        for op in memo.group_ops(other) {
                            if memo.op_children(op).contains(&cur) {
                                stack.push(other);
                            }
                        }
                    }
                }
                scope.iter().filter(|&&x| x != g).all(|x| seen.contains(x))
            };
            assert_eq!(
                !connected,
                arts.contains(&g),
                "articulation disagreement at {g}"
            );
        }
    }
}

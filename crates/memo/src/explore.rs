//! The exploration driver: apply equivalence rules to fixpoint.
//!
//! This is the step rule-based optimizers perform to "generate an
//! expression DAG representation of the set of equivalent expression trees
//! … by using a set of equivalence rules, starting from the given query
//! expression tree" (§2.1). Rules are re-applied in passes because a rule
//! firing on one node can enable another rule elsewhere (e.g. a pushed-down
//! selection exposes a join for associativity); hash-consing makes repeated
//! applications idempotent, so passes run until the memo's structural
//! version stops changing or the operation-node budget is reached.

use spacetime_storage::{Catalog, StorageResult};

use crate::memo::{Memo, OpId};
use crate::rules::{default_rules, insert_new_expr, RuleSet};

/// Statistics from one exploration run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Full passes over the operation nodes.
    pub passes: usize,
    /// Rule applications that produced at least one expression.
    pub fruitful_applications: usize,
    /// Live operation nodes at the end.
    pub final_ops: usize,
    /// Live groups at the end.
    pub final_groups: usize,
    /// True when the op budget stopped exploration before fixpoint.
    pub budget_exhausted: bool,
}

/// Default budget: more than enough for the paper's views, small enough to
/// keep pathological rule interactions bounded.
pub const DEFAULT_MAX_OPS: usize = 20_000;

/// Explore with the default rule set and budget.
pub fn explore(memo: &mut Memo, catalog: &Catalog) -> StorageResult<ExploreStats> {
    explore_with(memo, catalog, &default_rules(), DEFAULT_MAX_OPS)
}

/// Explore with a custom rule set and operation-node budget.
pub fn explore_with(
    memo: &mut Memo,
    catalog: &Catalog,
    rules: &RuleSet,
    max_ops: usize,
) -> StorageResult<ExploreStats> {
    let mut stats = ExploreStats::default();
    const MAX_PASSES: usize = 32;
    loop {
        let version_before = memo.version();
        stats.passes += 1;
        // Only ops that existed at the start of the pass; new ones get
        // their turn next pass.
        let op_ids: Vec<OpId> = memo.all_op_ids().collect();
        'ops: for op_id in op_ids {
            if !memo.op(op_id).alive {
                continue;
            }
            for rule in rules {
                if !memo.op(op_id).alive {
                    continue 'ops;
                }
                let produced = rule.apply(memo, op_id, catalog);
                if produced.is_empty() {
                    continue;
                }
                stats.fruitful_applications += 1;
                let target = memo.op_group(op_id);
                for expr in &produced {
                    insert_new_expr(memo, expr, target)?;
                }
                if memo.raw_op_count() >= max_ops {
                    stats.budget_exhausted = true;
                    break 'ops;
                }
            }
        }
        if memo.version() == version_before || stats.budget_exhausted || stats.passes >= MAX_PASSES
        {
            break;
        }
    }
    stats.final_ops = memo.op_count();
    stats.final_groups = memo.group_count();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::GroupId;
    use spacetime_algebra::{AggExpr, AggFunc, CmpOp, ExprNode, ExprTree, OpKind, ScalarExpr};
    use spacetime_storage::{DataType, Schema};

    fn emp_dept_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "Emp",
            Schema::of_table(
                "Emp",
                &[
                    ("EName", DataType::Str),
                    ("DName", DataType::Str),
                    ("Salary", DataType::Int),
                ],
            ),
        )
        .unwrap();
        cat.create_table(
            "Dept",
            Schema::of_table(
                "Dept",
                &[
                    ("DName", DataType::Str),
                    ("MName", DataType::Str),
                    ("Budget", DataType::Int),
                ],
            ),
        )
        .unwrap();
        cat.declare_key("Dept", &["DName"]).unwrap();
        cat
    }

    /// Figure 1 (right): Select(SumSal>Budget)(Agg(SUM Sal BY DName,Budget)(Emp ⋈ Dept)).
    fn problem_dept_tree(cat: &Catalog) -> ExprTree {
        let emp = ExprNode::scan(cat, "Emp").unwrap();
        let dept = ExprNode::scan(cat, "Dept").unwrap();
        let join = ExprNode::join_on(emp, dept, &[("Emp.DName", "Dept.DName")]).unwrap();
        let agg = ExprNode::aggregate(
            join,
            vec![3, 5],
            vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum")],
        )
        .unwrap();
        ExprNode::select(
            agg,
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(2), ScalarExpr::col(1)),
        )
        .unwrap()
    }

    /// Find a group containing an Aggregate over a Scan of `table` — the
    /// paper's N3 (SumOfSals) shape.
    fn find_agg_over_scan(memo: &Memo, table: &str) -> Option<GroupId> {
        for g in memo.groups() {
            for op_id in memo.group_ops(g) {
                let node = memo.op(op_id);
                if let OpKind::Aggregate { .. } = node.op {
                    let child = memo.find(node.children[0]);
                    for c_op in memo.group_ops(child) {
                        if matches!(&memo.op(c_op).op, OpKind::Scan { table: t } if t == table) {
                            return Some(g);
                        }
                    }
                }
            }
        }
        None
    }

    #[test]
    fn exploration_reaches_fixpoint() {
        let cat = emp_dept_catalog();
        let mut memo = Memo::new();
        let tree = problem_dept_tree(&cat);
        let root = memo.insert_tree(&tree);
        memo.set_root(root);
        let stats = explore(&mut memo, &cat).unwrap();
        assert!(!stats.budget_exhausted);
        assert!(stats.passes >= 2, "needs at least one fruitful pass");
        assert!(memo.count_trees(root) >= 2, "alternative trees discovered");
    }

    #[test]
    fn eager_aggregation_derives_figure1_left_tree() {
        // The crucial reproduction check: exploration must discover the
        // SumOfSals shape (Aggregate directly over Emp), i.e. the paper's
        // equivalence node N3.
        let cat = emp_dept_catalog();
        let mut memo = Memo::new();
        let tree = problem_dept_tree(&cat);
        let root = memo.insert_tree(&tree);
        memo.set_root(root);
        explore(&mut memo, &cat).unwrap();
        let n3 = find_agg_over_scan(&memo, "Emp");
        assert!(n3.is_some(), "N3 (SumOfSals) must appear in the DAG");
        // And it is grouped by DName alone with a SUM.
        let g = n3.unwrap();
        let has_sum_by_dname = memo.group_ops(g).iter().any(|&o| {
            matches!(
                &memo.op(o).op,
                OpKind::Aggregate { group_by, aggs }
                    if group_by.len() == 1 && aggs.len() == 1 && aggs[0].func == AggFunc::Sum
            )
        });
        assert!(has_sum_by_dname);
    }

    #[test]
    fn without_key_no_eager_aggregation() {
        // Strip Dept's key: pushing the aggregate below the join is no
        // longer sound, and the rule must not fire.
        let mut cat = emp_dept_catalog();
        cat.table_mut("Dept").unwrap().keys.clear();
        let mut memo = Memo::new();
        let tree = problem_dept_tree(&cat);
        let root = memo.insert_tree(&tree);
        memo.set_root(root);
        explore(&mut memo, &cat).unwrap();
        assert!(
            find_agg_over_scan(&memo, "Emp").is_none(),
            "no N3 without the Dept key"
        );
    }

    #[test]
    fn join_chain_explores_orders() {
        // R1(x,y) ⋈ R2(y,z) ⋈ R3(z,w): §3's SPJ example. The DAG must
        // contain groups for R1⋈R2 and R2⋈R3 at minimum.
        let mut cat = Catalog::new();
        for (name, c1, c2) in [("R1", "x", "y"), ("R2", "y", "z"), ("R3", "z", "w")] {
            cat.create_table(
                name,
                Schema::of_table(name, &[(c1, DataType::Int), (c2, DataType::Int)]),
            )
            .unwrap();
        }
        let r1 = ExprNode::scan(&cat, "R1").unwrap();
        let r2 = ExprNode::scan(&cat, "R2").unwrap();
        let r3 = ExprNode::scan(&cat, "R3").unwrap();
        let j12 = ExprNode::join_on(r1, r2, &[("y", "R2.y")]).unwrap();
        let j123 = ExprNode::join_on(j12, r3, &[("z", "R3.z")]).unwrap();
        let mut memo = Memo::new();
        let root = memo.insert_tree(&j123);
        memo.set_root(root);
        let before = memo.group_count();
        explore(&mut memo, &cat).unwrap();
        assert!(memo.group_count() > before, "new join-order groups appear");
        // A right-deep alternative exists in the root group.
        let right_deep = memo.group_ops(root).iter().any(|&o| {
            let node = memo.op(o);
            matches!(node.op, OpKind::Join { .. })
                && memo
                    .group_ops(memo.find(node.children[1]))
                    .iter()
                    .any(|&inner| matches!(memo.op(inner).op, OpKind::Join { .. }))
        });
        assert!(right_deep, "associativity produced a right-deep tree");
        assert!(memo.count_trees(root) >= 3);
    }

    #[test]
    fn all_extracted_trees_evaluate_equal() {
        use spacetime_algebra::eval::eval_uncharged;
        use spacetime_storage::tuple;
        use spacetime_storage::IoMeter;
        let mut cat = emp_dept_catalog();
        let mut io = IoMeter::new();
        for (e, d, s) in [
            ("alice", "Sales", 100),
            ("bob", "Sales", 80),
            ("carol", "Eng", 120),
        ] {
            cat.table_mut("Emp")
                .unwrap()
                .relation
                .insert(tuple![e, d, s], 1, &mut io)
                .unwrap();
        }
        for (d, m, b) in [("Sales", "mary", 150), ("Eng", "nick", 200)] {
            cat.table_mut("Dept")
                .unwrap()
                .relation
                .insert(tuple![d, m, b], 1, &mut io)
                .unwrap();
        }
        let mut memo = Memo::new();
        let tree = problem_dept_tree(&cat);
        let root = memo.insert_tree(&tree);
        memo.set_root(root);
        explore(&mut memo, &cat).unwrap();
        let reference = eval_uncharged(&tree, &cat).unwrap();
        let trees = memo.extract_trees(root, 50);
        assert!(trees.len() >= 2);
        for t in &trees {
            let got = eval_uncharged(t, &cat).unwrap();
            assert_eq!(got, reference, "tree differs:\n{}", t.render());
        }
    }

    /// The inverse direction: starting from the Figure-1 *left* tree
    /// (aggregate below the join), lazy aggregation must derive the
    /// aggregate-over-join form, converging to the same DAG shape.
    #[test]
    fn lazy_aggregation_derives_figure1_right_tree() {
        let cat = emp_dept_catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let sum_of_sals = ExprNode::aggregate(
            emp,
            vec![1],
            vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum")],
        )
        .unwrap();
        let dept = ExprNode::scan(&cat, "Dept").unwrap();
        let join = ExprNode::join_on(sum_of_sals, dept, &[("DName", "Dept.DName")]).unwrap();
        let tree = ExprNode::select(
            join,
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(1), ScalarExpr::col(4)),
        )
        .unwrap();
        let mut memo = Memo::new();
        let root = memo.insert_tree(&tree);
        memo.set_root(root);
        explore(&mut memo, &cat).unwrap();
        // An aggregate over a join group must now exist somewhere.
        let has_agg_over_join = memo.groups().any(|g| {
            memo.group_ops(g).iter().any(|&o| {
                matches!(memo.op(o).op, OpKind::Aggregate { .. })
                    && memo
                        .group_ops(memo.op_children(o)[0])
                        .iter()
                        .any(|&c| matches!(memo.op(c).op, OpKind::Join { .. }))
            })
        });
        assert!(has_agg_over_join, "lazy aggregation must fire");
        assert!(memo.count_trees(memo.find(root)) >= 2);
    }

    #[test]
    fn budget_stops_exploration() {
        let cat = emp_dept_catalog();
        let mut memo = Memo::new();
        let tree = problem_dept_tree(&cat);
        let root = memo.insert_tree(&tree);
        memo.set_root(root);
        let stats = explore_with(&mut memo, &cat, &default_rules(), 6).unwrap();
        assert!(stats.budget_exhausted);
    }
}

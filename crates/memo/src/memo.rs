//! The expression DAG (memo) structure.
//!
//! Groups are the paper's *equivalence nodes*; [`OperationNode`]s are its
//! *operation nodes*. Operation nodes are hash-consed on
//! `(operator, canonical child groups)` so that structurally identical
//! subexpressions are shared — "the cost of generation is greatly reduced
//! … since the rules operate locally on the DAG representation" (§2.1).
//! Semantic equivalence discovered by rules merges groups via union-find;
//! merging re-canonicalizes referencing operation nodes and cascades
//! further merges when two nodes collapse into one.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use spacetime_algebra::{ExprNode, ExprTree, OpKind};
use spacetime_storage::Schema;

/// Identifier of an equivalence node (group). Raw — canonicalize with
/// [`Memo::find`] after merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

/// Identifier of an operation node. Stable for the memo's lifetime (nodes
/// are never removed, only marked dead when they collapse into an existing
/// duplicate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// An operation node: one operator with equivalence-node children.
#[derive(Debug, Clone)]
pub struct OperationNode {
    /// The operator.
    pub op: OpKind,
    /// Child groups (raw ids — canonicalize via [`Memo::find`]).
    pub children: Vec<GroupId>,
    /// Owning group (raw id).
    pub group: GroupId,
    /// False once the node collapsed into a duplicate during a merge.
    pub alive: bool,
    /// The children used for the current hash-cons index entry.
    key_children: Vec<GroupId>,
}

#[derive(Debug, Clone)]
struct GroupData {
    /// Union-find parent (self = representative).
    parent: u32,
    /// Member operation nodes (representatives only; includes dead ids,
    /// filtered on read).
    ops: Vec<OpId>,
    /// Output schema (column names are taken from the first inserted
    /// expression; alternatives must agree on arity and types).
    schema: Schema,
}

/// The expression DAG.
#[derive(Debug, Clone, Default)]
pub struct Memo {
    groups: Vec<GroupData>,
    ops: Vec<OperationNode>,
    /// Hash-cons index: (operator, canonical children) → op.
    index: HashMap<(OpKind, Vec<GroupId>), OpId>,
    /// Reverse edges: group → operation nodes having it as a child.
    parents: HashMap<GroupId, Vec<OpId>>,
    root: Option<GroupId>,
    /// Bumped on every structural change (op creation or group merge);
    /// lets exploration detect fixpoint cheaply.
    version: u64,
}

impl Memo {
    /// An empty memo.
    pub fn new() -> Self {
        Memo::default()
    }

    /// The designated root group (the view V), canonicalized.
    pub fn root(&self) -> Option<GroupId> {
        self.root.map(|g| self.find(g))
    }

    /// Designate the root group.
    pub fn set_root(&mut self, g: GroupId) {
        self.root = Some(self.find(g));
    }

    /// Canonical representative of a group.
    pub fn find(&self, g: GroupId) -> GroupId {
        let mut cur = g.0;
        while self.groups[cur as usize].parent != cur {
            cur = self.groups[cur as usize].parent;
        }
        GroupId(cur)
    }

    /// Number of live (representative) groups.
    pub fn group_count(&self) -> usize {
        self.groups
            .iter()
            .enumerate()
            .filter(|(i, g)| g.parent == *i as u32)
            .count()
    }

    /// Number of live operation nodes.
    pub fn op_count(&self) -> usize {
        self.ops.iter().filter(|o| o.alive).count()
    }

    /// Total operation nodes ever created (including dead ones) — the
    /// exploration budget is counted against this.
    pub fn raw_op_count(&self) -> usize {
        self.ops.len()
    }

    /// Iterate every operation-node id ever created (callers filter on
    /// [`OperationNode::alive`]).
    pub fn all_op_ids(&self) -> impl Iterator<Item = OpId> {
        (0..self.ops.len() as u32).map(OpId)
    }

    /// Structural version: changes whenever an op is created or groups
    /// merge.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Iterate live (representative) group ids in insertion order.
    pub fn groups(&self) -> impl Iterator<Item = GroupId> + '_ {
        self.groups
            .iter()
            .enumerate()
            .filter(|(i, g)| g.parent == *i as u32)
            .map(|(i, _)| GroupId(i as u32))
    }

    /// The output schema of a group.
    pub fn schema(&self, g: GroupId) -> &Schema {
        &self.groups[self.find(g).0 as usize].schema
    }

    /// Live operation nodes of a group.
    pub fn group_ops(&self, g: GroupId) -> Vec<OpId> {
        let g = self.find(g);
        self.groups[g.0 as usize]
            .ops
            .iter()
            .copied()
            .filter(|&o| self.ops[o.0 as usize].alive)
            .collect()
    }

    /// An operation node by id.
    pub fn op(&self, o: OpId) -> &OperationNode {
        &self.ops[o.0 as usize]
    }

    /// Canonical children of an operation node.
    pub fn op_children(&self, o: OpId) -> Vec<GroupId> {
        self.ops[o.0 as usize]
            .children
            .iter()
            .map(|&c| self.find(c))
            .collect()
    }

    /// Canonical owning group of an operation node.
    pub fn op_group(&self, o: OpId) -> GroupId {
        self.find(self.ops[o.0 as usize].group)
    }

    /// Whether a group is a leaf (contains only `Scan` operators).
    pub fn is_leaf(&self, g: GroupId) -> bool {
        self.group_ops(g)
            .iter()
            .all(|&o| matches!(self.op(o).op, OpKind::Scan { .. }))
    }

    /// Insert an operation over existing groups.
    ///
    /// `into = None` puts a new expression in a fresh group (or returns the
    /// group it already lives in). `into = Some(g)` asserts the expression
    /// is equivalent to `g`, merging groups if the expression already
    /// exists elsewhere — this is how rules record equivalences.
    ///
    /// Returns the (canonical) group holding the expression.
    pub fn insert_op(
        &mut self,
        op: OpKind,
        children: Vec<GroupId>,
        into: Option<GroupId>,
        schema: Schema,
    ) -> GroupId {
        let children: Vec<GroupId> = children.iter().map(|&c| self.find(c)).collect();
        let into = into.map(|g| self.find(g));

        // Refuse self-referential alternatives (a group "computed from
        // itself" admits no finite tree).
        if let Some(target) = into {
            if children.contains(&target) {
                return target;
            }
        }

        let key = (op.clone(), children.clone());
        if let Some(&existing) = self.index.get(&key) {
            let existing_group = self.op_group(existing);
            if let Some(target) = into {
                if target != existing_group {
                    self.merge(target, existing_group);
                }
                return self.find(target);
            }
            return existing_group;
        }

        let group = match into {
            Some(g) => g,
            None => self.add_group(schema),
        };
        self.version += 1;
        let op_id = OpId(self.ops.len() as u32);
        self.ops.push(OperationNode {
            op,
            children: children.clone(),
            group,
            alive: true,
            key_children: children.clone(),
        });
        self.index.insert(key, op_id);
        self.groups[group.0 as usize].ops.push(op_id);
        for c in children {
            self.parents.entry(c).or_default().push(op_id);
        }
        self.find(group)
    }

    fn add_group(&mut self, schema: Schema) -> GroupId {
        let id = GroupId(self.groups.len() as u32);
        self.groups.push(GroupData {
            parent: id.0,
            ops: Vec::new(),
            schema,
        });
        id
    }

    /// Find the group holding an expression tree, without inserting
    /// (`None` if any node of the tree is absent). Used by the
    /// single-expression-tree heuristic to map a user tree onto the DAG.
    pub fn find_tree(&self, tree: &ExprNode) -> Option<GroupId> {
        let children: Vec<GroupId> = tree
            .children
            .iter()
            .map(|c| self.find_tree(c))
            .collect::<Option<_>>()?;
        let key = (tree.op.clone(), children);
        self.index.get(&key).map(|&op| self.op_group(op))
    }

    /// Insert a whole expression tree, returning its group.
    pub fn insert_tree(&mut self, tree: &ExprNode) -> GroupId {
        let children: Vec<GroupId> = tree.children.iter().map(|c| self.insert_tree(c)).collect();
        self.insert_op(tree.op.clone(), children, None, tree.schema.clone())
    }

    /// Merge two groups (and cascade).
    pub fn merge(&mut self, a: GroupId, b: GroupId) {
        let mut queue = vec![(a, b)];
        while let Some((a, b)) = queue.pop() {
            let a = self.find(a);
            let b = self.find(b);
            if a == b {
                continue;
            }
            self.version += 1;
            let (keeper, absorbed) = if a.0 <= b.0 { (a, b) } else { (b, a) };
            debug_assert_eq!(
                self.groups[keeper.0 as usize].schema.arity(),
                self.groups[absorbed.0 as usize].schema.arity(),
                "merging groups with different arities"
            );
            self.groups[absorbed.0 as usize].parent = keeper.0;
            let moved = std::mem::take(&mut self.groups[absorbed.0 as usize].ops);
            self.groups[keeper.0 as usize].ops.extend(moved);

            // Re-canonicalize every op that referenced the absorbed group.
            let refs = self.parents.remove(&absorbed).unwrap_or_default();
            for op_id in refs {
                if !self.ops[op_id.0 as usize].alive {
                    continue;
                }
                // Drop the old index entry.
                let old_key = (
                    self.ops[op_id.0 as usize].op.clone(),
                    self.ops[op_id.0 as usize].key_children.clone(),
                );
                self.index.remove(&old_key);

                let new_children: Vec<GroupId> = self.ops[op_id.0 as usize]
                    .children
                    .iter()
                    .map(|&c| self.find(c))
                    .collect();
                let own_group = self.op_group(op_id);
                if new_children.contains(&own_group) {
                    // Became self-referential: useless alternative.
                    self.ops[op_id.0 as usize].alive = false;
                    continue;
                }
                let new_key = (self.ops[op_id.0 as usize].op.clone(), new_children.clone());
                match self.index.get(&new_key) {
                    Some(&dup) if dup != op_id => {
                        // Collapsed into an existing node: kill this one and
                        // merge the owning groups.
                        self.ops[op_id.0 as usize].alive = false;
                        let dup_group = self.op_group(dup);
                        if dup_group != own_group {
                            queue.push((dup_group, own_group));
                        }
                    }
                    _ => {
                        self.index.insert(new_key, op_id);
                        self.ops[op_id.0 as usize].key_children = new_children.clone();
                        self.parents.entry(keeper).or_default().push(op_id);
                        // (Entries under other child groups are still valid.)
                        let _ = new_children;
                    }
                }
            }
        }
    }

    /// Extract one (arbitrary but deterministic) expression tree for a
    /// group: the first acyclic alternative, preferring earlier-inserted
    /// operation nodes (which come from the original user expression).
    pub fn extract_one(&self, g: GroupId) -> ExprTree {
        self.extract_one_guarded(self.find(g), &mut Vec::new())
            .expect("every group admits at least one finite tree")
    }

    fn extract_one_guarded(&self, g: GroupId, path: &mut Vec<GroupId>) -> Option<ExprTree> {
        if path.contains(&g) {
            return None;
        }
        path.push(g);
        let result = (|| {
            for op_id in self.group_ops(g) {
                let node = self.op(op_id);
                let mut children = Vec::with_capacity(node.children.len());
                let mut ok = true;
                for &c in &node.children {
                    match self.extract_one_guarded(self.find(c), path) {
                        Some(t) => children.push(t),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    return Some(Arc::new(ExprNode {
                        op: node.op.clone(),
                        children,
                        schema: self.schema(g).clone(),
                    }));
                }
            }
            None
        })();
        path.pop();
        result
    }

    /// Extract up to `limit` distinct expression trees for a group.
    pub fn extract_trees(&self, g: GroupId, limit: usize) -> Vec<ExprTree> {
        let mut path = Vec::new();
        self.extract_trees_guarded(self.find(g), limit, &mut path)
    }

    fn extract_trees_guarded(
        &self,
        g: GroupId,
        limit: usize,
        path: &mut Vec<GroupId>,
    ) -> Vec<ExprTree> {
        if limit == 0 || path.contains(&g) {
            return Vec::new();
        }
        path.push(g);
        let mut out: Vec<ExprTree> = Vec::new();
        for op_id in self.group_ops(g) {
            if out.len() >= limit {
                break;
            }
            let node = self.op(op_id);
            // Cartesian product of child alternatives.
            let mut partials: Vec<Vec<ExprTree>> = vec![Vec::new()];
            for &c in &node.children {
                let child_trees = self.extract_trees_guarded(self.find(c), limit, path);
                if child_trees.is_empty() {
                    partials.clear();
                    break;
                }
                let mut next = Vec::new();
                for p in &partials {
                    for ct in &child_trees {
                        if next.len() + out.len() >= limit * 2 {
                            break;
                        }
                        let mut q = p.clone();
                        q.push(ct.clone());
                        next.push(q);
                    }
                }
                partials = next;
            }
            if node.children.is_empty() {
                partials = vec![Vec::new()];
            }
            for children in partials {
                if out.len() >= limit {
                    break;
                }
                out.push(Arc::new(ExprNode {
                    op: node.op.clone(),
                    children,
                    schema: self.schema(g).clone(),
                }));
            }
        }
        path.pop();
        out
    }

    /// Count the expression trees a group represents (saturating), the
    /// quantity the paper's "space of equivalent expression trees" refers
    /// to.
    pub fn count_trees(&self, g: GroupId) -> u64 {
        let mut path = Vec::new();
        self.count_trees_guarded(self.find(g), &mut path)
    }

    fn count_trees_guarded(&self, g: GroupId, path: &mut Vec<GroupId>) -> u64 {
        if path.contains(&g) {
            return 0;
        }
        path.push(g);
        let mut total: u64 = 0;
        for op_id in self.group_ops(g) {
            let node = self.op(op_id);
            let mut prod: u64 = 1;
            for &c in &node.children {
                prod = prod.saturating_mul(self.count_trees_guarded(self.find(c), path));
            }
            total = total.saturating_add(prod);
        }
        path.pop();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacetime_algebra::{AggExpr, AggFunc, ScalarExpr};
    use spacetime_storage::{Catalog, DataType, Schema};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for (name, cols) in [
            ("A", vec![("x", DataType::Int), ("y", DataType::Int)]),
            ("B", vec![("x", DataType::Int), ("z", DataType::Int)]),
            ("C", vec![("z", DataType::Int), ("w", DataType::Int)]),
        ] {
            cat.create_table(name, Schema::of_table(name, &cols))
                .unwrap();
        }
        cat
    }

    fn scan(cat: &Catalog, t: &str) -> ExprTree {
        ExprNode::scan(cat, t).unwrap()
    }

    #[test]
    fn insert_tree_hash_conses_shared_subtrees() {
        let cat = catalog();
        let mut memo = Memo::new();
        let a = scan(&cat, "A");
        let b = scan(&cat, "B");
        let j = ExprNode::join_on(a.clone(), b.clone(), &[("A.x", "B.x")]).unwrap();
        let g1 = memo.insert_tree(&j);
        let g2 = memo.insert_tree(&j);
        assert_eq!(g1, g2);
        // A, B, and the join: three groups, three ops.
        assert_eq!(memo.group_count(), 3);
        assert_eq!(memo.op_count(), 3);
    }

    #[test]
    fn distinct_expressions_get_distinct_groups() {
        let cat = catalog();
        let mut memo = Memo::new();
        let a = scan(&cat, "A");
        let s1 = ExprNode::select(a.clone(), ScalarExpr::col_eq_lit(0, 1)).unwrap();
        let s2 = ExprNode::select(a, ScalarExpr::col_eq_lit(0, 2)).unwrap();
        let g1 = memo.insert_tree(&s1);
        let g2 = memo.insert_tree(&s2);
        assert_ne!(g1, g2);
    }

    #[test]
    fn insert_into_group_records_equivalence() {
        let cat = catalog();
        let mut memo = Memo::new();
        let a = scan(&cat, "A");
        let b = scan(&cat, "B");
        let ab = ExprNode::join_on(a.clone(), b.clone(), &[("A.x", "B.x")]).unwrap();
        let g_ab = memo.insert_tree(&ab);
        let g_a = memo.insert_tree(&a);
        let g_b = memo.insert_tree(&b);
        // Pretend commuted join (schema differs in order; use a project in
        // real rules — here we just exercise the merging machinery with an
        // artificial alternative).
        let g2 = memo.insert_op(
            OpKind::Join {
                condition: spacetime_algebra::JoinCondition::on(vec![(0, 0)]),
            },
            vec![g_b, g_a],
            Some(g_ab),
            ab.schema.clone(),
        );
        assert_eq!(memo.find(g2), memo.find(g_ab));
        assert_eq!(memo.group_ops(g_ab).len(), 2);
    }

    #[test]
    fn merge_cascades_through_parents() {
        let cat = catalog();
        let mut memo = Memo::new();
        let a = scan(&cat, "A");
        let b = scan(&cat, "B");
        // Two distinct selections over A and B resp.
        let sa = ExprNode::select(a.clone(), ScalarExpr::col_eq_lit(0, 1)).unwrap();
        let sb = ExprNode::select(b.clone(), ScalarExpr::col_eq_lit(0, 1)).unwrap();
        // Identical aggregates over each selection.
        let mk_agg = |child: &ExprTree| {
            ExprNode::aggregate(
                child.clone(),
                vec![0],
                vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(1), "s")],
            )
            .unwrap()
        };
        let ta = mk_agg(&sa);
        let tb = mk_agg(&sb);
        let g_ta = memo.insert_tree(&ta);
        let g_tb = memo.insert_tree(&tb);
        assert_ne!(memo.find(g_ta), memo.find(g_tb));
        // Declare σ(A) ≡ σ(B) (artificially). The aggregates above them
        // have identical operators, so they must collapse too.
        let g_sa = memo.insert_tree(&sa);
        let g_sb = memo.insert_tree(&sb);
        memo.merge(g_sa, g_sb);
        assert_eq!(memo.find(g_ta), memo.find(g_tb), "merge must cascade");
        // One of the duplicate aggregate ops died.
        assert_eq!(memo.group_ops(g_ta).len(), 1);
    }

    #[test]
    fn extraction_returns_original_tree() {
        let cat = catalog();
        let mut memo = Memo::new();
        let a = scan(&cat, "A");
        let b = scan(&cat, "B");
        let j = ExprNode::join_on(a, b, &[("A.x", "B.x")]).unwrap();
        let g = memo.insert_tree(&j);
        let t = memo.extract_one(g);
        assert_eq!(t.op, j.op);
        assert_eq!(t.children.len(), 2);
        assert_eq!(t.schema.arity(), j.schema.arity());
    }

    #[test]
    fn count_and_extract_agree() {
        let cat = catalog();
        let mut memo = Memo::new();
        let a = scan(&cat, "A");
        let b = scan(&cat, "B");
        let ab = ExprNode::join_on(a.clone(), b.clone(), &[("A.x", "B.x")]).unwrap();
        let g = memo.insert_tree(&ab);
        assert_eq!(memo.count_trees(g), 1);
        assert_eq!(memo.extract_trees(g, 10).len(), 1);
        // Add an alternative: the same join again under a different flavor
        // (swap sides artificially).
        let g_a = memo.insert_tree(&a);
        let g_b = memo.insert_tree(&b);
        memo.insert_op(
            OpKind::Join {
                condition: spacetime_algebra::JoinCondition::on(vec![(0, 0)]),
            },
            vec![g_b, g_a],
            Some(g),
            ab.schema.clone(),
        );
        assert_eq!(memo.count_trees(g), 2);
        assert_eq!(memo.extract_trees(g, 10).len(), 2);
    }

    #[test]
    fn self_referential_alternative_rejected() {
        let cat = catalog();
        let mut memo = Memo::new();
        let a = scan(&cat, "A");
        let g = memo.insert_tree(&a);
        let before = memo.op_count();
        memo.insert_op(OpKind::Distinct, vec![g], Some(g), a.schema.clone());
        assert_eq!(memo.op_count(), before, "self-loop not inserted");
        assert_eq!(memo.count_trees(g), 1);
    }

    #[test]
    fn is_leaf_detects_scans() {
        let cat = catalog();
        let mut memo = Memo::new();
        let a = scan(&cat, "A");
        let d = ExprNode::distinct(a.clone()).unwrap();
        let g_d = memo.insert_tree(&d);
        let g_a = memo.insert_tree(&a);
        assert!(memo.is_leaf(g_a));
        assert!(!memo.is_leaf(g_d));
    }

    #[test]
    fn root_survives_merges() {
        let cat = catalog();
        let mut memo = Memo::new();
        let a = scan(&cat, "A");
        let s1 = ExprNode::select(a.clone(), ScalarExpr::col_eq_lit(0, 1)).unwrap();
        let s2 = ExprNode::select(a, ScalarExpr::col_eq_lit(1, 2)).unwrap();
        let g1 = memo.insert_tree(&s1);
        let g2 = memo.insert_tree(&s2);
        memo.set_root(g2);
        memo.merge(g1, g2);
        assert_eq!(memo.root().unwrap(), memo.find(g1));
    }
}

//! Rendering the expression DAG — the paper's Figure 2 output.
//!
//! [`DagNames`] assigns the paper-style display names (`N1…` for
//! equivalence nodes, `E1…` for operation nodes) in breadth-first order
//! from the root; [`render_text`] prints the Figure-2-like listing and
//! [`to_dot`] emits Graphviz.

use std::collections::HashMap;
use std::fmt::Write as _;

use spacetime_storage::Schema;

use crate::memo::{GroupId, Memo, OpId};

/// Stable display names for a DAG's nodes.
#[derive(Debug, Clone, Default)]
pub struct DagNames {
    /// Group → `N<k>`.
    pub groups: HashMap<GroupId, String>,
    /// Operation node → `E<k>`.
    pub ops: HashMap<OpId, String>,
    /// Groups in naming order.
    pub group_order: Vec<GroupId>,
    /// Ops in naming order.
    pub op_order: Vec<OpId>,
}

impl DagNames {
    /// Assign names breadth-first from `root` (so the root is `N1`,
    /// matching the paper's numbering style).
    pub fn assign(memo: &Memo, root: GroupId) -> DagNames {
        let mut names = DagNames::default();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(memo.find(root));
        while let Some(g) = queue.pop_front() {
            if names.groups.contains_key(&g) {
                continue;
            }
            let n = names.groups.len() + 1;
            names.groups.insert(g, format!("N{n}"));
            names.group_order.push(g);
            for op in memo.group_ops(g) {
                let e = names.ops.len() + 1;
                names.ops.entry(op).or_insert_with(|| format!("E{e}"));
                names.op_order.push(op);
                for c in memo.op_children(op) {
                    if !names.groups.contains_key(&c) {
                        queue.push_back(c);
                    }
                }
            }
        }
        names
    }

    /// Display name of a group.
    pub fn group(&self, g: GroupId) -> &str {
        self.groups.get(&g).map(String::as_str).unwrap_or("N?")
    }

    /// Display name of an operation node.
    pub fn op(&self, o: OpId) -> &str {
        self.ops.get(&o).map(String::as_str).unwrap_or("E?")
    }
}

fn op_label(memo: &Memo, op: OpId) -> String {
    let children = memo.op_children(op);
    let schemas: Vec<&Schema> = children.iter().map(|&c| memo.schema(c)).collect();
    memo.op(op).op.describe(&schemas)
}

/// Figure-2-style text listing of the DAG under `root`.
pub fn render_text(memo: &Memo, root: GroupId) -> String {
    let names = DagNames::assign(memo, root);
    let mut out = String::new();
    for &g in &names.group_order {
        let marker = if memo.root() == Some(memo.find(g)) {
            " (root)"
        } else {
            ""
        };
        let _ = writeln!(out, "{}{}: [{}]", names.group(g), marker, memo.schema(g));
        for op in memo.group_ops(g) {
            let kids: Vec<&str> = memo
                .op_children(op)
                .iter()
                .map(|&c| names.group(c))
                .collect();
            let arrow = if kids.is_empty() {
                String::new()
            } else {
                format!(" -> {}", kids.join(", "))
            };
            let _ = writeln!(out, "  {}: {}{}", names.op(op), op_label(memo, op), arrow);
        }
    }
    out
}

/// Graphviz rendering of the DAG under `root` (equivalence nodes as boxes,
/// operation nodes as ellipses).
pub fn to_dot(memo: &Memo, root: GroupId) -> String {
    let names = DagNames::assign(memo, root);
    let mut out = String::from("digraph expression_dag {\n  rankdir=BT;\n");
    for &g in &names.group_order {
        let _ = writeln!(
            out,
            "  \"{}\" [shape=box, style=bold, label=\"{}\"];",
            names.group(g),
            names.group(g),
        );
        for op in memo.group_ops(g) {
            let label = op_label(memo, op).replace('"', "'");
            let _ = writeln!(
                out,
                "  \"{}\" [shape=ellipse, label=\"{label}\"];",
                names.op(op)
            );
            let _ = writeln!(out, "  \"{}\" -> \"{}\";", names.op(op), names.group(g));
            for c in memo.op_children(op) {
                let _ = writeln!(out, "  \"{}\" -> \"{}\";", names.group(c), names.op(op));
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacetime_algebra::ExprNode;
    use spacetime_storage::{Catalog, DataType, Schema};

    fn setup() -> (Memo, GroupId) {
        let mut cat = Catalog::new();
        for name in ["A", "B"] {
            cat.create_table(name, Schema::of_table(name, &[("x", DataType::Int)]))
                .unwrap();
        }
        let a = ExprNode::scan(&cat, "A").unwrap();
        let b = ExprNode::scan(&cat, "B").unwrap();
        let j = ExprNode::join_on(a, b, &[("A.x", "B.x")]).unwrap();
        let mut memo = Memo::new();
        let root = memo.insert_tree(&j);
        memo.set_root(root);
        (memo, root)
    }

    #[test]
    fn names_start_at_root() {
        let (memo, root) = setup();
        let names = DagNames::assign(&memo, root);
        assert_eq!(names.group(root), "N1");
        assert_eq!(names.group_order.len(), 3);
        assert_eq!(names.op_order.len(), 3);
    }

    #[test]
    fn text_rendering_lists_all_nodes() {
        let (memo, root) = setup();
        let text = render_text(&memo, root);
        assert!(text.contains("N1 (root)"), "{text}");
        assert!(text.contains("Join (A.x = B.x) -> N2, N3"), "{text}");
    }

    #[test]
    fn dot_is_well_formed() {
        let (memo, root) = setup();
        let dot = to_dot(&memo, root);
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        assert_eq!(dot.matches("shape=box").count(), 3);
        assert_eq!(dot.matches("shape=ellipse").count(), 3);
    }
}

//! Equivalence rules.
//!
//! Rules take one operation node and produce equivalent expressions over
//! existing groups; inserting a produced expression into the node's group
//! is what records the equivalence (and may merge groups). The paper is
//! deliberately rule-set-agnostic — *"our results are independent of the
//! actual set of equivalence rules used, though a larger set of rules would
//! obviously allow us to explore a larger search space"* (§3.1, fn. 2) —
//! so the set here is the one its figures need plus the standard SPJ
//! repertoire:
//!
//! * [`JoinCommute`] — `A ⋈ B ⇒ π(B ⋈ A)` (with a column-order-restoring
//!   projection, since equivalence is bag equality).
//! * [`JoinAssoc`] — `(A ⋈ B) ⋈ C ⇔ A ⋈ (B ⋈ C)` (both directions).
//! * [`SelectPushJoin`] — push a selection to the join side it references,
//!   or fold it into the join's residual predicate.
//! * [`SelectPullResidual`] — hoist a join residual into a selection.
//! * [`SelectMerge`] — `σ_{p1}(σ_{p2}(X)) ⇒ σ_{p1∧p2}(X)`.
//! * [`ProjectMerge`] — compose stacked projections.
//! * [`ProjectIdentity`] — an identity projection *is* its child (group
//!   merge).
//! * [`EagerAggregation`] — the Yan–Larson [19] rewrite that relates the
//!   two trees of the paper's Figure 1: push grouping/aggregation below a
//!   join when the other side is joined on a key. (The paper: "One can be
//!   generated from the other by using equivalence rules such as those
//!   proposed by Yan and Larson.")
//! * [`LazyAggregation`] — the inverse direction: pull grouping above a
//!   key-join, so exploration reaches the same DAG regardless of which of
//!   the two Figure-1 forms the user wrote.

use spacetime_algebra::{
    cols_contain_key, column_equivalences, derive_keys, derive_schema, AggExpr,
    AlgebraResult as StorageResult, ExprNode, JoinCondition, Key, OpKind, ScalarExpr,
};
use spacetime_storage::{Catalog, Schema};

use crate::memo::{GroupId, Memo, OpId};

/// An expression produced by a rule: operators over existing groups.
#[derive(Debug, Clone)]
pub enum NewExpr {
    /// A fresh operator with sub-expressions.
    Op {
        /// The operator.
        op: OpKind,
        /// Children.
        children: Vec<NewExpr>,
    },
    /// Reference to an existing group.
    Group(GroupId),
}

impl NewExpr {
    /// Convenience constructor.
    pub fn op(op: OpKind, children: Vec<NewExpr>) -> Self {
        NewExpr::Op { op, children }
    }
}

/// Insert a rule-produced expression, asserting it equivalent to `target`.
/// Returns the canonical target group.
pub fn insert_new_expr(memo: &mut Memo, expr: &NewExpr, target: GroupId) -> StorageResult<GroupId> {
    match expr {
        NewExpr::Group(g) => {
            // The target group *is* this group: merge.
            let g = memo.find(*g);
            let target = memo.find(target);
            if g != target {
                memo.merge(target, g);
            }
            Ok(memo.find(target))
        }
        NewExpr::Op { op, children } => {
            let child_groups: Vec<GroupId> = children
                .iter()
                .map(|c| insert_sub_expr(memo, c))
                .collect::<StorageResult<_>>()?;
            let schema = new_op_schema(memo, op, &child_groups)?;
            Ok(memo.insert_op(op.clone(), child_groups, Some(target), schema))
        }
    }
}

fn insert_sub_expr(memo: &mut Memo, expr: &NewExpr) -> StorageResult<GroupId> {
    match expr {
        NewExpr::Group(g) => Ok(memo.find(*g)),
        NewExpr::Op { op, children } => {
            let child_groups: Vec<GroupId> = children
                .iter()
                .map(|c| insert_sub_expr(memo, c))
                .collect::<StorageResult<_>>()?;
            let schema = new_op_schema(memo, op, &child_groups)?;
            Ok(memo.insert_op(op.clone(), child_groups, None, schema))
        }
    }
}

fn new_op_schema(memo: &Memo, op: &OpKind, children: &[GroupId]) -> StorageResult<Schema> {
    let schemas: Vec<&Schema> = children.iter().map(|&c| memo.schema(c)).collect();
    derive_schema(op, &schemas)
}

/// One equivalence rule.
pub trait Rule {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Equivalent expressions for the given operation node (to be inserted
    /// into its group).
    fn apply(&self, memo: &Memo, op: OpId, catalog: &Catalog) -> Vec<NewExpr>;
}

/// A set of rules.
pub type RuleSet = Vec<Box<dyn Rule>>;

/// The standard rule set (everything this module defines).
pub fn default_rules() -> RuleSet {
    vec![
        Box::new(JoinCommute),
        Box::new(JoinAssoc),
        Box::new(SelectPushJoin),
        Box::new(SelectPullResidual),
        Box::new(SelectMerge),
        Box::new(ProjectMerge),
        Box::new(ProjectIdentity),
        Box::new(EagerAggregation),
        Box::new(LazyAggregation),
    ]
}

/// Keys of a group's output, derived from one representative tree.
fn group_keys(memo: &Memo, g: GroupId, catalog: &Catalog) -> Vec<Key> {
    derive_keys(&memo.extract_one(g), catalog)
}

// ---------------------------------------------------------------------
// Join commutativity
// ---------------------------------------------------------------------

/// `A ⋈_c B ⇒ π_{A,B}(B ⋈_{c'} A)`.
pub struct JoinCommute;

impl Rule for JoinCommute {
    fn name(&self) -> &'static str {
        "join-commute"
    }

    fn apply(&self, memo: &Memo, op: OpId, _catalog: &Catalog) -> Vec<NewExpr> {
        let node = memo.op(op);
        let OpKind::Join { condition } = &node.op else {
            return vec![];
        };
        let [left, right] = node.children[..] else {
            return vec![];
        };
        let a = memo.schema(left).arity();
        let b = memo.schema(right).arity();
        let swapped_pairs: Vec<(usize, usize)> =
            condition.equi.iter().map(|&(l, r)| (r, l)).collect();
        let residual = match &condition.residual {
            Some(res) => {
                // Old positions over A++B → new positions over B++A.
                match res.remap_columns(&|i| Some(if i < a { b + i } else { i - a })) {
                    Ok(r) => Some(r),
                    Err(_) => return vec![],
                }
            }
            None => None,
        };
        let inner = NewExpr::op(
            OpKind::Join {
                condition: JoinCondition {
                    equi: swapped_pairs,
                    residual,
                },
            },
            vec![NewExpr::Group(right), NewExpr::Group(left)],
        );
        // Restore the original column order A ++ B.
        let own = memo.schema(memo.op_group(op));
        let exprs: Vec<(ScalarExpr, String)> = (0..a + b)
            .map(|i| {
                let src = if i < a { b + i } else { i - a };
                (
                    ScalarExpr::col(src),
                    own.column(i).map(|c| c.name.clone()).unwrap_or_default(),
                )
            })
            .collect();
        vec![NewExpr::op(OpKind::Project { exprs }, vec![inner])]
    }
}

// ---------------------------------------------------------------------
// Join associativity
// ---------------------------------------------------------------------

/// `(A ⋈ B) ⋈ C ⇔ A ⋈ (B ⋈ C)` for pure equi-joins. Column order is
/// `A ++ B ++ C` on both sides, so no projection is needed.
pub struct JoinAssoc;

impl Rule for JoinAssoc {
    fn name(&self) -> &'static str {
        "join-assoc"
    }

    fn apply(&self, memo: &Memo, op: OpId, _catalog: &Catalog) -> Vec<NewExpr> {
        let node = memo.op(op);
        let OpKind::Join { condition: top } = &node.op else {
            return vec![];
        };
        if !top.is_pure_equi() {
            return vec![];
        }
        let [left, right] = node.children[..] else {
            return vec![];
        };
        let mut out = Vec::new();

        // Left-deep → right-deep: (A ⋈ B) ⋈ C ⇒ A ⋈ (B ⋈ C).
        for alt in memo.group_ops(left) {
            let alt_node = memo.op(alt);
            let OpKind::Join { condition: bot } = &alt_node.op else {
                continue;
            };
            if !bot.is_pure_equi() {
                continue;
            }
            let [ga, gb] = alt_node.children[..] else {
                continue;
            };
            let a = memo.schema(ga).arity();
            let b = memo.schema(gb).arity();
            let bc_pairs: Vec<(usize, usize)> = top
                .equi
                .iter()
                .filter(|&&(l, _)| l >= a)
                .map(|&(l, r)| (l - a, r))
                .collect();
            let mut top_pairs: Vec<(usize, usize)> = bot.equi.clone();
            top_pairs.extend(
                top.equi
                    .iter()
                    .filter(|&&(l, _)| l < a)
                    .map(|&(l, r)| (l, r + b)),
            );
            let inner = NewExpr::op(
                OpKind::Join {
                    condition: JoinCondition::on(bc_pairs),
                },
                vec![NewExpr::Group(gb), NewExpr::Group(memo.find(right))],
            );
            out.push(NewExpr::op(
                OpKind::Join {
                    condition: JoinCondition::on(top_pairs),
                },
                vec![NewExpr::Group(ga), inner],
            ));
        }

        // Right-deep → left-deep: A ⋈ (B ⋈ C) ⇒ (A ⋈ B) ⋈ C.
        for alt in memo.group_ops(right) {
            let alt_node = memo.op(alt);
            let OpKind::Join { condition: bot } = &alt_node.op else {
                continue;
            };
            if !bot.is_pure_equi() {
                continue;
            }
            let [gb, gc] = alt_node.children[..] else {
                continue;
            };
            let a = memo.schema(node.children[0]).arity();
            let b = memo.schema(gb).arity();
            let ab_pairs: Vec<(usize, usize)> = top
                .equi
                .iter()
                .filter(|&&(_, r)| r < b)
                .map(|&(l, r)| (l, r))
                .collect();
            let mut top_pairs: Vec<(usize, usize)> =
                bot.equi.iter().map(|&(l, r)| (l + a, r)).collect();
            top_pairs.extend(
                top.equi
                    .iter()
                    .filter(|&&(_, r)| r >= b)
                    .map(|&(l, r)| (l, r - b)),
            );
            let inner = NewExpr::op(
                OpKind::Join {
                    condition: JoinCondition::on(ab_pairs),
                },
                vec![NewExpr::Group(memo.find(left)), NewExpr::Group(gb)],
            );
            out.push(NewExpr::op(
                OpKind::Join {
                    condition: JoinCondition::on(top_pairs),
                },
                vec![inner, NewExpr::Group(gc)],
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Selection rules
// ---------------------------------------------------------------------

/// Push `σ_p` below a join: to the side `p` references, or into the join
/// residual when it spans both.
pub struct SelectPushJoin;

impl Rule for SelectPushJoin {
    fn name(&self) -> &'static str {
        "select-push-join"
    }

    fn apply(&self, memo: &Memo, op: OpId, _catalog: &Catalog) -> Vec<NewExpr> {
        let node = memo.op(op);
        let OpKind::Select { predicate } = &node.op else {
            return vec![];
        };
        let child = memo.find(node.children[0]);
        let mut out = Vec::new();
        for alt in memo.group_ops(child) {
            let alt_node = memo.op(alt);
            let OpKind::Join { condition } = &alt_node.op else {
                continue;
            };
            let [ga, gb] = alt_node.children[..] else {
                continue;
            };
            let a = memo.schema(ga).arity();
            let used = predicate.columns_used();
            if used.iter().all(|&c| c < a) {
                // Entirely on the left side.
                out.push(NewExpr::op(
                    OpKind::Join {
                        condition: condition.clone(),
                    },
                    vec![
                        NewExpr::op(
                            OpKind::Select {
                                predicate: predicate.clone(),
                            },
                            vec![NewExpr::Group(ga)],
                        ),
                        NewExpr::Group(gb),
                    ],
                ));
            } else if used.iter().all(|&c| c >= a) {
                // Entirely on the right side.
                let Ok(p) = predicate.remap_columns(&|c| c.checked_sub(a)) else {
                    continue;
                };
                out.push(NewExpr::op(
                    OpKind::Join {
                        condition: condition.clone(),
                    },
                    vec![
                        NewExpr::Group(ga),
                        NewExpr::op(OpKind::Select { predicate: p }, vec![NewExpr::Group(gb)]),
                    ],
                ));
            } else {
                // Spans both: fold into the residual.
                let mut cond = condition.clone();
                cond.residual = Some(match cond.residual.take() {
                    Some(r) => r.and(predicate.clone()),
                    None => predicate.clone(),
                });
                out.push(NewExpr::op(
                    OpKind::Join { condition: cond },
                    vec![NewExpr::Group(ga), NewExpr::Group(gb)],
                ));
            }
        }
        out
    }
}

/// Hoist a join residual: `A ⋈_{c,r} B ⇒ σ_r(A ⋈_c B)`.
pub struct SelectPullResidual;

impl Rule for SelectPullResidual {
    fn name(&self) -> &'static str {
        "select-pull-residual"
    }

    fn apply(&self, memo: &Memo, op: OpId, _catalog: &Catalog) -> Vec<NewExpr> {
        let node = memo.op(op);
        let OpKind::Join { condition } = &node.op else {
            return vec![];
        };
        let Some(residual) = &condition.residual else {
            return vec![];
        };
        let inner = NewExpr::op(
            OpKind::Join {
                condition: JoinCondition::on(condition.equi.clone()),
            },
            vec![
                NewExpr::Group(memo.find(node.children[0])),
                NewExpr::Group(memo.find(node.children[1])),
            ],
        );
        vec![NewExpr::op(
            OpKind::Select {
                predicate: residual.clone(),
            },
            vec![inner],
        )]
    }
}

/// `σ_{p1}(σ_{p2}(X)) ⇒ σ_{p1 ∧ p2}(X)`.
pub struct SelectMerge;

impl Rule for SelectMerge {
    fn name(&self) -> &'static str {
        "select-merge"
    }

    fn apply(&self, memo: &Memo, op: OpId, _catalog: &Catalog) -> Vec<NewExpr> {
        let node = memo.op(op);
        let OpKind::Select { predicate: p1 } = &node.op else {
            return vec![];
        };
        let child = memo.find(node.children[0]);
        let mut out = Vec::new();
        for alt in memo.group_ops(child) {
            let alt_node = memo.op(alt);
            let OpKind::Select { predicate: p2 } = &alt_node.op else {
                continue;
            };
            out.push(NewExpr::op(
                OpKind::Select {
                    predicate: p1.clone().and(p2.clone()),
                },
                vec![NewExpr::Group(memo.find(alt_node.children[0]))],
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Projection rules
// ---------------------------------------------------------------------

/// `π_{e1}(π_{e2}(X)) ⇒ π_{e1 ∘ e2}(X)`.
pub struct ProjectMerge;

impl Rule for ProjectMerge {
    fn name(&self) -> &'static str {
        "project-merge"
    }

    fn apply(&self, memo: &Memo, op: OpId, _catalog: &Catalog) -> Vec<NewExpr> {
        let node = memo.op(op);
        let OpKind::Project { exprs: e1 } = &node.op else {
            return vec![];
        };
        let child = memo.find(node.children[0]);
        let mut out = Vec::new();
        for alt in memo.group_ops(child) {
            let alt_node = memo.op(alt);
            let OpKind::Project { exprs: e2 } = &alt_node.op else {
                continue;
            };
            let composed: Vec<(ScalarExpr, String)> = e1
                .iter()
                .map(|(e, n)| {
                    (
                        e.substitute(&|c| {
                            e2.get(c)
                                .map(|(inner, _)| inner.clone())
                                // Out-of-range (malformed) references keep
                                // their position and will fail validation.
                                .unwrap_or(ScalarExpr::Col(c))
                        }),
                        n.clone(),
                    )
                })
                .collect();
            out.push(NewExpr::op(
                OpKind::Project { exprs: composed },
                vec![NewExpr::Group(memo.find(alt_node.children[0]))],
            ));
        }
        out
    }
}

/// An identity projection is its child: `π_{0..n}(X) ≡ X` (group merge).
pub struct ProjectIdentity;

impl Rule for ProjectIdentity {
    fn name(&self) -> &'static str {
        "project-identity"
    }

    fn apply(&self, memo: &Memo, op: OpId, _catalog: &Catalog) -> Vec<NewExpr> {
        let node = memo.op(op);
        let OpKind::Project { exprs } = &node.op else {
            return vec![];
        };
        let child = memo.find(node.children[0]);
        if exprs.len() != memo.schema(child).arity() {
            return vec![];
        }
        let identity = exprs
            .iter()
            .enumerate()
            .all(|(i, (e, _))| matches!(e, ScalarExpr::Col(c) if *c == i));
        if identity {
            vec![NewExpr::Group(child)]
        } else {
            vec![]
        }
    }
}

// ---------------------------------------------------------------------
// Eager aggregation (Yan–Larson)
// ---------------------------------------------------------------------

/// Push grouping/aggregation below a join:
///
/// `γ_{gb, aggs}(A ⋈_c B) ⇒ π(γ_{gb_A ∪ c_A, aggs}(A) ⋈ B)` when
///
/// 1. the join is a pure equi-join,
/// 2. every aggregate argument references only `A` columns,
/// 3. every join pair has one side in `gb` (the grouping determines the
///    join key), and
/// 4. `B` is joined on a candidate key of `B` (each `A` row matches at
///    most one `B` row, so multiplicities are preserved).
///
/// The symmetric `B`-side push is also produced. This is the rule that
/// derives the paper's Figure 1 left tree (and hence the SumOfSals
/// candidate N3) from the right tree.
pub struct EagerAggregation;

impl Rule for EagerAggregation {
    fn name(&self) -> &'static str {
        "eager-aggregation"
    }

    fn apply(&self, memo: &Memo, op: OpId, catalog: &Catalog) -> Vec<NewExpr> {
        let node = memo.op(op);
        let OpKind::Aggregate { group_by, aggs } = &node.op else {
            return vec![];
        };
        let child = memo.find(node.children[0]);
        let mut out = Vec::new();
        for alt in memo.group_ops(child) {
            let alt_node = memo.op(alt);
            let OpKind::Join { condition } = &alt_node.op else {
                continue;
            };
            if !condition.is_pure_equi() || condition.equi.is_empty() {
                continue;
            }
            let [ga, gb_grp] = alt_node.children[..] else {
                continue;
            };
            let a = memo.schema(ga).arity();
            // Condition 3: grouping determines the join key. A join column
            // need not *be* a grouping column — being provably equal to
            // one (through nested equi-joins, as in the paper's
            // ADeptsStatus example) suffices.
            let alt_tree = match ExprNode::build(
                alt_node.op.clone(),
                vec![memo.extract_one(ga), memo.extract_one(gb_grp)],
            ) {
                Ok(t) => t,
                Err(_) => continue,
            };
            let classes = column_equivalences(&alt_tree);
            let cond3 = condition.equi.iter().all(|&(l, r)| {
                classes.intersects(l, group_by) || classes.intersects(r + a, group_by)
            });
            if !cond3 {
                continue;
            }
            // Try pushing into the left side.
            if aggs.iter().all(|ag| agg_arg_within(ag, 0, a)) {
                let right_cols = condition.right_cols();
                let right_keys = group_keys(memo, gb_grp, catalog);
                let right_on_key = right_keys
                    .iter()
                    .any(|k| k.iter().all(|c| right_cols.contains(c)));
                if right_on_key {
                    if let Some(e) = push_left(memo, node, group_by, aggs, condition, ga, gb_grp) {
                        out.push(e);
                    }
                }
            }
            // Try pushing into the right side.
            if aggs.iter().all(|ag| agg_arg_within(ag, a, usize::MAX)) {
                let left_cols = condition.left_cols();
                let left_tree = memo.extract_one(ga);
                if cols_contain_key(&left_tree, catalog, &left_cols) {
                    if let Some(e) = push_right(memo, node, group_by, aggs, condition, ga, gb_grp) {
                        out.push(e);
                    }
                }
            }
        }
        out
    }
}

fn agg_arg_within(agg: &AggExpr, lo: usize, hi: usize) -> bool {
    match &agg.arg {
        Some(e) => e.columns_used().iter().all(|&c| c >= lo && c < hi),
        None => true, // COUNT(*) counts rows; safe under a key-join
    }
}

fn push_left(
    memo: &Memo,
    node: &crate::memo::OperationNode,
    group_by: &[usize],
    aggs: &[AggExpr],
    condition: &JoinCondition,
    ga: GroupId,
    gb_grp: GroupId,
) -> Option<NewExpr> {
    let a = memo.schema(ga).arity();
    // Pushed grouping: A-side group-by columns, then any missing join cols.
    let mut pushed_gb: Vec<usize> = group_by.iter().copied().filter(|&g| g < a).collect();
    for &(l, _) in &condition.equi {
        if !pushed_gb.contains(&l) {
            pushed_gb.push(l);
        }
    }
    let pushed_agg = OpKind::Aggregate {
        group_by: pushed_gb.clone(),
        aggs: aggs.to_vec(),
    };
    // New join: aggregate output ⋈ B on the (relocated) join columns.
    let new_pairs: Vec<(usize, usize)> = condition
        .equi
        .iter()
        .map(|&(l, r)| (pushed_gb.iter().position(|&g| g == l).expect("added"), r))
        .collect();
    let pushed_out_arity = pushed_gb.len() + aggs.len();
    // Projection restoring the original aggregate output order.
    let own_schema = memo.schema(memo.find(node.group));
    let exprs: Vec<(ScalarExpr, String)> = group_by
        .iter()
        .enumerate()
        .map(|(i, &g)| {
            let src = if g < a {
                pushed_gb.iter().position(|&p| p == g).expect("subset")
            } else {
                pushed_out_arity + (g - a)
            };
            (
                ScalarExpr::col(src),
                own_schema
                    .column(i)
                    .map(|c| c.name.clone())
                    .unwrap_or_default(),
            )
        })
        .chain(
            aggs.iter()
                .enumerate()
                .map(|(i, ag)| (ScalarExpr::col(pushed_gb.len() + i), ag.name.clone())),
        )
        .collect();
    let join = NewExpr::op(
        OpKind::Join {
            condition: JoinCondition::on(new_pairs),
        },
        vec![
            NewExpr::op(pushed_agg, vec![NewExpr::Group(ga)]),
            NewExpr::Group(memo.find(gb_grp)),
        ],
    );
    Some(NewExpr::op(OpKind::Project { exprs }, vec![join]))
}

fn push_right(
    memo: &Memo,
    node: &crate::memo::OperationNode,
    group_by: &[usize],
    aggs: &[AggExpr],
    condition: &JoinCondition,
    ga: GroupId,
    gb_grp: GroupId,
) -> Option<NewExpr> {
    let a = memo.schema(ga).arity();
    // B-side positions.
    let mut pushed_gb: Vec<usize> = group_by
        .iter()
        .copied()
        .filter(|&g| g >= a)
        .map(|g| g - a)
        .collect();
    for &(_, r) in &condition.equi {
        if !pushed_gb.contains(&r) {
            pushed_gb.push(r);
        }
    }
    let remapped_aggs: Vec<AggExpr> = aggs
        .iter()
        .map(|ag| {
            Some(AggExpr {
                func: ag.func,
                arg: match &ag.arg {
                    Some(e) => Some(e.remap_columns(&|c| c.checked_sub(a)).ok()?),
                    None => None,
                },
                name: ag.name.clone(),
            })
        })
        .collect::<Option<_>>()?;
    let pushed_agg = OpKind::Aggregate {
        group_by: pushed_gb.clone(),
        aggs: remapped_aggs,
    };
    let new_pairs: Vec<(usize, usize)> = condition
        .equi
        .iter()
        .map(|&(l, r)| (l, pushed_gb.iter().position(|&g| g == r).expect("added")))
        .collect();
    let own_schema = memo.schema(memo.find(node.group));
    let exprs: Vec<(ScalarExpr, String)> = group_by
        .iter()
        .enumerate()
        .map(|(i, &g)| {
            let src = if g >= a {
                a + pushed_gb.iter().position(|&p| p == g - a).expect("subset")
            } else {
                g
            };
            (
                ScalarExpr::col(src),
                own_schema
                    .column(i)
                    .map(|c| c.name.clone())
                    .unwrap_or_default(),
            )
        })
        .chain(
            aggs.iter()
                .enumerate()
                .map(|(i, ag)| (ScalarExpr::col(a + pushed_gb.len() + i), ag.name.clone())),
        )
        .collect();
    let join = NewExpr::op(
        OpKind::Join {
            condition: JoinCondition::on(new_pairs),
        },
        vec![
            NewExpr::Group(memo.find(ga)),
            NewExpr::op(pushed_agg, vec![NewExpr::Group(memo.find(gb_grp))]),
        ],
    );
    Some(NewExpr::op(OpKind::Project { exprs }, vec![join]))
}

// ---------------------------------------------------------------------
// Lazy aggregation (the inverse of eager)
// ---------------------------------------------------------------------

/// Pull grouping/aggregation above a join:
///
/// `γ_{gb, aggs}(A) ⋈_c B ⇒ π(γ_{gb ∪ B-cols, aggs}(A ⋈ B))` when
///
/// 1. the join is a pure equi-join,
/// 2. the join's left columns are grouping-column outputs of the
///    aggregate (positions `< |gb|`), and
/// 3. `B` is joined on a candidate key of `B` (each group matches at most
///    one `B` row, so pulling the aggregation keeps multiplicities).
///
/// With this rule and [`EagerAggregation`] together, exploration converges
/// to the same DAG from either tree of the paper's Figure 1.
pub struct LazyAggregation;

impl Rule for LazyAggregation {
    fn name(&self) -> &'static str {
        "lazy-aggregation"
    }

    fn apply(&self, memo: &Memo, op: OpId, catalog: &Catalog) -> Vec<NewExpr> {
        let node = memo.op(op);
        let OpKind::Join { condition } = &node.op else {
            return vec![];
        };
        if !condition.is_pure_equi() || condition.equi.is_empty() {
            return vec![];
        }
        let [left, right] = memo.op_children(op)[..] else {
            return vec![];
        };
        let mut out = Vec::new();
        for alt in memo.group_ops(left) {
            let alt_node = memo.op(alt);
            let OpKind::Aggregate { group_by, aggs } = &alt_node.op else {
                continue;
            };
            // Condition 2: the join drives off grouping columns.
            if !condition.equi.iter().all(|&(l, _)| l < group_by.len()) {
                continue;
            }
            // Condition 3: B joined on one of its keys.
            let right_cols = condition.right_cols();
            let right_keys = group_keys(memo, right, catalog);
            if !right_keys
                .iter()
                .any(|k| k.iter().all(|c| right_cols.contains(c)))
            {
                continue;
            }
            let ga = memo.op_children(alt)[0];
            let a_arity = memo.schema(ga).arity();
            let b_arity = memo.schema(right).arity();

            // Inner join A ⋈ B: join pairs map the agg-output grouping
            // positions back to A positions.
            let inner_pairs: Vec<(usize, usize)> = condition
                .equi
                .iter()
                .map(|&(l, r)| (group_by[l], r))
                .collect();
            let inner = NewExpr::op(
                OpKind::Join {
                    condition: JoinCondition::on(inner_pairs),
                },
                vec![
                    NewExpr::Group(memo.find(ga)),
                    NewExpr::Group(memo.find(right)),
                ],
            );

            // Pulled aggregate: original grouping columns (A positions),
            // then every B column (functionally determined by the key
            // join, so partitions are unchanged).
            let mut pulled_gb: Vec<usize> = group_by.clone();
            pulled_gb.extend((0..b_arity).map(|c| a_arity + c));
            let pulled = NewExpr::op(
                OpKind::Aggregate {
                    group_by: pulled_gb.clone(),
                    aggs: aggs.clone(),
                },
                vec![inner],
            );

            // Restore the join's output order: (gb cols, agg outs, B cols).
            let own_schema = memo.schema(memo.op_group(op));
            let exprs: Vec<(ScalarExpr, String)> = (0..group_by.len()) // grouping outputs stay first
                .chain((0..aggs.len()).map(|i| pulled_gb.len() + i))
                .chain((0..b_arity).map(|i| group_by.len() + i))
                .enumerate()
                .map(|(out_pos, src)| {
                    (
                        ScalarExpr::col(src),
                        own_schema
                            .column(out_pos)
                            .map(|c| c.name.clone())
                            .unwrap_or_default(),
                    )
                })
                .collect();
            out.push(NewExpr::op(OpKind::Project { exprs }, vec![pulled]));
        }
        out
    }
}

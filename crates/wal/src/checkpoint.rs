//! Checkpoint segments: a full catalog snapshot plus enough engine
//! metadata to rebuild every propagation engine deterministically.
//!
//! A checkpoint is written to `<name>.tmp`, fsynced, then atomically
//! renamed over the previous checkpoint — a crash mid-write always
//! leaves the prior checkpoint intact ("background-safe"). The file is
//! `[magic][crc32(body)][body]`; any mismatch rejects the whole file.
//!
//! Decoding is two-phase because expression trees re-derive their
//! schemas against a live catalog: [`read_checkpoint`] decodes the
//! catalog-independent parts (tables, config, assertions) and keeps the
//! engine section as raw bytes; the caller restores the tables into a
//! [`Catalog`] and then calls [`RawCheckpoint::decode_engines`].

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

use spacetime_algebra::ExprTree;
use spacetime_obs::metrics as obs;
use spacetime_obs::names;
use spacetime_storage::{Catalog, DataType, Tuple};

use crate::codec::{self, crc32, Cur};
use crate::{WalError, WalResult};

const MAGIC: &[u8; 8] = b"STWALCK1";

/// One table's durable state: schema, keys, indexes, page geometry,
/// and rows (in [`spacetime_storage::Bag::sorted`] order).
#[derive(Debug, Clone)]
pub struct TableDump {
    pub name: String,
    pub is_base: bool,
    pub columns: Vec<(Option<String>, String, DataType)>,
    pub keys: Vec<Vec<usize>>,
    pub index_defs: Vec<Vec<usize>>,
    pub relation_tuples_per_page: u64,
    pub stats_tuples_per_page: u64,
    pub rows: Vec<(Tuple, u64)>,
}

/// One engine's rebuild recipe: the original creation trees (replayed
/// through `Memo::insert_tree` + `explore` at recovery, reproducing the
/// memo bit-identically) and the pinned materializations (tree → table
/// name for every view-set group, aux tables included).
#[derive(Debug, Clone)]
pub struct EngineDump {
    pub name: String,
    pub creation: Vec<(String, ExprTree)>,
    pub pins: Vec<(String, ExprTree)>,
}

/// Everything a checkpoint persists. Built by the IVM layer, encoded
/// here.
#[derive(Debug, Clone)]
pub struct CheckpointDoc {
    /// Every txn with id <= this is covered by the snapshot.
    pub last_txn: u64,
    pub propagation_mode: u8,
    pub execution_mode: u8,
    pub tables: Vec<TableDump>,
    pub assertions: Vec<(String, String)>,
    pub engines: Vec<EngineDump>,
}

/// A decoded checkpoint with the engine section still raw (phase two
/// needs the restored catalog; see module docs).
#[derive(Debug)]
pub struct RawCheckpoint {
    pub last_txn: u64,
    pub propagation_mode: u8,
    pub execution_mode: u8,
    pub tables: Vec<TableDump>,
    pub assertions: Vec<(String, String)>,
    engine_bytes: Vec<u8>,
}

fn put_table(buf: &mut Vec<u8>, t: &TableDump) {
    codec::put_str(buf, &t.name);
    codec::put_bool(buf, t.is_base);
    codec::put_u32(buf, t.columns.len() as u32);
    for (q, name, dt) in &t.columns {
        codec::put_opt_str(buf, q.as_deref());
        codec::put_str(buf, name);
        codec::put_datatype(buf, *dt);
    }
    codec::put_u32(buf, t.keys.len() as u32);
    for k in &t.keys {
        codec::put_usize_vec(buf, k);
    }
    codec::put_u32(buf, t.index_defs.len() as u32);
    for d in &t.index_defs {
        codec::put_usize_vec(buf, d);
    }
    codec::put_u64(buf, t.relation_tuples_per_page);
    codec::put_u64(buf, t.stats_tuples_per_page);
    codec::put_u32(buf, t.rows.len() as u32);
    for (tuple, n) in &t.rows {
        codec::put_tuple(buf, tuple);
        codec::put_u64(buf, *n);
    }
}

fn get_table(cur: &mut Cur) -> WalResult<TableDump> {
    let name = cur.str()?;
    let is_base = cur.bool()?;
    let ncols = cur.u32()? as usize;
    let mut columns = Vec::with_capacity(ncols.min(1 << 12));
    for _ in 0..ncols {
        let q = cur.opt_str()?;
        let cname = cur.str()?;
        let dt = codec::get_datatype(cur)?;
        columns.push((q, cname, dt));
    }
    let nkeys = cur.u32()? as usize;
    let mut keys = Vec::with_capacity(nkeys.min(1 << 12));
    for _ in 0..nkeys {
        keys.push(cur.usize_vec()?);
    }
    let ndefs = cur.u32()? as usize;
    let mut index_defs = Vec::with_capacity(ndefs.min(1 << 12));
    for _ in 0..ndefs {
        index_defs.push(cur.usize_vec()?);
    }
    let relation_tuples_per_page = cur.u64()?;
    let stats_tuples_per_page = cur.u64()?;
    let nrows = cur.u32()? as usize;
    let mut rows = Vec::with_capacity(nrows.min(1 << 16));
    for _ in 0..nrows {
        let t = codec::get_tuple(cur)?;
        let n = cur.u64()?;
        rows.push((t, n));
    }
    Ok(TableDump {
        name,
        is_base,
        columns,
        keys,
        index_defs,
        relation_tuples_per_page,
        stats_tuples_per_page,
        rows,
    })
}

fn encode(doc: &CheckpointDoc) -> Vec<u8> {
    let mut body = Vec::new();
    codec::put_u64(&mut body, doc.last_txn);
    codec::put_u8(&mut body, doc.propagation_mode);
    codec::put_u8(&mut body, doc.execution_mode);
    codec::put_u32(&mut body, doc.tables.len() as u32);
    for t in &doc.tables {
        put_table(&mut body, t);
    }
    codec::put_u32(&mut body, doc.assertions.len() as u32);
    for (name, view) in &doc.assertions {
        codec::put_str(&mut body, name);
        codec::put_str(&mut body, view);
    }
    codec::put_u32(&mut body, doc.engines.len() as u32);
    for e in &doc.engines {
        codec::put_str(&mut body, &e.name);
        codec::put_u32(&mut body, e.creation.len() as u32);
        for (name, tree) in &e.creation {
            codec::put_str(&mut body, name);
            codec::put_tree(&mut body, tree);
        }
        codec::put_u32(&mut body, e.pins.len() as u32);
        for (name, tree) in &e.pins {
            codec::put_str(&mut body, name);
            codec::put_tree(&mut body, tree);
        }
    }
    let mut out = Vec::with_capacity(body.len() + 12);
    out.extend_from_slice(MAGIC);
    codec::put_u32(&mut out, crc32(&body));
    out.extend_from_slice(&body);
    out
}

/// Write `doc` to `path` via tmp-file + fsync + atomic rename. Returns
/// the segment size in bytes.
pub fn write_checkpoint(path: &Path, doc: &CheckpointDoc) -> WalResult<u64> {
    let bytes = encode(doc);
    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself (directory entry) where the platform
    // allows opening directories; ignore failures on those that don't.
    if let Some(parent) = path.parent() {
        if let Ok(d) = File::open(parent) {
            let _ = d.sync_all();
        }
    }
    obs::counter_add(names::WAL_CHECKPOINTS, 1);
    Ok(bytes.len() as u64)
}

/// Read and validate the checkpoint at `path`. `Ok(None)` if the file
/// does not exist (fresh directory); corruption is an error — unlike
/// the log tail, a checkpoint is installed atomically and must never
/// be partially valid.
pub fn read_checkpoint(path: &Path) -> WalResult<Option<RawCheckpoint>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < 12 || &bytes[..8] != MAGIC {
        return Err(WalError::Corrupt("bad checkpoint magic".into()));
    }
    let want_crc = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let body = &bytes[12..];
    if crc32(body) != want_crc {
        return Err(WalError::Corrupt("checkpoint crc mismatch".into()));
    }
    let mut cur = Cur::new(body);
    let last_txn = cur.u64()?;
    let propagation_mode = cur.u8()?;
    let execution_mode = cur.u8()?;
    let ntables = cur.u32()? as usize;
    let mut tables = Vec::with_capacity(ntables.min(1 << 12));
    for _ in 0..ntables {
        tables.push(get_table(&mut cur)?);
    }
    let nasserts = cur.u32()? as usize;
    let mut assertions = Vec::with_capacity(nasserts.min(1 << 12));
    for _ in 0..nasserts {
        let name = cur.str()?;
        let view = cur.str()?;
        assertions.push((name, view));
    }
    let engine_bytes = body[cur.pos()..].to_vec();
    Ok(Some(RawCheckpoint {
        last_txn,
        propagation_mode,
        execution_mode,
        tables,
        assertions,
        engine_bytes,
    }))
}

impl RawCheckpoint {
    /// Phase two: decode the engine dumps against the restored catalog
    /// (every table in [`RawCheckpoint::tables`] must already exist so
    /// scan leaves can re-derive their schemas).
    pub fn decode_engines(&self, catalog: &Catalog) -> WalResult<Vec<EngineDump>> {
        let mut cur = Cur::new(&self.engine_bytes);
        let n = cur.u32()? as usize;
        let mut engines = Vec::with_capacity(n.min(1 << 8));
        for _ in 0..n {
            let name = cur.str()?;
            let ncreate = cur.u32()? as usize;
            let mut creation = Vec::with_capacity(ncreate.min(1 << 8));
            for _ in 0..ncreate {
                let vname = cur.str()?;
                let tree = codec::get_tree(&mut cur, catalog)?;
                creation.push((vname, tree));
            }
            let npins = cur.u32()? as usize;
            let mut pins = Vec::with_capacity(npins.min(1 << 12));
            for _ in 0..npins {
                let tname = cur.str()?;
                let tree = codec::get_tree(&mut cur, catalog)?;
                pins.push((tname, tree));
            }
            engines.push(EngineDump {
                name,
                creation,
                pins,
            });
        }
        if !cur.is_empty() {
            return Err(WalError::Corrupt(format!(
                "{} trailing bytes after engine dumps",
                cur.remaining()
            )));
        }
        Ok(engines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;
    use spacetime_storage::Value;

    fn sample_doc() -> CheckpointDoc {
        CheckpointDoc {
            last_txn: 42,
            propagation_mode: 1,
            execution_mode: 0,
            tables: vec![TableDump {
                name: "Emp".into(),
                is_base: true,
                columns: vec![
                    (Some("Emp".into()), "id".into(), DataType::Int),
                    (Some("Emp".into()), "name".into(), DataType::Str),
                ],
                keys: vec![vec![0]],
                index_defs: vec![vec![0]],
                relation_tuples_per_page: 10,
                stats_tuples_per_page: 10,
                rows: vec![(Tuple::new(vec![Value::Int(1), Value::str("a")]), 1)],
            }],
            assertions: vec![("no_orphans".into(), "__assert_no_orphans".into())],
            engines: Vec::new(),
        }
    }

    #[test]
    fn checkpoint_round_trips() {
        let dir = test_dir("ckpt_roundtrip");
        let path = dir.join("checkpoint.ckpt");
        write_checkpoint(&path, &sample_doc()).unwrap();
        let raw = read_checkpoint(&path).unwrap().unwrap();
        assert_eq!(raw.last_txn, 42);
        assert_eq!(raw.propagation_mode, 1);
        assert_eq!(raw.tables.len(), 1);
        let t = &raw.tables[0];
        assert_eq!(t.name, "Emp");
        assert!(t.is_base);
        assert_eq!(t.keys, vec![vec![0]]);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(raw.assertions.len(), 1);
        // No engines: phase two decodes an empty list against any catalog.
        let engines = raw.decode_engines(&Catalog::default()).unwrap();
        assert!(engines.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_checkpoint_is_none_and_corrupt_is_error() {
        let dir = test_dir("ckpt_corrupt");
        let path = dir.join("checkpoint.ckpt");
        assert!(read_checkpoint(&path).unwrap().is_none());
        write_checkpoint(&path, &sample_doc()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(WalError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let dir = test_dir("ckpt_rewrite");
        let path = dir.join("checkpoint.ckpt");
        write_checkpoint(&path, &sample_doc()).unwrap();
        let mut doc2 = sample_doc();
        doc2.last_txn = 100;
        write_checkpoint(&path, &doc2).unwrap();
        let raw = read_checkpoint(&path).unwrap().unwrap();
        assert_eq!(raw.last_txn, 100);
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}

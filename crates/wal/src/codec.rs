//! Hand-rolled binary codec for WAL frames and checkpoint segments.
//!
//! Everything durable goes through this module: primitive
//! little-endian scalars, [`Value`]/[`Tuple`]/[`Bag`] rows, whole
//! [`Delta`]s, and structural [`ExprTree`] dumps (re-decoded against a
//! live catalog via [`ExprNode::scan`]/[`ExprNode::build`], so schemas
//! are re-derived rather than trusted from disk). The build
//! environment has no registry access, so the CRC32 (IEEE/zlib
//! polynomial) is hand-written rather than pulled from a crate.

use spacetime_algebra::{AggExpr, AggFunc, BinOp, CmpOp, JoinCondition, OpKind, ScalarExpr};
use spacetime_algebra::{ExprNode, ExprTree};
use spacetime_delta::{Delta, Modify};
use spacetime_storage::{Bag, Catalog, DataType, Tuple, Value};

use crate::{WalError, WalResult};

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 / zlib polynomial, reflected)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 checksum (IEEE polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------------

pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

pub fn put_opt_str(buf: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => put_u8(buf, 0),
        Some(s) => {
            put_u8(buf, 1);
            put_str(buf, s);
        }
    }
}

// ---------------------------------------------------------------------------
// Cursor (primitive readers)
// ---------------------------------------------------------------------------

/// Bounds-checked read cursor over a decoded payload. Every read
/// returns [`WalError::Corrupt`] rather than panicking on truncation.
pub struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    pub fn pos(&self) -> usize {
        self.pos
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> WalResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WalError::Corrupt(format!(
                "truncated payload: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> WalResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> WalResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> WalResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> WalResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> WalResult<f64> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap(),
        )))
    }

    pub fn bool(&mut self) -> WalResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WalError::Corrupt(format!("invalid bool byte {b}"))),
        }
    }

    pub fn str(&mut self) -> WalResult<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WalError::Corrupt("non-utf8 string".into()))
    }

    pub fn opt_str(&mut self) -> WalResult<Option<String>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            b => Err(WalError::Corrupt(format!("invalid option byte {b}"))),
        }
    }

    pub fn usize_vec(&mut self) -> WalResult<Vec<usize>> {
        let n = self.u32()? as usize;
        let mut v = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            v.push(self.u32()? as usize);
        }
        Ok(v)
    }
}

pub fn put_usize_vec(buf: &mut Vec<u8>, v: &[usize]) {
    put_u32(buf, v.len() as u32);
    for &i in v {
        put_u32(buf, i as u32);
    }
}

// ---------------------------------------------------------------------------
// Values, tuples, bags, deltas
// ---------------------------------------------------------------------------

pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(buf, 0),
        Value::Bool(b) => {
            put_u8(buf, 1);
            put_bool(buf, *b);
        }
        Value::Int(i) => {
            put_u8(buf, 2);
            put_i64(buf, *i);
        }
        Value::Double(d) => {
            put_u8(buf, 3);
            put_f64(buf, *d);
        }
        Value::Str(_) => {
            put_u8(buf, 4);
            put_str(buf, v.as_str().expect("Str value has str repr"));
        }
    }
}

pub fn get_value(cur: &mut Cur) -> WalResult<Value> {
    match cur.u8()? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Bool(cur.bool()?)),
        2 => Ok(Value::Int(cur.i64()?)),
        3 => Ok(Value::Double(cur.f64()?)),
        4 => Ok(Value::str(cur.str()?)),
        t => Err(WalError::Corrupt(format!("invalid value tag {t}"))),
    }
}

pub fn put_datatype(buf: &mut Vec<u8>, d: DataType) {
    put_u8(
        buf,
        match d {
            DataType::Bool => 0,
            DataType::Int => 1,
            DataType::Double => 2,
            DataType::Str => 3,
        },
    );
}

pub fn get_datatype(cur: &mut Cur) -> WalResult<DataType> {
    match cur.u8()? {
        0 => Ok(DataType::Bool),
        1 => Ok(DataType::Int),
        2 => Ok(DataType::Double),
        3 => Ok(DataType::Str),
        t => Err(WalError::Corrupt(format!("invalid datatype tag {t}"))),
    }
}

pub fn put_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    let vals = t.values();
    put_u32(buf, vals.len() as u32);
    for v in vals {
        put_value(buf, v);
    }
}

pub fn get_tuple(cur: &mut Cur) -> WalResult<Tuple> {
    let n = cur.u32()? as usize;
    let mut vals = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        vals.push(get_value(cur)?);
    }
    Ok(Tuple::new(vals))
}

/// Bags serialize in [`Bag::sorted`] order so encoding is a pure
/// function of contents — byte-identical dumps for equal bags.
pub fn put_bag(buf: &mut Vec<u8>, b: &Bag) {
    let rows = b.sorted();
    put_u32(buf, rows.len() as u32);
    for (t, n) in rows {
        put_tuple(buf, &t);
        put_u64(buf, n);
    }
}

pub fn get_bag(cur: &mut Cur) -> WalResult<Bag> {
    let n = cur.u32()? as usize;
    let mut b = Bag::default();
    for _ in 0..n {
        let t = get_tuple(cur)?;
        let c = cur.u64()?;
        b.insert(t, c);
    }
    Ok(b)
}

pub fn put_delta(buf: &mut Vec<u8>, d: &Delta) {
    put_bag(buf, &d.inserts);
    put_bag(buf, &d.deletes);
    put_u32(buf, d.modifies.len() as u32);
    for m in &d.modifies {
        put_tuple(buf, &m.old);
        put_tuple(buf, &m.new);
        put_u64(buf, m.count);
    }
}

pub fn get_delta(cur: &mut Cur) -> WalResult<Delta> {
    let inserts = get_bag(cur)?;
    let deletes = get_bag(cur)?;
    let n = cur.u32()? as usize;
    let mut modifies = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let old = get_tuple(cur)?;
        let new = get_tuple(cur)?;
        let count = cur.u64()?;
        modifies.push(Modify { old, new, count });
    }
    Ok(Delta {
        inserts,
        deletes,
        modifies,
    })
}

// ---------------------------------------------------------------------------
// Scalar expressions
// ---------------------------------------------------------------------------

fn put_binop(buf: &mut Vec<u8>, op: BinOp) {
    put_u8(
        buf,
        match op {
            BinOp::Add => 0,
            BinOp::Sub => 1,
            BinOp::Mul => 2,
            BinOp::Div => 3,
        },
    );
}

fn get_binop(cur: &mut Cur) -> WalResult<BinOp> {
    match cur.u8()? {
        0 => Ok(BinOp::Add),
        1 => Ok(BinOp::Sub),
        2 => Ok(BinOp::Mul),
        3 => Ok(BinOp::Div),
        t => Err(WalError::Corrupt(format!("invalid binop tag {t}"))),
    }
}

fn put_cmpop(buf: &mut Vec<u8>, op: CmpOp) {
    put_u8(
        buf,
        match op {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        },
    );
}

fn get_cmpop(cur: &mut Cur) -> WalResult<CmpOp> {
    match cur.u8()? {
        0 => Ok(CmpOp::Eq),
        1 => Ok(CmpOp::Ne),
        2 => Ok(CmpOp::Lt),
        3 => Ok(CmpOp::Le),
        4 => Ok(CmpOp::Gt),
        5 => Ok(CmpOp::Ge),
        t => Err(WalError::Corrupt(format!("invalid cmpop tag {t}"))),
    }
}

pub fn put_scalar(buf: &mut Vec<u8>, e: &ScalarExpr) {
    match e {
        ScalarExpr::Col(i) => {
            put_u8(buf, 0);
            put_u32(buf, *i as u32);
        }
        ScalarExpr::Lit(v) => {
            put_u8(buf, 1);
            put_value(buf, v);
        }
        ScalarExpr::Bin { op, left, right } => {
            put_u8(buf, 2);
            put_binop(buf, *op);
            put_scalar(buf, left);
            put_scalar(buf, right);
        }
        ScalarExpr::Cmp { op, left, right } => {
            put_u8(buf, 3);
            put_cmpop(buf, *op);
            put_scalar(buf, left);
            put_scalar(buf, right);
        }
        ScalarExpr::And(es) => {
            put_u8(buf, 4);
            put_u32(buf, es.len() as u32);
            for e in es {
                put_scalar(buf, e);
            }
        }
        ScalarExpr::Or(es) => {
            put_u8(buf, 5);
            put_u32(buf, es.len() as u32);
            for e in es {
                put_scalar(buf, e);
            }
        }
        ScalarExpr::Not(e) => {
            put_u8(buf, 6);
            put_scalar(buf, e);
        }
        ScalarExpr::IsNull(e) => {
            put_u8(buf, 7);
            put_scalar(buf, e);
        }
    }
}

pub fn get_scalar(cur: &mut Cur) -> WalResult<ScalarExpr> {
    match cur.u8()? {
        0 => Ok(ScalarExpr::Col(cur.u32()? as usize)),
        1 => Ok(ScalarExpr::Lit(get_value(cur)?)),
        2 => {
            let op = get_binop(cur)?;
            let left = Box::new(get_scalar(cur)?);
            let right = Box::new(get_scalar(cur)?);
            Ok(ScalarExpr::Bin { op, left, right })
        }
        3 => {
            let op = get_cmpop(cur)?;
            let left = Box::new(get_scalar(cur)?);
            let right = Box::new(get_scalar(cur)?);
            Ok(ScalarExpr::Cmp { op, left, right })
        }
        4 => {
            let n = cur.u32()? as usize;
            let mut es = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                es.push(get_scalar(cur)?);
            }
            Ok(ScalarExpr::And(es))
        }
        5 => {
            let n = cur.u32()? as usize;
            let mut es = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                es.push(get_scalar(cur)?);
            }
            Ok(ScalarExpr::Or(es))
        }
        6 => Ok(ScalarExpr::Not(Box::new(get_scalar(cur)?))),
        7 => Ok(ScalarExpr::IsNull(Box::new(get_scalar(cur)?))),
        t => Err(WalError::Corrupt(format!("invalid scalar tag {t}"))),
    }
}

// ---------------------------------------------------------------------------
// Expression trees
// ---------------------------------------------------------------------------

fn put_aggfunc(buf: &mut Vec<u8>, f: AggFunc) {
    put_u8(
        buf,
        match f {
            AggFunc::Count => 0,
            AggFunc::Sum => 1,
            AggFunc::Min => 2,
            AggFunc::Max => 3,
            AggFunc::Avg => 4,
        },
    );
}

fn get_aggfunc(cur: &mut Cur) -> WalResult<AggFunc> {
    match cur.u8()? {
        0 => Ok(AggFunc::Count),
        1 => Ok(AggFunc::Sum),
        2 => Ok(AggFunc::Min),
        3 => Ok(AggFunc::Max),
        4 => Ok(AggFunc::Avg),
        t => Err(WalError::Corrupt(format!("invalid aggfunc tag {t}"))),
    }
}

fn put_opkind(buf: &mut Vec<u8>, op: &OpKind) {
    match op {
        OpKind::Scan { table } => {
            put_u8(buf, 0);
            put_str(buf, table);
        }
        OpKind::Select { predicate } => {
            put_u8(buf, 1);
            put_scalar(buf, predicate);
        }
        OpKind::Project { exprs } => {
            put_u8(buf, 2);
            put_u32(buf, exprs.len() as u32);
            for (e, name) in exprs {
                put_scalar(buf, e);
                put_str(buf, name);
            }
        }
        OpKind::Join { condition } => {
            put_u8(buf, 3);
            put_u32(buf, condition.equi.len() as u32);
            for &(l, r) in &condition.equi {
                put_u32(buf, l as u32);
                put_u32(buf, r as u32);
            }
            match &condition.residual {
                None => put_u8(buf, 0),
                Some(e) => {
                    put_u8(buf, 1);
                    put_scalar(buf, e);
                }
            }
        }
        OpKind::Aggregate { group_by, aggs } => {
            put_u8(buf, 4);
            put_usize_vec(buf, group_by);
            put_u32(buf, aggs.len() as u32);
            for a in aggs {
                put_aggfunc(buf, a.func);
                match &a.arg {
                    None => put_u8(buf, 0),
                    Some(e) => {
                        put_u8(buf, 1);
                        put_scalar(buf, e);
                    }
                }
                put_str(buf, &a.name);
            }
        }
        OpKind::Distinct => put_u8(buf, 5),
    }
}

fn get_opkind(cur: &mut Cur) -> WalResult<OpKind> {
    match cur.u8()? {
        0 => Ok(OpKind::Scan { table: cur.str()? }),
        1 => Ok(OpKind::Select {
            predicate: get_scalar(cur)?,
        }),
        2 => {
            let n = cur.u32()? as usize;
            let mut exprs = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                let e = get_scalar(cur)?;
                let name = cur.str()?;
                exprs.push((e, name));
            }
            Ok(OpKind::Project { exprs })
        }
        3 => {
            let n = cur.u32()? as usize;
            let mut equi = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                let l = cur.u32()? as usize;
                let r = cur.u32()? as usize;
                equi.push((l, r));
            }
            let residual = match cur.u8()? {
                0 => None,
                1 => Some(get_scalar(cur)?),
                b => return Err(WalError::Corrupt(format!("invalid option byte {b}"))),
            };
            Ok(OpKind::Join {
                condition: JoinCondition { equi, residual },
            })
        }
        4 => {
            let group_by = cur.usize_vec()?;
            let n = cur.u32()? as usize;
            let mut aggs = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                let func = get_aggfunc(cur)?;
                let arg = match cur.u8()? {
                    0 => None,
                    1 => Some(get_scalar(cur)?),
                    b => return Err(WalError::Corrupt(format!("invalid option byte {b}"))),
                };
                let name = cur.str()?;
                aggs.push(AggExpr { func, arg, name });
            }
            Ok(OpKind::Aggregate { group_by, aggs })
        }
        5 => Ok(OpKind::Distinct),
        t => Err(WalError::Corrupt(format!("invalid opkind tag {t}"))),
    }
}

/// Structural tree dump: op + children, no schemas. Decoding re-derives
/// every schema from the live catalog ([`ExprNode::scan`] for leaves,
/// [`ExprNode::build`] for internal nodes), so a checkpointed tree can
/// never smuggle a schema that disagrees with the restored tables.
pub fn put_tree(buf: &mut Vec<u8>, tree: &ExprNode) {
    put_opkind(buf, &tree.op);
    put_u32(buf, tree.children.len() as u32);
    for c in &tree.children {
        put_tree(buf, c);
    }
}

pub fn get_tree(cur: &mut Cur, catalog: &Catalog) -> WalResult<ExprTree> {
    let op = get_opkind(cur)?;
    let n = cur.u32()? as usize;
    let mut children = Vec::with_capacity(n.min(1 << 8));
    for _ in 0..n {
        children.push(get_tree(cur, catalog)?);
    }
    match op {
        OpKind::Scan { table } => {
            if !children.is_empty() {
                return Err(WalError::Corrupt("scan node with children".into()));
            }
            ExprNode::scan(catalog, &table).map_err(WalError::Storage)
        }
        op => ExprNode::build(op, children).map_err(WalError::Storage),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn scalars_round_trip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX - 3);
        put_i64(&mut buf, -42);
        put_f64(&mut buf, -0.5);
        put_str(&mut buf, "héllo");
        put_opt_str(&mut buf, None);
        put_opt_str(&mut buf, Some("q"));
        let mut cur = Cur::new(&buf);
        assert_eq!(cur.u32().unwrap(), 7);
        assert_eq!(cur.u64().unwrap(), u64::MAX - 3);
        assert_eq!(cur.i64().unwrap(), -42);
        assert_eq!(cur.f64().unwrap(), -0.5);
        assert_eq!(cur.str().unwrap(), "héllo");
        assert_eq!(cur.opt_str().unwrap(), None);
        assert_eq!(cur.opt_str().unwrap(), Some("q".to_string()));
        assert!(cur.is_empty());
    }

    #[test]
    fn values_and_tuples_round_trip() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-7),
            Value::Double(2.25),
            Value::str("a string long enough to spill the inline repr maybe"),
        ];
        for v in &vals {
            let mut buf = Vec::new();
            put_value(&mut buf, v);
            let mut cur = Cur::new(&buf);
            assert_eq!(&get_value(&mut cur).unwrap(), v);
        }
        let t = Tuple::new(vals.to_vec());
        let mut buf = Vec::new();
        put_tuple(&mut buf, &t);
        let mut cur = Cur::new(&buf);
        assert_eq!(get_tuple(&mut cur).unwrap(), t);
    }

    #[test]
    fn deltas_round_trip() {
        let mut d = Delta::default();
        d.inserts.insert(Tuple::new(vec![Value::Int(1)]), 2);
        d.deletes.insert(Tuple::new(vec![Value::Int(9)]), 1);
        d.modifies.push(Modify {
            old: Tuple::new(vec![Value::Int(1)]),
            new: Tuple::new(vec![Value::Int(2)]),
            count: 3,
        });
        let mut buf = Vec::new();
        put_delta(&mut buf, &d);
        let mut cur = Cur::new(&buf);
        let back = get_delta(&mut cur).unwrap();
        assert_eq!(back.inserts.sorted(), d.inserts.sorted());
        assert_eq!(back.deletes.sorted(), d.deletes.sorted());
        assert_eq!(back.modifies, d.modifies);
    }

    #[test]
    fn truncated_payload_is_corrupt_not_panic() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        let mut cur = Cur::new(&buf[..buf.len() - 2]);
        assert!(matches!(cur.str(), Err(WalError::Corrupt(_))));
    }
}

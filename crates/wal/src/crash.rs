//! Deterministic crash-site surgery on log files.
//!
//! Each helper mutilates a log file exactly the way a specific crash
//! would: a torn final append, a truncated segment, a corrupted frame,
//! or a missing commit record. All cuts land on frame boundaries
//! computed by [`frame_spans`], so a test knows precisely which
//! transactions survive — that's what makes recovery-equals-control
//! assertable bit-for-bit rather than statistically.

use std::fs::OpenOptions;
use std::path::Path;

use crate::log::frame_spans;
use crate::{WalError, WalResult};

/// Crash mid-append: the final frame's payload is cut in half, leaving
/// a frame header that promises more bytes than the file holds.
pub fn torn_tail(path: &Path) -> WalResult<()> {
    let spans = frame_spans(path)?;
    let (start, end) = *spans
        .last()
        .ok_or_else(|| WalError::Corrupt("torn_tail: log has no frames".into()))?;
    let cut = start + (end - start) / 2;
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(cut)?;
    Ok(())
}

/// Crash that loses the tail of the segment: the last `k` complete
/// frames vanish entirely (e.g. OS page writeback stopping short).
/// Returns how many frames were actually removed (≤ `k` on short logs).
pub fn truncate_frames(path: &Path, k: usize) -> WalResult<usize> {
    let spans = frame_spans(path)?;
    let removed = k.min(spans.len());
    let cut = if removed == spans.len() {
        0
    } else {
        spans[spans.len() - removed].0
    };
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(cut)?;
    Ok(removed)
}

/// Media corruption: flip one payload byte in the last complete frame.
/// The file length is unchanged but the CRC no longer matches, so the
/// scan discards the frame (and everything after it).
pub fn corrupt_last_frame(path: &Path) -> WalResult<()> {
    let spans = frame_spans(path)?;
    let (start, _) = *spans
        .last()
        .ok_or_else(|| WalError::Corrupt("corrupt_last_frame: log has no frames".into()))?;
    let mut bytes = std::fs::read(path)?;
    // First payload byte sits after the 8-byte frame header.
    bytes[start as usize + 8] ^= 0xFF;
    std::fs::write(path, &bytes)?;
    Ok(())
}

/// Crash between cross-shard phase K and K+1: the last complete frame
/// (on the coordinator's global log, the global commit record) never
/// hit the disk.
pub fn drop_last_frame(path: &Path) -> WalResult<()> {
    let removed = truncate_frames(path, 1)?;
    if removed == 0 {
        return Err(WalError::Corrupt("drop_last_frame: log has no frames".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{scan_log, Record, WalWriter};
    use crate::test_dir;

    fn write_n_commits(path: &Path, n: u64) {
        let mut w = WalWriter::open(path, 0).unwrap();
        for i in 0..n {
            w.append(&Record::TxnBegin {
                txn_id: i,
                global: None,
            })
            .unwrap();
            w.append(&Record::TxnCommit { txn_id: i }).unwrap();
        }
        w.flush().unwrap();
    }

    #[test]
    fn surgery_is_deterministic_at_frame_boundaries() {
        let dir = test_dir("crash_surgery");
        let path = dir.join("wal.log");

        write_n_commits(&path, 3); // 6 frames
        torn_tail(&path).unwrap();
        let scan = scan_log(&path).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert!(scan.torn.is_some());

        write_n_commits(&path, 3);
        assert_eq!(truncate_frames(&path, 2).unwrap(), 2);
        let scan = scan_log(&path).unwrap();
        assert_eq!(scan.records.len(), 4);
        assert!(scan.torn.is_none()); // clean cut, no garbage left

        write_n_commits(&path, 3);
        corrupt_last_frame(&path).unwrap();
        let scan = scan_log(&path).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert!(scan.torn.unwrap().contains("crc mismatch"));

        write_n_commits(&path, 3);
        drop_last_frame(&path).unwrap();
        let scan = scan_log(&path).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.records.last().unwrap(), &Record::TxnBegin { txn_id: 2, global: None });

        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Framed append-only log files.
//!
//! Every record is one frame: `[len: u32][crc32(payload): u32][payload]`
//! with `payload = [kind: u8][fields...]`. A reader accepts the longest
//! valid prefix and stops at the first frame whose length runs past the
//! end of the file or whose CRC disagrees — everything after that point
//! is a torn or corrupted crash suffix and is discarded (and truncated
//! away before the log is appended to again).

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use spacetime_delta::Delta;
use spacetime_obs::flight;
use spacetime_obs::metrics as obs;
use spacetime_obs::names;
use spacetime_storage::fault;

use crate::codec::{self, crc32, Cur};
use crate::{SyncPolicy, WalError, WalResult};

/// Maximum sane frame payload (64 MiB); larger lengths are treated as
/// corruption rather than honored as allocations.
const MAX_FRAME: u32 = 64 << 20;

/// The `kind="…"` metrics label for a record (the
/// `spacetime_wal_records_total` labeled counter; its per-kind series sum
/// to `spacetime_wal_appends_total`).
fn record_kind_label(rec: &Record) -> &'static str {
    match rec {
        Record::TxnBegin { .. } => names::LABEL_WAL_BEGIN,
        Record::Delta { .. } => names::LABEL_WAL_DELTA,
        Record::TxnCommit { .. } => names::LABEL_WAL_COMMIT,
        Record::Prepared { .. } => names::LABEL_WAL_PREPARED,
        Record::Checkpoint { .. } => names::LABEL_WAL_CHECKPOINT,
    }
}

/// One durable log record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A transaction starts. `global` carries the cross-shard global
    /// commit id for 2PC participants, `None` for single-shard txns.
    TxnBegin { txn_id: u64, global: Option<u64> },
    /// One relation's delta within the surrounding transaction.
    Delta {
        txn_id: u64,
        table: String,
        delta: Delta,
    },
    /// Durable commit point for a single-shard transaction (and, on the
    /// coordinator's global log, for a cross-shard transaction).
    TxnCommit { txn_id: u64 },
    /// End-of-prepare marker for a 2PC participant: the txn's deltas
    /// are durable on this shard, but it commits only if the global log
    /// carries a [`Record::TxnCommit`] for its `global` id.
    Prepared { txn_id: u64 },
    /// A checkpoint covering every txn up to and including `last_txn`
    /// was installed; the log was truncated at this point.
    Checkpoint { last_txn: u64 },
}

impl Record {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Record::TxnBegin { txn_id, global } => {
                codec::put_u8(&mut buf, 1);
                codec::put_u64(&mut buf, *txn_id);
                match global {
                    None => codec::put_u8(&mut buf, 0),
                    Some(g) => {
                        codec::put_u8(&mut buf, 1);
                        codec::put_u64(&mut buf, *g);
                    }
                }
            }
            Record::Delta {
                txn_id,
                table,
                delta,
            } => {
                codec::put_u8(&mut buf, 2);
                codec::put_u64(&mut buf, *txn_id);
                codec::put_str(&mut buf, table);
                codec::put_delta(&mut buf, delta);
            }
            Record::TxnCommit { txn_id } => {
                codec::put_u8(&mut buf, 3);
                codec::put_u64(&mut buf, *txn_id);
            }
            Record::Prepared { txn_id } => {
                codec::put_u8(&mut buf, 4);
                codec::put_u64(&mut buf, *txn_id);
            }
            Record::Checkpoint { last_txn } => {
                codec::put_u8(&mut buf, 5);
                codec::put_u64(&mut buf, *last_txn);
            }
        }
        buf
    }

    fn decode(payload: &[u8]) -> WalResult<Record> {
        let mut cur = Cur::new(payload);
        let rec = match cur.u8()? {
            1 => {
                let txn_id = cur.u64()?;
                let global = match cur.u8()? {
                    0 => None,
                    1 => Some(cur.u64()?),
                    b => return Err(WalError::Corrupt(format!("invalid option byte {b}"))),
                };
                Record::TxnBegin { txn_id, global }
            }
            2 => {
                let txn_id = cur.u64()?;
                let table = cur.str()?;
                let delta = codec::get_delta(&mut cur)?;
                Record::Delta {
                    txn_id,
                    table,
                    delta,
                }
            }
            3 => Record::TxnCommit { txn_id: cur.u64()? },
            4 => Record::Prepared { txn_id: cur.u64()? },
            5 => Record::Checkpoint { last_txn: cur.u64()? },
            t => return Err(WalError::Corrupt(format!("invalid record kind {t}"))),
        };
        if !cur.is_empty() {
            return Err(WalError::Corrupt(format!(
                "{} trailing bytes after record",
                cur.remaining()
            )));
        }
        Ok(rec)
    }
}

/// Append handle over one log file.
#[derive(Debug)]
pub struct WalWriter {
    file: BufWriter<File>,
    path: PathBuf,
    /// Bytes of valid frames on disk (including buffered, unflushed ones).
    len: u64,
}

impl WalWriter {
    /// Open `path` for appending, truncating it to `valid_len` first so
    /// a torn crash suffix can never sit between old and new frames.
    pub fn open(path: &Path, valid_len: u64) -> WalResult<Self> {
        // Not `truncate(true)`: the valid-prefix truncation is the
        // explicit `set_len` below.
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .read(true)
            .open(path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(WalWriter {
            file: BufWriter::new(file),
            path: path.to_path_buf(),
            len: valid_len,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total bytes appended (valid prefix at open + frames since).
    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one record frame (buffered; see [`WalWriter::flush`] /
    /// [`WalWriter::sync`] for the durability point). Returns the frame
    /// size in bytes.
    pub fn append(&mut self, rec: &Record) -> WalResult<u64> {
        fault::fire("wal::append").map_err(WalError::Storage)?;
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(payload.len() + 8);
        codec::put_u32(&mut frame, payload.len() as u32);
        codec::put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        obs::counter_add(names::WAL_APPENDS, 1);
        obs::counter_add(names::WAL_BYTES, frame.len() as u64);
        obs::counter_add_labeled(names::WAL_RECORDS, record_kind_label(rec), 1);
        Ok(frame.len() as u64)
    }

    /// Push buffered frames to the OS. Survives process death (e.g.
    /// `kill -9`) but not power loss.
    pub fn flush(&mut self) -> WalResult<()> {
        self.file.flush()?;
        Ok(())
    }

    /// Flush and fsync: survives power loss.
    pub fn sync(&mut self) -> WalResult<()> {
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        obs::counter_add(names::WAL_FSYNCS, 1);
        flight::record("wal_fsync", || format!("{} bytes on log", self.len));
        Ok(())
    }

    /// Make buffered frames durable according to `policy`.
    pub fn commit_durable(&mut self, policy: SyncPolicy) -> WalResult<()> {
        match policy {
            SyncPolicy::Flush => self.flush(),
            SyncPolicy::Always => self.sync(),
            SyncPolicy::OnCheckpoint => Ok(()),
        }
    }

    /// Truncate the log to empty (after a checkpoint supersedes it).
    pub fn truncate(&mut self) -> WalResult<()> {
        self.file.flush()?;
        let f = self.file.get_mut();
        f.set_len(0)?;
        f.seek(SeekFrom::Start(0))?;
        self.len = 0;
        Ok(())
    }
}

/// Result of scanning a log file: the decoded valid prefix plus how
/// much trailing garbage (torn frame, bad CRC) was discarded.
#[derive(Debug, Default)]
pub struct LogScan {
    pub records: Vec<Record>,
    /// Byte length of the valid prefix ([`WalWriter::open`] truncates here).
    pub valid_len: u64,
    /// Bytes past the valid prefix that were discarded.
    pub discarded_bytes: u64,
    /// Why the scan stopped early, if it did.
    pub torn: Option<String>,
}

/// Scan `path`, accepting the longest valid frame prefix. A missing
/// file reads as an empty log.
pub fn scan_log(path: &Path) -> WalResult<LogScan> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    let mut out = LogScan::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let stop = |why: String, out: &mut LogScan| {
            out.torn = Some(why);
        };
        if bytes.len() - pos < 8 {
            stop(format!("torn frame header at {pos}"), &mut out);
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_FRAME {
            stop(format!("implausible frame length {len} at {pos}"), &mut out);
            break;
        }
        let body_start = pos + 8;
        let body_end = body_start + len as usize;
        if body_end > bytes.len() {
            stop(format!("torn frame payload at {pos}"), &mut out);
            break;
        }
        let payload = &bytes[body_start..body_end];
        if crc32(payload) != crc {
            stop(format!("crc mismatch at {pos}"), &mut out);
            break;
        }
        match Record::decode(payload) {
            Ok(rec) => out.records.push(rec),
            Err(e) => {
                stop(format!("undecodable record at {pos}: {e}"), &mut out);
                break;
            }
        }
        pos = body_end;
    }
    out.valid_len = pos as u64;
    out.discarded_bytes = (bytes.len() - pos) as u64;
    Ok(out)
}

/// Byte ranges `[start, end)` of every complete, CRC-valid frame in
/// `path`, in file order. Used by the crash-surgery helpers to cut the
/// file at deterministic frame boundaries.
pub fn frame_spans(path: &Path) -> WalResult<Vec<(u64, u64)>> {
    let bytes = std::fs::read(path)?;
    let mut spans = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_FRAME {
            break;
        }
        let body_end = pos + 8 + len as usize;
        if body_end > bytes.len() {
            break;
        }
        if crc32(&bytes[pos + 8..body_end]) != crc {
            break;
        }
        spans.push((pos as u64, body_end as u64));
        pos = body_end;
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;
    use spacetime_storage::{Tuple, Value};

    fn sample_records() -> Vec<Record> {
        let mut d = Delta::default();
        d.inserts.insert(Tuple::new(vec![Value::Int(1), Value::str("x")]), 1);
        vec![
            Record::TxnBegin {
                txn_id: 1,
                global: None,
            },
            Record::Delta {
                txn_id: 1,
                table: "Emp".into(),
                delta: d,
            },
            Record::TxnCommit { txn_id: 1 },
            Record::TxnBegin {
                txn_id: 2,
                global: Some(7),
            },
            Record::Prepared { txn_id: 2 },
            Record::Checkpoint { last_txn: 2 },
        ]
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = test_dir("log_roundtrip");
        let path = dir.join("wal.log");
        let recs = sample_records();
        let mut w = WalWriter::open(&path, 0).unwrap();
        for r in &recs {
            w.append(r).unwrap();
        }
        w.flush().unwrap();
        let scan = scan_log(&path).unwrap();
        assert_eq!(scan.records, recs);
        assert_eq!(scan.valid_len, w.len());
        assert_eq!(scan.discarded_bytes, 0);
        assert!(scan.torn.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_discarded_and_truncated_on_reopen() {
        let dir = test_dir("log_torn");
        let path = dir.join("wal.log");
        let recs = sample_records();
        let mut w = WalWriter::open(&path, 0).unwrap();
        for r in &recs {
            w.append(r).unwrap();
        }
        w.flush().unwrap();
        drop(w);
        // Tear the final frame in half.
        let spans = frame_spans(&path).unwrap();
        let (last_start, last_end) = *spans.last().unwrap();
        let cut = last_start + (last_end - last_start) / 2;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let scan = scan_log(&path).unwrap();
        assert_eq!(scan.records, recs[..recs.len() - 1]);
        assert_eq!(scan.valid_len, last_start);
        assert!(scan.torn.is_some());
        assert_eq!(scan.discarded_bytes, cut - last_start);

        // Reopen at the valid prefix and append again: the log must be
        // clean (no garbage between old and new frames).
        let mut w = WalWriter::open(&path, scan.valid_len).unwrap();
        w.append(&Record::TxnCommit { txn_id: 99 }).unwrap();
        w.flush().unwrap();
        let scan2 = scan_log(&path).unwrap();
        assert!(scan2.torn.is_none());
        assert_eq!(scan2.records.len(), recs.len());
        assert_eq!(
            scan2.records.last().unwrap(),
            &Record::TxnCommit { txn_id: 99 }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_crc_stops_the_scan() {
        let dir = test_dir("log_crc");
        let path = dir.join("wal.log");
        let recs = sample_records();
        let mut w = WalWriter::open(&path, 0).unwrap();
        for r in &recs {
            w.append(r).unwrap();
        }
        w.flush().unwrap();
        drop(w);
        let spans = frame_spans(&path).unwrap();
        let (start, _) = spans[2];
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[start as usize + 8] ^= 0xFF; // flip a payload byte
        std::fs::write(&path, &bytes).unwrap();

        let scan = scan_log(&path).unwrap();
        assert_eq!(scan.records, recs[..2]);
        assert_eq!(scan.valid_len, start);
        assert!(scan.torn.unwrap().contains("crc mismatch"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_reads_as_empty() {
        let dir = test_dir("log_missing");
        let scan = scan_log(&dir.join("nope.log")).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

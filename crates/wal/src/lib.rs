//! # spacetime-wal — durability for the traded space
//!
//! The paper's materialized views trade space for time, but until this
//! crate every byte of that traded space was volatile. `spacetime-wal`
//! provides the three durability primitives the IVM layer composes
//! into crash recovery (see `spacetime-ivm`'s `durability` module and
//! DESIGN.md §17):
//!
//! * **Write-ahead log** ([`log`]): CRC32-framed, length-prefixed
//!   records (txn-begin, per-relation delta payload, txn-commit /
//!   2PC prepared, checkpoint marker) appended at the existing commit
//!   points. Readers accept the longest valid prefix; torn or
//!   corrupted crash suffixes are discarded and truncated.
//! * **Checkpoints** ([`checkpoint`]): a full catalog snapshot (base
//!   relations *and* chosen materializations) written to a temp file,
//!   fsynced, and atomically renamed over the previous checkpoint, so
//!   a crash mid-checkpoint always leaves a valid one.
//! * **Crash surgery** ([`crash`]): deterministic frame-boundary file
//!   mutilation (torn tail, truncated segment, corrupted CRC, dropped
//!   commit frame) used by the recovery property suites.
//!
//! The codec ([`codec`]) is hand-rolled — including the CRC32 — because
//! the workspace builds offline with no registry access.

use std::path::{Path, PathBuf};

pub mod checkpoint;
pub mod codec;
pub mod crash;
pub mod log;

pub use checkpoint::{read_checkpoint, write_checkpoint, CheckpointDoc, EngineDump, RawCheckpoint, TableDump};
pub use log::{frame_spans, scan_log, LogScan, Record, WalWriter};

/// Errors from the durability layer.
#[derive(Debug)]
pub enum WalError {
    /// The log or checkpoint bytes are not a valid encoding. During
    /// recovery this is expected at the crash frontier and handled by
    /// discarding the suffix; anywhere else it is fatal.
    Corrupt(String),
    /// An I/O error from the filesystem.
    Io(std::io::Error),
    /// A storage-layer error surfaced while re-deriving schemas or
    /// firing a failpoint.
    Storage(spacetime_storage::StorageError),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Corrupt(m) => write!(f, "corrupt wal data: {m}"),
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Storage(e) => write!(f, "wal storage error: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<spacetime_storage::StorageError> for WalError {
    fn from(e: spacetime_storage::StorageError) -> Self {
        WalError::Storage(e)
    }
}

pub type WalResult<T> = Result<T, WalError>;

/// When appended frames become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Flush to the OS at every commit: survives process death
    /// (`kill -9`) but not power loss. The default — keeps WAL-on
    /// serve throughput close to the in-memory baseline.
    #[default]
    Flush,
    /// fsync at every commit: survives power loss.
    Always,
    /// Only flush/fsync when a checkpoint is taken; commits in between
    /// may be lost on any crash. For bulk loads.
    OnCheckpoint,
}

/// When [`WalSession::should_checkpoint`] starts answering `true`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint after this many committed transactions.
    pub every_txns: Option<u64>,
    /// Checkpoint after this many appended WAL bytes.
    pub every_bytes: Option<u64>,
}

impl Default for CheckpointPolicy {
    /// Never checkpoint automatically; callers invoke `checkpoint()`
    /// explicitly.
    fn default() -> Self {
        CheckpointPolicy {
            every_txns: None,
            every_bytes: None,
        }
    }
}

/// One shard's live WAL handle: the writer plus txn-id allocation and
/// checkpoint-policy accounting. The IVM layer drives it; this type
/// only knows about records and bytes.
#[derive(Debug)]
pub struct WalSession {
    writer: WalWriter,
    pub sync: SyncPolicy,
    pub policy: CheckpointPolicy,
    next_txn: u64,
    txns_since_checkpoint: u64,
    bytes_since_checkpoint: u64,
}

impl WalSession {
    /// Open a session over `path`, truncating to `valid_len` (from a
    /// prior [`scan_log`]) and allocating txn ids from `next_txn` up.
    pub fn open(
        path: &Path,
        valid_len: u64,
        next_txn: u64,
        sync: SyncPolicy,
        policy: CheckpointPolicy,
    ) -> WalResult<Self> {
        Ok(WalSession {
            writer: WalWriter::open(path, valid_len)?,
            sync,
            policy,
            next_txn,
            txns_since_checkpoint: 0,
            bytes_since_checkpoint: 0,
        })
    }

    pub fn writer(&mut self) -> &mut WalWriter {
        &mut self.writer
    }

    pub fn next_txn_id(&self) -> u64 {
        self.next_txn
    }

    /// Allocate a txn id and append its begin + delta records
    /// (buffered). The commit point is [`WalSession::commit`] /
    /// [`WalSession::prepared`].
    pub fn begin(
        &mut self,
        global: Option<u64>,
        updates: &[(String, spacetime_delta::Delta)],
    ) -> WalResult<u64> {
        let txn_id = self.next_txn;
        self.next_txn += 1;
        let mut bytes = self.writer.append(&Record::TxnBegin { txn_id, global })?;
        for (table, delta) in updates {
            bytes += self.writer.append(&Record::Delta {
                txn_id,
                table: table.clone(),
                delta: delta.clone(),
            })?;
        }
        self.bytes_since_checkpoint += bytes;
        Ok(txn_id)
    }

    /// Append the commit record for a single-shard txn and make it
    /// durable per the sync policy.
    pub fn commit(&mut self, txn_id: u64) -> WalResult<()> {
        let bytes = self.writer.append(&Record::TxnCommit { txn_id })?;
        self.writer.commit_durable(self.sync)?;
        self.txns_since_checkpoint += 1;
        self.bytes_since_checkpoint += bytes;
        spacetime_obs::gauge_add(spacetime_obs::names::WAL_CHECKPOINT_AGE_TXNS, 1.0);
        Ok(())
    }

    /// Append the 2PC prepared marker for a cross-shard participant
    /// (durability is deferred to the coordinator's pre-commit flush).
    pub fn prepared(&mut self, txn_id: u64) -> WalResult<()> {
        let bytes = self.writer.append(&Record::Prepared { txn_id })?;
        self.txns_since_checkpoint += 1;
        self.bytes_since_checkpoint += bytes;
        spacetime_obs::gauge_add(spacetime_obs::names::WAL_CHECKPOINT_AGE_TXNS, 1.0);
        Ok(())
    }

    /// Does the configured policy call for a checkpoint now?
    pub fn should_checkpoint(&self) -> bool {
        self.policy
            .every_txns
            .is_some_and(|n| self.txns_since_checkpoint >= n)
            || self
                .policy
                .every_bytes
                .is_some_and(|n| self.bytes_since_checkpoint >= n)
    }

    /// The caller installed a checkpoint covering everything through
    /// `last_txn`: truncate the log, append the marker, reset policy
    /// accounting.
    pub fn after_checkpoint(&mut self, last_txn: u64) -> WalResult<()> {
        self.writer.truncate()?;
        self.writer.append(&Record::Checkpoint { last_txn })?;
        self.writer.commit_durable(match self.sync {
            SyncPolicy::OnCheckpoint => SyncPolicy::Always,
            s => s,
        })?;
        // Drop this session's contribution to the process-wide
        // checkpoint-age gauge (other live sessions keep theirs).
        spacetime_obs::gauge_add(
            spacetime_obs::names::WAL_CHECKPOINT_AGE_TXNS,
            -(self.txns_since_checkpoint as f64),
        );
        self.txns_since_checkpoint = 0;
        self.bytes_since_checkpoint = 0;
        Ok(())
    }
}

/// A unique, freshly-created scratch directory under the system temp
/// dir (the workspace has no tempfile crate). Callers remove it.
pub fn test_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "spacetime_wal_{}_{}_{tag}",
        std::process::id(),
        n
    ));
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

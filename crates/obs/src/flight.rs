//! Flight recorder: a fixed-size ring of recent serving-plane events,
//! dumped when something goes wrong.
//!
//! The ring keeps the last [`RING_CAPACITY`] events (transaction
//! admissions/commits/aborts, failpoint fires, worker respawns, WAL
//! fsyncs, integrity failures). Recording is wait-free on the ring index
//! — a single `fetch_add` claims a slot — with a tiny per-slot mutex to
//! publish the payload (writers contend on a slot only after a full lap
//! of the ring). Consumers: [`dump`] / [`dump_json`] for programmatic
//! access (also served at `/debug/events` by the HTTP endpoint),
//! [`dump_to_stderr`] for crash paths, and [`install_panic_hook`] to dump
//! automatically when a thread panics.
//!
//! With the `metrics` feature off everything is an inlined no-op; the
//! `detail` closure passed to [`record`] is never invoked, so call sites
//! pay nothing for formatting in default builds.

/// Number of events the ring retains.
pub const RING_CAPACITY: usize = 256;

/// One recorded event, as seen by [`dump`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventSnapshot {
    /// Global sequence number (monotone across the whole process).
    pub seq: u64,
    /// Nanoseconds since the first use of the observability plane.
    pub at_ns: u64,
    /// Event kind, e.g. `txn_committed`, `wal_fsync`, `failpoint`.
    pub kind: &'static str,
    /// Free-form detail string rendered at record time.
    pub detail: String,
}

/// Render a slice of events as a JSON array (used by `/debug/events`).
pub fn events_json(events: &[EventSnapshot]) -> String {
    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"seq\": {}, \"at_ns\": {}, \"kind\": \"{}\", \"detail\": \"{}\"}}",
            e.seq,
            e.at_ns,
            crate::metrics::json_escape(e.kind),
            crate::metrics::json_escape(&e.detail),
        ));
    }
    if !events.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

#[cfg(feature = "metrics")]
mod imp {
    use super::{EventSnapshot, RING_CAPACITY};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, Once, OnceLock};
    use std::time::Instant;

    struct Slot {
        seq: u64,
        at_ns: u64,
        kind: &'static str,
        detail: String,
    }

    struct Ring {
        head: AtomicU64,
        slots: Vec<Mutex<Option<Slot>>>,
    }

    fn ring() -> &'static Ring {
        static RING: OnceLock<Ring> = OnceLock::new();
        RING.get_or_init(|| Ring {
            head: AtomicU64::new(0),
            slots: (0..RING_CAPACITY).map(|_| Mutex::new(None)).collect(),
        })
    }

    /// Process-relative clock shared with the HTTP endpoint's uptime.
    pub fn process_start() -> Instant {
        static START: OnceLock<Instant> = OnceLock::new();
        *START.get_or_init(Instant::now)
    }

    pub fn record(kind: &'static str, detail: impl FnOnce() -> String) {
        let at_ns = process_start().elapsed().as_nanos() as u64;
        let r = ring();
        let seq = r.head.fetch_add(1, Ordering::Relaxed);
        let slot = &r.slots[(seq as usize) % RING_CAPACITY];
        *slot.lock().unwrap() = Some(Slot { seq, at_ns, kind, detail: detail() });
    }

    pub fn dump() -> Vec<EventSnapshot> {
        let r = ring();
        let mut out: Vec<EventSnapshot> = r
            .slots
            .iter()
            .filter_map(|s| {
                s.lock().unwrap().as_ref().map(|slot| EventSnapshot {
                    seq: slot.seq,
                    at_ns: slot.at_ns,
                    kind: slot.kind,
                    detail: slot.detail.clone(),
                })
            })
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    pub fn dump_json() -> String {
        super::events_json(&dump())
    }

    pub fn dump_to_stderr(reason: &str) {
        let events = dump();
        eprintln!("--- flight recorder dump ({reason}): {} events ---", events.len());
        for e in &events {
            eprintln!("  [{:>6}] +{:>12}ns {:<16} {}", e.seq, e.at_ns, e.kind, e.detail);
        }
        eprintln!("--- end flight recorder dump ---");
    }

    pub fn install_panic_hook() {
        static HOOK: Once = Once::new();
        HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                dump_to_stderr("panic");
                prev(info);
            }));
        });
    }
}

#[cfg(feature = "metrics")]
pub use imp::{dump, dump_json, dump_to_stderr, install_panic_hook, record};
#[cfg(feature = "metrics")]
pub(crate) use imp::process_start;

#[cfg(not(feature = "metrics"))]
mod noop {
    use super::EventSnapshot;

    /// No-op: the flight recorder is compiled out. The `detail` closure
    /// is never invoked.
    #[inline(always)]
    pub fn record(_kind: &'static str, _detail: impl FnOnce() -> String) {}

    /// Always empty: the flight recorder is compiled out.
    #[inline]
    pub fn dump() -> Vec<EventSnapshot> {
        Vec::new()
    }

    /// Always the empty array: the flight recorder is compiled out.
    #[inline]
    pub fn dump_json() -> String {
        "[]".to_string()
    }

    /// No-op: the flight recorder is compiled out.
    #[inline(always)]
    pub fn dump_to_stderr(_reason: &str) {}

    /// No-op: the flight recorder is compiled out.
    #[inline(always)]
    pub fn install_panic_hook() {}
}

#[cfg(not(feature = "metrics"))]
pub use noop::{dump, dump_json, dump_to_stderr, install_panic_hook, record};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_json_shape() {
        let events = vec![EventSnapshot {
            seq: 3,
            at_ns: 42,
            kind: "txn_committed",
            detail: "slot 1 shards [0]".to_string(),
        }];
        let json = events_json(&events);
        assert!(json.contains("\"seq\": 3"));
        assert!(json.contains("\"kind\": \"txn_committed\""));
        assert_eq!(events_json(&[]), "[]");
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn ring_retains_recent_events_in_order() {
        for i in 0..(RING_CAPACITY + 10) {
            record("flight_test", move || format!("event {i}"));
        }
        let events = dump();
        assert!(events.len() <= RING_CAPACITY);
        // Sequence numbers are strictly increasing after the sort.
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        // The most recent event of this test survived the wrap. Other
        // tests may interleave, but this binary records far fewer than
        // RING_CAPACITY events elsewhere.
        assert!(events
            .iter()
            .any(|e| e.kind == "flight_test" && e.detail == format!("event {}", RING_CAPACITY + 9)));
        assert!(dump_json().contains("flight_test"));
    }

    #[cfg(not(feature = "metrics"))]
    #[test]
    fn default_build_never_runs_the_detail_closure() {
        record("flight_test", || unreachable!("detail closure must not run"));
        assert!(dump().is_empty());
        assert_eq!(dump_json(), "[]");
    }
}

//! Span-style trace trees rendered as `EXPLAIN ANALYZE`-like text or JSON.
//!
//! A [`TraceNode`] separates *structural* content (label, ordered
//! key/value fields, children) from *non-structural* annotations
//! (wall-clock durations, advisory notes such as cache hits). Structural
//! content must be deterministic across execution modes — the
//! Sequential-vs-Parallel identity property tests compare
//! [`TraceNode::structure_json`], which omits the non-structural parts.

use std::time::Duration;

use crate::metrics::json_escape;

/// One span in a trace tree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceNode {
    /// Span label, e.g. `"update Emp"` or `"N5 Select"`.
    pub label: String,
    /// Ordered structural key/value fields.
    pub fields: Vec<(String, String)>,
    /// Non-structural annotations (e.g. `"shared-delta-cache hit"`).
    pub notes: Vec<String>,
    /// Non-structural wall-clock duration of the span, if measured.
    pub wall_ns: Option<u64>,
    /// Child spans, in deterministic order.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// New node with the given label and no fields or children.
    pub fn new(label: impl Into<String>) -> Self {
        TraceNode {
            label: label.into(),
            ..TraceNode::default()
        }
    }

    /// Append a structural field (builder style).
    pub fn with_field(mut self, key: &str, value: impl ToString) -> Self {
        self.push_field(key, value);
        self
    }

    /// Append a structural field.
    pub fn push_field(&mut self, key: &str, value: impl ToString) {
        self.fields.push((key.to_string(), value.to_string()));
    }

    /// Append a non-structural note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Record the span's wall-clock duration (non-structural).
    pub fn set_wall(&mut self, wall: Duration) {
        self.wall_ns = Some(wall.as_nanos() as u64);
    }

    /// Append a child span.
    pub fn push_child(&mut self, child: TraceNode) {
        self.children.push(child);
    }

    /// Structural field value, if present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Total number of spans in this subtree (including self).
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(TraceNode::span_count).sum::<usize>()
    }

    /// Render as an `EXPLAIN ANALYZE`-style text tree.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        self.render_line(&mut out, "", "", "");
        out
    }

    fn render_line(&self, out: &mut String, lead: &str, here: &str, below: &str) {
        out.push_str(lead);
        out.push_str(here);
        out.push_str(&self.label);
        for (k, v) in &self.fields {
            out.push_str(&format!("  {k}={v}"));
        }
        for n in &self.notes {
            out.push_str(&format!("  [{n}]"));
        }
        if let Some(ns) = self.wall_ns {
            out.push_str(&format!("  ({})", fmt_ns(ns)));
        }
        out.push('\n');
        let child_lead = format!("{lead}{below}");
        for (i, c) in self.children.iter().enumerate() {
            let last = i + 1 == self.children.len();
            let (h, b) = if last { ("└─ ", "   ") } else { ("├─ ", "│  ") };
            c.render_line(out, &child_lead, h, b);
        }
    }

    /// Render the full tree (including durations and notes) as JSON.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        self.render_json_into(&mut out, true);
        out
    }

    /// Render only the structural content (label, fields, children) as
    /// JSON — the canonical form compared by trace-determinism tests.
    pub fn structure_json(&self) -> String {
        let mut out = String::new();
        self.render_json_into(&mut out, false);
        out
    }

    /// True when two trees agree on all structural content.
    pub fn structural_eq(&self, other: &TraceNode) -> bool {
        self.structure_json() == other.structure_json()
    }

    fn render_json_into(&self, out: &mut String, full: bool) {
        out.push_str(&format!("{{\"label\": \"{}\"", json_escape(&self.label)));
        out.push_str(", \"fields\": [");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "[\"{}\", \"{}\"]",
                json_escape(k),
                json_escape(v)
            ));
        }
        out.push(']');
        if full {
            if let Some(ns) = self.wall_ns {
                out.push_str(&format!(", \"wall_ns\": {ns}"));
            }
            if !self.notes.is_empty() {
                out.push_str(", \"notes\": [");
                for (i, n) in self.notes.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{}\"", json_escape(n)));
                }
                out.push(']');
            }
        }
        if !self.children.is_empty() {
            out.push_str(", \"children\": [");
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                c.render_json_into(out, full);
            }
            out.push(']');
        }
        out.push('}');
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1_000.0)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceNode {
        let mut root = TraceNode::new("update Emp").with_field("rows", 2);
        root.set_wall(Duration::from_micros(1500));
        let mut lvl = TraceNode::new("level 1");
        let mut g = TraceNode::new("N5 Select")
            .with_field("Δin", 2)
            .with_field("Δout", 1);
        g.push_note("shared-delta-cache hit");
        lvl.push_child(g);
        root.push_child(lvl);
        root
    }

    #[test]
    fn text_rendering_draws_a_tree() {
        let text = sample().render_text();
        assert!(text.starts_with("update Emp  rows=2  (1.50 ms)"));
        assert!(text.contains("└─ level 1"));
        assert!(text.contains("   └─ N5 Select  Δin=2  Δout=1  [shared-delta-cache hit]"));
    }

    #[test]
    fn structure_omits_walls_and_notes() {
        let a = sample();
        let mut b = sample();
        b.wall_ns = None;
        b.children[0].children[0].notes.clear();
        assert!(a.structural_eq(&b));
        assert_ne!(a.render_json(), b.render_json());

        let mut c = sample();
        c.children[0].children[0].fields[1].1 = "9".into();
        assert!(!a.structural_eq(&c));
    }

    #[test]
    fn json_contains_wall_only_in_full_render() {
        let t = sample();
        assert!(t.render_json().contains("\"wall_ns\": 1500000"));
        assert!(!t.structure_json().contains("wall_ns"));
        assert!(t.structure_json().contains("\"label\": \"update Emp\""));
    }

    #[test]
    fn field_lookup_and_span_count() {
        let t = sample();
        assert_eq!(t.field("rows"), Some("2"));
        assert_eq!(t.field("missing"), None);
        assert_eq!(t.span_count(), 3);
    }
}

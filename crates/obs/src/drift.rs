//! Workload-drift accounting: the signal plane for online view-set
//! re-selection (ROADMAP item 4).
//!
//! Two deterministic, clock-free aggregates:
//!
//! * **Transaction mix** — a sliding window of per-transaction-type
//!   counts, keyed by the updated base table. The window is two epochs of
//!   [`DRIFT_WINDOW`] events each: the reported count for a key is
//!   `previous epoch + current epoch`, so it always covers between
//!   `DRIFT_WINDOW` and `2 * DRIFT_WINDOW` recent events and old traffic
//!   ages out without any wall-clock dependence (the same two-epoch trick
//!   browsers use for frecency decay).
//! * **Per-view maintenance cost** — an exponentially weighted moving
//!   average (α = 1/8) of the planning-report I/O cost each materialized
//!   view charged per update, keyed by view name and seeded with the
//!   first observation.
//!
//! Both are merged into [`MetricsSnapshot`](crate::MetricsSnapshot) by the
//! free [`snapshot`](crate::snapshot) function (they live outside the
//! [`Recorder`](crate::Recorder) because their keys are dynamic strings,
//! not `'static` label pairs). With the `metrics` feature off every entry
//! point is an inlined empty body, same contract as the metrics free
//! functions — callers gate any argument computation on
//! [`compiled`](crate::compiled).

/// Events per drift epoch; the reported window spans one to two epochs.
pub const DRIFT_WINDOW: u64 = 1024;

/// EWMA smoothing factor for per-view maintenance cost.
pub const DRIFT_EWMA_ALPHA: f64 = 0.125;

#[cfg(feature = "metrics")]
mod imp {
    use super::{DRIFT_EWMA_ALPHA, DRIFT_WINDOW};
    use std::collections::BTreeMap;
    use std::sync::{Mutex, OnceLock};

    #[derive(Default)]
    struct DriftState {
        cur: BTreeMap<String, u64>,
        prev: BTreeMap<String, u64>,
        in_epoch: u64,
        ewma: BTreeMap<String, f64>,
    }

    fn state() -> &'static Mutex<DriftState> {
        static STATE: OnceLock<Mutex<DriftState>> = OnceLock::new();
        STATE.get_or_init(|| Mutex::new(DriftState::default()))
    }

    pub fn note_txn(kind: &str) {
        let mut s = state().lock().unwrap();
        *s.cur.entry(kind.to_string()).or_insert(0) += 1;
        s.in_epoch += 1;
        if s.in_epoch >= DRIFT_WINDOW {
            s.prev = std::mem::take(&mut s.cur);
            s.in_epoch = 0;
        }
    }

    pub fn note_view_cost(view: &str, cost: f64) {
        let mut s = state().lock().unwrap();
        match s.ewma.get_mut(view) {
            Some(e) => *e += (cost - *e) * DRIFT_EWMA_ALPHA,
            None => {
                s.ewma.insert(view.to_string(), cost);
            }
        }
    }

    pub fn txn_mix() -> BTreeMap<String, u64> {
        let s = state().lock().unwrap();
        let mut out = s.prev.clone();
        for (k, v) in &s.cur {
            *out.entry(k.clone()).or_insert(0) += v;
        }
        out
    }

    pub fn view_cost_ewma() -> BTreeMap<String, f64> {
        state().lock().unwrap().ewma.clone()
    }
}

#[cfg(feature = "metrics")]
pub use imp::{note_txn, note_view_cost, txn_mix, view_cost_ewma};

#[cfg(not(feature = "metrics"))]
mod noop {
    use std::collections::BTreeMap;

    /// No-op: drift accounting is compiled out.
    #[inline(always)]
    pub fn note_txn(_kind: &str) {}

    /// No-op: drift accounting is compiled out.
    #[inline(always)]
    pub fn note_view_cost(_view: &str, _cost: f64) {}

    /// Always empty: drift accounting is compiled out.
    #[inline]
    pub fn txn_mix() -> BTreeMap<String, u64> {
        BTreeMap::new()
    }

    /// Always empty: drift accounting is compiled out.
    #[inline]
    pub fn view_cost_ewma() -> BTreeMap<String, f64> {
        BTreeMap::new()
    }
}

#[cfg(not(feature = "metrics"))]
pub use noop::{note_txn, note_view_cost, txn_mix, view_cost_ewma};

#[cfg(all(test, feature = "metrics"))]
mod tests {
    use super::*;

    // The drift state is process-global, so tests assert monotone /
    // relative properties that hold regardless of interleaving with
    // other tests in this binary.

    #[test]
    fn txn_mix_counts_recent_events() {
        let before = txn_mix().get("drift_test_table").copied().unwrap_or(0);
        for _ in 0..5 {
            note_txn("drift_test_table");
        }
        let after = txn_mix().get("drift_test_table").copied().unwrap_or(0);
        // The window covers at least one full epoch, and 5 events never
        // span more than one epoch boundary, so at least the current
        // epoch's share is visible.
        assert!(after > before || after >= 1, "window lost fresh events");
    }

    #[test]
    fn view_cost_ewma_seeds_then_smooths() {
        note_view_cost("drift_test_view_smooth", 100.0);
        let seeded = view_cost_ewma()["drift_test_view_smooth"];
        note_view_cost("drift_test_view_smooth", 0.0);
        let smoothed = view_cost_ewma()["drift_test_view_smooth"];
        assert!(smoothed < seeded, "EWMA must move toward new observations");
        assert!(smoothed > 0.0, "EWMA must not jump to the new observation");
    }
}

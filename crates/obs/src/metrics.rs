//! Lock-cheap metrics registry with feature-gated zero-overhead default.
//!
//! Call sites use the free functions ([`counter_add`], [`gauge_set`],
//! [`gauge_add`], [`observe_ns`], [`stopwatch`]) unconditionally. With the
//! `metrics` feature off they are `#[inline(always)]` empty bodies, so the
//! call and its `&'static str` name argument vanish from optimized builds
//! — the same contract `spacetime_storage::fault` gives for failpoints.
//! With the feature on they route through the installed [`Recorder`]
//! (default: a process-global [`Registry`]).
//!
//! The registry itself is lock-cheap: each series is an `Arc` of atomics
//! resolved through a sharded-free `RwLock<BTreeMap>` that is only write-
//! locked the first time a name is seen. Steady-state cost per event is
//! one read-lock acquisition plus one atomic RMW.

use std::collections::BTreeMap;

/// Whether the metrics recorder was compiled into this build.
///
/// `const` so benches can embed it in their JSON output and CI can assert
/// the default build reports `false`.
pub const fn compiled() -> bool {
    cfg!(feature = "metrics")
}

/// Sink for instrumentation events. The default recorder is the global
/// [`Registry`]; tests can install their own with [`set_recorder`] before
/// the first event.
pub trait Recorder: Send + Sync {
    /// Add `v` to the monotone counter `name`.
    fn counter_add(&self, name: &'static str, v: u64);
    /// Set gauge `name` to `v`.
    fn gauge_set(&self, name: &'static str, v: f64);
    /// Add `v` (possibly negative) to gauge `name`.
    fn gauge_add(&self, name: &'static str, v: f64);
    /// Record one observation of `nanos` in histogram `name`.
    fn observe_ns(&self, name: &'static str, nanos: u64);
    /// Materialize a point-in-time snapshot of every series.
    fn snapshot(&self) -> MetricsSnapshot;

    /// Add `v` to the `label` series of the labeled counter `name`.
    ///
    /// `label` is a full `key="value"` pair (see `names::shard_label` and
    /// friends) with fixed small cardinality, so recorders can key on the
    /// `(name, label)` pointer pair with zero allocation. Default: drop
    /// the event, so pre-existing custom recorders keep compiling (they
    /// simply don't see labeled series).
    fn counter_add_labeled(&self, _name: &'static str, _label: &'static str, _v: u64) {}
    /// Add `v` (possibly negative) to the `label` series of the labeled
    /// gauge `name`. Default: drop the event (see
    /// [`counter_add_labeled`](Recorder::counter_add_labeled)).
    fn gauge_add_labeled(&self, _name: &'static str, _label: &'static str, _v: f64) {}
}

/// Recorder that drops every event — the conceptual default when the
/// `metrics` feature is off (in that build it is never even called; the
/// free functions short-circuit first).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn counter_add(&self, _name: &'static str, _v: u64) {}
    fn gauge_set(&self, _name: &'static str, _v: f64) {}
    fn gauge_add(&self, _name: &'static str, _v: f64) {}
    fn observe_ns(&self, _name: &'static str, _nanos: u64) {}
    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }
}

/// Histogram bucket upper bounds in nanoseconds, shared by every
/// histogram in the registry (fixed buckets keep observation O(buckets)
/// with zero allocation). Spans 1 µs – 10 s, roughly logarithmic.
pub const BUCKET_BOUNDS_NS: [u64; 16] = [
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Point-in-time copy of a fixed-bucket histogram.
///
/// `counts` has one entry per bound in `bounds` plus a final overflow
/// bucket (`+Inf`), so `counts.len() == bounds.len() + 1`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds, in nanoseconds, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; last entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values, in nanoseconds.
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (0.0..=1.0) as the upper bound of the
    /// bucket containing that rank; overflow-bucket ranks report the
    /// largest finite bound. Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    *self.bounds.last().unwrap_or(&0)
                };
            }
        }
        *self.bounds.last().unwrap_or(&0)
    }

    /// Mean observation in nanoseconds (0 for an empty histogram).
    pub fn mean_ns(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Point-in-time copy of every registered series. Always compiled; empty
/// in default builds so downstream code can consume it unconditionally.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotone counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Labeled counters: name → (`key="value"` label → value).
    pub labeled_counters: BTreeMap<String, BTreeMap<String, u64>>,
    /// Labeled gauges: name → (`key="value"` label → value).
    pub labeled_gauges: BTreeMap<String, BTreeMap<String, f64>>,
    /// Workload drift: sliding-window transaction counts per updated base
    /// table (see the `drift` module). Empty unless drift events fired.
    pub txn_mix: BTreeMap<String, u64>,
    /// Workload drift: per-view maintenance-cost EWMA in I/O units.
    pub view_cost_ewma: BTreeMap<String, f64>,
}

impl MetricsSnapshot {
    /// Counter value, 0 if the series was never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, 0.0 if the series was never touched.
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Histogram snapshot, if the series was ever observed.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Labeled counter value for one `key="value"` label, 0 if untouched.
    pub fn labeled_counter(&self, name: &str, label: &str) -> u64 {
        self.labeled_counters
            .get(name)
            .and_then(|m| m.get(label))
            .copied()
            .unwrap_or(0)
    }

    /// Sum of a labeled counter across every label, 0 if untouched.
    pub fn labeled_counter_sum(&self, name: &str) -> u64 {
        self.labeled_counters
            .get(name)
            .map(|m| m.values().sum())
            .unwrap_or(0)
    }

    /// Labeled gauge value for one `key="value"` label, 0.0 if untouched.
    pub fn labeled_gauge(&self, name: &str, label: &str) -> f64 {
        self.labeled_gauges
            .get(name)
            .and_then(|m| m.get(label))
            .copied()
            .unwrap_or(0.0)
    }

    /// Sum of a labeled gauge across every label, 0.0 if untouched.
    pub fn labeled_gauge_sum(&self, name: &str) -> f64 {
        self.labeled_gauges
            .get(name)
            .map(|m| m.values().sum())
            .unwrap_or(0.0)
    }

    /// True when no series exist (always true in default builds).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.labeled_counters.is_empty()
            && self.labeled_gauges.is_empty()
            && self.txn_mix.is_empty()
            && self.view_cost_ewma.is_empty()
    }

    /// Render in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, series) in &self.labeled_counters {
            out.push_str(&format!("# TYPE {name} counter\n"));
            for (label, v) in series {
                out.push_str(&format!("{name}{{{label}}} {v}\n"));
            }
        }
        for (name, series) in &self.labeled_gauges {
            out.push_str(&format!("# TYPE {name} gauge\n"));
            for (label, v) in series {
                out.push_str(&format!("{name}{{{label}}} {v}\n"));
            }
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cum = 0u64;
            for (i, &c) in h.counts.iter().enumerate() {
                cum += c;
                let le = if i < h.bounds.len() {
                    format!("{}", h.bounds[i])
                } else {
                    "+Inf".to_string()
                };
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        out
    }

    /// Render as a JSON object with `counters`, `gauges`, and
    /// `histograms` maps (histograms carry bounds/counts/sum/count).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(name), v));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(name), fmt_f64(*v)));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}}",
                json_escape(name),
                h.count,
                h.sum,
                h.quantile_ns(0.50),
                h.quantile_ns(0.95),
                h.quantile_ns(0.99),
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"labeled_counters\": {");
        for (i, (name, series)) in self.labeled_counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {{", json_escape(name)));
            for (j, (label, v)) in series.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", json_escape(label), v));
            }
            out.push('}');
        }
        if !self.labeled_counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"labeled_gauges\": {");
        for (i, (name, series)) in self.labeled_gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {{", json_escape(name)));
            for (j, (label, v)) in series.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", json_escape(label), fmt_f64(*v)));
            }
            out.push('}');
        }
        if !self.labeled_gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"txn_mix\": {");
        for (i, (name, v)) in self.txn_mix.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(name), v));
        }
        if !self.txn_mix.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"view_cost_ewma\": {");
        for (i, (name, v)) in self.view_cost_ewma.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(name), fmt_f64(*v)));
        }
        if !self.view_cost_ewma.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}");
        out
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Exact nearest-rank quantile over a pre-sorted sample slice. Used by
/// benches for wall-clock percentiles independent of the metrics feature.
pub fn quantile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(feature = "metrics")]
mod imp {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, OnceLock, RwLock};

    struct Histogram {
        counts: [AtomicU64; BUCKET_BOUNDS_NS.len() + 1],
        sum: AtomicU64,
        count: AtomicU64,
    }

    impl Histogram {
        fn new() -> Self {
            Histogram {
                counts: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }
        }

        fn observe(&self, v: u64) {
            let idx = BUCKET_BOUNDS_NS
                .iter()
                .position(|&b| v <= b)
                .unwrap_or(BUCKET_BOUNDS_NS.len());
            self.counts[idx].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
        }

        fn snapshot(&self) -> HistogramSnapshot {
            HistogramSnapshot {
                bounds: BUCKET_BOUNDS_NS.to_vec(),
                counts: self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                sum: self.sum.load(Ordering::Relaxed),
                count: self.count.load(Ordering::Relaxed),
            }
        }
    }

    /// The default [`Recorder`]: a process-global map from metric name to
    /// atomic storage. Gauges store `f64` bits in an `AtomicU64` and
    /// update via CAS so concurrent `gauge_add` never loses increments.
    #[derive(Default)]
    pub struct Registry {
        counters: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
        gauges: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
        histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
        labeled_counters: RwLock<BTreeMap<(&'static str, &'static str), Arc<AtomicU64>>>,
        labeled_gauges: RwLock<BTreeMap<(&'static str, &'static str), Arc<AtomicU64>>>,
    }

    impl Registry {
        pub fn new() -> Self {
            Self::default()
        }

        fn counter(&self, name: &'static str) -> Arc<AtomicU64> {
            if let Some(c) = self.counters.read().unwrap().get(name) {
                return Arc::clone(c);
            }
            Arc::clone(self.counters.write().unwrap().entry(name).or_default())
        }

        fn gauge(&self, name: &'static str) -> Arc<AtomicU64> {
            if let Some(g) = self.gauges.read().unwrap().get(name) {
                return Arc::clone(g);
            }
            Arc::clone(self.gauges.write().unwrap().entry(name).or_default())
        }

        fn histogram(&self, name: &'static str) -> Arc<Histogram> {
            if let Some(h) = self.histograms.read().unwrap().get(name) {
                return Arc::clone(h);
            }
            Arc::clone(
                self.histograms
                    .write()
                    .unwrap()
                    .entry(name)
                    .or_insert_with(|| Arc::new(Histogram::new())),
            )
        }

        fn labeled_counter(&self, name: &'static str, label: &'static str) -> Arc<AtomicU64> {
            if let Some(c) = self.labeled_counters.read().unwrap().get(&(name, label)) {
                return Arc::clone(c);
            }
            Arc::clone(self.labeled_counters.write().unwrap().entry((name, label)).or_default())
        }

        fn labeled_gauge(&self, name: &'static str, label: &'static str) -> Arc<AtomicU64> {
            if let Some(g) = self.labeled_gauges.read().unwrap().get(&(name, label)) {
                return Arc::clone(g);
            }
            Arc::clone(self.labeled_gauges.write().unwrap().entry((name, label)).or_default())
        }
    }

    impl Recorder for Registry {
        fn counter_add(&self, name: &'static str, v: u64) {
            self.counter(name).fetch_add(v, Ordering::Relaxed);
        }

        fn gauge_set(&self, name: &'static str, v: f64) {
            self.gauge(name).store(v.to_bits(), Ordering::Relaxed);
        }

        fn gauge_add(&self, name: &'static str, v: f64) {
            let g = self.gauge(name);
            let mut cur = g.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match g.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => return,
                    Err(seen) => cur = seen,
                }
            }
        }

        fn observe_ns(&self, name: &'static str, nanos: u64) {
            self.histogram(name).observe(nanos);
        }

        fn counter_add_labeled(&self, name: &'static str, label: &'static str, v: u64) {
            self.labeled_counter(name, label).fetch_add(v, Ordering::Relaxed);
        }

        fn gauge_add_labeled(&self, name: &'static str, label: &'static str, v: f64) {
            let g = self.labeled_gauge(name, label);
            let mut cur = g.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match g.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => return,
                    Err(seen) => cur = seen,
                }
            }
        }

        fn snapshot(&self) -> MetricsSnapshot {
            MetricsSnapshot {
                counters: self
                    .counters
                    .read()
                    .unwrap()
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
                    .collect(),
                gauges: self
                    .gauges
                    .read()
                    .unwrap()
                    .iter()
                    .map(|(k, v)| (k.to_string(), f64::from_bits(v.load(Ordering::Relaxed))))
                    .collect(),
                histograms: self
                    .histograms
                    .read()
                    .unwrap()
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.snapshot()))
                    .collect(),
                labeled_counters: {
                    let mut out: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
                    for ((name, label), v) in self.labeled_counters.read().unwrap().iter() {
                        out.entry(name.to_string())
                            .or_default()
                            .insert(label.to_string(), v.load(Ordering::Relaxed));
                    }
                    out
                },
                labeled_gauges: {
                    let mut out: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
                    for ((name, label), v) in self.labeled_gauges.read().unwrap().iter() {
                        out.entry(name.to_string()).or_default().insert(
                            label.to_string(),
                            f64::from_bits(v.load(Ordering::Relaxed)),
                        );
                    }
                    out
                },
                // Drift accounting lives outside the recorder (it is keyed
                // by dynamic table/view names); the free `snapshot()`
                // function merges it in.
                txn_mix: BTreeMap::new(),
                view_cost_ewma: BTreeMap::new(),
            }
        }
    }

    static RECORDER: OnceLock<Box<dyn Recorder>> = OnceLock::new();

    /// Install a custom recorder. Fails (returning it back) if any event
    /// or snapshot already forced the default registry into place.
    pub fn set_recorder(r: Box<dyn Recorder>) -> Result<(), Box<dyn Recorder>> {
        RECORDER.set(r)
    }

    pub(super) fn recorder() -> &'static dyn Recorder {
        RECORDER.get_or_init(|| Box::new(Registry::new())).as_ref()
    }
}

#[cfg(feature = "metrics")]
pub use imp::{set_recorder, Registry};

#[cfg(feature = "metrics")]
mod api {
    use super::*;
    use std::time::Instant;

    /// Add `v` to counter `name`.
    #[inline]
    pub fn counter_add(name: &'static str, v: u64) {
        imp::recorder().counter_add(name, v);
    }

    /// Set gauge `name` to `v`.
    #[inline]
    pub fn gauge_set(name: &'static str, v: f64) {
        imp::recorder().gauge_set(name, v);
    }

    /// Add `v` (possibly negative) to gauge `name`.
    #[inline]
    pub fn gauge_add(name: &'static str, v: f64) {
        imp::recorder().gauge_add(name, v);
    }

    /// Record one `nanos` observation in histogram `name`.
    #[inline]
    pub fn observe_ns(name: &'static str, nanos: u64) {
        imp::recorder().observe_ns(name, nanos);
    }

    /// Add `v` to the `label` series of the labeled counter `name`.
    #[inline]
    pub fn counter_add_labeled(name: &'static str, label: &'static str, v: u64) {
        imp::recorder().counter_add_labeled(name, label, v);
    }

    /// Add `v` (possibly negative) to the `label` series of the labeled
    /// gauge `name`.
    #[inline]
    pub fn gauge_add_labeled(name: &'static str, label: &'static str, v: f64) {
        imp::recorder().gauge_add_labeled(name, label, v);
    }

    /// Snapshot every series of the active recorder, with the workload
    /// drift accounting (`txn_mix`, `view_cost_ewma`) merged in.
    pub fn snapshot() -> MetricsSnapshot {
        let mut s = imp::recorder().snapshot();
        s.txn_mix = crate::drift::txn_mix();
        s.view_cost_ewma = crate::drift::view_cost_ewma();
        s
    }

    /// Running timer; see [`stopwatch`].
    pub struct StopWatch(Instant);

    /// Start a timer. Costs an `Instant::now()` only in `metrics` builds;
    /// the default build's `StopWatch` is a zero-sized no-op.
    #[inline]
    pub fn stopwatch() -> StopWatch {
        StopWatch(Instant::now())
    }

    impl StopWatch {
        /// Record the elapsed time in histogram `name`.
        #[inline]
        pub fn observe(self, name: &'static str) {
            observe_ns(name, self.0.elapsed().as_nanos() as u64);
        }

        /// Add the elapsed nanoseconds to counter `name` (busy-time style).
        #[inline]
        pub fn add_to_counter(self, name: &'static str) {
            counter_add(name, self.0.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(not(feature = "metrics"))]
mod api {
    use super::MetricsSnapshot;

    #[inline(always)]
    pub fn counter_add(_name: &'static str, _v: u64) {}

    #[inline(always)]
    pub fn gauge_set(_name: &'static str, _v: f64) {}

    #[inline(always)]
    pub fn gauge_add(_name: &'static str, _v: f64) {}

    #[inline(always)]
    pub fn observe_ns(_name: &'static str, _nanos: u64) {}

    #[inline(always)]
    pub fn counter_add_labeled(_name: &'static str, _label: &'static str, _v: u64) {}

    #[inline(always)]
    pub fn gauge_add_labeled(_name: &'static str, _label: &'static str, _v: f64) {}

    /// Empty snapshot: no recorder is compiled in.
    #[inline]
    pub fn snapshot() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Zero-sized stand-in; every method is an inlined no-op.
    #[derive(Clone, Copy)]
    pub struct StopWatch;

    #[inline(always)]
    pub fn stopwatch() -> StopWatch {
        StopWatch
    }

    impl StopWatch {
        #[inline(always)]
        pub fn observe(self, _name: &'static str) {}

        #[inline(always)]
        pub fn add_to_counter(self, _name: &'static str) {}
    }
}

pub use api::{
    counter_add, counter_add_labeled, gauge_add, gauge_add_labeled, gauge_set, observe_ns,
    snapshot, stopwatch, StopWatch,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("spacetime_test_total".into(), 7);
        s.gauges.insert("spacetime_test_depth".into(), 2.5);
        s.histograms.insert(
            "spacetime_test_ns".into(),
            HistogramSnapshot {
                bounds: vec![10, 100, 1000],
                counts: vec![1, 2, 1, 0],
                sum: 500,
                count: 4,
            },
        );
        s
    }

    #[test]
    fn quantile_sorted_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_sorted(&v, 0.50), 50);
        assert_eq!(quantile_sorted(&v, 0.95), 95);
        assert_eq!(quantile_sorted(&v, 0.99), 99);
        assert_eq!(quantile_sorted(&v, 1.0), 100);
        assert_eq!(quantile_sorted(&[42], 0.5), 42);
        assert_eq!(quantile_sorted(&[], 0.5), 0);
    }

    #[test]
    fn histogram_quantiles_use_bucket_bounds() {
        let h = HistogramSnapshot {
            bounds: vec![10, 100, 1000],
            counts: vec![5, 4, 1, 0],
            sum: 700,
            count: 10,
        };
        assert_eq!(h.quantile_ns(0.50), 10);
        assert_eq!(h.quantile_ns(0.90), 100);
        assert_eq!(h.quantile_ns(0.99), 1000);
        assert_eq!(h.mean_ns(), 70);
        assert_eq!(HistogramSnapshot::default().quantile_ns(0.5), 0);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample_snapshot().render_prometheus();
        assert!(text.contains("# TYPE spacetime_test_total counter"));
        assert!(text.contains("spacetime_test_total 7"));
        assert!(text.contains("# TYPE spacetime_test_depth gauge"));
        assert!(text.contains("spacetime_test_ns_bucket{le=\"10\"} 1"));
        assert!(text.contains("spacetime_test_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("spacetime_test_ns_sum 500"));
        assert!(text.contains("spacetime_test_ns_count 4"));
    }

    #[test]
    fn json_snapshot_shape() {
        let json = sample_snapshot().render_json();
        assert!(json.contains("\"spacetime_test_total\": 7"));
        assert!(json.contains("\"spacetime_test_depth\": 2.5"));
        assert!(json.contains("\"count\": 4"));
        let empty = MetricsSnapshot::default().render_json();
        assert!(empty.contains("\"counters\": {}"));
    }

    #[test]
    fn noop_recorder_snapshot_is_empty() {
        let r = NoopRecorder;
        r.counter_add("x", 1);
        assert!(r.snapshot().is_empty());
    }

    #[cfg(not(feature = "metrics"))]
    #[test]
    fn default_build_compiles_out() {
        assert!(!compiled());
        counter_add("spacetime_never_recorded_total", 1);
        observe_ns("spacetime_never_recorded_ns", 5);
        counter_add_labeled("spacetime_never_recorded_total", "shard=\"s0\"", 1);
        gauge_add_labeled("spacetime_never_recorded_depth", "shard=\"s0\"", 1.0);
        stopwatch().observe("spacetime_never_recorded_ns");
        assert!(snapshot().is_empty());
    }

    #[test]
    fn labeled_series_render_shapes() {
        let mut s = MetricsSnapshot::default();
        s.labeled_counters
            .entry("spacetime_test_labeled_total".into())
            .or_default()
            .insert("shard=\"s0\"".into(), 3);
        s.labeled_counters
            .get_mut("spacetime_test_labeled_total")
            .unwrap()
            .insert("shard=\"s1\"".into(), 4);
        s.labeled_gauges
            .entry("spacetime_test_labeled_depth".into())
            .or_default()
            .insert("shard=\"s0\"".into(), 1.5);
        assert!(!s.is_empty());
        assert_eq!(s.labeled_counter("spacetime_test_labeled_total", "shard=\"s0\""), 3);
        assert_eq!(s.labeled_counter_sum("spacetime_test_labeled_total"), 7);
        assert_eq!(s.labeled_gauge("spacetime_test_labeled_depth", "shard=\"s0\""), 1.5);
        let text = s.render_prometheus();
        assert!(text.contains("# TYPE spacetime_test_labeled_total counter"));
        assert!(text.contains("spacetime_test_labeled_total{shard=\"s0\"} 3"));
        assert!(text.contains("spacetime_test_labeled_total{shard=\"s1\"} 4"));
        assert!(text.contains("spacetime_test_labeled_depth{shard=\"s0\"} 1.5"));
        let json = s.render_json();
        assert!(json.contains("\"spacetime_test_labeled_total\""));
        assert!(json.contains("\"shard=\\\"s0\\\"\": 3"));
    }

    #[test]
    fn drift_maps_render_in_json() {
        let mut s = MetricsSnapshot::default();
        s.txn_mix.insert("Emp".into(), 12);
        s.view_cost_ewma.insert("EmpDept".into(), 34.5);
        assert!(!s.is_empty());
        let json = s.render_json();
        assert!(json.contains("\"txn_mix\": {"));
        assert!(json.contains("\"Emp\": 12"));
        assert!(json.contains("\"EmpDept\": 34.5"));
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn registry_records_all_series_kinds() {
        assert!(compiled());
        let r = Registry::new();
        r.counter_add("c", 2);
        r.counter_add("c", 3);
        r.gauge_set("g", 4.0);
        r.gauge_add("g", -1.5);
        r.observe_ns("h", 1_500);
        r.observe_ns("h", 2_000_000);
        let s = r.snapshot();
        assert_eq!(s.counter("c"), 5);
        assert!((s.gauge("g") - 2.5).abs() < 1e-9);
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 2_001_500);
        assert_eq!(h.quantile_ns(0.5), 2_500);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn registry_records_labeled_series() {
        let r = Registry::new();
        r.counter_add_labeled("lc", "shard=\"s0\"", 2);
        r.counter_add_labeled("lc", "shard=\"s0\"", 3);
        r.counter_add_labeled("lc", "shard=\"s1\"", 1);
        r.gauge_add_labeled("lg", "shard=\"s0\"", 2.0);
        r.gauge_add_labeled("lg", "shard=\"s0\"", -0.5);
        let s = r.snapshot();
        assert_eq!(s.labeled_counter("lc", "shard=\"s0\""), 5);
        assert_eq!(s.labeled_counter("lc", "shard=\"s1\""), 1);
        assert_eq!(s.labeled_counter_sum("lc"), 6);
        assert!((s.labeled_gauge("lg", "shard=\"s0\"") - 1.5).abs() < 1e-9);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn registry_gauge_add_is_lossless_under_contention() {
        use std::sync::Arc;
        let r = Arc::new(Registry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.gauge_add("depth", 1.0);
                        r.gauge_add("depth", -1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.snapshot().gauge("depth"), 0.0);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn global_free_functions_hit_the_registry() {
        counter_add("spacetime_global_smoke_total", 1);
        gauge_add("spacetime_global_smoke_depth", 2.0);
        observe_ns("spacetime_global_smoke_ns", 10);
        let s = snapshot();
        assert_eq!(s.counter("spacetime_global_smoke_total"), 1);
        assert_eq!(s.gauge("spacetime_global_smoke_depth"), 2.0);
        assert_eq!(s.histogram("spacetime_global_smoke_ns").unwrap().count, 1);
    }
}

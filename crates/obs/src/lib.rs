//! `spacetime-obs`: the observability plane for the spacetime workspace.
//!
//! Five facilities live here:
//!
//! * **Metrics** ([`metrics`]): a lock-cheap registry of atomic counters,
//!   gauges, fixed-bucket histograms, and labeled counters/gauges (fixed
//!   small-cardinality `key="value"` labels: shard id, txn outcome, WAL
//!   record kind) behind a [`Recorder`] trait. The whole plane is gated
//!   behind the `metrics` cargo feature, mirroring the `failpoints`
//!   pattern in `spacetime-storage::fault`: with the feature off (the
//!   default) every instrumentation call site is an inlined empty
//!   function, the metric-name string literals are dead-code-eliminated
//!   from release binaries, and [`snapshot`] returns an empty
//!   [`MetricsSnapshot`]. Call sites never branch on the feature
//!   themselves; they call the same free functions either way.
//!
//! * **Traces** ([`trace`]): a plain span-tree data structure
//!   ([`TraceNode`]) used by `spacetime-ivm` to record `EXPLAIN
//!   ANALYZE`-style propagation traces. Traces are always compiled and
//!   opt-in at runtime (`Database::set_tracing`), so determinism tests can
//!   exercise them in the default build. Wall-clock durations and advisory
//!   notes are carried alongside the structural content and excluded from
//!   [`TraceNode::structure_json`], which is what cross-mode identity
//!   tests compare.
//!
//! * **Flight recorder** ([`flight`]): a fixed-size ring of recent
//!   serving-plane events (txn admissions/commits/aborts, failpoint
//!   fires, worker respawns, WAL fsyncs), dumped on panic or integrity
//!   failure and served at `/debug/events`. Feature-gated like metrics.
//!
//! * **Workload drift** ([`drift`]): sliding-window per-transaction-type
//!   counts and per-view maintenance-cost EWMAs — the observed signal for
//!   online view-set re-selection (ROADMAP item 4). Merged into
//!   [`MetricsSnapshot`] by [`snapshot`]. Feature-gated like metrics.
//!
//! * **HTTP endpoint** ([`http`], `metrics` builds only): a zero-dependency
//!   `TcpListener` server exposing `/metrics` (Prometheus text),
//!   `/healthz`, `/statusz` (JSON status page), and `/debug/events`.

pub mod drift;
pub mod flight;
#[cfg(feature = "metrics")]
pub mod http;
pub mod metrics;
pub mod names;
pub mod trace;

pub use metrics::{
    compiled, counter_add, counter_add_labeled, gauge_add, gauge_add_labeled, gauge_set,
    observe_ns, quantile_sorted, snapshot, stopwatch, HistogramSnapshot, MetricsSnapshot,
    NoopRecorder, Recorder, StopWatch,
};
pub use trace::TraceNode;

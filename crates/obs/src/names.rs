//! Catalog of every metric name emitted by the workspace.
//!
//! Names follow Prometheus conventions: `spacetime_` prefix, `_total`
//! suffix on monotone counters, unit suffix (`_ns`) on time-valued
//! series. Keeping them in one module makes the exposition greppable and
//! gives CI a stable target for the "no exposition strings in the default
//! binary" check (the constants are dead-code-eliminated when the
//! `metrics` feature is off because every consumer is an inlined no-op).

/// Tasks ever dispatched to a [`PipelinePool`] (inline fast path included).
pub const POOL_TASKS: &str = "spacetime_pool_tasks_total";
/// Tasks currently queued or executing on pool workers.
pub const POOL_QUEUE_DEPTH: &str = "spacetime_pool_queue_depth";
/// Cumulative nanoseconds pool workers spent executing tasks.
pub const POOL_WORKER_BUSY_NS: &str = "spacetime_pool_worker_busy_ns_total";
/// Workers respawned after a task panic unwound one.
pub const POOL_RESPAWNS: &str = "spacetime_pool_respawned_workers_total";

/// Cross-engine `SharedDeltaCache` probes.
pub const DELTA_CACHE_LOOKUPS: &str = "spacetime_delta_cache_lookups_total";
/// `SharedDeltaCache` probes answered from the cache.
pub const DELTA_CACHE_HITS: &str = "spacetime_delta_cache_hits_total";
/// `SharedDeltaCache` probes that missed.
pub const DELTA_CACHE_MISSES: &str = "spacetime_delta_cache_misses_total";

/// Optimizer `SharedQueryCache` probes.
pub const QUERY_CACHE_LOOKUPS: &str = "spacetime_query_cache_lookups_total";
/// `SharedQueryCache` probes answered from the cache.
pub const QUERY_CACHE_HITS: &str = "spacetime_query_cache_hits_total";
/// `SharedQueryCache` probes that missed.
pub const QUERY_CACHE_MISSES: &str = "spacetime_query_cache_misses_total";

/// `PlanCache` probes in `QueryExec` (bound and full plans).
pub const PLAN_CACHE_LOOKUPS: &str = "spacetime_plan_cache_lookups_total";
/// `PlanCache` probes answered from the cache.
pub const PLAN_CACHE_HITS: &str = "spacetime_plan_cache_hits_total";
/// `PlanCache` probes that missed.
pub const PLAN_CACHE_MISSES: &str = "spacetime_plan_cache_misses_total";

/// Base-table updates applied through `Database::apply_delta`.
pub const UPDATES_APPLIED: &str = "spacetime_updates_applied_total";
/// Queries posed against materialized state during propagation (§2.2).
pub const QUERIES_POSED: &str = "spacetime_queries_posed_total";
/// Update tracks walked (one per engine with a track for the updated table).
pub const TRACK_PROPAGATIONS: &str = "spacetime_track_propagations_total";
/// Op-tree nodes that produced a delta during track propagation.
pub const TRACK_GROUPS_PROPAGATED: &str = "spacetime_track_groups_propagated_total";
/// End-to-end `apply_delta` latency histogram (plan + gate + commit).
pub const UPDATE_LATENCY_NS: &str = "spacetime_update_latency_ns";
/// Commit-phase latency histogram.
pub const COMMIT_LATENCY_NS: &str = "spacetime_commit_latency_ns";
/// Storage shards (bag + index) disturbed by committed transactions.
pub const COMMIT_DIRTY_SHARDS: &str = "spacetime_commit_dirty_shards_total";

/// View sets handed to the optimizer's search engine.
pub const OPT_SETS_CONSIDERED: &str = "spacetime_opt_sets_considered_total";
/// View sets abandoned by branch-and-bound pruning.
pub const OPT_SETS_PRUNED: &str = "spacetime_opt_sets_pruned_total";
/// Evaluations whose track enumeration hit the `max_tracks` cap.
pub const OPT_TRACKS_TRUNCATED: &str = "spacetime_opt_tracks_truncated_total";
/// Weighted cost of the current best (incumbent) view set, updated live.
pub const OPT_INCUMBENT_COST: &str = "spacetime_opt_incumbent_cost";

/// Failpoints fired (only moves in `failpoints` builds).
pub const FAILPOINTS_FIRED: &str = "spacetime_failpoints_fired_total";

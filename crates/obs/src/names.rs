//! Catalog of every metric name emitted by the workspace.
//!
//! Names follow Prometheus conventions: `spacetime_` prefix, `_total`
//! suffix on monotone counters, unit suffix (`_ns`) on time-valued
//! series. Keeping them in one module makes the exposition greppable and
//! gives CI a stable target for the "no exposition strings in the default
//! binary" check (the constants are dead-code-eliminated when the
//! `metrics` feature is off because every consumer is an inlined no-op).

/// Tasks ever dispatched to a [`PipelinePool`] (inline fast path included).
pub const POOL_TASKS: &str = "spacetime_pool_tasks_total";
/// Tasks currently queued or executing on pool workers.
pub const POOL_QUEUE_DEPTH: &str = "spacetime_pool_queue_depth";
/// Cumulative nanoseconds pool workers spent executing tasks.
pub const POOL_WORKER_BUSY_NS: &str = "spacetime_pool_worker_busy_ns_total";
/// Workers respawned after a task panic unwound one.
pub const POOL_RESPAWNS: &str = "spacetime_pool_respawned_workers_total";

/// Cross-engine `SharedDeltaCache` probes.
pub const DELTA_CACHE_LOOKUPS: &str = "spacetime_delta_cache_lookups_total";
/// `SharedDeltaCache` probes answered from the cache.
pub const DELTA_CACHE_HITS: &str = "spacetime_delta_cache_hits_total";
/// `SharedDeltaCache` probes that missed.
pub const DELTA_CACHE_MISSES: &str = "spacetime_delta_cache_misses_total";

/// Optimizer `SharedQueryCache` probes.
pub const QUERY_CACHE_LOOKUPS: &str = "spacetime_query_cache_lookups_total";
/// `SharedQueryCache` probes answered from the cache.
pub const QUERY_CACHE_HITS: &str = "spacetime_query_cache_hits_total";
/// `SharedQueryCache` probes that missed.
pub const QUERY_CACHE_MISSES: &str = "spacetime_query_cache_misses_total";

/// `PlanCache` probes in `QueryExec` (bound and full plans).
pub const PLAN_CACHE_LOOKUPS: &str = "spacetime_plan_cache_lookups_total";
/// `PlanCache` probes answered from the cache.
pub const PLAN_CACHE_HITS: &str = "spacetime_plan_cache_hits_total";
/// `PlanCache` probes that missed.
pub const PLAN_CACHE_MISSES: &str = "spacetime_plan_cache_misses_total";

/// Base-table updates applied through `Database::apply_delta`.
pub const UPDATES_APPLIED: &str = "spacetime_updates_applied_total";
/// Queries posed against materialized state during propagation (§2.2).
pub const QUERIES_POSED: &str = "spacetime_queries_posed_total";
/// Update tracks walked (one per engine with a track for the updated table).
pub const TRACK_PROPAGATIONS: &str = "spacetime_track_propagations_total";
/// Op-tree nodes that produced a delta during track propagation.
pub const TRACK_GROUPS_PROPAGATED: &str = "spacetime_track_groups_propagated_total";
/// End-to-end `apply_delta` latency histogram (plan + gate + commit).
pub const UPDATE_LATENCY_NS: &str = "spacetime_update_latency_ns";
/// Commit-phase latency histogram.
pub const COMMIT_LATENCY_NS: &str = "spacetime_commit_latency_ns";
/// Storage shards (bag + index) disturbed by committed transactions.
pub const COMMIT_DIRTY_SHARDS: &str = "spacetime_commit_dirty_shards_total";

/// View sets handed to the optimizer's search engine.
pub const OPT_SETS_CONSIDERED: &str = "spacetime_opt_sets_considered_total";
/// View sets abandoned by branch-and-bound pruning.
pub const OPT_SETS_PRUNED: &str = "spacetime_opt_sets_pruned_total";
/// Evaluations whose track enumeration hit the `max_tracks` cap.
pub const OPT_TRACKS_TRUNCATED: &str = "spacetime_opt_tracks_truncated_total";
/// Weighted cost of the current best (incumbent) view set, updated live.
pub const OPT_INCUMBENT_COST: &str = "spacetime_opt_incumbent_cost";

/// Transactions accepted by the shard-footprint scheduler.
pub const SCHED_TXNS: &str = "spacetime_sched_txns_total";
/// Transactions admitted concurrently with at least one other in-flight
/// transaction (disjoint shard footprints).
pub const SCHED_ADMITTED_CONCURRENT: &str = "spacetime_sched_admitted_concurrent_total";
/// Admission-queue scans that deferred a transaction behind a conflicting
/// footprint (one count per wave a transaction sat out).
pub const SCHED_CONFLICT_SERIALIZED: &str = "spacetime_sched_conflict_serialized_total";
/// Transactions whose footprint spanned more than one shard (committed
/// through the cross-shard protocol).
pub const SCHED_CROSS_SHARD_TXNS: &str = "spacetime_sched_cross_shard_txns_total";
/// Admission waves the scheduler ran (each wave dispatches one batch of
/// mutually disjoint transactions).
pub const SCHED_WAVES: &str = "spacetime_sched_waves_total";
/// Transactions currently queued for admission across all shards.
pub const SCHED_QUEUE_DEPTH: &str = "spacetime_sched_queue_depth";

/// Per-shard admission-queue depth, labeled by [`shard_label`].
pub const SCHED_SHARD_QUEUE_DEPTH: &str = "spacetime_sched_shard_queue_depth";
/// Dispatched transactions per participating shard, labeled by
/// [`shard_label`] (a cross-shard transaction counts once per shard).
pub const SHARD_TXNS: &str = "spacetime_shard_txns_total";
/// Dispatched transactions by outcome, labeled [`LABEL_OUTCOME_COMMITTED`]
/// or [`LABEL_OUTCOME_ABORTED`].
pub const SCHED_TXN_OUTCOMES: &str = "spacetime_sched_txn_outcomes_total";
/// Admission waves by dispatched width, labeled by [`wave_width_label`].
pub const SCHED_WAVE_WIDTHS: &str = "spacetime_sched_wave_width_total";
/// Cross-shard transactions that reached the global commit record.
pub const SCHED_CROSS_SHARD_COMMITS: &str = "spacetime_sched_cross_shard_commits_total";
/// Cross-shard transactions rolled back before the global commit record.
pub const SCHED_CROSS_SHARD_ABORTS: &str = "spacetime_sched_cross_shard_aborts_total";

// --- label dimension ------------------------------------------------------
//
// Labels are full `key="value"` pairs with *fixed, small cardinality*, all
// `'static` so the registry can key on pointer-stable strings with zero
// allocation on the hot path. Anything unbounded (table names, view names)
// stays out of the label space and goes through the drift accounting
// instead.

/// `shard="sN"` labels for the first 16 shard domains; higher ids share
/// [`SHARD_LABEL_OVERFLOW`].
const SHARD_LABELS: [&str; 16] = [
    "shard=\"s0\"",
    "shard=\"s1\"",
    "shard=\"s2\"",
    "shard=\"s3\"",
    "shard=\"s4\"",
    "shard=\"s5\"",
    "shard=\"s6\"",
    "shard=\"s7\"",
    "shard=\"s8\"",
    "shard=\"s9\"",
    "shard=\"s10\"",
    "shard=\"s11\"",
    "shard=\"s12\"",
    "shard=\"s13\"",
    "shard=\"s14\"",
    "shard=\"s15\"",
];
/// Shared label for shard ids ≥ 16.
pub const SHARD_LABEL_OVERFLOW: &str = "shard=\"overflow\"";

/// The `shard="sN"` label for a shard id.
pub fn shard_label(shard: usize) -> &'static str {
    SHARD_LABELS.get(shard).copied().unwrap_or(SHARD_LABEL_OVERFLOW)
}

/// Outcome label: the transaction committed.
pub const LABEL_OUTCOME_COMMITTED: &str = "outcome=\"committed\"";
/// Outcome label: the transaction rolled back (assertion violation,
/// contained panic, or cross-shard abort).
pub const LABEL_OUTCOME_ABORTED: &str = "outcome=\"aborted\"";

/// `width="N"` labels for wave widths 0–8; wider waves share
/// [`WAVE_WIDTH_OVERFLOW`].
const WAVE_WIDTH_LABELS: [&str; 9] = [
    "width=\"0\"",
    "width=\"1\"",
    "width=\"2\"",
    "width=\"3\"",
    "width=\"4\"",
    "width=\"5\"",
    "width=\"6\"",
    "width=\"7\"",
    "width=\"8\"",
];
/// Shared label for waves dispatching more than 8 transactions.
pub const WAVE_WIDTH_OVERFLOW: &str = "width=\"9plus\"";

/// The `width="N"` label for a wave's dispatched batch size.
pub fn wave_width_label(width: usize) -> &'static str {
    WAVE_WIDTH_LABELS.get(width).copied().unwrap_or(WAVE_WIDTH_OVERFLOW)
}

/// WAL record-kind label: transaction begin frames.
pub const LABEL_WAL_BEGIN: &str = "kind=\"begin\"";
/// WAL record-kind label: delta payload frames.
pub const LABEL_WAL_DELTA: &str = "kind=\"delta\"";
/// WAL record-kind label: commit frames.
pub const LABEL_WAL_COMMIT: &str = "kind=\"commit\"";
/// WAL record-kind label: cross-shard prepared frames.
pub const LABEL_WAL_PREPARED: &str = "kind=\"prepared\"";
/// WAL record-kind label: checkpoint marker frames.
pub const LABEL_WAL_CHECKPOINT: &str = "kind=\"checkpoint\"";

/// Failpoints fired (only moves in `failpoints` builds).
pub const FAILPOINTS_FIRED: &str = "spacetime_failpoints_fired_total";

/// WAL record frames appended (only moves in `durability` builds).
pub const WAL_APPENDS: &str = "spacetime_wal_appends_total";
/// WAL bytes appended, frame headers included.
pub const WAL_BYTES: &str = "spacetime_wal_bytes_total";
/// fsyncs issued by the WAL (`SyncPolicy::Always` commits, checkpoints).
pub const WAL_FSYNCS: &str = "spacetime_wal_fsyncs_total";
/// Checkpoint segments installed.
pub const WAL_CHECKPOINTS: &str = "spacetime_wal_checkpoints_total";
/// Committed transactions replayed from the log tail during recovery —
/// with checkpointing active this counts only the post-checkpoint tail.
pub const WAL_RECOVERY_REPLAYED_TXNS: &str = "spacetime_wal_recovery_replayed_txns_total";
/// WAL record frames appended by kind, labeled `kind="begin"` …
/// `kind="checkpoint"` (see the `LABEL_WAL_*` constants). Sums to
/// [`WAL_APPENDS`].
pub const WAL_RECORDS: &str = "spacetime_wal_records_total";
/// Committed transactions since the last installed checkpoint, summed over
/// every live WAL session (gauge; drops when a checkpoint lands).
pub const WAL_CHECKPOINT_AGE_TXNS: &str = "spacetime_wal_checkpoint_age_txns";
/// Transactions the most recent recovery replayed from the log tail
/// (gauge; a proxy for how far the checkpoint lagged the log at crash).
pub const WAL_REPLAY_LAG_TXNS: &str = "spacetime_wal_replay_lag_txns";

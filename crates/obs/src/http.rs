//! Minimal HTTP observability endpoint — the first externally reachable
//! surface of the engine (paving ROADMAP item 2's wire front end).
//!
//! Hand-rolled on `std::net::TcpListener` because `spacetime-obs` is
//! dependency-free by charter. One accept thread, one connection at a
//! time, HTTP/1.0 semantics (`Connection: close` on every response):
//! exactly enough protocol for `curl` and a Prometheus scraper, nothing
//! more. Routes:
//!
//! * `GET /metrics` — the live [`MetricsSnapshot`](crate::MetricsSnapshot)
//!   in the Prometheus text exposition format.
//! * `GET /healthz` — `ok` (liveness).
//! * `GET /statusz` — a JSON status page: uptime, scheduler counters,
//!   per-shard queue depths, WAL/checkpoint state, workload drift, and an
//!   application-supplied `serving` section (see
//!   [`ObsServer::start_with_status`]).
//! * `GET /debug/events` — the flight-recorder ring as JSON.
//!
//! This module only exists with the `metrics` feature on; default builds
//! carry no server, no route strings, and no socket code.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::json_escape;
use crate::names;

/// Application callback producing the `serving` section of `/statusz` as
/// a JSON value (object, array, or scalar — embedded verbatim).
pub type StatusFn = Arc<dyn Fn() -> String + Send + Sync>;

/// A running observability endpoint. Dropping it stops the accept loop
/// and joins the server thread.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// the standard routes with a `null` serving section.
    pub fn start(addr: &str) -> std::io::Result<ObsServer> {
        ObsServer::start_with_status(addr, Arc::new(|| "null".to_string()))
    }

    /// Bind `addr` and serve the standard routes; `status` is invoked per
    /// `/statusz` request to fill the `serving` section.
    pub fn start_with_status(addr: &str, status: StatusFn) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("spacetime-obs-http".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // One connection at a time: a scrape endpoint has
                        // no concurrency requirement and serial handling
                        // keeps the server trivially correct.
                        let _ = handle_conn(stream, &status);
                    }
                }
            })?;
        Ok(ObsServer { addr: local, stop, handle: Some(handle) })
    }

    /// The bound address (resolves the port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn handle_conn(mut stream: TcpStream, status: &StatusFn) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 4096];
    let mut len = 0usize;
    // Read until the end of the request head; everything we route on is
    // in the request line, so a body (which GET has none of) is ignored.
    loop {
        if len == buf.len() {
            break;
        }
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    let (code, reason, ctype, body) = if method != "GET" {
        (405, "Method Not Allowed", "text/plain", "method not allowed\n".to_string())
    } else {
        match path {
            "/metrics" => (
                200,
                "OK",
                "text/plain; version=0.0.4",
                crate::metrics::snapshot().render_prometheus(),
            ),
            "/healthz" => (200, "OK", "text/plain", "ok\n".to_string()),
            "/statusz" => (200, "OK", "application/json", statusz_json(status)),
            "/debug/events" => (200, "OK", "application/json", crate::flight::dump_json()),
            _ => (404, "Not Found", "text/plain", "not found\n".to_string()),
        }
    };
    let resp = format!(
        "HTTP/1.0 {code} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(resp.as_bytes())?;
    stream.flush()
}

fn json_u64_map(map: &std::collections::BTreeMap<String, u64>) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {}", json_escape(k), v));
    }
    out.push('}');
    out
}

fn json_f64_map(map: &std::collections::BTreeMap<String, f64>) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let v = if v.is_finite() { *v } else { 0.0 };
        out.push_str(&format!("\"{}\": {}", json_escape(k), v));
    }
    out.push('}');
    out
}

/// Render the `/statusz` JSON body. Public so tests and embedders can
/// produce the page without going through a socket.
pub fn statusz_json(status: &StatusFn) -> String {
    let snap = crate::metrics::snapshot();
    let uptime_ns = crate::flight::process_start().elapsed().as_nanos() as u64;
    let queue_depths = snap
        .labeled_gauges
        .get(names::SCHED_SHARD_QUEUE_DEPTH)
        .cloned()
        .unwrap_or_default();
    let shard_txns = snap
        .labeled_counters
        .get(names::SHARD_TXNS)
        .cloned()
        .unwrap_or_default();
    format!(
        concat!(
            "{{\n",
            "  \"uptime_ns\": {uptime},\n",
            "  \"sched\": {{\"txns\": {txns}, \"admitted_concurrent\": {adm}, ",
            "\"conflict_serialized\": {conf}, \"cross_shard_txns\": {cross}, ",
            "\"cross_shard_commits\": {xcommits}, \"cross_shard_aborts\": {xaborts}, ",
            "\"waves\": {waves}, \"committed\": {committed}, \"aborted\": {aborted}}},\n",
            "  \"shards\": {{\"queue_depth\": {depths}, \"txns\": {stxns}}},\n",
            "  \"wal\": {{\"appends\": {wappends}, \"bytes\": {wbytes}, \"fsyncs\": {wfsyncs}, ",
            "\"checkpoints\": {wcps}, \"replayed_txns\": {wreplayed}, ",
            "\"checkpoint_age_txns\": {wage}, \"replay_lag_txns\": {wlag}}},\n",
            "  \"drift\": {{\"txn_mix\": {mix}, \"view_cost_ewma\": {ewma}}},\n",
            "  \"serving\": {serving}\n",
            "}}"
        ),
        uptime = uptime_ns,
        txns = snap.counter(names::SCHED_TXNS),
        adm = snap.counter(names::SCHED_ADMITTED_CONCURRENT),
        conf = snap.counter(names::SCHED_CONFLICT_SERIALIZED),
        cross = snap.counter(names::SCHED_CROSS_SHARD_TXNS),
        xcommits = snap.counter(names::SCHED_CROSS_SHARD_COMMITS),
        xaborts = snap.counter(names::SCHED_CROSS_SHARD_ABORTS),
        waves = snap.counter(names::SCHED_WAVES),
        committed = snap.labeled_counter(names::SCHED_TXN_OUTCOMES, names::LABEL_OUTCOME_COMMITTED),
        aborted = snap.labeled_counter(names::SCHED_TXN_OUTCOMES, names::LABEL_OUTCOME_ABORTED),
        depths = json_f64_map(&queue_depths),
        stxns = json_u64_map(&shard_txns),
        wappends = snap.counter(names::WAL_APPENDS),
        wbytes = snap.counter(names::WAL_BYTES),
        wfsyncs = snap.counter(names::WAL_FSYNCS),
        wcps = snap.counter(names::WAL_CHECKPOINTS),
        wreplayed = snap.counter(names::WAL_RECOVERY_REPLAYED_TXNS),
        wage = {
            let v = snap.gauge(names::WAL_CHECKPOINT_AGE_TXNS);
            if v.is_finite() { v } else { 0.0 }
        },
        wlag = {
            let v = snap.gauge(names::WAL_REPLAY_LAG_TXNS);
            if v.is_finite() { v } else { 0.0 }
        },
        mix = json_u64_map(&snap.txn_mix),
        ewma = json_f64_map(&snap.view_cost_ewma),
        serving = status(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        let (head, body) = resp.split_once("\r\n\r\n").unwrap();
        let code: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
        (code, head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_routes() {
        crate::counter_add("spacetime_http_test_total", 1);
        let server = ObsServer::start_with_status(
            "127.0.0.1:0",
            Arc::new(|| "{\"mode\": \"test\"}".to_string()),
        )
        .unwrap();
        let addr = server.local_addr();

        let (code, _, body) = get(addr, "/healthz");
        assert_eq!(code, 200);
        assert_eq!(body, "ok\n");

        let (code, head, body) = get(addr, "/metrics");
        assert_eq!(code, 200);
        assert!(head.contains("text/plain"));
        assert!(body.contains("# TYPE spacetime_http_test_total counter"));
        assert!(body.contains("spacetime_http_test_total 1"));

        let (code, _, body) = get(addr, "/statusz");
        assert_eq!(code, 200);
        assert!(body.contains("\"uptime_ns\""));
        assert!(body.contains("\"sched\""));
        assert!(body.contains("\"wal\""));
        assert!(body.contains("\"serving\": {\"mode\": \"test\"}"));

        let (code, _, body) = get(addr, "/debug/events");
        assert_eq!(code, 200);
        assert!(body.starts_with('['));

        let (code, _, _) = get(addr, "/nope");
        assert_eq!(code, 404);
        drop(server);
    }

    #[test]
    fn content_length_matches_body() {
        let server = ObsServer::start("127.0.0.1:0").unwrap();
        let (_, head, body) = get(server.local_addr(), "/healthz");
        let clen: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(clen, body.len());
    }
}

//! Durable commits: per-shard write-ahead logging, checkpointing, and
//! crash recovery (DESIGN.md §17).
//!
//! The paper's traded space — every materialization — is recomputable,
//! but recomputing it after a crash costs exactly the query time the
//! space was traded to avoid. This module makes the trade durable:
//!
//! * [`DurableDatabase`] wraps a [`Database`] with a WAL. Every
//!   transaction appends `begin + deltas` before touching memory and a
//!   `commit` record after the in-memory commit succeeds, so the log
//!   never claims a transaction the memory state rejected, and recovery
//!   never replays a transaction the log does not prove committed.
//! * [`DurableSharded`] wraps a [`ShardedDatabase`] with one WAL per
//!   shard plus a global commit log. Cross-shard transactions use a
//!   two-phase protocol: each participant logs `begin + deltas +
//!   prepared`, and after every shard applied in memory the
//!   coordinator flushes the participants and appends a single commit
//!   record for the transaction's *global id* to `global.log` — the
//!   atomic commit point. Recovery resolves prepared participants by
//!   presence (committed) or absence (presumed abort) of that record.
//! * Checkpoints snapshot the whole catalog — base relations *and*
//!   materializations — plus each engine's creation trees. Recovery
//!   restores the snapshot, replays the creation trees through
//!   `Memo::insert_tree` + `explore` (deterministic, so the memo is
//!   bit-identical and no group id is ever trusted from disk), re-pins
//!   the restored materialization tables, and then replays only the
//!   post-checkpoint log tail through the normal propagation engines.
//!
//! Recovery is proven bit-identical by `prop_wal.rs`: every crash site
//! × shard count × propagation mode recovers to exactly the committed
//! prefix, cross-checked against the recompute oracle.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use spacetime_delta::Delta;
use spacetime_memo::{explore, Memo};
use spacetime_obs::{self as obs, names as metric};
use spacetime_optimizer::ViewSet;
use spacetime_storage::{Bag, Catalog, Column, Schema, ShardSpec};
use spacetime_wal::codec::{self, crc32, Cur};
use spacetime_wal::{
    read_checkpoint, scan_log, write_checkpoint, CheckpointDoc, CheckpointPolicy, EngineDump,
    RawCheckpoint, Record, SyncPolicy, TableDump, WalError, WalSession, WalWriter,
};

use crate::constraints::Assertion;
use crate::database::Database;
use crate::engine::{IvmEngine, PropagationMode, UpdateReport};
use crate::pipeline::ExecutionMode;
use crate::sched::Txn;
use crate::shard::ShardedDatabase;
use crate::{IvmError, IvmResult};

/// File names inside a durable directory.
const CHECKPOINT_FILE: &str = "checkpoint.ckpt";
const WAL_FILE: &str = "wal.log";
const GLOBAL_LOG_FILE: &str = "global.log";
const META_FILE: &str = "META";
const META_MAGIC: &[u8; 8] = b"STWALMET";

/// Convert a wal-layer error into the IVM error space.
pub(crate) fn wal_err(e: WalError) -> IvmError {
    IvmError::Internal(format!("wal: {e}"))
}

/// Durability configuration: when appended frames hit disk and when
/// checkpoints are taken automatically.
#[derive(Debug, Clone, Copy, Default)]
pub struct DurabilityOptions {
    /// When commits become durable (default: flush to the OS, which
    /// survives process death but not power loss).
    pub sync: SyncPolicy,
    /// When to checkpoint automatically (default: never — callers
    /// invoke [`DurableDatabase::checkpoint`] explicitly).
    pub checkpoint: CheckpointPolicy,
}

/// What recovery did: how much was replayed, how much was discarded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// The restored checkpoint covered every txn with id <= this.
    pub checkpoint_last_txn: u64,
    /// Committed transactions replayed from the log tail.
    pub replayed_txns: u64,
    /// Transactions in the log without a commit decision (begun but
    /// never committed, or prepared participants whose global commit
    /// record is absent) — discarded as aborted.
    pub skipped_txns: u64,
    /// Torn / corrupt suffix bytes truncated from the log(s).
    pub discarded_bytes: u64,
}

impl RecoveryStats {
    /// Fold another shard's recovery into these (`checkpoint_last_txn`
    /// keeps the maximum).
    pub fn absorb(&mut self, other: &RecoveryStats) {
        self.checkpoint_last_txn = self.checkpoint_last_txn.max(other.checkpoint_last_txn);
        self.replayed_txns += other.replayed_txns;
        self.skipped_txns += other.skipped_txns;
        self.discarded_bytes += other.discarded_bytes;
    }
}

fn prop_mode_to_u8(m: PropagationMode) -> u8 {
    match m {
        PropagationMode::PerKey => 0,
        PropagationMode::Batched => 1,
        PropagationMode::Fused => 2,
    }
}

fn prop_mode_from_u8(b: u8) -> IvmResult<PropagationMode> {
    match b {
        0 => Ok(PropagationMode::PerKey),
        1 => Ok(PropagationMode::Batched),
        2 => Ok(PropagationMode::Fused),
        _ => Err(IvmError::Internal(format!("bad propagation mode tag {b}"))),
    }
}

fn exec_mode_to_u8(m: ExecutionMode) -> u8 {
    match m {
        ExecutionMode::Sequential => 0,
        ExecutionMode::Parallel => 1,
    }
}

fn exec_mode_from_u8(b: u8) -> IvmResult<ExecutionMode> {
    match b {
        0 => Ok(ExecutionMode::Sequential),
        1 => Ok(ExecutionMode::Parallel),
        _ => Err(IvmError::Internal(format!("bad execution mode tag {b}"))),
    }
}

/// Snapshot `db` into a checkpoint document covering txns `<= last_txn`.
///
/// Every engine must carry its creation recipe (engines built through
/// [`Database::create_materialized_view`] / `create_view_group` do);
/// directly-constructed engines cannot be made durable.
fn build_checkpoint_doc(db: &Database, last_txn: u64) -> IvmResult<CheckpointDoc> {
    let mut tables = Vec::new();
    for (name, t) in db.catalog.iter() {
        tables.push(TableDump {
            name: name.to_string(),
            is_base: t.is_base,
            columns: t
                .schema()
                .columns()
                .iter()
                .map(|c| (c.qualifier.clone(), c.name.clone(), c.dtype))
                .collect(),
            keys: t.keys.clone(),
            index_defs: t.relation.index_defs(),
            relation_tuples_per_page: t.relation.tuples_per_page(),
            stats_tuples_per_page: t.stats.tuples_per_page,
            rows: t.relation.data().sorted(),
        });
    }
    let mut engines = Vec::new();
    for e in db.engines() {
        if e.creation.is_empty() {
            return Err(IvmError::Internal(format!(
                "engine `{}` has no creation recipe; only database-created engines are durable",
                e.name
            )));
        }
        engines.push(EngineDump {
            name: e.name.clone(),
            creation: e.creation.clone(),
            pins: e
                .materialized
                .iter()
                .map(|(&g, table)| (table.clone(), e.memo.extract_one(g)))
                .collect(),
        });
    }
    Ok(CheckpointDoc {
        last_txn,
        propagation_mode: prop_mode_to_u8(db.propagation_mode()),
        execution_mode: exec_mode_to_u8(db.execution_mode()),
        tables,
        assertions: db
            .assertions()
            .iter()
            .map(|a| (a.name.clone(), a.view.clone()))
            .collect(),
        engines,
    })
}

/// Rebuild one engine from its dump against the restored catalog.
///
/// The creation trees replay through `Memo::insert_tree` + `explore` —
/// deterministic structural rewriting, so the memo (and every group id
/// in it) is reproduced bit-identically without trusting ids from
/// disk. Pinned materializations resolve their groups by re-inserting
/// the pinned tree (hash-consing finds the existing group) and attach
/// to the already-restored backing tables instead of recomputing them.
fn rebuild_engine(catalog: &mut Catalog, dump: &EngineDump) -> IvmResult<IvmEngine> {
    if dump.creation.is_empty() {
        return Err(IvmError::Internal(format!(
            "checkpointed engine `{}` has no creation trees",
            dump.name
        )));
    }
    let mut memo = Memo::new();
    let mut named_roots: Vec<(String, spacetime_memo::GroupId)> = Vec::new();
    for (name, tree) in &dump.creation {
        let g = memo.insert_tree(tree);
        named_roots.push((name.clone(), g));
    }
    memo.set_root(named_roots[0].1);
    explore(&mut memo, catalog).map_err(IvmError::Storage)?;
    let named_roots: Vec<(String, spacetime_memo::GroupId)> = named_roots
        .into_iter()
        .map(|(n, g)| (n, memo.find(g)))
        .collect();
    let mut view_set: ViewSet = named_roots.iter().map(|&(_, g)| g).collect();
    let mut pins = BTreeMap::new();
    for (table, tree) in &dump.pins {
        let inserted = memo.insert_tree(tree);
        let g = memo.find(inserted);
        view_set.insert(g);
        if let Some(prev) = pins.insert(g, table.clone()) {
            return Err(IvmError::Internal(format!(
                "checkpointed engine `{}` pins tables `{prev}` and `{table}` to one group",
                dump.name
            )));
        }
    }
    let mut engine = IvmEngine::rebuild_pinned(named_roots, memo, view_set, catalog, &pins)?;
    engine.creation = dump.creation.clone();
    Ok(engine)
}

/// Restore a full [`Database`] from a checkpoint: tables first (so the
/// engine trees can re-derive schemas), then engines, assertions, and
/// the configured modes.
fn restore_database(raw: &RawCheckpoint) -> IvmResult<Database> {
    let mut db = Database::new();
    for t in &raw.tables {
        let cols: Vec<Column> = t
            .columns
            .iter()
            .map(|(q, name, dt)| Column {
                qualifier: q.clone(),
                name: name.clone(),
                dtype: *dt,
            })
            .collect();
        let schema = Schema::new(cols);
        if t.is_base {
            db.catalog.create_table(&t.name, schema).map_err(IvmError::Storage)?;
        } else {
            db.catalog
                .create_materialized(&t.name, schema)
                .map_err(IvmError::Storage)?;
        }
        let table = db.catalog.table_mut(&t.name).map_err(IvmError::Storage)?;
        table.keys = t.keys.clone();
        table.relation.set_tuples_per_page(t.relation_tuples_per_page);
        for def in &t.index_defs {
            table.relation.create_index(def.clone()).map_err(IvmError::Storage)?;
        }
        let mut bag = Bag::new();
        for (tuple, n) in &t.rows {
            bag.insert(tuple.clone(), *n);
        }
        table.relation.load(bag).map_err(IvmError::Storage)?;
        table.stats.tuples_per_page = t.stats_tuples_per_page;
        table.analyze();
    }
    let dumps = raw.decode_engines(&db.catalog).map_err(wal_err)?;
    for dump in &dumps {
        let engine = rebuild_engine(&mut db.catalog, dump)?;
        db.install_engine(engine);
    }
    for (name, view) in &raw.assertions {
        db.install_assertion(Assertion {
            name: name.clone(),
            view: view.clone(),
        });
    }
    db.set_propagation_mode(prop_mode_from_u8(raw.propagation_mode)?);
    db.set_execution_mode(exec_mode_from_u8(raw.execution_mode)?);
    Ok(db)
}

/// What one log replay did.
#[derive(Debug, Default, Clone, Copy)]
struct ReplaySummary {
    replayed: u64,
    skipped: u64,
    /// Highest txn id seen anywhere in the log (committed or not) —
    /// the reopened session allocates above it.
    max_txn: u64,
}

/// Replay a scanned log tail through the normal propagation engines.
///
/// Transactions apply at their commit decision, in log order — which is
/// the original apply order, because transactions on one shard are
/// serialized by the footprint scheduler. A `Prepared` participant
/// commits iff its global id is in `global_committed` (absent set =
/// unsharded log = no prepared records expected).
fn replay_records(
    db: &mut Database,
    records: &[Record],
    global_committed: Option<&BTreeSet<u64>>,
) -> IvmResult<ReplaySummary> {
    struct Pending {
        updates: Txn,
        global: Option<u64>,
    }
    let mut open: BTreeMap<u64, Pending> = BTreeMap::new();
    let mut sum = ReplaySummary::default();
    for rec in records {
        match rec {
            Record::Checkpoint { last_txn } => {
                sum.max_txn = sum.max_txn.max(*last_txn);
            }
            Record::TxnBegin { txn_id, global } => {
                sum.max_txn = sum.max_txn.max(*txn_id);
                open.insert(
                    *txn_id,
                    Pending {
                        updates: Txn::new(),
                        global: *global,
                    },
                );
            }
            Record::Delta {
                txn_id,
                table,
                delta,
            } => {
                if let Some(p) = open.get_mut(txn_id) {
                    p.updates.push((table.clone(), delta.clone()));
                }
            }
            Record::TxnCommit { txn_id } => {
                if let Some(p) = open.remove(txn_id) {
                    db.apply_transaction(p.updates)?;
                    sum.replayed += 1;
                }
            }
            Record::Prepared { txn_id } => {
                if let Some(p) = open.remove(txn_id) {
                    let committed = match (p.global, global_committed) {
                        (Some(g), Some(set)) => set.contains(&g),
                        _ => false,
                    };
                    if committed {
                        db.apply_transaction(p.updates)?;
                        sum.replayed += 1;
                    } else {
                        sum.skipped += 1;
                    }
                }
            }
        }
    }
    // Everything still open lacks a commit decision: aborted.
    sum.skipped += open.len() as u64;
    obs::counter_add(metric::WAL_RECOVERY_REPLAYED_TXNS, sum.replayed);
    Ok(sum)
}

// ---------------------------------------------------------------------
// Single database
// ---------------------------------------------------------------------

/// A [`Database`] whose commits are write-ahead logged and whose state
/// checkpoints to a directory. See module docs for the protocol.
///
/// The schema and view set are fixed at [`DurableDatabase::create`]
/// time (the attach-time checkpoint captures them); DDL after attach is
/// not logged and therefore unsupported.
pub struct DurableDatabase {
    db: Database,
    wal: WalSession,
    dir: PathBuf,
}

impl DurableDatabase {
    /// Attach durability to `db`, writing the initial checkpoint (the
    /// full current state) and an empty log to a fresh `dir`. Errors if
    /// `dir` already holds a durable database — use
    /// [`DurableDatabase::open`] for that.
    pub fn create(db: Database, dir: &Path, opts: DurabilityOptions) -> IvmResult<Self> {
        std::fs::create_dir_all(dir).map_err(|e| wal_err(e.into()))?;
        let ckpt = dir.join(CHECKPOINT_FILE);
        if ckpt.exists() {
            return Err(IvmError::Internal(format!(
                "durable directory {} is already initialized; use open()",
                dir.display()
            )));
        }
        let doc = build_checkpoint_doc(&db, 0)?;
        write_checkpoint(&ckpt, &doc).map_err(wal_err)?;
        let mut wal = WalSession::open(&dir.join(WAL_FILE), 0, 1, opts.sync, opts.checkpoint)
            .map_err(wal_err)?;
        wal.after_checkpoint(0).map_err(wal_err)?;
        Ok(DurableDatabase {
            db,
            wal,
            dir: dir.to_path_buf(),
        })
    }

    /// Recover from `dir` with default options.
    pub fn open(dir: &Path) -> IvmResult<(Self, RecoveryStats)> {
        Self::open_with(dir, DurabilityOptions::default())
    }

    /// Recover from `dir`: load the checkpoint, rebuild every engine,
    /// replay the committed log tail through the normal propagation
    /// engines, discard torn / uncommitted suffixes, and reopen the log
    /// for appending. The recovered state is bit-identical to the
    /// committed pre-crash state.
    pub fn open_with(dir: &Path, opts: DurabilityOptions) -> IvmResult<(Self, RecoveryStats)> {
        let ckpt = dir.join(CHECKPOINT_FILE);
        let raw = read_checkpoint(&ckpt)
            .map_err(wal_err)?
            .ok_or_else(|| {
                IvmError::Internal(format!("no checkpoint at {}", ckpt.display()))
            })?;
        let mut db = restore_database(&raw)?;
        let scan = scan_log(&dir.join(WAL_FILE)).map_err(wal_err)?;
        let sum = replay_records(&mut db, &scan.records, None)?;
        let next_txn = sum.max_txn.max(raw.last_txn) + 1;
        let wal = WalSession::open(
            &dir.join(WAL_FILE),
            scan.valid_len,
            next_txn,
            opts.sync,
            opts.checkpoint,
        )
        .map_err(wal_err)?;
        let stats = RecoveryStats {
            checkpoint_last_txn: raw.last_txn,
            replayed_txns: sum.replayed,
            skipped_txns: sum.skipped,
            discarded_bytes: scan.discarded_bytes,
        };
        obs::gauge_set(metric::WAL_REPLAY_LAG_TXNS, stats.replayed_txns as f64);
        obs::flight::record("recovery", || {
            format!(
                "{}: replayed {} skipped {} discarded {}B",
                dir.display(),
                stats.replayed_txns,
                stats.skipped_txns,
                stats.discarded_bytes
            )
        });
        Ok((
            DurableDatabase {
                db,
                wal,
                dir: dir.to_path_buf(),
            },
            stats,
        ))
    }

    /// The wrapped database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access for reads / verification. Mutating state through
    /// this bypasses the log; use the `apply_*` methods for updates.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Unwrap, abandoning durability.
    pub fn into_db(self) -> Database {
        self.db
    }

    /// The durable directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Apply one table's delta durably.
    pub fn apply_delta(&mut self, table: &str, delta: Delta) -> IvmResult<UpdateReport> {
        self.apply_transaction(vec![(table.to_string(), delta)])
    }

    /// Apply a transaction durably: log `begin + deltas`, apply in
    /// memory (which may reject it — assertions, faults — leaving the
    /// dangling log records to be discarded at recovery), then log the
    /// commit record and make it durable per the sync policy. If the
    /// commit record itself cannot be written, the in-memory commit is
    /// rolled back so memory never runs ahead of the log.
    pub fn apply_transaction(&mut self, updates: Txn) -> IvmResult<UpdateReport> {
        let backup = self.db.catalog.clone();
        let prior_report = self.db.last_report.clone();
        let txn_id = self.wal.begin(None, &updates).map_err(wal_err)?;
        let report = self.db.apply_transaction(updates)?;
        if let Err(e) = self.wal.commit(txn_id) {
            self.db.catalog = backup;
            self.db.last_report = prior_report;
            return Err(wal_err(e));
        }
        if self.wal.should_checkpoint() {
            self.checkpoint()?;
        }
        Ok(report)
    }

    /// Snapshot the full current state, truncate the log, and append
    /// the checkpoint marker. Returns the segment size in bytes.
    pub fn checkpoint(&mut self) -> IvmResult<u64> {
        let last_txn = self.wal.next_txn_id().saturating_sub(1);
        let doc = build_checkpoint_doc(&self.db, last_txn)?;
        let bytes = write_checkpoint(&self.dir.join(CHECKPOINT_FILE), &doc).map_err(wal_err)?;
        self.wal.after_checkpoint(last_txn).map_err(wal_err)?;
        Ok(bytes)
    }

    /// Checkpoint if the configured policy calls for it.
    pub fn maybe_checkpoint(&mut self) -> IvmResult<bool> {
        if self.wal.should_checkpoint() {
            self.checkpoint()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }
}

impl Database {
    /// Recover a durable database from `dir` (see
    /// [`DurableDatabase::open_with`]).
    pub fn open(dir: &Path) -> IvmResult<(DurableDatabase, RecoveryStats)> {
        DurableDatabase::open(dir)
    }
}

// ---------------------------------------------------------------------
// Sharded
// ---------------------------------------------------------------------

/// The per-shard WAL sessions plus the global commit log, shared with
/// the footprint scheduler (`TxnScheduler::with_wals`). The mutexes
/// follow the shard-cell discipline: the scheduler only runs disjoint
/// footprints concurrently, so a shard's session lock is free whenever
/// its task takes it; the global log is the one serialized point, taken
/// only by cross-shard coordinators.
pub struct ShardWals {
    sessions: Vec<Mutex<WalSession>>,
    global: Mutex<WalWriter>,
    next_gid: AtomicU64,
    sync: SyncPolicy,
}

impl ShardWals {
    fn session(&self, shard: usize) -> std::sync::MutexGuard<'_, WalSession> {
        self.sessions[shard].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The shard count.
    pub fn n_shards(&self) -> usize {
        self.sessions.len()
    }

    /// Allocate a global transaction id for a cross-shard commit.
    pub(crate) fn alloc_gid(&self) -> u64 {
        self.next_gid.fetch_add(1, Ordering::SeqCst)
    }

    /// Log a participant's `begin + deltas` (plus `prepared` when part
    /// of a cross-shard transaction) on its shard's log. Returns the
    /// shard-local txn id.
    pub(crate) fn begin_shard(
        &self,
        shard: usize,
        global: Option<u64>,
        updates: &Txn,
    ) -> IvmResult<u64> {
        let mut s = self.session(shard);
        let txn_id = s.begin(global, updates).map_err(wal_err)?;
        if global.is_some() {
            s.prepared(txn_id).map_err(wal_err)?;
        }
        Ok(txn_id)
    }

    /// Log a single-shard transaction's commit record and make it
    /// durable per the sync policy.
    pub(crate) fn commit_shard(&self, shard: usize, txn_id: u64) -> IvmResult<()> {
        self.session(shard).commit(txn_id).map_err(wal_err)
    }

    /// The cross-shard commit point: flush every participant's log (so
    /// their prepared records are durable first), then append the
    /// global commit record. A crash before the global record is
    /// durable aborts the transaction at recovery; after, it commits —
    /// exactly the 2PC presence/absence rule.
    pub(crate) fn commit_global(&self, gid: u64, shards: &[usize]) -> IvmResult<()> {
        for &s in shards {
            self.session(s)
                .writer()
                .commit_durable(self.sync)
                .map_err(wal_err)?;
        }
        spacetime_storage::fault::fire("wal::global_commit")
            .map_err(IvmError::Storage)?;
        let mut g = self.global.lock().unwrap_or_else(|e| e.into_inner());
        g.append(&Record::TxnCommit { txn_id: gid }).map_err(wal_err)?;
        g.commit_durable(self.sync).map_err(wal_err)
    }

    /// Does any shard's policy call for a checkpoint?
    pub fn should_checkpoint(&self) -> bool {
        (0..self.sessions.len()).any(|s| self.session(s).should_checkpoint())
    }
}

fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}"))
}

fn write_meta(dir: &Path, n_shards: usize, spec: &ShardSpec) -> IvmResult<()> {
    let mut body = Vec::new();
    codec::put_u32(&mut body, n_shards as u32);
    let tables: Vec<(&str, &[usize])> = spec.tables().collect();
    codec::put_u32(&mut body, tables.len() as u32);
    for (name, cols) in tables {
        codec::put_str(&mut body, name);
        codec::put_usize_vec(&mut body, cols);
    }
    let mut bytes = Vec::with_capacity(body.len() + 12);
    bytes.extend_from_slice(META_MAGIC);
    codec::put_u32(&mut bytes, crc32(&body));
    bytes.extend_from_slice(&body);
    let tmp = dir.join(format!("{META_FILE}.tmp"));
    std::fs::write(&tmp, &bytes).map_err(|e| wal_err(e.into()))?;
    std::fs::rename(&tmp, dir.join(META_FILE)).map_err(|e| wal_err(e.into()))?;
    Ok(())
}

fn read_meta(dir: &Path) -> IvmResult<(usize, ShardSpec)> {
    let path = dir.join(META_FILE);
    let bytes = std::fs::read(&path).map_err(|e| wal_err(e.into()))?;
    if bytes.len() < 12 || &bytes[..8] != META_MAGIC {
        return Err(IvmError::Internal(format!("bad META magic at {}", path.display())));
    }
    let want = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let body = &bytes[12..];
    if crc32(body) != want {
        return Err(IvmError::Internal(format!("META crc mismatch at {}", path.display())));
    }
    let mut cur = Cur::new(body);
    let mut read = || -> Result<(usize, ShardSpec), WalError> {
        let n_shards = cur.u32()? as usize;
        let ntables = cur.u32()? as usize;
        let mut spec = ShardSpec::new();
        for _ in 0..ntables {
            let name = cur.str()?;
            let cols = cur.usize_vec()?;
            spec.declare(name, cols);
        }
        Ok((n_shards, spec))
    };
    read().map_err(wal_err)
}

/// A [`ShardedDatabase`] with one WAL per shard plus the global commit
/// log. Construct a durable scheduler over it with
/// [`crate::sched::TxnScheduler::with_wals`].
pub struct DurableSharded {
    db: ShardedDatabase,
    wals: Arc<ShardWals>,
    dir: PathBuf,
}

impl DurableSharded {
    /// Partition `template` across `n_shards` (exactly like
    /// [`ShardedDatabase::partition`]) and attach durability: per-shard
    /// initial checkpoints, empty per-shard logs, an empty global log,
    /// and a META file recording the shard count and spec.
    pub fn create(
        template: &Database,
        spec: ShardSpec,
        n_shards: usize,
        dir: &Path,
        opts: DurabilityOptions,
    ) -> IvmResult<Self> {
        std::fs::create_dir_all(dir).map_err(|e| wal_err(e.into()))?;
        if dir.join(META_FILE).exists() {
            return Err(IvmError::Internal(format!(
                "durable directory {} is already initialized; use open()",
                dir.display()
            )));
        }
        let db = ShardedDatabase::partition(template, spec, n_shards)?;
        write_meta(dir, n_shards, db.spec())?;
        let mut sessions = Vec::with_capacity(n_shards);
        for s in 0..n_shards {
            let sdir = shard_dir(dir, s);
            std::fs::create_dir_all(&sdir).map_err(|e| wal_err(e.into()))?;
            let doc = build_checkpoint_doc(&db.shard(s), 0)?;
            write_checkpoint(&sdir.join(CHECKPOINT_FILE), &doc).map_err(wal_err)?;
            let mut session =
                WalSession::open(&sdir.join(WAL_FILE), 0, 1, opts.sync, opts.checkpoint)
                    .map_err(wal_err)?;
            session.after_checkpoint(0).map_err(wal_err)?;
            sessions.push(Mutex::new(session));
        }
        let global = WalWriter::open(&dir.join(GLOBAL_LOG_FILE), 0).map_err(wal_err)?;
        Ok(DurableSharded {
            db,
            wals: Arc::new(ShardWals {
                sessions,
                global: Mutex::new(global),
                next_gid: AtomicU64::new(1),
                sync: opts.sync,
            }),
            dir: dir.to_path_buf(),
        })
    }

    /// Recover from `dir` with default options.
    pub fn open(dir: &Path, n_shards: usize) -> IvmResult<(Self, RecoveryStats)> {
        Self::open_with(dir, n_shards, DurabilityOptions::default())
    }

    /// Recover every shard from `dir`: the global log's valid prefix
    /// decides which prepared cross-shard participants committed, each
    /// shard restores its checkpoint and replays its committed tail,
    /// and the logs reopen for appending.
    pub fn open_with(
        dir: &Path,
        n_shards: usize,
        opts: DurabilityOptions,
    ) -> IvmResult<(Self, RecoveryStats)> {
        let (meta_shards, spec) = read_meta(dir)?;
        if meta_shards != n_shards {
            return Err(IvmError::Unsupported(format!(
                "directory {} holds {meta_shards} shards, not {n_shards}",
                dir.display()
            )));
        }
        // The global commit decisions first: they gate every shard's
        // prepared participants.
        let gscan = scan_log(&dir.join(GLOBAL_LOG_FILE)).map_err(wal_err)?;
        let mut committed_gids: BTreeSet<u64> = BTreeSet::new();
        let mut max_gid = 0u64;
        for rec in &gscan.records {
            if let Record::TxnCommit { txn_id } = rec {
                committed_gids.insert(*txn_id);
                max_gid = max_gid.max(*txn_id);
            }
        }
        let mut stats = RecoveryStats {
            discarded_bytes: gscan.discarded_bytes,
            ..RecoveryStats::default()
        };
        let mut shards = Vec::with_capacity(n_shards);
        let mut sessions = Vec::with_capacity(n_shards);
        for s in 0..n_shards {
            let sdir = shard_dir(dir, s);
            let ckpt = sdir.join(CHECKPOINT_FILE);
            let raw = read_checkpoint(&ckpt).map_err(wal_err)?.ok_or_else(|| {
                IvmError::Internal(format!("no checkpoint at {}", ckpt.display()))
            })?;
            let mut db = restore_database(&raw)?;
            let scan = scan_log(&sdir.join(WAL_FILE)).map_err(wal_err)?;
            let sum = replay_records(&mut db, &scan.records, Some(&committed_gids))?;
            for rec in &scan.records {
                if let Record::TxnBegin {
                    global: Some(g), ..
                } = rec
                {
                    max_gid = max_gid.max(*g);
                }
            }
            stats.absorb(&RecoveryStats {
                checkpoint_last_txn: raw.last_txn,
                replayed_txns: sum.replayed,
                skipped_txns: sum.skipped,
                discarded_bytes: scan.discarded_bytes,
            });
            let session = WalSession::open(
                &sdir.join(WAL_FILE),
                scan.valid_len,
                sum.max_txn.max(raw.last_txn) + 1,
                opts.sync,
                opts.checkpoint,
            )
            .map_err(wal_err)?;
            sessions.push(Mutex::new(session));
            shards.push(Arc::new(Mutex::new(db)));
        }
        let global = WalWriter::open(&dir.join(GLOBAL_LOG_FILE), gscan.valid_len)
            .map_err(wal_err)?;
        obs::gauge_set(metric::WAL_REPLAY_LAG_TXNS, stats.replayed_txns as f64);
        obs::flight::record("recovery", || {
            format!(
                "{} ({n_shards} shards): replayed {} skipped {} discarded {}B",
                dir.display(),
                stats.replayed_txns,
                stats.skipped_txns,
                stats.discarded_bytes
            )
        });
        Ok((
            DurableSharded {
                db: ShardedDatabase::from_parts(spec, shards),
                wals: Arc::new(ShardWals {
                    sessions,
                    global: Mutex::new(global),
                    next_gid: AtomicU64::new(max_gid + 1),
                    sync: opts.sync,
                }),
                dir: dir.to_path_buf(),
            },
            stats,
        ))
    }

    /// The wrapped sharded database.
    pub fn db(&self) -> &ShardedDatabase {
        &self.db
    }

    /// Mutable access (e.g. [`ShardedDatabase::set_propagation_mode`]).
    pub fn db_mut(&mut self) -> &mut ShardedDatabase {
        &mut self.db
    }

    /// The shared WAL handles, for [`crate::sched::TxnScheduler::with_wals`].
    pub fn wals(&self) -> Arc<ShardWals> {
        Arc::clone(&self.wals)
    }

    /// The durable directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Checkpoint every shard, then truncate the global log.
    ///
    /// Must not run concurrently with a scheduler run (`&mut self`
    /// guarantees it). The ordering is crash-safe: each shard's
    /// checkpoint truncates that shard's log (removing its prepared
    /// records) *before* the global log is truncated, so a crash
    /// mid-checkpoint never strands a prepared participant without its
    /// commit decision.
    pub fn checkpoint(&mut self) -> IvmResult<()> {
        for s in 0..self.db.n_shards() {
            let last_txn = {
                let session = self.wals.session(s);
                session.next_txn_id().saturating_sub(1)
            };
            let doc = build_checkpoint_doc(&self.db.shard(s), last_txn)?;
            write_checkpoint(&shard_dir(&self.dir, s).join(CHECKPOINT_FILE), &doc)
                .map_err(wal_err)?;
            self.wals
                .session(s)
                .after_checkpoint(last_txn)
                .map_err(wal_err)?;
        }
        let mut g = self.wals.global.lock().unwrap_or_else(|e| e.into_inner());
        g.truncate().map_err(wal_err)?;
        Ok(())
    }

    /// Checkpoint if any shard's policy calls for it.
    pub fn maybe_checkpoint(&mut self) -> IvmResult<bool> {
        if self.wals.should_checkpoint() {
            self.checkpoint()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }
}

impl ShardedDatabase {
    /// Recover a durable sharded database from `dir` (see
    /// [`DurableSharded::open_with`]).
    pub fn open(dir: &Path, n_shards: usize) -> IvmResult<(DurableSharded, RecoveryStats)> {
        DurableSharded::open(dir, n_shards)
    }
}

#[cfg(all(test, feature = "metrics"))]
mod metric_tests {
    use super::*;
    use spacetime_storage::{tuple, Column, DataType, Schema};

    /// The acceptance hook for tail-only replay: recovery advances the
    /// `recovery_replayed_txns` counter by exactly the number of
    /// transactions the log proved committed past the checkpoint.
    #[test]
    fn recovery_bumps_the_replayed_txns_counter() {
        let dir = spacetime_wal::test_dir("durability_metric");
        let mut db = Database::new();
        db.catalog
            .create_table(
                "T",
                Schema::new(vec![Column::new("T", "a", DataType::Int)]),
            )
            .unwrap();
        let mut dur =
            DurableDatabase::create(db, &dir, DurabilityOptions::default()).unwrap();
        for i in 0..3i64 {
            dur.apply_delta("T", Delta::insert(tuple![i], 1)).unwrap();
        }
        drop(dur);

        let before = obs::snapshot().counter(metric::WAL_RECOVERY_REPLAYED_TXNS);
        let (_, stats) = Database::open(&dir).unwrap();
        assert_eq!(stats.replayed_txns, 3);
        assert_eq!(
            obs::snapshot().counter(metric::WAL_RECOVERY_REPLAYED_TXNS) - before,
            3,
            "recovery must count exactly the replayed tail"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The labeled WAL family moves per record kind, the checkpoint-age
    /// gauge tracks uncheckpointed commits, and recovery publishes its
    /// replay lag. Lower-bound assertions only: lib tests share the
    /// process-global registry across threads, so exact equality books
    /// live in the single-threaded bench (`assert_wal_metrics_consistent`).
    #[test]
    fn wal_record_kinds_and_age_gauges_move() {
        use spacetime_obs::names;
        let dir = spacetime_wal::test_dir("durability_labeled_metric");
        let mut db = Database::new();
        db.catalog
            .create_table(
                "T",
                Schema::new(vec![Column::new("T", "a", DataType::Int)]),
            )
            .unwrap();
        let before = obs::snapshot();
        let mut dur =
            DurableDatabase::create(db, &dir, DurabilityOptions::default()).unwrap();
        for i in 0..4i64 {
            dur.apply_delta("T", Delta::insert(tuple![i], 1)).unwrap();
        }
        drop(dur);
        let snap = obs::snapshot();
        for kind in [
            names::LABEL_WAL_BEGIN,
            names::LABEL_WAL_DELTA,
            names::LABEL_WAL_COMMIT,
        ] {
            assert!(
                snap.labeled_counter(names::WAL_RECORDS, kind)
                    >= before.labeled_counter(names::WAL_RECORDS, kind) + 4,
                "WAL record family did not move for {kind}"
            );
        }
        // `create` installs the initial checkpoint marker.
        assert!(
            snap.labeled_counter(names::WAL_RECORDS, names::LABEL_WAL_CHECKPOINT)
                > before.labeled_counter(names::WAL_RECORDS, names::LABEL_WAL_CHECKPOINT),
            "checkpoint marker was not counted"
        );
        // Four commits, no checkpoint since: the session left its age
        // behind on the process-wide gauge.
        assert!(
            snap.gauge(names::WAL_CHECKPOINT_AGE_TXNS)
                >= before.gauge(names::WAL_CHECKPOINT_AGE_TXNS) + 4.0,
            "checkpoint-age gauge did not accumulate the commits"
        );

        let (_, stats) = Database::open(&dir).unwrap();
        assert_eq!(stats.replayed_txns, 4);
        assert!(
            obs::snapshot().gauge(names::WAL_REPLAY_LAG_TXNS) > 0.0,
            "recovery must publish its replay lag"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

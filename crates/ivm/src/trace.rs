//! Propagation-trace recording: the per-update `EXPLAIN ANALYZE` plane.
//!
//! Tracing is always compiled and opt-in at runtime
//! ([`crate::Database::set_tracing`]); the recorded tree is a
//! [`spacetime_obs::TraceNode`]. Structural content (track chosen, ops,
//! posed queries, index-vs-scan resolution, delta sizes, commit targets)
//! must be identical between `ExecutionMode::Sequential` and
//! `ExecutionMode::Parallel`; wall-clock durations and cache-hit notes are
//! non-structural and excluded from `TraceNode::structure_json`.
//!
//! Recording is collected per track group by [`GroupProbe`] (filled inside
//! `IvmEngine::propagate_group` and its `InputAccess`), then assembled in
//! the *build-time level plan's* order — a mode-independent artifact — so
//! the tree's shape never depends on thread scheduling.

use spacetime_memo::GroupId;
pub use spacetime_obs::TraceNode;

/// One posed query recorded during a group's propagation: which child was
/// queried, on which binding columns, with how many distinct keys.
#[derive(Debug, Clone)]
pub(crate) struct QueryRec {
    /// The queried child group.
    pub child: GroupId,
    /// Binding columns of the posed query.
    pub cols: Vec<usize>,
    /// Distinct keys answered (1 per call in per-key mode; the batch size
    /// for a batched `matching_all`).
    pub keys: u64,
}

/// Per-group recording slot threaded through `propagate_group`.
#[derive(Debug, Clone, Default)]
pub(crate) struct GroupProbe {
    /// Posed queries, in pose order.
    pub queries: Vec<QueryRec>,
    /// Size of the carrier child's delta.
    pub delta_in: u64,
    /// Whether the group's delta came from the cross-engine shared-delta
    /// cache (non-structural: only access-free chains are cacheable, so a
    /// hit changes neither queries nor deltas).
    pub cached: bool,
}

/// A propagated group's full recording, assembled by `plan_update_with`.
#[derive(Debug, Clone, Default)]
pub(crate) struct GroupRec {
    /// The probe filled during propagation.
    pub probe: GroupProbe,
    /// Size of the group's output delta.
    pub delta_out: u64,
    /// Queries posed by this group (mode-independent §2.2 count).
    pub posed: u64,
    /// Wall-clock nanoseconds spent propagating the group.
    pub wall_ns: u64,
}
